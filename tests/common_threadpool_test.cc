#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace privshape {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto fut = pool.Submit([&] { value = 42; });
  fut.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&] { counter++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&](size_t) { counter++; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter++; });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace privshape
