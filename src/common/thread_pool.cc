#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace privshape {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    MutexLock lock(&mu_);
    tasks_.push(std::move(task));
  }
  cv_.NotifyOne();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // At most 4 chunks per worker amortizes queue overhead; never more
  // chunks than iterations so every scheduled chunk is non-empty (this
  // also covers n < num_threads, where each index gets its own chunk).
  size_t chunks = std::min(n, std::max<size_t>(workers_.size(), 1) * 4);
  size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * chunk_size;
    size_t end = std::min(begin + chunk_size, n);
    if (begin >= end) break;
    futures.push_back(Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  // Wait for every chunk before rethrowing: unwinding early would destroy
  // `fn` (captured by reference) while queued chunks still point at it.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && tasks_.empty()) cv_.Wait(&mu_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace privshape
