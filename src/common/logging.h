#ifndef PRIVSHAPE_COMMON_LOGGING_H_
#define PRIVSHAPE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace privshape {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level (default kInfo). Messages below it are
/// dropped. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one line to stderr as "[LEVEL] message". Thread-safe.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style builder so call sites read `PS_LOG(kInfo) << "x=" << x;`.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, ss_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace internal
}  // namespace privshape

#define PS_LOG(level) \
  ::privshape::internal::LogStream(::privshape::LogLevel::level)

#endif  // PRIVSHAPE_COMMON_LOGGING_H_
