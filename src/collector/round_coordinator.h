#ifndef PRIVSHAPE_COLLECTOR_ROUND_COORDINATOR_H_
#define PRIVSHAPE_COLLECTOR_ROUND_COORDINATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "collector/client_fleet.h"
#include "collector/metrics.h"
#include "collector/sharded_aggregator.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/rounds.h"
#include "telemetry/telemetry.h"

namespace privshape::collector {

/// Serving-layer knobs, orthogonal to the mechanism configuration: none of
/// them may change the extracted shapes (that is the determinism
/// contract), only how fast the rounds run.
struct CollectorOptions {
  /// Independent aggregation lanes; 0 means one per pool thread. More
  /// shards than threads is fine (workers pick up whole shards).
  size_t num_shards = 0;
  /// Encoded reports buffered per shard before they are handed to the
  /// aggregation side (one queue item / ConsumeBatch call per batch).
  size_t batch_size = 256;
  /// Streaming ingestion (the default): fleet workers push report batches
  /// into bounded per-drainer queues while dedicated drainer threads
  /// aggregate concurrently, so answering and ConsumeBatch overlap.
  /// false = barrier mode: each worker aggregates its own shard inline.
  bool streaming = true;
  /// Batches buffered per drainer queue before Push blocks (streaming
  /// backpressure); 0 means unbounded.
  size_t queue_depth = 8;
};

/// Answers one round's request for one materialized client, appending the
/// encoded report to `out` on success (and appending nothing on failure).
/// `user` is the fleet-wide user id (used by tests to inject mid-stream
/// failures); `scratch` is the calling worker's reusable answer buffers —
/// with a shared RoundContext this whole path allocates nothing per
/// report. Typically `session.AnswerTo(ctx, &scratch, &out)`.
using AnswerFn =
    std::function<Status(proto::ClientSession&, size_t user,
                         proto::AnswerScratch& scratch,
                         proto::ReportBatch& out)>;

/// Everything one round execution produces: the (possibly multi-lane)
/// aggregation state, plus the count of sessions that failed to answer.
struct RoundOutcome {
  ShardedAggregator agg;
  size_t client_errors = 0;
  /// Per-batch ingest latency (one ConsumeBatch call = one sample, in
  /// nanoseconds). A snapshot — plain movable data — because outcomes are
  /// returned by value and merged across collection sites; the runner's
  /// live Histogram never leaves its round.
  telemetry::HistogramSnapshot ingest_latency;
};

/// Executes one collection round over `population` for stage `spec`:
/// whatever the executor (a single coordinator, N collectors whose
/// outcomes are merged, or the socket daemon broadcasting to live
/// connections), the returned aggregation must be exactly what a single
/// unsharded aggregator fed the same reports would hold.
/// `encoded_request` is the round's broadcast message, already encoded —
/// in-process runners ignore it (their clients share the pre-decoded
/// RoundContext), the network runner ships it verbatim to every client.
using RoundRunner = std::function<RoundOutcome(
    const std::vector<size_t>& population, const StageSpec& spec,
    const std::string& encoded_request, const AnswerFn& answer)>;

/// Drives the full Algorithm 2 protocol (P_a -> P_b -> ell_S x P_c ->
/// P_d, or the OUE classification round P_e when config.num_classes > 0
/// -> post-processing) against `run_round`, delegating every server-side
/// decision to core::PrivShapeServer — the same state machine the
/// single-threaded pipeline drives. `num_users` is the whole population
/// (the stage split is the server's only draw from the shared seed).
/// Per-round metrics (stage timings, accepted/rejected/bytes, client
/// errors) are recorded into `metrics` when non-null.
///
/// Graceful shutdown: DriveProtocol polls common/shutdown.h's flag after
/// every round (and RunRound's stripe workers poll it per user), so a
/// SIGINT mid-protocol stops producing new reports, records the partial
/// round's stats, and returns Status::Cancelled instead of finishing —
/// the caller still holds usable metrics.
Result<core::MechanismResult> DriveProtocol(
    const core::MechanismConfig& config, size_t num_users,
    const RoundRunner& run_round, CollectorMetrics* metrics = nullptr);

/// One collection site: answers rounds over (a slice of) the fleet on its
/// thread pool and ingests reports through a lock-free ShardedAggregator.
/// Aggregation is exact integer merging, so for a fixed fleet seed the
/// result is byte-identical to core::PrivShape::Run on the same words, for
/// any {shard, thread, batch, queue-depth, collector} configuration.
class RoundCoordinator {
 public:
  /// `pool` must outlive the coordinator; pass nullptr to run every round
  /// inline on the calling thread (still sharded, still deterministic).
  RoundCoordinator(core::MechanismConfig config, CollectorOptions options,
                   ThreadPool* pool);

  /// Runs the whole protocol over the fleet. Classification refinement
  /// (config.num_classes > 0) requires a labeled fleet — the P_e round
  /// replaces P_d's GRR with OUE over candidate x class cells.
  Result<core::MechanismResult> Collect(const ClientFleet& fleet,
                                        CollectorMetrics* metrics = nullptr);

  /// Broadcasts one round to `population` and ingests the answers.
  ///
  /// Streaming mode: population stripes are answered by pool workers that
  /// push encoded batches into bounded MPSC queues, drained concurrently
  /// by dedicated aggregation threads (one queue per drainer, lanes
  /// striped across drainers so each lane keeps a single writer). Barrier
  /// mode: each worker aggregates its own stripe inline. Both modes
  /// produce identical aggregation state.
  RoundOutcome RunRound(const ClientFleet& fleet,
                        const std::vector<size_t>& population,
                        const StageSpec& spec, const AnswerFn& answer) const;

  const core::MechanismConfig& config() const { return config_; }
  const CollectorOptions& options() const { return options_; }

  size_t EffectiveShards() const;
  size_t EffectiveThreads() const;

 private:
  core::MechanismConfig config_;
  CollectorOptions options_;
  ThreadPool* pool_;
};

}  // namespace privshape::collector

#endif  // PRIVSHAPE_COLLECTOR_ROUND_COORDINATOR_H_
