"""Annotation registry: PS_RNG_WORDS / PS_RNG_CANONICAL / PS_REPORT_PATH.

Scans the token IR for marker macros (src/common/analysis_annotations.h)
and attaches each to the function declaration or definition that follows
it, tracking enclosing class bodies so in-class declarations get
qualified names (``Grr::PerturbValue``). Definitions additionally carry
their body token range, which is what the rng-order check walks.

The registry also provides the shared *consumption-site* scanner: given
a function body, it reports every place raw engine words are (or may
be) consumed — FillU64 calls, Rng convenience draws, std distribution
objects, direct engine access, and calls into other annotated
functions — with enough structure for the word-count cross-check.
"""

import re

from dataclasses import dataclass, field

from . import ir

MARKERS = ("PS_RNG_WORDS", "PS_RNG_CANONICAL", "PS_REPORT_PATH")

# Rng convenience methods: each consumes a stdlib-dependent, variable
# number of engine words, which is exactly what the canonical order
# forbids outside PS_RNG_CANONICAL definitions.
RAW_DRAW_METHODS = {
    "Uniform", "UniformInt", "Index", "Bernoulli", "Gaussian", "Laplace",
    "Discrete", "Shuffle", "Fork",
}

# Blessed batched primitives: fixed words by construction (the count is
# the second argument), allowed everywhere.
BLESSED_PRIMITIVES = {"FillU64"}

# std:: randomness constructs that must never appear in annotated code.
STD_RANDOM = {
    "uniform_int_distribution", "uniform_real_distribution",
    "bernoulli_distribution", "normal_distribution",
    "discrete_distribution", "poisson_distribution",
    "exponential_distribution", "mt19937", "mt19937_64", "minstd_rand",
    "random_device", "default_random_engine", "rand", "srand",
}

# Receiver-spelling fallback for resolving ambiguous annotated method
# names (e.g. PerturbValue exists on Grr, UnaryEncoding and Olh) when
# neither parameter types nor Create-locals identify the class. These
# are the repo's pervasive naming conventions; the self-test pins them.
RECEIVER_ALIASES = {
    "grr": "Grr",
    "oue": "UnaryEncoding",
    "ue": "UnaryEncoding",
    "olh": "Olh",
    "em": "ExponentialMechanism",
}


@dataclass
class Annotation:
    kind: str  # one of MARKERS
    words: str = ""  # raw expression text for PS_RNG_WORDS


@dataclass
class Function:
    name: str  # unqualified, e.g. "PerturbValue"
    qualified: str  # e.g. "Grr::PerturbValue" (== name if free)
    cls: str  # enclosing/explicit class, "" if free function
    path: str
    line: int
    annotations: list  # list[Annotation]
    params: str = ""  # raw parameter-list text
    body: tuple = None  # (start, end) token indices into the file, or None
    src: ir.SourceFile = None

    @property
    def declared_words(self):
        for a in self.annotations:
            if a.kind == "PS_RNG_WORDS":
                return a.words
        return None

    @property
    def numeric_words(self):
        w = self.declared_words
        if w is not None and re.fullmatch(r"\d+", w.strip()):
            return int(w.strip())
        return None

    def is_canonical(self):
        return any(a.kind in ("PS_RNG_CANONICAL", "PS_RNG_WORDS")
                   for a in self.annotations)

    def is_report_path(self):
        return any(a.kind == "PS_REPORT_PATH" for a in self.annotations)


@dataclass
class Registry:
    functions: list = field(default_factory=list)
    problems: list = field(default_factory=list)  # list[ir.Finding]

    def by_name(self, name):
        return [f for f in self.functions if f.name == name]

    def lookup(self, cls, name):
        for f in self.functions:
            if f.name == name and f.cls == cls:
                return f
        return None


def _match_close(tokens, i, open_t, close_t):
    """Index just past the token closing the bracket opened at i."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _class_context(tokens):
    """For each token index, the innermost class/struct name (or "")."""
    ctx = [""] * len(tokens)
    stack = []  # (depth_when_entered, name)
    depth = 0
    i = 0
    pending = None  # class name awaiting its '{'
    while i < len(tokens):
        t = tokens[i]
        if t.kind == ir.IDENT and t.text in ("class", "struct"):
            # `class NAME [final] [: bases] {` — skip forward declarations
            # (terminated by ';' before any '{').
            j = i + 1
            name = None
            while j < len(tokens) and tokens[j].kind == ir.IDENT:
                if tokens[j].text not in ("final", "alignas"):
                    name = tokens[j].text
                j += 1
            k = j
            while k < len(tokens) and tokens[k].text not in ("{", ";"):
                k += 1
            if name and k < len(tokens) and tokens[k].text == "{":
                pending = (name, k)
        if t.text == "{":
            if pending and pending[1] == i:
                stack.append((depth, pending[0]))
                pending = None
            depth += 1
        elif t.text == "}":
            depth -= 1
            if stack and stack[-1][0] == depth:
                stack.pop()
        ctx[i] = stack[-1][1] if stack else ""
        i += 1
    return ctx


def collect(src, registry):
    """Harvests annotated functions from one SourceFile into registry."""
    tokens = src.tokens
    ctx = _class_context(tokens)
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind != ir.IDENT or t.text not in MARKERS:
            i += 1
            continue
        anns = []
        start_line = t.line
        # Consume a run of consecutive markers.
        while i < n and tokens[i].kind == ir.IDENT and \
                tokens[i].text in MARKERS:
            kind = tokens[i].text
            words = ""
            i += 1
            if kind == "PS_RNG_WORDS":
                if i < n and tokens[i].text == "(":
                    close = _match_close(tokens, i, "(", ")")
                    words = " ".join(tok.text for tok in
                                     tokens[i + 1:close - 1])
                    i = close
                else:
                    registry.problems.append(ir.Finding(
                        "psa-rng-order", src.path, start_line,
                        "PS_RNG_WORDS marker without a (count) argument"))
            anns.append(Annotation(kind, words))
        fn = _parse_function_after(src, tokens, i, ctx, anns)
        if fn is None:
            registry.problems.append(ir.Finding(
                "psa-rng-order", src.path, start_line,
                "annotation marker is not followed by a function "
                "declaration or definition"))
        else:
            registry.functions.append(fn)
        i += 1


def _parse_function_after(src, tokens, i, ctx, anns):
    """Parses the function decl/def starting at token i, or None."""
    n = len(tokens)
    # Find the parameter-list '(' : the first '(' at angle depth 0 that
    # is preceded by an identifier (the function name). Stop early on
    # tokens that cannot belong to a declarator.
    j = i
    angle = 0
    name_idx = None
    while j < n:
        t = tokens[j].text
        if t == "<":
            angle += 1
        elif t == ">":
            angle = max(0, angle - 1)
        elif t == ">>":  # closes two template levels (vector<vector<T>>)
            angle = max(0, angle - 2)
        elif t == "(" and angle == 0:
            if j > i and tokens[j - 1].kind == ir.IDENT:
                name_idx = j - 1
                break
            return None
        elif t in ("{", "}", ";"):
            return None
        j += 1
    if name_idx is None:
        return None
    name = tokens[name_idx].text
    cls = ctx[name_idx]
    # Explicit qualification `Class :: Name (` wins over class context.
    if name_idx >= 2 and tokens[name_idx - 1].text == "::" and \
            tokens[name_idx - 2].kind == ir.IDENT:
        cls = tokens[name_idx - 2].text
    close = _match_close(tokens, j, "(", ")")
    params = " ".join(tok.text for tok in tokens[j + 1:close - 1])
    # Walk past cv/ref/noexcept/override/trailing-return to ';' or '{'.
    k = close
    body = None
    while k < n:
        t = tokens[k].text
        if t == ";":
            break
        if t == "{":
            body = (k, _match_close(tokens, k, "{", "}"))
            break
        if t == "(":  # noexcept(...) etc.
            k = _match_close(tokens, k, "(", ")")
            continue
        k += 1
    qualified = f"{cls}::{name}" if cls else name
    return Function(name=name, qualified=qualified, cls=cls, path=src.path,
                    line=tokens[name_idx].line, annotations=anns,
                    params=params, body=body, src=src)


# --- Consumption-site scanning -------------------------------------------


@dataclass
class Site:
    """One randomness-consumption site inside a function body."""

    line: int
    kind: str  # "fill", "raw", "std-random", "engine", "call"
    detail: str
    words: object = None  # int when statically known, else None
    callee: object = None  # Function for resolved "call" sites
    in_branch: bool = False  # inside if/for/while/switch/ternary
    idx: int = -1  # token index of the site (for span containment)


def _param_types(params_text):
    """{param_name: ClassName} for class-typed params, best effort."""
    out = {}
    for piece in params_text.split(","):
        toks = piece.replace("&", " ").replace("*", " ").split()
        toks = [t for t in toks if t not in ("const", "::")]
        if len(toks) >= 2:
            # Last token is the name; the type's last identifier is the
            # class (e.g. ["ldp", "Grr", "grr"] -> Grr grr).
            name = toks[-1]
            cls = toks[-2]
            if re.fullmatch(r"[A-Za-z_]\w*", name) and \
                    re.fullmatch(r"[A-Z]\w*", cls):
                out[name] = cls
    return out


def _local_create_types(tokens, body):
    """{local_name: ClassName} from `auto x = [ns ::] X::Create(...)`."""
    out = {}
    start, end = body
    for i in range(start, end - 4):
        if (tokens[i].kind == ir.IDENT and tokens[i + 1].text == "="
                and i >= 1):
            name = tokens[i].text
            j = i + 2
            # Skip leading namespace qualifiers: ldp :: Grr :: Create
            chain = []
            while j < end and tokens[j].kind == ir.IDENT:
                chain.append(tokens[j].text)
                if j + 1 < end and tokens[j + 1].text == "::":
                    j += 2
                else:
                    break
            if len(chain) >= 2 and chain[-1] == "Create":
                out[name] = chain[-2]
    return out


def _receiver_class(tokens, idx, param_types, local_types, own_class):
    """Class of the receiver for the method call at token idx (name)."""
    i = idx - 1
    if i < 0 or tokens[i].text not in (".", "->"):
        # Unqualified call: resolve against the enclosing class first.
        if idx >= 2 and tokens[idx - 1].text == "::" and \
                tokens[idx - 2].kind == ir.IDENT:
            return tokens[idx - 2].text
        return own_class or None
    j = i - 1
    # Strip one call suffix: `ctx . grr ( ) -> Method` -> receiver `grr`.
    if j >= 0 and tokens[j].text == ")":
        depth = 0
        while j >= 0:
            if tokens[j].text == ")":
                depth += 1
            elif tokens[j].text == "(":
                depth -= 1
                if depth == 0:
                    j -= 1
                    break
            j -= 1
    if j < 0 or tokens[j].kind != ir.IDENT:
        return None
    recv = tokens[j].text
    if recv in param_types:
        return param_types[recv]
    if recv in local_types:
        return local_types[recv]
    base = recv.rstrip("_")
    if base in RECEIVER_ALIASES:
        return RECEIVER_ALIASES[base]
    return None


def scan_sites(fn, registry):
    """All randomness-consumption sites in fn's body (definition only)."""
    if fn.body is None:
        return []
    tokens = fn.src.tokens
    start, end = fn.body
    param_types = _param_types(fn.params)
    local_types = _local_create_types(tokens, fn.body)
    annotated_names = {f.name for f in registry.functions}
    sites = []

    # Branch tracking: token ranges covered by if/for/while/switch
    # bodies or conditions, so the fixed-word check can reject
    # conditional consumption.
    branch = [False] * (end - start)
    i = start
    while i < end:
        t = tokens[i]
        if t.kind == ir.IDENT and t.text in ("if", "for", "while",
                                             "switch", "do"):
            j = i + 1
            if j < end and tokens[j].text == "(":
                j = _match_close(tokens, j, "(", ")")
            stmt_end = j
            if j < end and tokens[j].text == "{":
                stmt_end = _match_close(tokens, j, "{", "}")
            else:  # single statement
                while stmt_end < end and tokens[stmt_end].text != ";":
                    stmt_end += 1
            for k in range(i, min(stmt_end, end)):
                branch[k - start] = True
        elif t.text == "?":
            branch[i - start] = True
        i += 1

    i = start
    while i < end:
        t = tokens[i]
        if t.kind != ir.IDENT:
            i += 1
            continue
        in_branch = branch[i - start]
        nxt = tokens[i + 1].text if i + 1 < end else ""
        if t.text in STD_RANDOM:
            sites.append(Site(t.line, "std-random", t.text,
                              in_branch=in_branch, idx=i))
        elif t.text in BLESSED_PRIMITIVES and nxt == "(":
            count = _second_arg_literal(tokens, i + 1, end)
            sites.append(Site(t.line, "fill", f"{t.text}(...)",
                              words=count, in_branch=in_branch, idx=i))
        elif t.text in RAW_DRAW_METHODS and nxt == "(" and i > start and \
                tokens[i - 1].text in (".", "->"):
            sites.append(Site(t.line, "raw", f"{t.text}()",
                              in_branch=in_branch, idx=i))
        elif t.text == "engine" and nxt == "(" and i > start and \
                tokens[i - 1].text in (".", "->"):
            sites.append(Site(t.line, "engine", "direct engine() access",
                              in_branch=in_branch, idx=i))
        elif t.text in annotated_names and nxt == "(":
            cls = _receiver_class(tokens, i, param_types, local_types,
                                  fn.cls)
            callee = registry.lookup(cls, t.text) if cls else None
            if callee is None:
                cands = registry.by_name(t.text)
                # Unambiguous by name alone (treat decl+def of the same
                # qualified function as one candidate).
                quals = {c.qualified for c in cands}
                if len(quals) == 1:
                    callee = cands[0]
            if callee is not None and callee.qualified == fn.qualified:
                pass  # self-recursion: not a consumption edge
            else:
                words = callee.numeric_words if callee else None
                sites.append(Site(t.line, "call", t.text, words=words,
                                  callee=callee, in_branch=in_branch,
                                  idx=i))
        i += 1
    return sites


def _second_arg_literal(tokens, open_idx, end):
    """Integer literal second argument of the call at open_idx, or None."""
    close = _match_close(tokens, open_idx, "(", ")")
    depth = 0
    args = [[]]
    for k in range(open_idx + 1, min(close - 1, end)):
        t = tokens[k].text
        if t in "([{":
            depth += 1
        elif t in ")]}":
            depth -= 1
        if t == "," and depth == 0:
            args.append([])
        else:
            args[-1].append(tokens[k])
    if len(args) != 2:
        return None
    arg = [t for t in args[1]]
    if len(arg) == 1 and arg[0].kind == ir.NUMBER and \
            re.fullmatch(r"\d+", arg[0].text):
        return int(arg[0].text)
    return None
