/// \file
/// SoA candidate table for the per-report answer hot path. A collection
/// round broadcasts ONE candidate list that millions of users match
/// against, so the table is built once per round: candidates are grouped
/// by equal length and each group's symbols are transposed into a
/// contiguous, lane-padded double plane (`plane[j * padded + c]` =
/// symbol j of the group's c-th candidate). One user's word then runs
/// the two-row DTW/SED dynamic program against `simd::kDoubleLanes`
/// candidates at once — the DP's sequential j-dependency stays inside
/// each lane, and lanes are independent candidates, so every lane
/// executes exactly the scalar kernel's operation sequence.
///
/// Contract: MatchInto/Closest are bit-identical to the scalar reference
/// path (`MatchDistances` over `dist::SequenceDistance`) at every SIMD
/// level, including first-index tie-breaking in Closest. The scalar
/// kernels in distance.cc are the reference; tests/distance_simd_test.cc
/// and fuzz/fuzz_candidate_table.cc enforce the match. Metrics without a
/// vectorized kernel (Euclidean/Hausdorff ablations) transparently fall
/// back to the per-candidate scalar loop inside the same entry points.

#ifndef PRIVSHAPE_DISTANCE_CANDIDATE_TABLE_H_
#define PRIVSHAPE_DISTANCE_CANDIDATE_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/analysis_annotations.h"
#include "distance/distance.h"
#include "series/sequence.h"

namespace privshape::dist {

/// Caller-owned scratch for the table kernels: the two lane-blocked DP
/// rows, a distance buffer for Closest, and a scalar-kernel scratch for
/// the fallback metrics. One instance per worker thread; grown
/// monotonically, so steady-state matching allocates nothing.
struct TableScratch {
  std::vector<double> prev;    ///< (m + 1) * kDoubleLanes DP row
  std::vector<double> curr;    ///< (m + 1) * kDoubleLanes DP row
  std::vector<double> dists;   ///< per-candidate distances for Closest
  DtwScratch dtw;              ///< scalar fallback (non-DP metrics)
};

/// Immutable SoA view of one round's candidate list. Move-only by being
/// cheap to move; copying is allowed (used when a round context is
/// rebuilt) but never happens per report.
class CandidateTable {
 public:
  CandidateTable() = default;

  /// Groups the candidates by length into padded symbol planes. The
  /// original list (and its indexing) is retained: every result of
  /// MatchInto/Closest is reported in original candidate order.
  static CandidateTable Build(std::vector<Sequence> candidates);

  const std::vector<Sequence>& candidates() const { return candidates_; }
  size_t size() const { return candidates_.size(); }
  bool empty() const { return candidates_.empty(); }

  /// Fills (*out)[i] with distance(word, candidate i) for every i, in
  /// original candidate order; `out` is resized. With `prefix_compare`,
  /// a word longer than a candidate is compared against its equally long
  /// prefix (Lemma 1's prefix-frequency reading) — candidates in one
  /// length group share that prefix, which is what makes the grouped
  /// layout natural. Bit-identical to the scalar reference path.
  /// `scratch` may be nullptr (a local scratch is used).
  PS_REPORT_PATH
  void MatchInto(SymbolView word, const SequenceDistance& distance,
                 bool prefix_compare, TableScratch* scratch,
                 std::vector<double>* out) const;

  /// Index of the candidate closest to `word` (full-word comparison,
  /// ties to the first original index) — the same argmin, including
  /// tie-breaking, as the early-abandoning scalar ClosestCandidate.
  /// Returns 0 on an empty table. `scratch` may be nullptr.
  PS_REPORT_PATH
  size_t Closest(SymbolView word, const SequenceDistance& distance,
                 TableScratch* scratch) const;

 private:
  /// One equal-length stripe of the table. `padded` is `count` rounded
  /// up to the lane width; padding lanes hold symbol 0.0 and their DP
  /// results are computed and discarded (costs stay finite, so no lane
  /// can poison another — there is no cross-lane arithmetic at all).
  struct Group {
    size_t length;        ///< candidate length m (the DP's column count)
    size_t count;         ///< real candidates in this group
    size_t padded;        ///< count rounded up to simd::kDoubleLanes
    size_t plane_offset;  ///< start of this group in symbols_
    size_t index_offset;  ///< start of this group in original_index_
  };

  std::vector<Sequence> candidates_;     ///< original order, original data
  std::vector<Group> groups_;            ///< ascending by length
  std::vector<double> symbols_;          ///< concatenated padded planes
  std::vector<uint32_t> original_index_; ///< group slot -> original index
};

}  // namespace privshape::dist

#endif  // PRIVSHAPE_DISTANCE_CANDIDATE_TABLE_H_
