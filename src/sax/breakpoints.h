#ifndef PRIVSHAPE_SAX_BREAKPOINTS_H_
#define PRIVSHAPE_SAX_BREAKPOINTS_H_

#include <vector>

#include "common/status.h"

namespace privshape::sax {

/// Returns the t-1 SAX breakpoints for alphabet size t: the quantiles that
/// split the standard normal into t equiprobable bands (Lin et al., DMKD'07).
/// For t = 3 this yields {-0.43, 0.43} (the lookup table in the paper's
/// Fig. 3). Valid for 2 <= t <= 26.
Result<std::vector<double>> Breakpoints(int t);

/// Representative numeric level for each symbol: the conditional mean
/// E[X | X in band] of a standard normal within the symbol's band. Used to
/// reconstruct a numeric silhouette from a SAX word when comparing against
/// numeric ground truth (Tables III/IV) and when plotting shapes (Figs.
/// 8/10/12).
Result<std::vector<double>> SymbolLevels(int t);

}  // namespace privshape::sax

#endif  // PRIVSHAPE_SAX_BREAKPOINTS_H_
