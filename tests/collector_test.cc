#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "collector/client_fleet.h"
#include "collector/round_coordinator.h"
#include "collector/sharded_aggregator.h"
#include "common/rng.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "core/privshape.h"
#include "protocol/messages.h"

namespace privshape {
namespace {

using collector::ClientFleet;
using collector::CollectorMetrics;
using collector::CollectorOptions;
using collector::RoundCoordinator;
using collector::ShardedAggregator;
using collector::StageSpec;
using core::MechanismConfig;
using proto::EncodeReport;
using proto::Report;
using proto::ReportKind;

/// Same planted mixture as the core PrivShape tests: 60% "abc",
/// 30% "cba", 10% "bab".
Sequence PlantedWord(size_t user, uint64_t seed = 1) {
  Rng rng(DeriveSeed(seed, user));
  double u = rng.Uniform();
  if (u < 0.6) return {0, 1, 2};
  if (u < 0.9) return {2, 1, 0};
  return {1, 0, 1};
}

MechanismConfig TestConfig() {
  MechanismConfig config;
  config.epsilon = 6.0;
  config.t = 3;
  config.k = 2;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 6;
  config.metric = dist::Metric::kSed;
  config.seed = 7;
  return config;
}

ClientFleet PlantedFleet(size_t n, const MechanismConfig& config) {
  return ClientFleet(
      n, [](size_t user) { return PlantedWord(user); }, config.metric,
      config.seed);
}

void ExpectSameResult(const core::MechanismResult& a,
                      const core::MechanismResult& b) {
  EXPECT_EQ(a.frequent_length, b.frequent_length);
  ASSERT_EQ(a.shapes.size(), b.shapes.size());
  for (size_t i = 0; i < a.shapes.size(); ++i) {
    EXPECT_EQ(a.shapes[i].shape, b.shapes[i].shape);
    // Bit-exact: both paths share per-user seeds, integer aggregation,
    // and the debias formula.
    EXPECT_EQ(a.shapes[i].frequency, b.shapes[i].frequency);
  }
  ASSERT_EQ(a.refined_pool.size(), b.refined_pool.size());
  for (size_t i = 0; i < a.refined_pool.size(); ++i) {
    EXPECT_EQ(a.refined_pool[i].shape, b.refined_pool[i].shape);
    EXPECT_EQ(a.refined_pool[i].frequency, b.refined_pool[i].frequency);
  }
  EXPECT_EQ(a.accountant.charges(), b.accountant.charges());
}

// --- The determinism contract -------------------------------------------

TEST(CollectorDeterminismTest, MatchesCorePipelineForAnyShardCount) {
  MechanismConfig config = TestConfig();
  const size_t kUsers = 3000;
  ClientFleet fleet = PlantedFleet(kUsers, config);

  core::PrivShape reference(config);
  auto expected = reference.Run(fleet.MaterializeWords());
  ASSERT_TRUE(expected.ok()) << expected.status();

  ThreadPool pool(4);
  for (size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    CollectorOptions options;
    options.num_shards = shards;
    RoundCoordinator coordinator(config, options, &pool);
    auto got = coordinator.Collect(fleet);
    ASSERT_TRUE(got.ok()) << got.status() << " shards=" << shards;
    ExpectSameResult(*expected, *got);
  }
}

TEST(CollectorDeterminismTest, IndependentOfThreadCountAndBatchSize) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = PlantedFleet(2000, config);

  ThreadPool one(1);
  CollectorOptions options;
  options.num_shards = 8;
  options.batch_size = 1;
  auto a = RoundCoordinator(config, options, &one).Collect(fleet);
  ASSERT_TRUE(a.ok()) << a.status();

  ThreadPool many(8);
  options.batch_size = 1024;
  auto b = RoundCoordinator(config, options, &many).Collect(fleet);
  ASSERT_TRUE(b.ok()) << b.status();
  ExpectSameResult(*a, *b);

  // No pool at all (inline execution) is also identical.
  auto c = RoundCoordinator(config, options, nullptr).Collect(fleet);
  ASSERT_TRUE(c.ok()) << c.status();
  ExpectSameResult(*a, *c);
}

TEST(CollectorDeterminismTest, RecoversPlantedShape) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = PlantedFleet(6000, config);
  ThreadPool pool(2);
  RoundCoordinator coordinator(config, {}, &pool);
  auto result = coordinator.Collect(fleet);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->frequent_length, 3);
  ASSERT_GE(result->shapes.size(), 1u);
  EXPECT_EQ(SequenceToString(result->shapes[0].shape), "abc");
}

// --- Coordinator behavior -----------------------------------------------

TEST(RoundCoordinatorTest, EmptyFleetFails) {
  ThreadPool pool(1);
  RoundCoordinator coordinator(TestConfig(), {}, &pool);
  ClientFleet fleet(0, [](size_t) { return Sequence{0}; },
                    dist::Metric::kSed, 1);
  EXPECT_FALSE(coordinator.Collect(fleet).ok());
}

TEST(RoundCoordinatorTest, ClassificationRequiresLabeledFleet) {
  MechanismConfig config = TestConfig();
  config.num_classes = 2;
  ThreadPool pool(1);
  RoundCoordinator coordinator(config, {}, &pool);
  ClientFleet fleet = PlantedFleet(100, config);  // no LabelFn
  auto result = coordinator.Collect(fleet);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RoundCoordinatorTest, MetricsCoverEveryRound) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = PlantedFleet(2000, config);
  ThreadPool pool(2);
  RoundCoordinator coordinator(config, {}, &pool);
  CollectorMetrics metrics;
  auto result = coordinator.Collect(fleet, &metrics);
  ASSERT_TRUE(result.ok()) << result.status();

  ASSERT_GE(metrics.rounds.size(), 3u);
  EXPECT_EQ(metrics.rounds.front().stage, "Pa");
  EXPECT_EQ(metrics.rounds.back().stage, "Pd");
  size_t users_covered = 0;
  for (const auto& round : metrics.rounds) {
    EXPECT_EQ(round.rejected, 0u) << round.stage;
    EXPECT_EQ(round.client_errors, 0u) << round.stage;
    EXPECT_EQ(round.accepted, round.users) << round.stage;
    EXPECT_GT(round.bytes_up, 0u) << round.stage;
    // Every stage broadcasts a real encoded request — P_a and P_b used to
    // report bytes_down = 0 because theirs were never encoded.
    EXPECT_GT(round.bytes_down, 0u) << round.stage;
    EXPECT_GE(round.bytes_down, round.users) << round.stage;
    users_covered += round.users;
  }
  // Every user answers exactly one round (parallel composition).
  EXPECT_EQ(users_covered, metrics.num_users);
  EXPECT_EQ(metrics.TotalReports(), metrics.num_users);
  EXPECT_EQ(metrics.TotalRejected(), 0u);

  std::string json = metrics.ToJson().Dump(2);
  EXPECT_NE(json.find("\"stage\": \"Pa\""), std::string::npos);
  // Throughput is labeled honestly: ingest capacity vs useful work.
  EXPECT_NE(json.find("ingested_per_sec"), std::string::npos);
  EXPECT_NE(json.find("accepted_per_sec"), std::string::npos);
  EXPECT_EQ(json.find("reports_per_sec"), std::string::npos);
}

// --- ClientFleet --------------------------------------------------------

TEST(ClientFleetTest, SessionsAreReproducible) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = PlantedFleet(50, config);
  for (size_t user : {size_t{0}, size_t{7}, size_t{49}}) {
    auto a = fleet.MakeSession(user).AnswerLengthRequest(1, 6, 4.0);
    auto b = fleet.MakeSession(user).AnswerLengthRequest(1, 6, 4.0);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "user " << user;
  }
}

TEST(ClientFleetTest, FromWordsTilesTheList) {
  std::vector<Sequence> words = {{0, 1}, {1, 2}};
  ClientFleet fleet =
      ClientFleet::FromWords(words, 5, dist::Metric::kSed, 3);
  EXPECT_EQ(fleet.num_users(), 5u);
  EXPECT_EQ(fleet.WordFor(0), (Sequence{0, 1}));
  EXPECT_EQ(fleet.WordFor(1), (Sequence{1, 2}));
  EXPECT_EQ(fleet.WordFor(4), (Sequence{0, 1}));
  EXPECT_EQ(fleet.MaterializeWords().size(), 5u);
}

// --- ShardedAggregator --------------------------------------------------

StageSpec LengthSpec(size_t domain = 5, double epsilon = 2.0) {
  StageSpec spec;
  spec.kind = ReportKind::kLength;
  spec.domain = domain;
  spec.epsilon = epsilon;
  return spec;
}

std::string LengthReport(uint64_t value) {
  Report report;
  report.kind = ReportKind::kLength;
  report.value = value;
  return EncodeReport(report);
}

TEST(ShardedAggregatorTest, MergeIsExactAcrossAnyPartition) {
  std::vector<std::string> reports;
  for (uint64_t v = 0; v < 100; ++v) reports.push_back(LengthReport(v % 5));

  ShardedAggregator single(LengthSpec(), 1);
  single.ConsumeBatch(0, reports);

  ShardedAggregator sharded(LengthSpec(), 7);
  // Deal the same reports round-robin across 7 shards in small batches.
  std::vector<std::vector<std::string>> lanes(7);
  for (size_t i = 0; i < reports.size(); ++i) {
    lanes[i % 7].push_back(reports[i]);
  }
  for (size_t shard = 0; shard < 7; ++shard) {
    Span<const std::string> lane(lanes[shard]);
    for (size_t off = 0; off < lane.size(); off += 3) {
      sharded.ConsumeBatch(shard, lane.Sub(off, 3));
    }
  }

  EXPECT_EQ(single.accepted(), sharded.accepted());
  EXPECT_EQ(single.MergedLevel(0).raw_counts(),
            sharded.MergedLevel(0).raw_counts());
  // Debiased estimates are byte-identical, not just close.
  EXPECT_EQ(single.DebiasedCounts(0), sharded.DebiasedCounts(0));
}

TEST(ShardedAggregatorTest, RejectsMalformedAndOutOfWindow) {
  ShardedAggregator agg(LengthSpec(), 2);
  Report wrong_kind;
  wrong_kind.kind = ReportKind::kSelection;
  Report bad_level;
  bad_level.kind = ReportKind::kLength;
  bad_level.level = 3;  // window is [0, 1)
  std::vector<std::string> batch = {
      LengthReport(2), "garbage", EncodeReport(wrong_kind),
      EncodeReport(bad_level), LengthReport(99)};  // 99 out of domain
  agg.ConsumeBatch(1, batch);
  EXPECT_EQ(agg.accepted(), 1u);
  EXPECT_EQ(agg.rejected(), 4u);
  EXPECT_GT(agg.bytes_ingested(), 0u);
}

TEST(ShardedAggregatorTest, RoutesLevelsWithinWindow) {
  StageSpec spec;
  spec.kind = ReportKind::kSubShape;
  spec.domain = 7;
  spec.epsilon = 1.0;
  spec.min_level = 1;
  spec.num_levels = 3;
  ShardedAggregator agg(spec, 2);
  std::vector<std::string> batch;
  for (uint64_t level = 1; level <= 3; ++level) {
    Report report;
    report.kind = ReportKind::kSubShape;
    report.level = level;
    report.value = level;  // distinct value per level
    batch.push_back(EncodeReport(report));
  }
  agg.ConsumeBatch(0, batch);
  for (size_t bucket = 0; bucket < 3; ++bucket) {
    auto merged = agg.MergedLevel(bucket);
    EXPECT_EQ(merged.accepted(), 1u) << bucket;
    EXPECT_EQ(merged.raw_counts()[bucket + 1], 1u) << bucket;
  }
}

}  // namespace
}  // namespace privshape
