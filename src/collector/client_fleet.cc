#include "collector/client_fleet.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "series/generators.h"

namespace privshape::collector {

ClientFleet::WordFn ClientFleet::TiledWords(std::vector<Sequence> words) {
  auto shared =
      std::make_shared<const std::vector<Sequence>>(std::move(words));
  return [shared](size_t user) -> Sequence {
    if (shared->empty()) return Sequence{};
    return (*shared)[user % shared->size()];
  };
}

ClientFleet ClientFleet::FromWords(std::vector<Sequence> words,
                                   size_t num_users, dist::Metric metric,
                                   uint64_t seed) {
  return ClientFleet(num_users, TiledWords(std::move(words)), metric, seed);
}

proto::ClientSession ClientFleet::MakeSession(size_t user) const {
  return proto::ClientSession(word_fn_(user), metric_,
                              DeriveSeed(seed_, user));
}

std::vector<Sequence> ClientFleet::MaterializeWords() const {
  std::vector<Sequence> words;
  words.reserve(num_users_);
  for (size_t user = 0; user < num_users_; ++user) {
    words.push_back(word_fn_(user));
  }
  return words;
}

Result<ClientFleet::WordFn> GeneratedWordSource(const std::string& dataset,
                                                uint64_t seed) {
  if (dataset != "trace" && dataset != "symbols") {
    return Status::InvalidArgument(
        "unknown generated dataset (want trace|symbols): " + dataset);
  }
  bool symbols = dataset == "symbols";
  // Separate derivation base so data synthesis never shares a stream with
  // the per-user privacy randomness (which uses DeriveSeed(seed, u)).
  uint64_t data_seed = DeriveSeed(seed, 0x5eedda7aULL);
  core::TransformOptions transform;
  transform.t = symbols ? 6 : 4;
  transform.w = symbols ? 25 : 10;
  size_t classes = static_cast<size_t>(
      symbols ? series::kSymbolsClasses : series::kTraceClasses);
  return ClientFleet::WordFn(
      [symbols, data_seed, transform, classes](size_t user) -> Sequence {
        series::GeneratorOptions gopts;
        Rng rng(DeriveSeed(data_seed, user));
        int label = static_cast<int>(user % classes);
        series::TimeSeries inst =
            symbols ? series::MakeSymbolsInstance(label, gopts, &rng)
                    : series::MakeTraceInstance(label, gopts, &rng);
        auto word = core::TransformSeries(inst.values, transform);
        if (!word.ok()) {
          // Unreachable with the shipped generators (instances are far
          // longer than the SAX window); abort loudly rather than serve
          // placeholder words that would "succeed" end to end.
          PS_LOG(kError) << "generated instance for user " << user
                         << " untransformable: "
                         << word.status().ToString();
          std::abort();
        }
        return std::move(*word);
      });
}

}  // namespace privshape::collector
