// Fixture: raw epsilon literals at mechanism construction sites —
// budget the accountant never sees.
#include "ldp/exponential.h"
#include "ldp/grr.h"
#include "ldp/unary_encoding.h"

namespace privshape::core {

void BadLiteralEpsilons(size_t domain) {
  auto grr = ldp::Grr::Create(domain, 1.0);
  auto em = ldp::ExponentialMechanism::Create(0.5);
  auto oue = ldp::UnaryEncoding::Create(
      domain, (2.0), ldp::UnaryEncoding::Variant::kOptimized);
  (void)grr;
  (void)em;
  (void)oue;
}

}  // namespace privshape::core
