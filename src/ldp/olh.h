#ifndef PRIVSHAPE_LDP_OLH_H_
#define PRIVSHAPE_LDP_OLH_H_

#include <vector>

#include "common/analysis_annotations.h"
#include "ldp/frequency_oracle.h"

namespace privshape::ldp {

/// Optimal Local Hashing (Wang et al., USENIX Security'17).
///
/// Each user hashes their value into g = floor(e^eps) + 1 buckets with a
/// per-user seed, then runs GRR over the g buckets and reports
/// (seed, bucket). Matches GRR's accuracy on huge domains while keeping the
/// per-user report small. Included because the paper's oracle slot ("any
/// frequency estimation mechanism") is pluggable; the length estimator can
/// be configured to use it.
class Olh : public FrequencyOracle {
 public:
  static Result<Olh> Create(size_t domain_size, double epsilon);

  /// The (seed, perturbed bucket) pair a user would report; for tests.
  PS_RNG_CANONICAL
  std::pair<uint64_t, size_t> PerturbValue(size_t value, Rng* rng) const;

  /// Hash of `value` under `seed` into [0, g).
  size_t HashToBucket(size_t value, uint64_t seed) const;

  PS_RNG_CANONICAL
  Status SubmitUser(size_t value, Rng* rng) override;
  std::vector<double> EstimateCounts() const override;
  void Reset() override;

  size_t domain_size() const override { return d_; }
  double epsilon() const override { return epsilon_; }
  size_t num_reports() const override { return reports_.size(); }
  size_t num_buckets() const { return g_; }

 private:
  Olh(size_t d, double epsilon, size_t g, double p)
      : d_(d), epsilon_(epsilon), g_(g), p_(p) {}

  size_t d_;
  double epsilon_;
  size_t g_;
  double p_;  // GRR keep-probability over g buckets
  std::vector<std::pair<uint64_t, size_t>> reports_;
};

}  // namespace privshape::ldp

#endif  // PRIVSHAPE_LDP_OLH_H_
