#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

#include "common/mutex.h"

namespace privshape {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
/// Serializes whole lines onto stderr (no guarded state — the stream
/// itself is the shared resource).
Mutex g_log_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// ISO-8601 UTC with millisecond precision: 2026-08-08T12:34:56.789Z.
std::string IsoTimestamp() {
  using std::chrono::system_clock;
  auto now = system_clock::now();
  std::time_t seconds = system_clock::to_time_t(now);
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                now.time_since_epoch())
                .count() %
            1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, std::string_view component,
                const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::string line = IsoTimestamp();
  line += ' ';
  line += LevelName(level);
  if (!component.empty()) {
    line += " [";
    line.append(component.data(), component.size());
    line += ']';
  }
  line += ' ';
  line += message;
  MutexLock lock(&g_log_mu);
  std::cerr << line << "\n";
}

}  // namespace privshape
