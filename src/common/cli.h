#ifndef PRIVSHAPE_COMMON_CLI_H_
#define PRIVSHAPE_COMMON_CLI_H_

#include <map>
#include <string>

namespace privshape {

/// Tiny flag parser for the bench/example binaries.
///
/// Accepts `--name=value` and `--name value`. Unrecognized positional
/// arguments are ignored. For every lookup, an environment variable
/// PRIVSHAPE_<NAME> (upper-cased) acts as fallback before the default,
/// so the whole harness can be scaled with e.g. PRIVSHAPE_TRIALS=50.
class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  /// Returns the flag (or env var) value as int/double/string, else `def`.
  int GetInt(const std::string& name, int def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name,
                        const std::string& def) const;
  bool Has(const std::string& name) const;

 private:
  /// Flag value, or env fallback, or empty optional semantics via bool.
  bool Lookup(const std::string& name, std::string* out) const;

  std::map<std::string, std::string> flags_;
};

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_CLI_H_
