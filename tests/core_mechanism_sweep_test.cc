// Parameterized structural sweeps over both mechanisms: for every (eps,
// metric, t, k, c) combination the outputs must satisfy the mechanism's
// invariants — shape count, alphabet bounds, compression invariant, budget
// audit — and at generous budgets the planted shape must be recovered.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/baseline.h"
#include "core/privshape.h"
#include "series/sequence.h"

namespace privshape {
namespace {

std::vector<Sequence> PlantedSequences(size_t n, int t, uint64_t seed) {
  // Majority shape cycles 0,1,2,...; minority shapes are reversed/random.
  std::vector<Sequence> out;
  Rng rng(seed);
  Sequence majority, minority;
  for (int i = 0; i < 4; ++i) {
    majority.push_back(static_cast<Symbol>(i % t));
    minority.push_back(static_cast<Symbol>((t - 1 - i % t) % t));
  }
  // Guard against accidental adjacent repeats for small t.
  auto dedup = [](Sequence s) {
    Sequence c;
    for (Symbol x : s) {
      if (c.empty() || c.back() != x) c.push_back(x);
    }
    return c;
  };
  majority = dedup(majority);
  minority = dedup(minority);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(rng.Uniform() < 0.7 ? majority : minority);
  }
  return out;
}

struct SweepCase {
  double epsilon;
  dist::Metric metric;
  int t;
  int k;
  int c;
};

class MechanismSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MechanismSweepTest, PrivShapeInvariantsHold) {
  const SweepCase& param = GetParam();
  core::MechanismConfig config;
  config.epsilon = param.epsilon;
  config.t = param.t;
  config.k = param.k;
  config.c = param.c;
  config.ell_high = 8;
  config.metric = param.metric;
  config.seed = 99;
  core::PrivShape mech(config);
  auto sequences = PlantedSequences(3000, param.t, 17);
  auto result = mech.Run(sequences);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_GE(result->shapes.size(), 1u);
  EXPECT_LE(result->shapes.size(), static_cast<size_t>(param.k));
  EXPECT_LE(result->refined_pool.size(),
            static_cast<size_t>(param.c * param.k));
  for (const auto& shape : result->shapes) {
    EXPECT_EQ(static_cast<int>(shape.shape.size()),
              result->frequent_length);
    for (size_t i = 0; i < shape.shape.size(); ++i) {
      EXPECT_LT(static_cast<int>(shape.shape[i]), param.t);
      if (i > 0) {
        EXPECT_NE(shape.shape[i], shape.shape[i - 1]);
      }
    }
  }
  EXPECT_LE(result->accountant.UserLevelEpsilon(),
            param.epsilon + 1e-9);
}

TEST_P(MechanismSweepTest, BaselineInvariantsHold) {
  const SweepCase& param = GetParam();
  core::MechanismConfig config;
  config.epsilon = param.epsilon;
  config.t = param.t;
  config.k = param.k;
  config.c = param.c;
  config.ell_high = 8;
  config.metric = param.metric;
  config.baseline_threshold = 5.0;
  config.seed = 99;
  core::BaselineMechanism mech(config);
  auto sequences = PlantedSequences(3000, param.t, 18);
  auto result = mech.Run(sequences);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->shapes.size(), 1u);
  EXPECT_LE(result->shapes.size(), static_cast<size_t>(param.k));
  for (const auto& shape : result->shapes) {
    for (size_t i = 1; i < shape.shape.size(); ++i) {
      EXPECT_NE(shape.shape[i], shape.shape[i - 1]);
    }
  }
  EXPECT_LE(result->accountant.UserLevelEpsilon(),
            param.epsilon + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MechanismSweepTest,
    ::testing::Values(SweepCase{0.5, dist::Metric::kSed, 3, 2, 2},
                      SweepCase{1.0, dist::Metric::kDtw, 4, 2, 3},
                      SweepCase{2.0, dist::Metric::kEuclidean, 4, 3, 2},
                      SweepCase{4.0, dist::Metric::kSed, 5, 2, 3},
                      SweepCase{4.0, dist::Metric::kDtw, 3, 3, 3},
                      SweepCase{8.0, dist::Metric::kSed, 4, 2, 2},
                      SweepCase{8.0, dist::Metric::kHausdorff, 4, 2, 3}));

class RecoveryTest : public ::testing::TestWithParam<dist::Metric> {};

TEST_P(RecoveryTest, GenerousBudgetRecoversMajorityShape) {
  core::MechanismConfig config;
  config.epsilon = 8.0;
  config.t = 4;
  config.k = 2;
  config.c = 3;
  config.ell_high = 8;
  config.metric = GetParam();
  config.seed = 4;
  core::PrivShape mech(config);
  auto sequences = PlantedSequences(6000, 4, 21);
  auto result = mech.Run(sequences);
  ASSERT_TRUE(result.ok()) << result.status();
  // Majority shape for t=4 is "abcd".
  EXPECT_EQ(SequenceToString(result->shapes[0].shape), "abcd")
      << dist::MetricName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Metrics, RecoveryTest,
                         ::testing::Values(dist::Metric::kSed,
                                           dist::Metric::kDtw,
                                           dist::Metric::kEuclidean));

}  // namespace
}  // namespace privshape
