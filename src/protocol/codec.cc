#include "protocol/codec.h"

#include <cstring>

namespace privshape::proto {

void Encoder::PutVarint(uint64_t value) {
  while (value >= 0x80) {
    out_->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out_->push_back(static_cast<char>(value));
}

void Encoder::PutDouble(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out_->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void Encoder::PutBytes(const std::vector<uint8_t>& bytes) {
  PutVarint(bytes.size());
  for (uint8_t b : bytes) out_->push_back(static_cast<char>(b));
}

void Encoder::PutString(std::string_view bytes) {
  PutVarint(bytes.size());
  out_->append(bytes.data(), bytes.size());
}

Result<uint64_t> Decoder::GetVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= view_.size()) {
      return Status::OutOfRange("truncated varint");
    }
    if (shift > 63) {
      return Status::InvalidArgument("varint overflow");
    }
    uint8_t byte = static_cast<uint8_t>(view_[pos_++]);
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

Result<double> Decoder::GetDouble() {
  if (pos_ + 8 > view_.size()) {
    return Status::OutOfRange("truncated double");
  }
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(view_[pos_ + static_cast<size_t>(i)]))
            << (8 * i);
  }
  pos_ += 8;
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::vector<uint8_t>> Decoder::GetBytes() {
  auto len = GetVarint();
  if (!len.ok()) return len.status();
  // Compare against the remainder, never `pos_ + *len`: a corrupt length
  // varint near 2^64 would wrap that sum past the check and the reserve
  // below would abort the process instead of returning a Status.
  if (*len > view_.size() - pos_) {
    return Status::OutOfRange("truncated byte string");
  }
  std::vector<uint8_t> out;
  out.reserve(*len);
  for (uint64_t i = 0; i < *len; ++i) {
    out.push_back(static_cast<uint8_t>(view_[pos_++]));
  }
  return out;
}

Result<std::string_view> Decoder::GetStringView() {
  auto len = GetVarint();
  if (!len.ok()) return len.status();
  // Same wrap-safe comparison as GetBytes: never compute pos_ + *len.
  if (*len > view_.size() - pos_) {
    return Status::OutOfRange("truncated byte string");
  }
  std::string_view out = view_.substr(pos_, *len);
  pos_ += *len;
  return out;
}

}  // namespace privshape::proto
