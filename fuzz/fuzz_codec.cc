/// \file
/// Fuzz target: the proto codec layer — primitive decode loops, every
/// request/report decoder, and ReportBatch reassembly from hostile
/// wire views. This is the surface the drainer threads run on every
/// uploaded batch, so "clean Status, never a crash or oversized
/// allocation" is a serving-availability invariant, not a nicety.
///
/// The first input byte selects a decoder; the rest is the buffer.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "protocol/codec.h"
#include "protocol/messages.h"

namespace proto = privshape::proto;

namespace {

/// Walks primitives until the decoder errors or the buffer ends; the
/// walk order is data-driven so varint/double/bytes interleavings vary.
void WalkPrimitives(std::string_view buffer) {
  proto::Decoder dec(buffer);
  size_t step = 0;
  while (!dec.AtEnd()) {
    bool ok = false;
    switch (step++ % 4) {
      case 0:
        ok = dec.GetVarint().ok();
        break;
      case 1:
        ok = dec.GetDouble().ok();
        break;
      case 2:
        ok = dec.GetBytes().ok();
        break;
      default:
        ok = dec.GetStringView().ok();
        break;
    }
    if (!ok) break;
  }
}

/// Re-assembles a ReportBatch the way the daemon does from uploaded
/// views, then decodes every report out of it.
void BatchRoundTrip(std::string_view buffer) {
  proto::ReportBatch batch;
  // Split the buffer into pseudo-reports at data-derived boundaries.
  size_t pos = 0;
  size_t len = 1;
  while (pos < buffer.size() && batch.size() < 64) {
    size_t take = std::min(len, buffer.size() - pos);
    batch.AppendEncoded(buffer.substr(pos, take));
    pos += take;
    len = len * 2 + 1;
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    (void)proto::DecodeReport(batch.view(i));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  std::string_view buffer(reinterpret_cast<const char*>(data + 1), size - 1);
  switch (data[0] % 7) {
    case 0:
      (void)proto::DecodeReport(buffer);
      break;
    case 1:
      (void)proto::DecodeCandidateRequest(buffer);
      break;
    case 2:
      (void)proto::DecodeLengthRequest(buffer);
      break;
    case 3:
      (void)proto::DecodeSubShapeRequest(buffer);
      break;
    case 4:
      (void)proto::DecodeClassRefineRequest(buffer);
      break;
    case 5:
      WalkPrimitives(buffer);
      break;
    default:
      BatchRoundTrip(buffer);
      break;
  }
  return 0;
}
