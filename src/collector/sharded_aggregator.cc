#include "collector/sharded_aggregator.h"

#include <algorithm>

namespace privshape::collector {

ShardedAggregator::ShardedAggregator(const StageSpec& spec,
                                     size_t num_shards)
    : spec_(spec) {
  shards_.resize(std::max<size_t>(num_shards, 1));
  for (Shard& shard : shards_) {
    shard.levels.reserve(spec_.num_levels);
    for (size_t lvl = 0; lvl < spec_.num_levels; ++lvl) {
      shard.levels.emplace_back(spec_.kind, spec_.domain, spec_.epsilon);
    }
  }
}

PS_REPORT_PATH
void ShardedAggregator::ConsumeBatch(size_t shard,
                                     Span<const std::string> reports) {
  Shard& lane = shards_[shard % shards_.size()];
  for (const std::string& encoded : reports) ConsumeOne(lane, encoded);
}

PS_REPORT_PATH
void ShardedAggregator::ConsumeBatch(size_t shard,
                                     const proto::ReportBatch& reports) {
  Shard& lane = shards_[shard % shards_.size()];
  for (size_t i = 0; i < reports.size(); ++i) {
    ConsumeOne(lane, reports.view(i));
  }
}

void ShardedAggregator::ConsumeOne(Shard& lane, std::string_view encoded) {
  lane.bytes += encoded.size();
  auto report = proto::DecodeReport(encoded);
  if (!report.ok()) {
    ++lane.rejected;
    return;
  }
  if (report->level < spec_.min_level ||
      report->level - spec_.min_level >= spec_.num_levels) {
    ++lane.rejected;
    return;
  }
  lane.levels[static_cast<size_t>(report->level - spec_.min_level)]
      .ConsumeReport(*report);
}

Status ShardedAggregator::Merge(const ShardedAggregator& other) {
  if (other.spec_.kind != spec_.kind || other.spec_.domain != spec_.domain ||
      other.spec_.epsilon != spec_.epsilon ||
      other.spec_.min_level != spec_.min_level ||
      other.spec_.num_levels != spec_.num_levels) {
    return Status::InvalidArgument(
        "cannot merge aggregators of different stages");
  }
  for (size_t s = 0; s < other.shards_.size(); ++s) {
    const Shard& theirs = other.shards_[s];
    Shard& ours = shards_[s % shards_.size()];
    for (size_t lvl = 0; lvl < spec_.num_levels; ++lvl) {
      PRIVSHAPE_RETURN_IF_ERROR(ours.levels[lvl].Merge(theirs.levels[lvl]));
    }
    ours.rejected += theirs.rejected;
    ours.bytes += theirs.bytes;
  }
  return Status::Ok();
}

proto::ReportAggregator ShardedAggregator::MergedLevel(
    size_t level_bucket) const {
  proto::ReportAggregator merged(spec_.kind, spec_.domain, spec_.epsilon);
  for (const Shard& shard : shards_) {
    // Same spec by construction, so Merge cannot fail.
    (void)merged.Merge(shard.levels[level_bucket]);
  }
  return merged;
}

std::vector<double> ShardedAggregator::DebiasedCounts(
    size_t level_bucket) const {
  return MergedLevel(level_bucket).EstimatedCounts();
}

size_t ShardedAggregator::accepted() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    for (const auto& agg : shard.levels) total += agg.accepted();
  }
  return total;
}

size_t ShardedAggregator::rejected() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.rejected;
    for (const auto& agg : shard.levels) total += agg.rejected();
  }
  return total;
}

size_t ShardedAggregator::bytes_ingested() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.bytes;
  return total;
}

}  // namespace privshape::collector
