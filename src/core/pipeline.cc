#include "core/pipeline.h"

#include "common/math_utils.h"
#include "sax/breakpoints.h"
#include "sax/compressive.h"
#include "sax/grid_discretizer.h"
#include "sax/sax.h"

namespace privshape::core {

int TransformOptions::EffectiveAlphabet() const {
  if (use_sax) return t;
  return sax::GridDiscretizer(grid_interval, grid_limit).alphabet_size();
}

Result<Sequence> TransformSeries(const std::vector<double>& values,
                                 const TransformOptions& options) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot transform an empty series");
  }
  Sequence word;
  if (options.use_sax) {
    auto sax = sax::SaxTransformer::Create(options.t, options.w,
                                           options.z_normalize);
    if (!sax.ok()) return sax.status();
    auto w = sax->Transform(values);
    if (!w.ok()) return w.status();
    word = std::move(*w);
  } else {
    std::vector<double> working = values;
    if (options.z_normalize) ZNormalize(&working);
    sax::GridDiscretizer grid(options.grid_interval, options.grid_limit);
    word = grid.Transform(working);
  }
  if (options.compress) word = sax::CompressSax(word);
  return word;
}

Result<std::vector<Sequence>> TransformDataset(
    const series::Dataset& dataset, const TransformOptions& options) {
  std::vector<Sequence> out;
  out.reserve(dataset.size());
  for (const auto& inst : dataset.instances) {
    auto word = TransformSeries(inst.values, options);
    if (!word.ok()) return word.status();
    out.push_back(std::move(*word));
  }
  return out;
}

Result<std::vector<double>> ReconstructShape(
    const Sequence& word, const TransformOptions& options) {
  if (!options.use_sax) {
    // Grid bands: use band mid-values, clamped for the outer bands.
    sax::GridDiscretizer grid(options.grid_interval, options.grid_limit);
    std::vector<double> out;
    out.reserve(word.size());
    for (Symbol s : word) {
      double lo = -options.grid_limit +
                  (static_cast<double>(s) - 1.0) * options.grid_interval;
      double hi = lo + options.grid_interval;
      if (s == 0) {
        out.push_back(-options.grid_limit - options.grid_interval / 2.0);
      } else if (static_cast<int>(s) == grid.alphabet_size() - 1) {
        out.push_back(options.grid_limit + options.grid_interval / 2.0);
      } else {
        out.push_back(0.5 * (lo + hi));
      }
    }
    return out;
  }
  auto sax = sax::SaxTransformer::Create(options.t, options.w,
                                         options.z_normalize);
  if (!sax.ok()) return sax.status();
  return sax->Reconstruct(word);
}

}  // namespace privshape::core
