#!/usr/bin/env python3
"""Unified static-analysis entry point.

Runs both analysis layers over the repository with one exit-code
contract:

  * layering lint (tools/lint_layering.py): the module dependency DAG
    over #include edges, cross-checked against CMake link edges;
  * PrivShape Analyzer (tools/psa/): the semantic contracts — RNG
    consumption order, report-path determinism, privacy-budget flow,
    and telemetry/layering purity.

Usage:
  tools/analyze.py                 # lint src/ (source-walk discovery)
  tools/analyze.py --all           # + compile-db-seeded discovery
  tools/analyze.py --self-test     # both layers' self-tests
  tools/analyze.py --sarif out.sarif --all   # also write SARIF 2.1.0

Exit codes (uniform across layers): 0 clean, 1 findings, 2 internal
error. Findings are suppressible only via tools/psa/suppressions.txt,
which requires a written justification per entry.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint_layering  # noqa: E402
from psa import runner, selftest  # noqa: E402
from psa import engine as psa_engine  # noqa: E402


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="run both layers' self-tests instead of linting the tree")
    parser.add_argument(
        "--all", action="store_true",
        help="seed file discovery from the compile database "
             "(build*/compile_commands.json) in addition to walking src/")
    parser.add_argument(
        "--engine", default="auto", choices=("auto", "token", "clang"),
        help="analyzer frontend: clang uses libclang when importable, "
             "token is the dependency-free fallback (default: auto)")
    parser.add_argument(
        "--compile-db", default=None, metavar="PATH",
        help="explicit compile_commands.json (implies --all discovery)")
    parser.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="write findings (incl. suppressed) as SARIF 2.1.0")
    args = parser.parse_args()

    if args.self_test:
        layering = lint_layering.self_test()
        psa = selftest.run_selftest(args.root)
        return max(layering, psa)

    layering = lint_layering.run_lint(args.root)
    if args.all or args.compile_db:
        compile_db = args.compile_db  # None -> auto-discover under build*/
    else:
        compile_db = os.devnull  # source-walk discovery only
    code, active, suppressed = runner.analyze_tree(
        args.root, prefer_engine=args.engine, compile_db=compile_db)
    files = len(psa_engine.discover_files(args.root, compile_db))
    runner.report(active, suppressed, files)
    if args.sarif:
        runner.write_sarif(args.sarif, active, suppressed)
        print(f"psa: SARIF written to {args.sarif}")
    return max(layering, code)


if __name__ == "__main__":
    sys.exit(main())
