#ifndef PRIVSHAPE_PATTERNLDP_PID_H_
#define PRIVSHAPE_PATTERNLDP_PID_H_

#include <vector>

namespace privshape::pldp {

/// PID feedback controller used by PatternLDP (INFOCOM'20) to score how
/// "remarkable" each point of a series is: the controller tracks the error
/// between the observed value and a linear extrapolation from the previous
/// two points; large control output means the local trend changed.
class PidController {
 public:
  PidController(double kp, double ki, double kd)
      : kp_(kp), ki_(ki), kd_(kd) {}

  /// Feeds one error sample and returns the control output
  /// kp*e + ki*sum(e) + kd*(e - e_prev).
  double Update(double error);

  /// Clears the accumulated state.
  void Reset();

  double kp() const { return kp_; }
  double ki() const { return ki_; }
  double kd() const { return kd_; }

 private:
  double kp_, ki_, kd_;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool has_prev_ = false;
};

/// Importance score per point of `values`: |PID output| of the deviation
/// between each value and its linear extrapolation from the two previous
/// points. The first two points receive the mean score so they are neither
/// always kept nor always dropped.
std::vector<double> ImportanceScores(const std::vector<double>& values,
                                     double kp, double ki, double kd);

}  // namespace privshape::pldp

#endif  // PRIVSHAPE_PATTERNLDP_PID_H_
