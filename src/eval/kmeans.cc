#include "eval/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace privshape::eval {

namespace {

double SquaredL2(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += (a[i] - b[i]) * (a[i] - b[i]);
  return acc;
}

std::vector<std::vector<double>> KMeansPlusPlusInit(
    const std::vector<std::vector<double>>& points, int k, Rng* rng) {
  std::vector<std::vector<double>> centroids;
  centroids.push_back(points[rng->Index(points.size())]);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (static_cast<int>(centroids.size()) < k) {
    for (size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], SquaredL2(points[i], centroids.back()));
    }
    centroids.push_back(points[rng->Discrete(d2)]);
  }
  return centroids;
}

KMeansResult RunOnce(const std::vector<std::vector<double>>& points,
                     const KMeansOptions& options, Rng* rng) {
  size_t n = points.size();
  size_t dim = points[0].size();
  KMeansResult result;
  result.centroids = KMeansPlusPlusInit(points, options.k, rng);
  result.assignments.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step.
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < options.k; ++c) {
        double d = SquaredL2(points[i], result.centroids[static_cast<size_t>(c)]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignments[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;
    result.iterations = iter + 1;

    // Update step.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(options.k), std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(static_cast<size_t>(options.k), 0);
    for (size_t i = 0; i < n; ++i) {
      auto c = static_cast<size_t>(result.assignments[i]);
      counts[c]++;
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (size_t c = 0; c < static_cast<size_t>(options.k); ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with a random point.
        result.centroids[c] = points[rng->Index(n)];
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }

    if (prev_inertia - inertia <= options.tol * std::max(prev_inertia, 1e-12)) {
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            const KMeansOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("KMeans requires a non-empty input");
  }
  if (options.k < 1 || static_cast<size_t>(options.k) > points.size()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("KMeans inputs must share one length");
    }
  }
  Rng rng(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < std::max(1, options.n_init); ++attempt) {
    Rng local = rng.Fork();
    KMeansResult run = RunOnce(points, options, &local);
    if (run.inertia < best.inertia) best = std::move(run);
  }
  return best;
}

}  // namespace privshape::eval
