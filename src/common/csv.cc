#include "common/csv.h"

#include <cmath>
#include <sstream>

namespace privshape {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  WriteRow(columns);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<double>& cells) {
  std::vector<std::string> rendered;
  rendered.reserve(cells.size());
  for (double c : cells) rendered.push_back(FormatDouble(c));
  WriteRow(rendered);
}

Result<std::vector<std::vector<double>>> ReadCsvDoubles(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        row.push_back(std::stod(cell));
      } catch (...) {
        return Status::InvalidArgument("non-numeric CSV cell: " + cell);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string FormatDouble(double v, int precision) {
  if (std::isnan(v)) return "nan";
  std::ostringstream ss;
  ss.precision(precision);
  ss << v;
  return ss.str();
}

}  // namespace privshape
