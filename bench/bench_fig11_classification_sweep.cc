// Fig. 11: classification accuracy on the Trace dataset versus eps in
// {0.1, 0.5, 1, 1.5, ..., 8}, for PrivShape, the baseline mechanism, and
// PatternLDP+RF.

#include <iostream>

#include "bench/harness.h"
#include "series/generators.h"
#include "series/time_series.h"

namespace pb = privshape::bench;

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 2400, 2);

  std::vector<double> budgets = {0.1, 0.5, 1, 1.5, 2, 3, 4, 5, 6, 7, 8};
  pb::PrintTitle("Fig. 11: classification accuracy vs eps (Trace)");
  pb::PrintHeader({"eps", "PrivShape", "Baseline", "PatternLDP+RF"});
  auto csv = pb::MaybeCsv("fig11_classification_sweep");
  if (csv) csv->WriteHeader({"eps", "privshape", "baseline", "patternldp"});

  for (double eps : budgets) {
    double ps = 0, bl = 0, pl_acc = 0;
    for (int trial = 0; trial < scale.trials; ++trial) {
      uint64_t seed = scale.seed + static_cast<uint64_t>(trial);
      privshape::series::GeneratorOptions gen;
      gen.num_instances = scale.users;
      gen.seed = seed;
      auto dataset = privshape::series::MakeTraceDataset(gen);
      privshape::series::Dataset train, test;
      privshape::series::TrainTestSplit(dataset, 0.8, seed, &train, &test);
      auto transform = pb::TraceTransform();

      privshape::core::MechanismConfig ps_config =
          pb::TraceConfig(eps, seed);
      ps_config.num_classes = 3;
      ps += pb::RunPrivShapeClassification(train, test, transform,
                                           ps_config)
                .accuracy;

      privshape::core::MechanismConfig baseline_config =
          pb::TraceConfig(eps, seed);
      baseline_config.baseline_threshold =
          100.0 * static_cast<double>(scale.users) / 40000.0;
      bl += pb::RunBaselineClassification(train, test, transform,
                                          baseline_config)
                .accuracy;

      pb::PatternLdpBenchOptions pl;
      pl.epsilon = eps;
      pl.seed = seed;
      pl_acc += pb::RunPatternLdpRfClassification(train, test, pl, 3)
                    .accuracy;
    }
    double n = scale.trials;
    std::vector<std::string> row = {privshape::FormatDouble(eps, 3),
                                    privshape::FormatDouble(ps / n, 4),
                                    privshape::FormatDouble(bl / n, 4),
                                    privshape::FormatDouble(pl_acc / n, 4)};
    pb::PrintRow(row);
    if (csv) csv->WriteRow(row);
  }

  std::cout << "\nExpected shape (paper Fig. 11): PrivShape beats PatternLDP "
               "at every eps, already strong for eps <= 2; PatternLDP "
               "accuracy stays near chance (~0.33-0.5).\n";
  return 0;
}
