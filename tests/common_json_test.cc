#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privshape {
namespace {

TEST(JsonTest, ScalarsRender) {
  EXPECT_EQ(JsonValue::Str("hi").Dump(), "\"hi\"");
  EXPECT_EQ(JsonValue::Int(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue::Uint(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Num(1.5).Dump(), "1.5");
}

TEST(JsonTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(JsonValue::Num(std::nan("")).Dump(), "null");
  EXPECT_EQ(JsonValue::Num(INFINITY).Dump(), "null");
}

TEST(JsonTest, NumbersRoundTripPrecision) {
  // The renderer must emit enough digits to round-trip the double.
  double v = 0.1234567890123456;
  std::string rendered = JsonNumber(v);
  EXPECT_EQ(std::stod(rendered), v);
}

TEST(JsonTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", JsonValue::Int(1));
  obj.Set("alpha", JsonValue::Int(2));
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"alpha\":2}");
}

TEST(JsonTest, SetOverwritesExistingKey) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", JsonValue::Int(1));
  obj.Set("k", JsonValue::Int(2));
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.Dump(), "{\"k\":2}");
}

TEST(JsonTest, NestedStructuresAndPrettyPrint) {
  JsonValue arr = JsonValue::Array();
  arr.Push(JsonValue::Int(1));
  JsonValue inner = JsonValue::Object();
  inner.Set("name", JsonValue::Str("x"));
  arr.Push(std::move(inner));
  JsonValue doc = JsonValue::Object();
  doc.Set("items", std::move(arr));
  EXPECT_EQ(doc.Dump(), "{\"items\":[1,{\"name\":\"x\"}]}");

  std::string pretty = doc.Dump(2);
  EXPECT_NE(pretty.find("{\n  \"items\": [\n"), std::string::npos);
  EXPECT_EQ(pretty.back(), '\n');
}

TEST(JsonTest, EmptyComposites) {
  EXPECT_EQ(JsonValue::Object().Dump(2), "{}\n");
  EXPECT_EQ(JsonValue::Array().Dump(), "[]");
}

}  // namespace
}  // namespace privshape
