/// \file
/// Minimal TCP socket / epoll primitives for the collector daemon and the
/// load generator: RAII file descriptors, Status-returning listen /
/// connect / accept helpers, an epoll poller, and a monotonic clock for
/// deadline timers. Linux-only (epoll); like the rest of `common`, knows
/// nothing about time series or privacy.

#ifndef PRIVSHAPE_COMMON_SOCKET_H_
#define PRIVSHAPE_COMMON_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace privshape {

/// Owning file descriptor: closes on destruction, movable, non-copyable.
/// An empty UniqueFd holds -1.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Hands ownership of the fd to the caller.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the held fd (if any).
  void Reset();

 private:
  int fd_ = -1;
};

/// Monotonic wall-clock seconds (steady_clock), the time base every
/// deadline in the network layer is expressed in.
double MonotonicSeconds();

/// Binds and listens on `host:port` (IPv4 dotted quad, e.g. "127.0.0.1").
/// `port` 0 picks an ephemeral port — read it back with LocalPort.
Result<UniqueFd> TcpListen(const std::string& host, uint16_t port,
                           int backlog = 128);

/// The port a bound socket actually listens on.
Result<uint16_t> LocalPort(int fd);

/// Blocking connect to `host:port`.
Result<UniqueFd> TcpConnect(const std::string& host, uint16_t port);

/// Accepts one pending connection from a listening socket. Returns an
/// invalid (empty) UniqueFd when no connection is pending (EAGAIN) —
/// distinct from an error status.
Result<UniqueFd> TcpAccept(int listen_fd);

/// Switches `fd` to non-blocking mode.
Status SetNonBlocking(int fd);

/// Bounds every blocking read on `fd` (SO_RCVTIMEO) so a dead peer cannot
/// hang a client thread forever.
Status SetRecvTimeout(int fd, double seconds);

/// Disables Nagle (the request/report exchange is latency-bound).
Status SetNoDelay(int fd);

/// Writes all of `data`, looping over partial writes and EINTR. For
/// blocking sockets; a receive-timeout peer that stops draining surfaces
/// as an error status, never a silent short write.
Status WriteAll(int fd, std::string_view data);

/// One blocking read of up to `cap` bytes into `buf`. Returns 0 on EOF.
/// EINTR retries; a timeout (SetRecvTimeout elapsed) is an error status.
Result<size_t> ReadSome(int fd, void* buf, size_t cap);

/// One readiness event from Poller::Wait. `tag` is the caller's id for
/// the fd (connection index, listener sentinel, ...).
struct PollEvent {
  uint64_t tag = 0;
  bool readable = false;
  bool writable = false;
  /// Error or hangup on the fd; the owner should drop the connection.
  bool error = false;
};

/// Thin RAII wrapper over an epoll instance. Register each fd with a
/// caller-chosen tag; Wait fills a caller-owned event vector (reused
/// across calls, no steady-state allocation).
class Poller {
 public:
  Poller();
  ~Poller() = default;

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool valid() const { return epoll_fd_.valid(); }

  /// `want_write` additionally arms EPOLLOUT (level-triggered).
  Status Add(int fd, uint64_t tag, bool want_write = false);
  Status Modify(int fd, uint64_t tag, bool want_write);
  Status Remove(int fd);

  /// Waits up to `timeout_ms` (-1 = forever) and overwrites `*events`.
  /// Returns OK with an empty vector on timeout; EINTR (a signal, e.g.
  /// the shutdown handler) also returns OK-empty so the caller can check
  /// its shutdown flag.
  Status Wait(std::vector<PollEvent>* events, int timeout_ms);

 private:
  UniqueFd epoll_fd_;
};

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_SOCKET_H_
