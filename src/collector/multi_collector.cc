#include "collector/multi_collector.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <thread>
#include <utility>

namespace privshape::collector {

MultiCollector::MultiCollector(core::MechanismConfig config,
                               CollectorOptions options, ThreadPool* pool,
                               size_t num_collectors)
    : config_(config) {
  num_collectors = std::max<size_t>(num_collectors, 1);
  coordinators_.reserve(num_collectors);
  for (size_t c = 0; c < num_collectors; ++c) {
    coordinators_.emplace_back(config, options, pool);
  }
}

Result<core::MechanismResult> MultiCollector::Collect(
    const ClientFleet& fleet, CollectorMetrics* metrics) {
  if (config_.num_classes > 0 && !fleet.labeled()) {
    return Status::FailedPrecondition(
        "classification refinement requires a labeled fleet");
  }
  if (metrics != nullptr) {
    metrics->num_shards = coordinators_.front().EffectiveShards();
    metrics->num_threads = coordinators_.front().EffectiveThreads();
    metrics->num_collectors = coordinators_.size();
    metrics->queue_depth = coordinators_.front().options().queue_depth;
    metrics->ingest = coordinators_.front().options().streaming
                          ? "streaming"
                          : "barrier";
  }
  auto run_round = [this, &fleet](const std::vector<size_t>& population,
                                  const StageSpec& spec, const std::string&,
                                  const AnswerFn& answer) -> RoundOutcome {
    size_t sites = coordinators_.size();
    if (sites == 1) {
      // Single site: same code path as a bare RoundCoordinator, no site
      // threads — so "--collectors 1" is exactly the one-collector run.
      return coordinators_[0].RunRound(fleet, population, spec, answer);
    }
    size_t n = population.size();
    // Site c owns the contiguous population slice [n*c/C, n*(c+1)/C).
    // All sites run concurrently (sharing the pool for their stripe
    // workers); the slice boundaries cannot affect the merged counts.
    std::vector<std::optional<RoundOutcome>> outcomes(sites);
    std::vector<std::exception_ptr> errors(sites);
    std::vector<std::thread> site_threads;
    site_threads.reserve(sites);
    for (size_t c = 0; c < sites; ++c) {
      std::vector<size_t> slice(population.begin() + n * c / sites,
                                population.begin() + n * (c + 1) / sites);
      site_threads.emplace_back(
          [this, &outcomes, &errors, &spec, &answer, &fleet, c,
           slice = std::move(slice)] {
            // An exception escaping a std::thread body would terminate
            // the process; capture it and rethrow after the joins, like
            // ThreadPool::ParallelFor does.
            try {
              outcomes[c] = coordinators_[c].RunRound(fleet, slice, spec,
                                                      answer);
            } catch (...) {
              errors[c] = std::current_exception();
            }
          });
    }
    for (auto& thread : site_threads) thread.join();
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    RoundOutcome merged = *std::move(outcomes[0]);
    for (size_t c = 1; c < sites; ++c) {
      // Same spec by construction, so Merge cannot fail.
      (void)merged.agg.Merge(outcomes[c]->agg);
      merged.client_errors += outcomes[c]->client_errors;
      merged.ingest_latency.Merge(outcomes[c]->ingest_latency);
    }
    return merged;
  };
  return DriveProtocol(config_, fleet.num_users(), run_round, metrics);
}

}  // namespace privshape::collector
