#include "patternldp/pid.h"

#include <cmath>

#include "common/math_utils.h"

namespace privshape::pldp {

double PidController::Update(double error) {
  integral_ += error;
  double derivative = has_prev_ ? error - prev_error_ : 0.0;
  prev_error_ = error;
  has_prev_ = true;
  return kp_ * error + ki_ * integral_ + kd_ * derivative;
}

void PidController::Reset() {
  integral_ = 0.0;
  prev_error_ = 0.0;
  has_prev_ = false;
}

std::vector<double> ImportanceScores(const std::vector<double>& values,
                                     double kp, double ki, double kd) {
  std::vector<double> scores(values.size(), 0.0);
  if (values.size() < 3) {
    // Degenerate series: every point is equally important.
    for (double& s : scores) s = 1.0;
    return scores;
  }
  PidController pid(kp, ki, kd);
  for (size_t i = 2; i < values.size(); ++i) {
    // Linear extrapolation from the previous two points.
    double predicted = 2.0 * values[i - 1] - values[i - 2];
    double error = values[i] - predicted;
    scores[i] = std::abs(pid.Update(error));
  }
  // Head points get the mean of the measured scores.
  double total = 0.0;
  for (size_t i = 2; i < scores.size(); ++i) total += scores[i];
  double mean = total / static_cast<double>(scores.size() - 2);
  scores[0] = scores[1] = mean;
  return scores;
}

}  // namespace privshape::pldp
