#include "collector/metrics.h"

#include <fstream>

namespace privshape::collector {

double RoundStats::ReportsPerSec() const {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(accepted + rejected) / seconds;
}

size_t CollectorMetrics::TotalReports() const {
  size_t total = 0;
  for (const RoundStats& round : rounds) {
    total += round.accepted + round.rejected;
  }
  return total;
}

size_t CollectorMetrics::TotalRejected() const {
  size_t total = 0;
  for (const RoundStats& round : rounds) total += round.rejected;
  return total;
}

size_t CollectorMetrics::TotalBytesUp() const {
  size_t total = 0;
  for (const RoundStats& round : rounds) total += round.bytes_up;
  return total;
}

double CollectorMetrics::TotalReportsPerSec() const {
  if (total_seconds <= 0.0) return 0.0;
  return static_cast<double>(TotalReports()) / total_seconds;
}

JsonValue CollectorMetrics::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("num_users", JsonValue::Uint(num_users));
  doc.Set("num_shards", JsonValue::Uint(num_shards));
  doc.Set("num_threads", JsonValue::Uint(num_threads));
  doc.Set("num_collectors", JsonValue::Uint(num_collectors));
  doc.Set("queue_depth", JsonValue::Uint(queue_depth));
  doc.Set("ingest", JsonValue::Str(ingest));
  doc.Set("total_seconds", JsonValue::Num(total_seconds));
  doc.Set("total_reports", JsonValue::Uint(TotalReports()));
  doc.Set("total_rejected", JsonValue::Uint(TotalRejected()));
  doc.Set("total_bytes_up", JsonValue::Uint(TotalBytesUp()));
  doc.Set("reports_per_sec", JsonValue::Num(TotalReportsPerSec()));
  JsonValue stages = JsonValue::Array();
  for (const RoundStats& round : rounds) {
    JsonValue stage = JsonValue::Object();
    stage.Set("stage", JsonValue::Str(round.stage));
    stage.Set("users", JsonValue::Uint(round.users));
    stage.Set("accepted", JsonValue::Uint(round.accepted));
    stage.Set("rejected", JsonValue::Uint(round.rejected));
    stage.Set("client_errors", JsonValue::Uint(round.client_errors));
    stage.Set("bytes_up", JsonValue::Uint(round.bytes_up));
    stage.Set("bytes_down", JsonValue::Uint(round.bytes_down));
    stage.Set("seconds", JsonValue::Num(round.seconds));
    stage.Set("reports_per_sec", JsonValue::Num(round.ReportsPerSec()));
    stages.Push(std::move(stage));
  }
  doc.Set("rounds", std::move(stages));
  return doc;
}

Status CollectorMetrics::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open metrics file: " + path);
  }
  out << ToJson().Dump(2);
  return out.good() ? Status::Ok()
                    : Status::Internal("failed writing metrics: " + path);
}

}  // namespace privshape::collector
