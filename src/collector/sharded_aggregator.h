#ifndef PRIVSHAPE_COLLECTOR_SHARDED_AGGREGATOR_H_
#define PRIVSHAPE_COLLECTOR_SHARDED_AGGREGATOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/span.h"
#include "common/status.h"
#include "protocol/session.h"

namespace privshape::collector {

/// What one collection round aggregates: the report kind it accepts, the
/// per-level report domain, the budget used for debiasing, and the level
/// window. Single-level stages (P_a, P_d, one trie level of P_c) set
/// num_levels = 1 with min_level = the expected level; the P_b round spans
/// levels [1, ell_s).
struct StageSpec {
  proto::ReportKind kind = proto::ReportKind::kLength;
  size_t domain = 0;
  double epsilon = 0.0;
  uint64_t min_level = 0;
  size_t num_levels = 1;
};

/// N-way sharded aggregation of one round's encoded reports.
///
/// Each shard wraps its own per-level proto::ReportAggregator plus local
/// rejection/byte tallies, so ingestion is lock-free: a shard index must
/// only be fed from one thread at a time (the RoundCoordinator assigns
/// each shard to exactly one worker), and no synchronization is needed
/// anywhere on the hot path. All aggregation state is integer counts, so
/// the cross-shard Merge is exact and associative: debiased estimates are
/// byte-identical for any shard count and any ingestion order.
class ShardedAggregator {
 public:
  /// `num_shards` >= 1 independent ingestion lanes.
  ShardedAggregator(const StageSpec& spec, size_t num_shards);

  size_t num_shards() const { return shards_.size(); }
  const StageSpec& spec() const { return spec_; }

  /// Ingests a batch of encoded reports into one shard. Undecodable
  /// reports and reports outside the level window count as rejected;
  /// wrong kinds and out-of-domain values are rejected by the underlying
  /// ReportAggregator. Not synchronized: one thread per shard at a time.
  PS_REPORT_PATH
  void ConsumeBatch(size_t shard, Span<const std::string> reports);

  /// Same, over a flat batch buffer: each report is decoded from an
  /// in-place view of the batch, so ingestion copies no report bytes.
  /// This is the form the streaming queues carry.
  PS_REPORT_PATH
  void ConsumeBatch(size_t shard, const proto::ReportBatch& reports);

  /// Exact cross-shard merge of one level bucket (0-based within the
  /// level window). The returned aggregator sees exactly the counts a
  /// single unsharded aggregator would have.
  proto::ReportAggregator MergedLevel(size_t level_bucket) const;

  /// Exact cross-collector merge: folds every lane of `other` (an
  /// aggregator for the same stage, possibly with a different shard
  /// count) into this one, including the rejection/byte tallies. All
  /// state is integer counts, so merging N collectors' aggregators in
  /// any order equals one aggregator fed every report. Fails unless the
  /// stage specs match exactly.
  Status Merge(const ShardedAggregator& other);

  /// Debiased counts of one level bucket (GRR debias, or raw counts for
  /// kSelection), via the merged aggregator.
  std::vector<double> DebiasedCounts(size_t level_bucket) const;

  /// Totals across shards and levels.
  size_t accepted() const;
  size_t rejected() const;
  size_t bytes_ingested() const;

 private:
  struct Shard {
    std::vector<proto::ReportAggregator> levels;
    size_t rejected = 0;  ///< undecodable or outside the level window
    size_t bytes = 0;
  };

  /// Decode + route + count of one encoded report (both batch forms).
  void ConsumeOne(Shard& lane, std::string_view encoded);

  StageSpec spec_;
  std::vector<Shard> shards_;
};

}  // namespace privshape::collector

#endif  // PRIVSHAPE_COLLECTOR_SHARDED_AGGREGATOR_H_
