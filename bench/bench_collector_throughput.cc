/// \file
/// Collector throughput scaling: runs the full four-round protocol over a
/// generated Trace-style fleet and records reports/sec per configuration
/// into BENCH_collector.json (the repo's perf baseline; later scaling PRs
/// regress against it). Three sweeps:
///
///   1. thread scaling with streaming ingestion (1, 2, 4, ... threads),
///   2. streaming vs. barrier ingestion at each thread count (streaming
///      must be no slower at equal thread counts),
///   3. multi-collector scaling (1, 2, 4 merged sites at the max thread
///      count) — the exact cross-collector merge must cost ~nothing.
///
///   bench_collector_throughput --users 100000 --threads 8
///       --json BENCH_collector.json
///
/// `--threads` caps the sweep; `--users` sizes the fleet. The determinism
/// contract means every configuration extracts identical shapes —
/// verified here as a sanity check.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "collector/client_fleet.h"
#include "collector/multi_collector.h"
#include "collector/round_coordinator.h"
#include "common/thread_pool.h"

namespace privshape {
namespace {

using bench::ExperimentScale;

struct RunResult {
  bool ok = false;
  double rate = 0.0;
  double seconds = 0.0;
  size_t bytes_up = 0;
  size_t rejected = 0;
  std::string shapes;
  std::string error;  ///< status text when !ok
};

RunResult RunOnce(const core::MechanismConfig& config,
                  const collector::ClientFleet& fleet,
                  const collector::CollectorOptions& options,
                  ThreadPool* pool, size_t collectors) {
  collector::CollectorMetrics metrics;
  // A single site runs inline, so collectors == 1 measures exactly the
  // plain RoundCoordinator path.
  collector::MultiCollector sites(config, options, pool, collectors);
  Result<core::MechanismResult> result = sites.Collect(fleet, &metrics);
  RunResult out;
  if (!result.ok()) {
    out.error = result.status().ToString();
    return out;
  }
  out.ok = true;
  // Accepted (validated) reports per second: the bench fleet is clean, so
  // this equals the ingest rate — but the honest label is "useful work".
  out.rate = metrics.TotalAcceptedPerSec();
  out.seconds = metrics.total_seconds;
  out.bytes_up = metrics.TotalBytesUp();
  out.rejected = metrics.TotalRejected();
  for (const auto& s : result->shapes) {
    out.shapes += SequenceToString(s.shape) + " ";
  }
  return out;
}

/// Best-of-`trials` wall clock (the usual bench convention: the fastest
/// run is the least-perturbed one; shapes are identical across trials by
/// the determinism contract, so only timing varies).
RunResult RunBest(const core::MechanismConfig& config,
                  const collector::ClientFleet& fleet,
                  const collector::CollectorOptions& options,
                  ThreadPool* pool, size_t collectors, int trials) {
  RunResult best;
  for (int trial = 0; trial < std::max(trials, 1); ++trial) {
    RunResult run = RunOnce(config, fleet, options, pool, collectors);
    if (run.ok ? (!best.ok || run.rate > best.rate) : !best.ok) {
      best = run;  // fastest good run, or an error if none succeed
    }
  }
  return best;
}

int Main(int argc, char** argv) {
  CliArgs args(argc, argv);
  ExperimentScale scale = bench::ScaleFromArgs(args, /*default_users=*/50000,
                                               /*default_trials=*/3);
  size_t max_threads = scale.threads > 0
                           ? scale.threads
                           : std::max<size_t>(
                                 1, std::thread::hardware_concurrency());
  auto json = bench::MaybeJson(args, "BENCH_collector.json");
  // Records from different machines must be distinguishable, and a
  // single-core machine cannot measure thread scaling at all — both are
  // run-wide facts, so they live in the file's meta, not per record.
  size_t hw_threads = std::thread::hardware_concurrency();
  bool can_scale = hw_threads > 1;
  if (json != nullptr) {
    json->SetMeta("hardware_concurrency", static_cast<uint64_t>(hw_threads));
    json->SetMeta("speedup_valid", can_scale ? "true" : "false");
  }

  core::MechanismConfig config = bench::TraceConfig(
      args.GetDouble("epsilon", 4.0), scale.seed);
  auto source = collector::GeneratedWordSource("trace", scale.seed);
  if (!source.ok()) {
    bench::PrintTitle("collector bench setup failed: " +
                      source.status().ToString());
    return 1;
  }
  // Materialize each user's word ONCE, outside every measured run: in a
  // real deployment the private series lives on the client, so per-report
  // series synthesis is benchmark overhead, not collector work — and it
  // used to dominate the measured rate (~25us/report of generator time
  // against a ~1-3us answer path). Same words, same per-user seeds, so
  // the extracted shapes are unchanged.
  collector::ClientFleet generated(scale.users, std::move(*source),
                                   config.metric, config.seed);
  collector::ClientFleet fleet = collector::ClientFleet::FromWords(
      generated.MaterializeWords(), scale.users, config.metric, config.seed);

  bench::PrintTitle("Collector throughput (generated Trace fleet, " +
                    std::to_string(scale.users) + " users)");
  if (!can_scale) {
    bench::PrintTitle(
        "NOTE: 1 hardware thread — thread-scaling speedups not measurable");
  }
  bench::PrintHeader({"threads", "collectors", "ingest", "accepted/s",
                      "seconds", "speedup", "shapes"});

  std::vector<size_t> thread_counts;
  for (size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads) {
    thread_counts.push_back(max_threads);
  }

  double base_rate = 0.0;
  std::string reference_shapes;
  bool deterministic = true;
  size_t completed = 0;

  auto record = [&](size_t threads, size_t collectors,
                    const std::string& ingest,
                    const collector::CollectorOptions& options,
                    const RunResult& run) {
    if (!run.ok) {
      bench::PrintRow({std::to_string(threads), std::to_string(collectors),
                       ingest, "-", "-", "-", run.error});
      return;
    }
    ++completed;
    if (reference_shapes.empty()) {
      reference_shapes = run.shapes;
    } else if (run.shapes != reference_shapes) {
      deterministic = false;
    }
    if (base_rate == 0.0) base_rate = run.rate;
    double speedup = base_rate > 0.0 ? run.rate / base_rate : 0.0;
    // On a single core every "parallel" run shares the one CPU, so a
    // speedup of ~1 is an artifact of the machine, not the code — print
    // and record it as not-applicable instead of a misleading number.
    bench::PrintRow({std::to_string(threads), std::to_string(collectors),
                     ingest, FormatDouble(run.rate, 6),
                     FormatDouble(run.seconds, 4),
                     can_scale ? FormatDouble(speedup, 3) : "n/a",
                     run.shapes});
    if (json != nullptr) {
      std::vector<std::pair<std::string, double>> metrics = {
          {"accepted_per_sec", run.rate},
          {"seconds", run.seconds},
          {"bytes_up", static_cast<double>(run.bytes_up)},
          {"rejected", static_cast<double>(run.rejected)}};
      if (can_scale) {
        metrics.emplace_back("speedup_vs_1_thread", speedup);
      }
      json->AddRecord(
          "collector_throughput",
          {{"threads", std::to_string(threads)},
           {"shards", std::to_string(options.num_shards)},
           {"collectors", std::to_string(collectors)},
           {"ingest", ingest},
           {"queue_depth", std::to_string(options.queue_depth)},
           {"users", std::to_string(scale.users)},
           {"dataset", "trace"}},
          metrics);
    }
  };

  // Sweeps 1+2: streaming and barrier ingestion at every thread count.
  for (size_t threads : thread_counts) {
    ThreadPool pool(threads);
    collector::CollectorOptions options;
    // 4 shards per worker keeps stripes small enough to load-balance.
    options.num_shards = threads * 4;
    for (bool streaming : {true, false}) {
      options.streaming = streaming;
      RunResult run =
          RunBest(config, fleet, options, &pool, 1, scale.trials);
      record(threads, 1, streaming ? "streaming" : "barrier", options, run);
    }
  }

  // Sweep 3: multi-collector scaling at the max thread count. The
  // collectors=1 point is sweep 1's max-thread streaming record — not
  // repeated here, so every record's params are unique in the baseline.
  {
    ThreadPool pool(max_threads);
    collector::CollectorOptions options;
    options.num_shards = max_threads * 4;
    for (size_t collectors : {size_t{2}, size_t{4}}) {
      RunResult run =
          RunBest(config, fleet, options, &pool, collectors, scale.trials);
      record(max_threads, collectors, "streaming", options, run);
    }
  }

  if (!deterministic) {
    bench::PrintRow({"WARNING", "shapes varied across configurations", "",
                     "", "", "", ""});
    return 1;
  }
  if (completed == 0) {
    bench::PrintTitle("no configuration completed; baseline NOT recorded");
    return 1;
  }
  if (json != nullptr && !json->Flush()) {
    bench::PrintTitle("failed to write the --json baseline file");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace privshape

int main(int argc, char** argv) { return privshape::Main(argc, argv); }
