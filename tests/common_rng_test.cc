#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace privshape {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.5, 4.0);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMeanApproximatesP) {
  Rng rng(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(8);
  const int n = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(1.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, LaplaceMeanAndScale) {
  Rng rng(9);
  const int n = 100000;
  double sum = 0, sum_abs = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Laplace(2.0);
    sum += v;
    sum_abs += std::abs(v);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);   // mean 0
  EXPECT_NEAR(sum_abs / n, 2.0, 0.05);  // E|X| = b
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(10);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[rng.Discrete(weights)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, DiscreteAllZeroWeightsIsUniform) {
  Rng rng(11);
  std::vector<double> weights = {0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) counts[rng.Discrete(weights)]++;
  for (int c : counts) EXPECT_GT(c, 1500);
}

TEST(RngTest, DiscreteIgnoresNegativeWeights) {
  Rng rng(12);
  std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Discrete(weights), 1u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent2(13);
  (void)parent2.engine()();  // parent consumed one draw to fork
  double a = child.Uniform();
  double b = parent.Uniform();
  EXPECT_NE(a, b);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(14);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// --- LazyMt64: the engine behind Rng -------------------------------------
//
// The lazy engine must emit EXACTLY std::mt19937_64's stream (the
// generator is fully specified by the standard): the whole repo's
// byte-identical determinism story sits on top of this equivalence.

TEST(LazyMt64Test, BitExactAgainstStdMt19937_64) {
  for (uint64_t seed : {uint64_t{0}, uint64_t{1}, uint64_t{0x5eed5eed},
                        uint64_t{0xdeadbeefcafe}, ~uint64_t{0}}) {
    std::mt19937_64 ref(seed);
    LazyMt64 lazy(seed);
    // Covers the lazy prefix (outputs 0..155), the materialization
    // boundary at output 156, and a long tail through several twists.
    for (int i = 0; i < 2000; ++i) {
      ASSERT_EQ(ref(), lazy()) << "seed " << seed << " output " << i;
    }
  }
}

TEST(LazyMt64Test, DiscardMatchesStd) {
  std::mt19937_64 ref(42);
  LazyMt64 lazy(42);
  ref.discard(10);
  lazy.discard(10);
  for (int i = 0; i < 300; ++i) ASSERT_EQ(ref(), lazy()) << i;
}

TEST(LazyMt64Test, DistributionsSeeTheSameStream) {
  // Rng's distributions are deterministic functions of the engine
  // outputs, so they must agree with the same distributions over a
  // std::mt19937_64 seeded identically.
  Rng rng(1234);
  std::mt19937_64 ref(1234);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.Uniform(),
              std::uniform_real_distribution<double>(0.0, 1.0)(ref));
  }
}

}  // namespace
}  // namespace privshape

