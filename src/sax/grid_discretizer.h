#ifndef PRIVSHAPE_SAX_GRID_DISCRETIZER_H_
#define PRIVSHAPE_SAX_GRID_DISCRETIZER_H_

#include <vector>

#include "common/status.h"
#include "series/sequence.h"

namespace privshape::sax {

/// The "without SAX" ablation front end (§V-J): discretizes raw z-scored
/// values on a fixed uniform grid instead of PAA + Gaussian breakpoints.
/// The paper uses 0.33-unit intervals from -0.99 to 0.99, i.e. 8 bands on
/// the value axis (two unbounded outer bands plus six interior ones).
class GridDiscretizer {
 public:
  /// `interval` is the band width; `limit` the last finite edge (0.99).
  GridDiscretizer(double interval = 0.33, double limit = 0.99);

  /// Number of bands (symbols) produced.
  int alphabet_size() const { return static_cast<int>(edges_.size()) + 1; }

  Symbol Discretize(double value) const;

  /// Symbol-per-point transform of a whole series (no aggregation).
  Sequence Transform(const std::vector<double>& values) const;

 private:
  std::vector<double> edges_;
};

}  // namespace privshape::sax

#endif  // PRIVSHAPE_SAX_GRID_DISCRETIZER_H_
