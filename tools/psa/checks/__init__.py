"""Check-plugin registry.

Each check is one module exposing:

  CHECK_ID     -- stable rule id (also the SARIF ruleId and the key a
                  suppression entry names)
  DESCRIPTION  -- one-line rule statement for SARIF / --list-checks
  run(files, registry) -> list[ir.Finding]

`files` is the full list of ir.SourceFile objects for the tree and
`registry` the annotations.Registry harvested from them, so checks can
be cross-file (call-graph word counts, module-wide purity).
"""

from . import budget_flow
from . import determinism
from . import purity
from . import rng_order

ALL_CHECKS = (rng_order, determinism, budget_flow, purity)


def check_ids():
    return [c.CHECK_ID for c in ALL_CHECKS]
