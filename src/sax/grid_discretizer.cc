#include "sax/grid_discretizer.h"

#include <algorithm>

namespace privshape::sax {

GridDiscretizer::GridDiscretizer(double interval, double limit) {
  for (double edge = -limit; edge <= limit + 1e-12; edge += interval) {
    edges_.push_back(edge);
  }
}

Symbol GridDiscretizer::Discretize(double value) const {
  auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  return static_cast<Symbol>(it - edges_.begin());
}

Sequence GridDiscretizer::Transform(const std::vector<double>& values) const {
  Sequence out;
  out.reserve(values.size());
  for (double v : values) out.push_back(Discretize(v));
  return out;
}

}  // namespace privshape::sax
