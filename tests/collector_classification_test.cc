/// Classification over the wire: the labeled-fleet collector path must be
/// byte-identical to core::PrivShapeLabeledShapes (same words, same
/// labels, same seed) across the whole determinism matrix — ingest modes,
/// shard counts, collector counts — and the new P_e protocol pieces must
/// hold up under label errors and merge partitioning.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "collector/client_fleet.h"
#include "collector/multi_collector.h"
#include "collector/round_coordinator.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/classification.h"
#include "core/em_selection.h"
#include "core/privshape.h"
#include "ldp/unary_encoding.h"
#include "protocol/messages.h"
#include "protocol/round_context.h"
#include "protocol/session.h"

namespace privshape {
namespace {

using collector::ClientFleet;
using collector::CollectorMetrics;
using collector::CollectorOptions;
using collector::MultiCollector;
using collector::RoundCoordinator;
using core::MechanismConfig;
using proto::ReportKind;

constexpr int kClasses = 3;

/// Planted labeled mixture: class 0 mostly "abc", class 1 mostly "cba",
/// class 2 mostly "bab" — with some cross-class noise so the OUE cells
/// are not trivially one-hot.
int PlantedLabel(size_t user) { return static_cast<int>(user % kClasses); }

Sequence PlantedWord(size_t user, uint64_t seed = 1) {
  Rng rng(DeriveSeed(seed, user));
  double noise = rng.Uniform();
  int cls = noise < 0.15 ? static_cast<int>(rng.Index(kClasses))
                         : PlantedLabel(user);
  if (cls == 0) return {0, 1, 2};
  if (cls == 1) return {2, 1, 0};
  return {1, 0, 1};
}

MechanismConfig TestConfig() {
  MechanismConfig config;
  config.epsilon = 6.0;
  config.t = 3;
  config.k = 2;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 6;
  config.metric = dist::Metric::kSed;
  config.num_classes = kClasses;
  config.seed = 11;
  return config;
}

ClientFleet LabeledFleet(size_t n, const MechanismConfig& config) {
  return ClientFleet(
      n, [](size_t user) { return PlantedWord(user); }, config.metric,
      config.seed, [](size_t user) { return PlantedLabel(user); });
}

void ExpectSameResult(const core::MechanismResult& a,
                      const core::MechanismResult& b) {
  EXPECT_EQ(a.frequent_length, b.frequent_length);
  ASSERT_EQ(a.shapes.size(), b.shapes.size());
  for (size_t i = 0; i < a.shapes.size(); ++i) {
    EXPECT_EQ(a.shapes[i].shape, b.shapes[i].shape);
    EXPECT_EQ(a.shapes[i].label, b.shapes[i].label);
    // Bit-exact: both paths share per-user seeds, integer bit tallies,
    // and the one OUE debias formula.
    EXPECT_EQ(a.shapes[i].frequency, b.shapes[i].frequency);
  }
  ASSERT_EQ(a.refined_pool.size(), b.refined_pool.size());
  for (size_t i = 0; i < a.refined_pool.size(); ++i) {
    EXPECT_EQ(a.refined_pool[i].shape, b.refined_pool[i].shape);
    EXPECT_EQ(a.refined_pool[i].label, b.refined_pool[i].label);
    EXPECT_EQ(a.refined_pool[i].frequency, b.refined_pool[i].frequency);
  }
  EXPECT_EQ(a.accountant.charges(), b.accountant.charges());
}

// --- The determinism contract, classification edition -------------------

TEST(CollectorClassificationTest, MatchesCoreAcrossDeterminismMatrix) {
  MechanismConfig config = TestConfig();
  const size_t kUsers = 3000;
  ClientFleet fleet = LabeledFleet(kUsers, config);

  std::vector<Sequence> words = fleet.MaterializeWords();
  std::vector<int> labels = fleet.MaterializeLabels();
  ASSERT_EQ(labels.size(), kUsers);
  core::PrivShape reference(config);
  auto expected = reference.Run(words, &labels);
  ASSERT_TRUE(expected.ok()) << expected.status();
  ASSERT_FALSE(expected->shapes.empty());

  ThreadPool pool(4);
  for (bool streaming : {true, false}) {
    for (size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
      for (size_t collectors : {size_t{1}, size_t{3}}) {
        CollectorOptions options;
        options.streaming = streaming;
        options.num_shards = shards;
        MultiCollector sites(config, options, &pool, collectors);
        auto got = sites.Collect(fleet);
        ASSERT_TRUE(got.ok())
            << got.status() << " streaming=" << streaming
            << " shards=" << shards << " collectors=" << collectors;
        ExpectSameResult(*expected, *got);
      }
    }
  }
}

TEST(CollectorClassificationTest, MatchesPrivShapeLabeledShapes) {
  // The public classification API and the collector agree shape-for-shape
  // (PrivShapeLabeledShapes is a projection of the same MechanismResult).
  MechanismConfig config = TestConfig();
  ClientFleet fleet = LabeledFleet(2500, config);
  std::vector<Sequence> words = fleet.MaterializeWords();
  std::vector<int> labels = fleet.MaterializeLabels();

  core::PrivShape mechanism(config);
  auto expected = core::PrivShapeLabeledShapes(mechanism, words, labels);
  ASSERT_TRUE(expected.ok()) << expected.status();

  ThreadPool pool(2);
  auto got = RoundCoordinator(config, {}, &pool).Collect(fleet);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got->shapes.size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ(got->shapes[i].shape, (*expected)[i].shape);
    EXPECT_EQ(got->shapes[i].label, (*expected)[i].label);
  }
  // Every represented class contributes a criterion shape.
  for (const auto& shape : got->shapes) {
    EXPECT_GE(shape.label, 0);
    EXPECT_LT(shape.label, kClasses);
  }
}

TEST(CollectorClassificationTest, MetricsRecordThePeRound) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = LabeledFleet(2000, config);
  ThreadPool pool(2);
  RoundCoordinator coordinator(config, {}, &pool);
  CollectorMetrics metrics;
  auto result = coordinator.Collect(fleet, &metrics);
  ASSERT_TRUE(result.ok()) << result.status();

  ASSERT_GE(metrics.rounds.size(), 3u);
  EXPECT_EQ(metrics.rounds.back().stage, "Pe");
  for (const auto& round : metrics.rounds) {
    EXPECT_EQ(round.rejected, 0u) << round.stage;
    EXPECT_EQ(round.client_errors, 0u) << round.stage;
    EXPECT_GT(round.bytes_down, 0u) << round.stage;
  }
  // An OUE bit-vector report is much larger than a varint report: the
  // P_e upstream bytes must dominate its user count.
  EXPECT_GT(metrics.rounds.back().bytes_up, metrics.rounds.back().users);
}

TEST(CollectorClassificationTest, MislabeledSessionsCountAsClientErrors) {
  // Labels outside [0, num_classes) must fail on the client — no report
  // leaves the device — and surface as client_errors, not as rejects or
  // as silently skewed estimates.
  MechanismConfig config = TestConfig();
  const size_t kUsers = 1500;
  ClientFleet fleet(
      kUsers, [](size_t user) { return PlantedWord(user); }, config.metric,
      config.seed,
      [](size_t user) {
        return user % 10 == 3 ? kClasses + 7 : PlantedLabel(user);
      });
  ThreadPool pool(2);
  RoundCoordinator coordinator(config, {}, &pool);
  CollectorMetrics metrics;
  auto result = coordinator.Collect(fleet, &metrics);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& pe = metrics.rounds.back();
  ASSERT_EQ(pe.stage, "Pe");
  EXPECT_GT(pe.client_errors, 0u);
  EXPECT_EQ(pe.rejected, 0u);
  EXPECT_EQ(pe.accepted + pe.client_errors, pe.users);
}

// --- Protocol-level parity ----------------------------------------------

TEST(CollectorClassificationTest, AnswerBitsMatchUnaryEncodingOracle) {
  // One user's P_e report must contain exactly the bit vector the
  // in-process ldp::UnaryEncoding oracle would draw for the same cell
  // from the same seed — that is what makes the aggregate byte-identical.
  proto::ClassRefineRequest request;
  request.epsilon = 4.0;
  request.num_classes = kClasses;
  request.candidates = {{0, 1, 2}, {2, 1, 0}};
  auto ctx = proto::RoundContext::ClassRefinement(request, dist::Metric::kSed);
  ASSERT_TRUE(ctx.ok()) << ctx.status();
  size_t cells = request.candidates.size() * kClasses;
  auto oue = ldp::UnaryEncoding::Create(
      cells, 4.0, ldp::UnaryEncoding::Variant::kOptimized);
  ASSERT_TRUE(oue.ok());

  proto::AnswerScratch scratch;
  for (uint64_t user = 0; user < 100; ++user) {
    Sequence word = PlantedWord(user);
    int label = PlantedLabel(user);
    proto::ClientSession session(word, dist::Metric::kSed,
                                 DeriveSeed(5, user), label);
    proto::Report report;
    ASSERT_TRUE(
        session.AnswerClassRefinement(*ctx, &scratch, &report).ok());
    EXPECT_EQ(report.kind, ReportKind::kClassRefine);
    ASSERT_EQ(report.bits.size(), cells);

    // Reproduce the draw with the shared oracle from the same seed. The
    // argmin is deterministic, so only the Bernoulli stream matters.
    size_t pick = 0;
    {
      auto distance = dist::MakeDistance(dist::Metric::kSed);
      pick = core::ClosestCandidate(word, request.candidates, *distance,
                                    nullptr);
    }
    Rng rng(DeriveSeed(5, user));
    std::vector<uint8_t> want = oue->PerturbValue(
        pick * kClasses + static_cast<size_t>(label), &rng);
    EXPECT_EQ(report.bits, want) << "user " << user;
  }
}

TEST(CollectorClassificationTest, AggregatorMatchesOracleEstimates) {
  const double kEps = 3.0;
  const size_t kCells = 8;
  auto oue = ldp::UnaryEncoding::Create(
      kCells, kEps, ldp::UnaryEncoding::Variant::kOptimized);
  ASSERT_TRUE(oue.ok());
  proto::ReportAggregator agg(ReportKind::kClassRefine, kCells, kEps);

  for (uint64_t user = 0; user < 500; ++user) {
    Rng rng(DeriveSeed(21, user));
    std::vector<uint8_t> bits = oue->PerturbValue(user % kCells, &rng);
    ASSERT_TRUE(oue->SubmitBits(bits).ok());
    proto::Report report;
    report.kind = ReportKind::kClassRefine;
    report.bits = bits;
    agg.ConsumeReport(report);
  }
  EXPECT_EQ(agg.accepted(), 500u);
  EXPECT_EQ(agg.rejected(), 0u);
  // Byte-identical estimates, not just close ones.
  EXPECT_EQ(agg.EstimatedCounts(), oue->EstimateCounts());
}

TEST(CollectorClassificationTest, AggregatorMergePartitionInvariant) {
  const double kEps = 2.0;
  const size_t kCells = 6;
  auto make_report = [&](uint64_t user) {
    Rng rng(DeriveSeed(33, user));
    auto oue = ldp::UnaryEncoding::Create(
        kCells, kEps, ldp::UnaryEncoding::Variant::kOptimized);
    proto::Report report;
    report.kind = ReportKind::kClassRefine;
    report.bits = oue->PerturbValue(user % kCells, &rng);
    return report;
  };
  proto::ReportAggregator single(ReportKind::kClassRefine, kCells, kEps);
  proto::ReportAggregator left(ReportKind::kClassRefine, kCells, kEps);
  proto::ReportAggregator right(ReportKind::kClassRefine, kCells, kEps);
  for (uint64_t user = 0; user < 200; ++user) {
    proto::Report report = make_report(user);
    single.ConsumeReport(report);
    (user % 3 == 0 ? left : right).ConsumeReport(report);
  }
  ASSERT_TRUE(left.Merge(right).ok());
  EXPECT_EQ(left.accepted(), single.accepted());
  EXPECT_EQ(left.raw_counts(), single.raw_counts());
  EXPECT_EQ(left.EstimatedCounts(), single.EstimatedCounts());
}

TEST(CollectorClassificationTest, UnlabeledSessionFailsClassRefinement) {
  proto::ClassRefineRequest request;
  request.epsilon = 4.0;
  request.num_classes = 2;
  request.candidates = {{0, 1}, {1, 0}};
  auto ctx = proto::RoundContext::ClassRefinement(request, dist::Metric::kSed);
  ASSERT_TRUE(ctx.ok());
  proto::ClientSession unlabeled({0, 1}, dist::Metric::kSed, 7);
  proto::Report report;
  auto st = unlabeled.AnswerClassRefinement(*ctx, nullptr, &report);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  proto::ClientSession mislabeled({0, 1}, dist::Metric::kSed, 7, 2);
  EXPECT_EQ(mislabeled.AnswerClassRefinement(*ctx, nullptr, &report).code(),
            StatusCode::kFailedPrecondition);
}

// --- Label ingestion ----------------------------------------------------

TEST(LabelIngestTest, ParseLabelsCsvHappyPath) {
  auto labels = collector::ParseLabelsCsv("0\n1\n2\n1\n", 3);
  ASSERT_TRUE(labels.ok()) << labels.status();
  EXPECT_EQ(*labels, (std::vector<int>{0, 1, 2, 1}));
}

TEST(LabelIngestTest, ParseLabelsCsvRejectsBadInput) {
  // Out-of-range, negative, non-numeric, multi-column, and empty inputs
  // all fail with a clear status at ingest time.
  EXPECT_EQ(collector::ParseLabelsCsv("0\n3\n", 3).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(collector::ParseLabelsCsv("-1\n", 3).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(collector::ParseLabelsCsv("zero\n", 3).ok());
  EXPECT_FALSE(collector::ParseLabelsCsv("1,2\n", 3).ok());
  EXPECT_FALSE(collector::ParseLabelsCsv("", 3).ok());
  EXPECT_FALSE(collector::ParseLabelsCsv("1\n", 0).ok());
}

TEST(LabelIngestTest, GeneratedLabelSourceMatchesDatasetClasses) {
  auto labels = collector::GeneratedLabelSource("trace");
  ASSERT_TRUE(labels.ok());
  auto classes = collector::GeneratedNumClasses("trace");
  ASSERT_TRUE(classes.ok());
  EXPECT_EQ(*classes, 3);
  for (size_t user = 0; user < 12; ++user) {
    EXPECT_EQ((*labels)(user), static_cast<int>(user % 3));
  }
  EXPECT_FALSE(collector::GeneratedLabelSource("nope").ok());
}

TEST(LabelIngestTest, FromWordsTilesLabelsWithWords) {
  std::vector<Sequence> words = {{0, 1}, {1, 2}, {2, 0}};
  std::vector<int> labels = {0, 1, 2};
  ClientFleet fleet = ClientFleet::FromWords(words, 8, dist::Metric::kSed,
                                             3, labels);
  ASSERT_TRUE(fleet.labeled());
  for (size_t user = 0; user < 8; ++user) {
    EXPECT_EQ(fleet.WordFor(user), words[user % 3]);
    EXPECT_EQ(fleet.LabelFor(user), labels[user % 3]);
  }
  EXPECT_EQ(fleet.MaterializeLabels().size(), 8u);
  ClientFleet unlabeled = ClientFleet::FromWords(words, 8,
                                                 dist::Metric::kSed, 3);
  EXPECT_FALSE(unlabeled.labeled());
  EXPECT_EQ(unlabeled.LabelFor(0), -1);
  EXPECT_TRUE(unlabeled.MaterializeLabels().empty());
}

}  // namespace
}  // namespace privshape
