#include "ldp/numeric.h"

#include <cmath>

#include "common/math_utils.h"

namespace privshape::ldp {

// ---------------------------------------------------------------------------
// Piecewise Mechanism

PiecewiseMechanism::PiecewiseMechanism(double epsilon)
    : epsilon_(epsilon),
      e_half_(std::exp(epsilon / 2.0)),
      c_((e_half_ + 1.0) / (e_half_ - 1.0)) {}

Result<PiecewiseMechanism> PiecewiseMechanism::Create(double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return PiecewiseMechanism(epsilon);
}

PS_RNG_CANONICAL
double PiecewiseMechanism::Perturb(double value, Rng* rng) const {
  double v = Clamp(value, -1.0, 1.0);
  // High-probability band [l(v), r(v)] of width C - 1 around the input.
  double l = (c_ + 1.0) / 2.0 * v - (c_ - 1.0) / 2.0;
  double r = l + c_ - 1.0;
  double p_band = e_half_ / (e_half_ + 1.0);
  if (rng->Bernoulli(p_band)) {
    return rng->Uniform(l, r);
  }
  // Uniform over the complement [-C, l) U (r, C].
  double left_len = l - (-c_);
  double right_len = c_ - r;
  double u = rng->Uniform(0.0, left_len + right_len);
  return u < left_len ? -c_ + u : r + (u - left_len);
}

double PiecewiseMechanism::DensityAt(double input, double output) const {
  double v = Clamp(input, -1.0, 1.0);
  if (output < -c_ || output > c_) return 0.0;
  double l = (c_ + 1.0) / 2.0 * v - (c_ - 1.0) / 2.0;
  double r = l + c_ - 1.0;
  // Outside mass 1/(e^{eps/2}+1) spreads over 2C - (C-1) = C+1; inside mass
  // e^{eps/2}/(e^{eps/2}+1) over the band of width C-1. The ratio of the two
  // densities is exactly e^eps.
  double outside = (1.0 / (e_half_ + 1.0)) / (c_ + 1.0);
  double inside = (e_half_ / (e_half_ + 1.0)) / (c_ - 1.0);
  return (output >= l && output <= r) ? inside : outside;
}

// ---------------------------------------------------------------------------
// Duchi mechanism

DuchiMechanism::DuchiMechanism(double epsilon)
    : epsilon_(epsilon),
      c_((std::exp(epsilon) + 1.0) / (std::exp(epsilon) - 1.0)) {}

Result<DuchiMechanism> DuchiMechanism::Create(double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return DuchiMechanism(epsilon);
}

PS_RNG_CANONICAL
double DuchiMechanism::Perturb(double value, Rng* rng) const {
  double v = Clamp(value, -1.0, 1.0);
  double e = std::exp(epsilon_);
  double p_pos = (v * (e - 1.0) + e + 1.0) / (2.0 * e + 2.0);
  return rng->Bernoulli(p_pos) ? c_ : -c_;
}

// ---------------------------------------------------------------------------
// Laplace mechanism

Result<LaplaceMechanism> LaplaceMechanism::Create(double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return LaplaceMechanism(epsilon);
}

PS_RNG_CANONICAL
double LaplaceMechanism::Perturb(double value, Rng* rng) const {
  double v = Clamp(value, -1.0, 1.0);
  return v + rng->Laplace(2.0 / epsilon_);
}

}  // namespace privshape::ldp
