#include "eval/agglomerative.h"

#include <algorithm>
#include <limits>

namespace privshape::eval {

Result<std::vector<int>> AgglomerativeCluster(
    const std::vector<std::vector<double>>& distance_matrix, int k,
    Linkage linkage) {
  size_t n = distance_matrix.size();
  if (n == 0) return Status::InvalidArgument("empty distance matrix");
  for (const auto& row : distance_matrix) {
    if (row.size() != n) {
      return Status::InvalidArgument("distance matrix must be square");
    }
  }
  if (k < 1 || static_cast<size_t>(k) > n) {
    return Status::InvalidArgument("k must be in [1, n]");
  }

  // Active clusters as member lists; O(n^3) overall, fine for c*k items.
  std::vector<std::vector<size_t>> clusters(n);
  for (size_t i = 0; i < n; ++i) clusters[i] = {i};

  auto cluster_distance = [&](const std::vector<size_t>& a,
                              const std::vector<size_t>& b) {
    double best_single = std::numeric_limits<double>::infinity();
    double best_complete = 0.0;
    double sum = 0.0;
    for (size_t i : a) {
      for (size_t j : b) {
        double d = distance_matrix[i][j];
        best_single = std::min(best_single, d);
        best_complete = std::max(best_complete, d);
        sum += d;
      }
    }
    switch (linkage) {
      case Linkage::kSingle:
        return best_single;
      case Linkage::kComplete:
        return best_complete;
      case Linkage::kAverage:
        return sum / static_cast<double>(a.size() * b.size());
    }
    return sum;
  };

  while (clusters.size() > static_cast<size_t>(k)) {
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 1;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        double d = cluster_distance(clusters[i], clusters[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<long>(bj));
  }

  std::vector<int> labels(n, 0);
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (size_t i : clusters[c]) labels[i] = static_cast<int>(c);
  }
  return labels;
}

}  // namespace privshape::eval
