#include "core/subshape.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.h"

namespace privshape {
namespace {

using core::EstimateSubShapes;
using core::IndexToPair;
using core::PairToIndex;
using core::SubShapeDomainSize;

TEST(PairIndexTest, DomainSizes) {
  EXPECT_EQ(SubShapeDomainSize(4, false), 4u * 3u + 1u);
  EXPECT_EQ(SubShapeDomainSize(4, true), 16u + 1u);
  EXPECT_EQ(SubShapeDomainSize(3, false), 7u);
}

// Property: PairToIndex / IndexToPair are mutually inverse bijections over
// the full valid domain, for both pair-domain variants.
class PairBijectionTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(PairBijectionTest, RoundTripsEveryPair) {
  auto [t, allow_repeats] = GetParam();
  std::set<size_t> seen;
  for (int a = 0; a < t; ++a) {
    for (int b = 0; b < t; ++b) {
      if (!allow_repeats && a == b) continue;
      size_t idx = PairToIndex(static_cast<Symbol>(a),
                               static_cast<Symbol>(b), t, allow_repeats);
      EXPECT_LT(idx, SubShapeDomainSize(t, allow_repeats) - 1);
      EXPECT_TRUE(seen.insert(idx).second) << "collision at " << a << "," << b;
      auto [ra, rb] = IndexToPair(idx, t, allow_repeats);
      EXPECT_EQ(ra, a);
      EXPECT_EQ(rb, b);
    }
  }
  // The mapping is onto [0, pairs).
  EXPECT_EQ(seen.size(), SubShapeDomainSize(t, allow_repeats) - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Domains, PairBijectionTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Bool()));

std::vector<size_t> AllUsers(size_t n) {
  std::vector<size_t> users(n);
  std::iota(users.begin(), users.end(), 0);
  return users;
}

TEST(SubShapeTest, RecoversPlantedTransitions) {
  // Every user holds "abca" (t=3): level 1 pair (a,b), level 2 (b,c),
  // level 3 (c,a). With eps = 4 the top-1 pair per level must match.
  std::vector<Sequence> sequences(3000, Sequence{0, 1, 2, 0});
  Rng rng(101);
  auto est = EstimateSubShapes(sequences, AllUsers(sequences.size()),
                               /*ell_s=*/4, /*t=*/3, /*top_m=*/1,
                               /*epsilon=*/4.0, /*allow_repeats=*/false,
                               &rng);
  ASSERT_TRUE(est.ok());
  ASSERT_EQ(est->top_transitions.size(), 3u);
  EXPECT_EQ(est->top_transitions[0][0], (trie::Transition{0, 1}));
  EXPECT_EQ(est->top_transitions[1][0], (trie::Transition{1, 2}));
  EXPECT_EQ(est->top_transitions[2][0], (trie::Transition{2, 0}));
}

TEST(SubShapeTest, SingleLevelSequenceYieldsNoTransitions) {
  std::vector<Sequence> sequences(10, Sequence{0});
  Rng rng(102);
  auto est = EstimateSubShapes(sequences, AllUsers(10), 1, 3, 2, 1.0, false,
                               &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->top_transitions.empty());
}

TEST(SubShapeTest, ShortSequencesReportPaddingSentinel) {
  // Users hold single-symbol words but ell_s = 4: all sampled pairs fall in
  // the padded region, so no real pair should dominate; the function must
  // still return top lists (noise only).
  std::vector<Sequence> sequences(2000, Sequence{0});
  Rng rng(103);
  auto est = EstimateSubShapes(sequences, AllUsers(sequences.size()), 4, 3,
                               2, 4.0, false, &rng);
  ASSERT_TRUE(est.ok());
  ASSERT_EQ(est->counts.size(), 3u);
  // The sentinel bucket (last index) should hold nearly all the mass at
  // each level; real pairs stay near zero.
  for (const auto& level_counts : est->counts) {
    size_t sentinel = level_counts.size() - 1;
    double total_real = 0.0;
    for (size_t i = 0; i < sentinel; ++i) total_real += level_counts[i];
    EXPECT_GT(level_counts[sentinel], total_real);
  }
}

TEST(SubShapeTest, TopMRespectsRequestedCount) {
  std::vector<Sequence> sequences(1000, Sequence{0, 1, 0, 1});
  Rng rng(104);
  auto est = EstimateSubShapes(sequences, AllUsers(sequences.size()), 4, 4,
                               5, 2.0, false, &rng);
  ASSERT_TRUE(est.ok());
  for (const auto& level : est->top_transitions) {
    EXPECT_EQ(level.size(), 5u);
  }
}

TEST(SubShapeTest, AllowRepeatsHandlesUncompressedWords) {
  // Raw SAX words with runs: (a,a) must be representable.
  std::vector<Sequence> sequences(2000, Sequence{0, 0, 1, 1});
  Rng rng(105);
  auto est = EstimateSubShapes(sequences, AllUsers(sequences.size()), 4, 2,
                               1, 4.0, true, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->top_transitions[0][0], (trie::Transition{0, 0}));
  EXPECT_EQ(est->top_transitions[1][0], (trie::Transition{0, 1}));
  EXPECT_EQ(est->top_transitions[2][0], (trie::Transition{1, 1}));
}

TEST(SubShapeTest, RejectsInvalidInputs) {
  std::vector<Sequence> sequences(10, Sequence{0, 1});
  Rng rng(106);
  EXPECT_FALSE(
      EstimateSubShapes(sequences, AllUsers(10), 0, 3, 1, 1.0, false, &rng)
          .ok());
  EXPECT_FALSE(
      EstimateSubShapes(sequences, {99}, 3, 3, 1, 1.0, false, &rng).ok());
}

}  // namespace
}  // namespace privshape
