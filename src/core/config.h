#ifndef PRIVSHAPE_CORE_CONFIG_H_
#define PRIVSHAPE_CORE_CONFIG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "distance/distance.h"
#include "ldp/accountant.h"
#include "series/sequence.h"

namespace privshape::core {

/// Shared configuration of the baseline mechanism (Algorithm 1) and
/// PrivShape (Algorithm 2). Defaults mirror the paper's §V-B3 settings for
/// the Trace classification task.
struct MechanismConfig {
  double epsilon = 4.0;  ///< user-level privacy budget

  int t = 4;   ///< SAX alphabet size (informational; sequences arrive SAX'd)
  int k = 3;   ///< number of frequent shapes to extract
  int c = 3;   ///< candidate multiplier: top c*k survive pruning

  int ell_low = 1;    ///< length clip range (paper: 1)
  int ell_high = 10;  ///< 10 for Trace, 15 for Symbols

  /// Population split (must sum to <= 1; the paper uses 2/8/70/20%).
  /// The baseline mechanism only uses frac_a; all remaining users feed the
  /// trie expansion.
  double frac_a = 0.02;  ///< frequent-length estimation
  double frac_b = 0.08;  ///< sub-shape estimation (PrivShape only)
  double frac_c = 0.70;  ///< trie expansion
  double frac_d = 0.20;  ///< two-level refinement (PrivShape only)

  dist::Metric metric = dist::Metric::kSed;

  /// Baseline-only: absolute per-level count threshold (the paper prunes
  /// candidates whose estimated frequency is below N = 100 at n = 40,000;
  /// scale proportionally for smaller populations).
  double baseline_threshold = 100.0;

  /// When > 0 the two-level refinement uses OUE over c*k*num_classes cells
  /// (candidate x class), which is the paper's classification variant
  /// (§V-E); labels must be passed to Run(). When 0 the refinement uses
  /// GRR over the c*k candidates (clustering task).
  int num_classes = 0;

  /// When true the trie may expand a node with its own symbol — required
  /// by the "No Compression" ablation (§V-J) where sequences are raw SAX
  /// words with repeated symbols.
  bool allow_repeats = false;

  /// Ablation switches (§IV-C design choices). `disable_refinement` skips
  /// the P_d re-estimation and ranks leaves by their trie-level EM counts;
  /// `disable_postprocessing` skips the similar-shape dedup and returns
  /// the top-k refined candidates directly.
  bool disable_refinement = false;
  bool disable_postprocessing = false;

  uint64_t seed = 2023;

  Status Validate() const;
};

/// One extracted shape.
struct ShapeCandidate {
  Sequence shape;
  double frequency = 0.0;  ///< estimated (debiased) count
  int label = -1;          ///< argmax class (classification variant only)
};

/// Output of either mechanism.
struct MechanismResult {
  int frequent_length = 0;               ///< estimated ell_S
  std::vector<ShapeCandidate> shapes;    ///< final top-k, frequency-sorted
  std::vector<ShapeCandidate> refined_pool;  ///< pre-dedup c*k candidates
  ldp::PrivacyAccountant accountant;     ///< budget audit trail
};

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_CONFIG_H_
