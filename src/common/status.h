/// \file
/// Module `common` — paper-agnostic infrastructure shared by every layer:
/// Status/Result error propagation, deterministic RNG, CSV/CLI helpers,
/// logging, and the thread pool. Invariant: nothing here knows about time
/// series, SAX, or privacy; no other module may be included from common.

#ifndef PRIVSHAPE_COMMON_STATUS_H_
#define PRIVSHAPE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace privshape {

/// Error taxonomy for the library. Mirrors the RocksDB/Abseil convention:
/// public entry points return Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kUnimplemented,
  kCancelled,
};

/// Lightweight status object carrying a code and a human-readable message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// The operation was deliberately stopped (graceful shutdown) — partial
  /// work was abandoned, not failed.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: epsilon must be positive".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Value-or-error wrapper (a minimal StatusOr). The value is only
/// accessible when `ok()`; accessing it otherwise aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value means `return value;` works.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "value() called on errored Result");
    return *value_;
  }
  T& value() & {
    assert(ok() && "value() called on errored Result");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() called on errored Result");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller (RocksDB-style macro).
#define PRIVSHAPE_RETURN_IF_ERROR(expr)                \
  do {                                                 \
    ::privshape::Status _status = (expr);              \
    if (!_status.ok()) return _status;                 \
  } while (0)

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_STATUS_H_
