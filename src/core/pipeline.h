#ifndef PRIVSHAPE_CORE_PIPELINE_H_
#define PRIVSHAPE_CORE_PIPELINE_H_

#include <vector>

#include "common/status.h"
#include "series/sequence.h"
#include "series/time_series.h"

namespace privshape::core {

/// Front-end transformation every user applies locally before the
/// mechanisms run. Deterministic, so it consumes no privacy budget
/// (Theorems 1/3 argue this explicitly).
struct TransformOptions {
  int t = 4;  ///< SAX alphabet size
  int w = 10; ///< SAX segment length

  /// false -> the "Without SAX" ablation (§V-J): values are discretized on
  /// a fixed 0.33-unit grid instead of PAA + Gaussian breakpoints.
  bool use_sax = true;
  double grid_interval = 0.33;
  double grid_limit = 0.99;

  /// false -> the "No Compression" ablation: raw SAX words keep their
  /// repeated symbols (mechanisms then need config.allow_repeats = true).
  bool compress = true;

  bool z_normalize = true;

  /// Alphabet size the mechanisms should use for this configuration
  /// (t for SAX; the grid band count otherwise).
  int EffectiveAlphabet() const;
};

/// Transforms one raw series into its (optionally compressed) word.
Result<Sequence> TransformSeries(const std::vector<double>& values,
                                 const TransformOptions& options);

/// Transforms every instance; order preserved, labels untouched.
Result<std::vector<Sequence>> TransformDataset(
    const series::Dataset& dataset, const TransformOptions& options);

/// Reconstructs a numeric silhouette from a word (each symbol expands to
/// its band's conditional-mean level over `w` points). Used to compare
/// extracted shapes against numeric ground truth (Tables III/IV).
Result<std::vector<double>> ReconstructShape(const Sequence& word,
                                             const TransformOptions& options);

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_PIPELINE_H_
