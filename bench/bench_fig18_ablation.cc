// Fig. 18: ablation experiments on the Trace classification task for eps
// in {1,2,3,4}: (a) PrivShape without SAX (0.33-unit value grid instead of
// PAA + Gaussian breakpoints) and (b) PrivShape without the compression
// step (raw SAX words keep repeated symbols).

#include <iostream>

#include "bench/harness.h"
#include "series/generators.h"
#include "series/time_series.h"

namespace pb = privshape::bench;

namespace {

double RunVariant(const privshape::series::Dataset& train,
                  const privshape::series::Dataset& test, double eps,
                  uint64_t seed, bool use_sax, bool compress) {
  privshape::core::TransformOptions transform = pb::TraceTransform();
  transform.use_sax = use_sax;
  transform.compress = compress;
  privshape::core::MechanismConfig config = pb::TraceConfig(eps, seed);
  config.t = transform.EffectiveAlphabet();
  config.num_classes = 3;
  config.allow_repeats = !compress;
  if (!compress) config.ell_high = 12;  // uncompressed words are longer
  return pb::RunPrivShapeClassification(train, test, transform, config)
      .accuracy;
}

}  // namespace

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 2400, 2);

  pb::PrintTitle("Fig. 18: ablations on Trace classification");
  pb::PrintHeader({"eps", "PrivShape", "WithoutSAX", "NoCompression",
                   "PatternLDP+RF"});
  auto csv = pb::MaybeCsv("fig18_ablation");
  if (csv) {
    csv->WriteHeader(
        {"eps", "privshape", "without_sax", "no_compression", "patternldp"});
  }

  for (double eps : {1.0, 2.0, 3.0, 4.0}) {
    double full = 0, no_sax = 0, no_compress = 0, pl_acc = 0;
    for (int trial = 0; trial < scale.trials; ++trial) {
      uint64_t seed = scale.seed + static_cast<uint64_t>(trial);
      privshape::series::GeneratorOptions gen;
      gen.num_instances = scale.users;
      gen.seed = seed;
      auto dataset = privshape::series::MakeTraceDataset(gen);
      privshape::series::Dataset train, test;
      privshape::series::TrainTestSplit(dataset, 0.8, seed, &train, &test);

      full += RunVariant(train, test, eps, seed, true, true);
      no_sax += RunVariant(train, test, eps, seed, false, true);
      no_compress += RunVariant(train, test, eps, seed, true, false);

      pb::PatternLdpBenchOptions pl;
      pl.epsilon = eps;
      pl.seed = seed;
      pl_acc +=
          pb::RunPatternLdpRfClassification(train, test, pl, 3).accuracy;
    }
    double n = scale.trials;
    std::vector<std::string> row = {
        privshape::FormatDouble(eps, 3),
        privshape::FormatDouble(full / n, 4),
        privshape::FormatDouble(no_sax / n, 4),
        privshape::FormatDouble(no_compress / n, 4),
        privshape::FormatDouble(pl_acc / n, 4)};
    pb::PrintRow(row);
    if (csv) csv->WriteRow(row);
  }

  std::cout << "\nExpected shape (paper Fig. 18): full PrivShape >= both "
               "ablations >= PatternLDP; dropping SAX or compression "
               "degrades utility but stays above PatternLDP.\n";
  return 0;
}
