/// \file
/// Process-wide graceful-shutdown flag. A server binary installs the
/// handler once; SIGINT/SIGTERM then set an atomic flag instead of
/// killing the process, and the long-running loops (collector rounds,
/// the daemon's event loop) poll it and wind down cleanly — draining
/// queues, closing sockets, and still emitting their metrics.
///
/// Thread-safety contract: the flag is a lone std::atomic<bool> — the
/// only state a signal handler may touch (a Mutex is not
/// async-signal-safe, so no PS_GUARDED_BY here by design). Readers poll
/// with relaxed semantics; the flag never orders other memory.

#ifndef PRIVSHAPE_COMMON_SHUTDOWN_H_
#define PRIVSHAPE_COMMON_SHUTDOWN_H_

namespace privshape {

/// Installs SIGINT/SIGTERM handlers that set the shutdown flag. Installed
/// without SA_RESTART so a signal also interrupts blocking syscalls
/// (epoll_wait returns EINTR and the loop re-checks the flag). Safe to
/// call more than once.
void InstallShutdownHandler();

/// True once a shutdown signal arrived (or RequestShutdown was called).
bool ShutdownRequested();

/// Sets the flag programmatically — what the signal handler does, minus
/// the signal. Used by tests and by in-process embedders.
void RequestShutdown();

/// Clears the flag so one test's shutdown cannot leak into the next.
/// Test-only; production code never un-requests a shutdown.
void ResetShutdownForTest();

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_SHUTDOWN_H_
