#include "core/em_selection.h"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "common/rng.h"

namespace privshape {
namespace {

using core::EmSelectionCounts;

std::vector<size_t> AllUsers(size_t n) {
  std::vector<size_t> users(n);
  std::iota(users.begin(), users.end(), 0);
  return users;
}

TEST(EmSelectionTest, CountsSumToPopulationSize) {
  std::vector<Sequence> candidates = {{0, 1}, {1, 2}, {2, 0}};
  std::vector<Sequence> sequences(50, Sequence{0, 1, 2});
  Rng rng(111);
  auto counts = EmSelectionCounts(candidates, sequences, AllUsers(50),
                                  dist::Metric::kSed, 2.0, true, &rng);
  ASSERT_TRUE(counts.ok());
  double total = 0;
  for (double c : *counts) total += c;
  EXPECT_DOUBLE_EQ(total, 50.0);
}

TEST(EmSelectionTest, TrueCandidateDominatesAtHighEps) {
  std::vector<Sequence> candidates = {{0, 1}, {2, 3}, {3, 0}};
  std::vector<Sequence> sequences(400, Sequence{0, 1});
  Rng rng(112);
  auto counts = EmSelectionCounts(candidates, sequences, AllUsers(400),
                                  dist::Metric::kSed, 8.0, false, &rng);
  ASSERT_TRUE(counts.ok());
  EXPECT_GT((*counts)[0], (*counts)[1]);
  EXPECT_GT((*counts)[0], (*counts)[2]);
  EXPECT_GT((*counts)[0], 300.0);
}

TEST(EmSelectionTest, LowEpsApproachesUniform) {
  std::vector<Sequence> candidates = {{0, 1}, {2, 3}};
  std::vector<Sequence> sequences(10000, Sequence{0, 1});
  Rng rng(113);
  auto counts = EmSelectionCounts(candidates, sequences, AllUsers(10000),
                                  dist::Metric::kSed, 0.01, false, &rng);
  ASSERT_TRUE(counts.ok());
  // At eps ~ 0 both candidates are nearly equally likely.
  EXPECT_NEAR((*counts)[0] / 10000.0, 0.5, 0.03);
}

TEST(EmSelectionTest, PrefixCompareUsesUserPrefix) {
  // User sequence "abcd"; candidate "ab" matches its 2-prefix exactly, so
  // with prefix comparison candidate 0 dominates over "cd".
  std::vector<Sequence> candidates = {{0, 1}, {2, 3}};
  std::vector<Sequence> sequences(300, Sequence{0, 1, 2, 3});
  Rng rng(114);
  auto counts = EmSelectionCounts(candidates, sequences, AllUsers(300),
                                  dist::Metric::kSed, 6.0, true, &rng);
  ASSERT_TRUE(counts.ok());
  EXPECT_GT((*counts)[0], (*counts)[1]);
}

TEST(EmSelectionTest, EmptyPopulationGivesZeroCounts) {
  std::vector<Sequence> candidates = {{0}, {1}};
  std::vector<Sequence> sequences(5, Sequence{0});
  Rng rng(115);
  auto counts = EmSelectionCounts(candidates, sequences, {},
                                  dist::Metric::kDtw, 1.0, true, &rng);
  ASSERT_TRUE(counts.ok());
  EXPECT_DOUBLE_EQ((*counts)[0], 0.0);
  EXPECT_DOUBLE_EQ((*counts)[1], 0.0);
}

TEST(EmSelectionTest, RejectsEmptyCandidates) {
  std::vector<Sequence> sequences(5, Sequence{0});
  Rng rng(116);
  EXPECT_FALSE(EmSelectionCounts({}, sequences, AllUsers(5),
                                 dist::Metric::kSed, 1.0, true, &rng)
                   .ok());
}

TEST(EmSelectionTest, RejectsBadUserIndex) {
  std::vector<Sequence> candidates = {{0}};
  std::vector<Sequence> sequences(5, Sequence{0});
  Rng rng(117);
  EXPECT_FALSE(EmSelectionCounts(candidates, sequences, {77},
                                 dist::Metric::kSed, 1.0, true, &rng)
                   .ok());
}

std::vector<dist::Metric> AllMetrics() {
  return {dist::Metric::kDtw, dist::Metric::kSed, dist::Metric::kEuclidean,
          dist::Metric::kHausdorff};
}

Sequence RandomWord(Rng* rng, size_t max_len, int alphabet) {
  Sequence word;
  size_t len = 1 + rng->Index(max_len);
  for (size_t i = 0; i < len; ++i) {
    word.push_back(static_cast<Symbol>(rng->Index(alphabet)));
  }
  return word;
}

TEST(MatchDistancesTest, InPlaceVariantBitIdenticalWithReusedBuffers) {
  Rng rng(0x3a7c);
  dist::DtwScratch scratch;
  std::vector<double> out;  // deliberately reused across everything
  for (dist::Metric m : AllMetrics()) {
    auto distance = dist::MakeDistance(m);
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<Sequence> candidates;
      for (size_t c = 0; c < 1 + rng.Index(6); ++c) {
        candidates.push_back(RandomWord(&rng, 6, 4));
      }
      Sequence seq = RandomWord(&rng, 8, 4);
      for (bool prefix : {true, false}) {
        std::vector<double> expect =
            core::MatchDistances(seq, candidates, prefix, *distance);
        core::MatchDistancesInto(seq, candidates, prefix, *distance,
                                 &scratch, &out);
        // Bit-equal element-wise: the determinism contract needs the EM
        // scores (hence draws) identical on both paths.
        ASSERT_EQ(expect.size(), out.size());
        for (size_t i = 0; i < expect.size(); ++i) {
          EXPECT_EQ(expect[i], out[i]) << dist::MetricName(m) << " cand "
                                       << i;
        }
      }
    }
  }
}

TEST(ClosestCandidateTest, EarlyAbandonAgreesWithExhaustiveArgmin) {
  Rng rng(0xc10c);
  dist::DtwScratch scratch;
  for (dist::Metric m : AllMetrics()) {
    auto distance = dist::MakeDistance(m);
    for (int trial = 0; trial < 150; ++trial) {
      std::vector<Sequence> candidates;
      for (size_t c = 0; c < 1 + rng.Index(8); ++c) {
        candidates.push_back(RandomWord(&rng, 6, 3));
      }
      Sequence seq = RandomWord(&rng, 7, 3);
      // Exhaustive reference: full distances, strict < updates.
      double best = std::numeric_limits<double>::infinity();
      size_t expect = 0;
      for (size_t i = 0; i < candidates.size(); ++i) {
        double d = distance->Distance(seq, candidates[i]);
        if (d < best) {
          best = d;
          expect = i;
        }
      }
      EXPECT_EQ(expect,
                core::ClosestCandidate(seq, candidates, *distance, &scratch))
          << dist::MetricName(m) << " trial " << trial;
      EXPECT_EQ(expect, core::ClosestCandidate(seq, candidates, *distance))
          << dist::MetricName(m);
    }
  }
}

TEST(ClosestCandidateTest, TiesBreakToFirstIndexUnderEarlyAbandon) {
  // Duplicate candidates (exact ties, distance 0 among them) and an
  // exact match later in the list: the FIRST zero-distance candidate
  // must win on every path.
  std::vector<Sequence> candidates = {{2, 2}, {0, 1}, {0, 1}, {0, 1}};
  Sequence seq = {0, 1};
  dist::DtwScratch scratch;
  for (dist::Metric m : AllMetrics()) {
    auto distance = dist::MakeDistance(m);
    EXPECT_EQ(core::ClosestCandidate(seq, candidates, *distance, &scratch),
              1u)
        << dist::MetricName(m);
  }
  // All candidates tie (all identical): index 0 wins.
  std::vector<Sequence> all_same(5, Sequence{1, 2, 1});
  for (dist::Metric m : AllMetrics()) {
    auto distance = dist::MakeDistance(m);
    EXPECT_EQ(
        core::ClosestCandidate({2, 0}, all_same, *distance, &scratch), 0u)
        << dist::MetricName(m);
  }
}

TEST(EmSelectionTest, WorksWithEveryMetric) {
  std::vector<Sequence> candidates = {{0, 1}, {1, 0}};
  std::vector<Sequence> sequences(20, Sequence{0, 1});
  for (dist::Metric m :
       {dist::Metric::kDtw, dist::Metric::kSed, dist::Metric::kEuclidean,
        dist::Metric::kHausdorff}) {
    Rng rng(118);
    auto counts = EmSelectionCounts(candidates, sequences, AllUsers(20), m,
                                    2.0, true, &rng);
    ASSERT_TRUE(counts.ok()) << dist::MetricName(m);
  }
}

}  // namespace
}  // namespace privshape
