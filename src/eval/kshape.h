#ifndef PRIVSHAPE_EVAL_KSHAPE_H_
#define PRIVSHAPE_EVAL_KSHAPE_H_

#include <vector>

#include "common/status.h"

namespace privshape::eval {

/// KShape clustering (Paparrizos & Gravano, SIGMOD'15) — the model the
/// paper uses to extract centers from PatternLDP-perturbed Trace data
/// (Fig. 10): shift-invariant clustering based on normalized
/// cross-correlation (NCC), with centroids extracted as the dominant
/// eigenvector of the aligned covariance (power iteration here).
struct KShapeOptions {
  int k = 2;
  int max_iterations = 30;
  int power_iterations = 64;  ///< eigenvector refinement per centroid update
  uint64_t seed = 2023;
};

struct KShapeResult {
  std::vector<int> assignments;
  std::vector<std::vector<double>> centroids;  ///< z-normalized
  int iterations = 0;
};

/// Shape-based distance SBD(a, b) = 1 - max_shift NCC_c(a, b) in [0, 2].
double ShapeBasedDistance(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Fits KShape over equal-length series (z-normalized internally).
Result<KShapeResult> KShape(const std::vector<std::vector<double>>& series,
                            const KShapeOptions& options);

}  // namespace privshape::eval

#endif  // PRIVSHAPE_EVAL_KSHAPE_H_
