#include "core/length_estimation.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace privshape {
namespace {

using core::EstimateFrequentLength;

std::vector<Sequence> MakeSequencesWithLengths(
    const std::vector<size_t>& lengths) {
  std::vector<Sequence> out;
  for (size_t len : lengths) {
    Sequence s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<Symbol>(i % 3));
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<size_t> AllUsers(size_t n) {
  std::vector<size_t> users(n);
  std::iota(users.begin(), users.end(), 0);
  return users;
}

TEST(LengthEstimationTest, RecoversDominantLengthAtModerateEps) {
  // 70% of users have length 5; the estimator should find it.
  std::vector<size_t> lengths;
  for (int i = 0; i < 700; ++i) lengths.push_back(5);
  for (int i = 0; i < 150; ++i) lengths.push_back(3);
  for (int i = 0; i < 150; ++i) lengths.push_back(8);
  auto sequences = MakeSequencesWithLengths(lengths);
  Rng rng(91);
  auto ell = EstimateFrequentLength(sequences, AllUsers(sequences.size()), 1,
                                    10, 2.0, &rng);
  ASSERT_TRUE(ell.ok());
  EXPECT_EQ(*ell, 5);
}

TEST(LengthEstimationTest, ClipsIntoRange) {
  // Every user has length 50 but the range caps at 10: the clipped value
  // 10 must win.
  std::vector<size_t> lengths(500, 50);
  auto sequences = MakeSequencesWithLengths(lengths);
  Rng rng(92);
  auto ell = EstimateFrequentLength(sequences, AllUsers(sequences.size()), 1,
                                    10, 4.0, &rng);
  ASSERT_TRUE(ell.ok());
  EXPECT_EQ(*ell, 10);
}

TEST(LengthEstimationTest, SingletonRangeShortCircuits) {
  auto sequences = MakeSequencesWithLengths({3, 4, 5});
  Rng rng(93);
  auto ell =
      EstimateFrequentLength(sequences, AllUsers(3), 7, 7, 1.0, &rng);
  ASSERT_TRUE(ell.ok());
  EXPECT_EQ(*ell, 7);
}

TEST(LengthEstimationTest, RejectsEmptyPopulation) {
  auto sequences = MakeSequencesWithLengths({3});
  Rng rng(94);
  EXPECT_FALSE(EstimateFrequentLength(sequences, {}, 1, 10, 1.0, &rng).ok());
}

TEST(LengthEstimationTest, RejectsBadRange) {
  auto sequences = MakeSequencesWithLengths({3});
  Rng rng(95);
  EXPECT_FALSE(
      EstimateFrequentLength(sequences, AllUsers(1), 5, 4, 1.0, &rng).ok());
  EXPECT_FALSE(
      EstimateFrequentLength(sequences, AllUsers(1), 0, 4, 1.0, &rng).ok());
}

TEST(LengthEstimationTest, RejectsOutOfRangeUserIndex) {
  auto sequences = MakeSequencesWithLengths({3});
  Rng rng(96);
  EXPECT_FALSE(
      EstimateFrequentLength(sequences, {5}, 1, 10, 1.0, &rng).ok());
}

TEST(LengthEstimationTest, HighEpsAlwaysRecoversUnanimousLength) {
  std::vector<size_t> lengths(200, 6);
  auto sequences = MakeSequencesWithLengths(lengths);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    auto ell = EstimateFrequentLength(sequences, AllUsers(sequences.size()),
                                      1, 10, 8.0, &rng);
    ASSERT_TRUE(ell.ok());
    EXPECT_EQ(*ell, 6);
  }
}

}  // namespace
}  // namespace privshape
