"""SARIF 2.1.0 emission for CI artifact upload / code-scanning UIs."""

import json

SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
          "master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(findings, checks, tool_version):
    """Returns the SARIF log dict for a list of ir.Finding.

    `checks` is the iterable of check modules (CHECK_ID/DESCRIPTION);
    suppressed findings are included with a suppression record so SARIF
    viewers show them greyed out rather than hiding history.
    """
    rules = [{
        "id": c.CHECK_ID,
        "shortDescription": {"text": c.DESCRIPTION},
    } for c in checks]
    rules.append({
        "id": "psa-suppressions",
        "shortDescription": {
            "text": "suppression entries are well-formed, justified, "
                    "and still in use"},
    })
    results = []
    for f in findings:
        result = {
            "ruleId": f.check,
            "level": f.severity if f.severity != "note" else "note",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        }
        if f.suppressed_by:
            result["suppressions"] = [{
                "kind": "external",
                "justification": f.suppressed_by,
            }]
        results.append(result)
    return {
        "$schema": SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "privshape-analyzer",
                    "informationUri":
                        "https://github.com/privshape/privshape",
                    "version": tool_version,
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "results": results,
        }],
    }


def write(path, findings, checks, tool_version):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(to_sarif(findings, checks, tool_version), f, indent=2,
                  sort_keys=True)
        f.write("\n")
