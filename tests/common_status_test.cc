#include "common/status.h"

#include <gtest/gtest.h>

namespace privshape {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("epsilon must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "epsilon must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: epsilon must be positive");
}

TEST(StatusTest, FactoryFunctionsProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::NotFound("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailingHelper() { return Status::Internal("inner"); }

Status UsesReturnMacro() {
  PRIVSHAPE_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = UsesReturnMacro();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace privshape
