/// \file
/// Collector throughput scaling: runs the full four-round protocol over a
/// generated Trace-style fleet at increasing thread counts and records
/// reports/sec per configuration. This establishes the repo's first
/// BENCH_*.json perf baseline (BENCH_collector.json by default); later
/// scaling PRs regress against it.
///
///   bench_collector_throughput --users 100000 --threads 8 \
///       --json BENCH_collector.json
///
/// `--threads` caps the sweep (1, 2, 4, ... up to the cap); `--users`
/// sizes the fleet. The determinism contract means every configuration
/// extracts identical shapes — verified here as a sanity check.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "collector/client_fleet.h"
#include "collector/round_coordinator.h"
#include "common/thread_pool.h"

namespace privshape {
namespace {

using bench::ExperimentScale;

int Main(int argc, char** argv) {
  CliArgs args(argc, argv);
  ExperimentScale scale = bench::ScaleFromArgs(args, /*default_users=*/50000,
                                               /*default_trials=*/1);
  size_t max_threads = scale.threads > 0
                           ? scale.threads
                           : std::max<size_t>(
                                 1, std::thread::hardware_concurrency());
  auto json = bench::MaybeJson(args, "BENCH_collector.json");

  core::MechanismConfig config = bench::TraceConfig(
      args.GetDouble("epsilon", 4.0), scale.seed);
  auto words = collector::GeneratedWordSource("trace", scale.seed);
  if (!words.ok()) {
    bench::PrintTitle("collector bench setup failed: " +
                      words.status().ToString());
    return 1;
  }
  collector::ClientFleet fleet(scale.users, std::move(*words),
                               config.metric, config.seed);

  bench::PrintTitle("Collector throughput scaling (generated Trace fleet, " +
                    std::to_string(scale.users) + " users)");
  bench::PrintHeader({"threads", "shards", "reports/s", "seconds",
                      "speedup", "shapes"});

  std::vector<size_t> thread_counts;
  for (size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads) {
    thread_counts.push_back(max_threads);
  }

  double base_rate = 0.0;
  std::string reference_shapes;
  bool deterministic = true;
  size_t completed = 0;
  for (size_t threads : thread_counts) {
    ThreadPool pool(threads);
    collector::CollectorOptions options;
    // 4 shards per worker keeps stripes small enough to load-balance.
    options.num_shards = threads * 4;
    collector::RoundCoordinator coordinator(config, options, &pool);
    collector::CollectorMetrics metrics;
    auto result = coordinator.Collect(fleet, &metrics);
    if (!result.ok()) {
      bench::PrintRow({std::to_string(threads), "-", "-", "-", "-",
                       result.status().ToString()});
      continue;
    }
    ++completed;
    std::string shapes;
    for (const auto& s : result->shapes) {
      shapes += SequenceToString(s.shape) + " ";
    }
    if (reference_shapes.empty()) {
      reference_shapes = shapes;
    } else if (shapes != reference_shapes) {
      deterministic = false;
    }
    double rate = metrics.TotalReportsPerSec();
    if (base_rate == 0.0) base_rate = rate;
    double speedup = base_rate > 0.0 ? rate / base_rate : 0.0;
    bench::PrintRow({std::to_string(threads),
                     std::to_string(options.num_shards),
                     FormatDouble(rate, 6), FormatDouble(metrics.total_seconds, 4),
                     FormatDouble(speedup, 3), shapes});
    if (json != nullptr) {
      json->AddRecord(
          "collector_throughput",
          {{"threads", std::to_string(threads)},
           {"shards", std::to_string(options.num_shards)},
           {"users", std::to_string(scale.users)},
           {"dataset", "trace"},
           // Records from different machines must be distinguishable.
           {"hardware_concurrency",
            std::to_string(std::thread::hardware_concurrency())}},
          {{"reports_per_sec", rate},
           {"seconds", metrics.total_seconds},
           {"speedup_vs_1_thread", speedup},
           {"bytes_up", static_cast<double>(metrics.TotalBytesUp())},
           {"rejected", static_cast<double>(metrics.TotalRejected())}});
    }
  }
  if (!deterministic) {
    bench::PrintRow({"WARNING", "shapes varied across thread counts", "", "",
                     "", ""});
    return 1;
  }
  if (completed == 0) {
    bench::PrintTitle("no configuration completed; baseline NOT recorded");
    return 1;
  }
  if (json != nullptr && !json->Flush()) {
    bench::PrintTitle("failed to write the --json baseline file");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace privshape

int main(int argc, char** argv) { return privshape::Main(argc, argv); }
