#ifndef PRIVSHAPE_COLLECTOR_ROUND_COORDINATOR_H_
#define PRIVSHAPE_COLLECTOR_ROUND_COORDINATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "collector/client_fleet.h"
#include "collector/metrics.h"
#include "collector/sharded_aggregator.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/rounds.h"

namespace privshape::collector {

/// Serving-layer knobs, orthogonal to the mechanism configuration: none of
/// them may change the extracted shapes (that is the determinism
/// contract), only how fast the rounds run.
struct CollectorOptions {
  /// Independent aggregation lanes; 0 means one per pool thread. More
  /// shards than threads is fine (workers pick up whole shards).
  size_t num_shards = 0;
  /// Encoded reports buffered per shard before a ConsumeBatch call.
  size_t batch_size = 256;
};

/// Drives the full Algorithm 2 protocol as explicit server-side rounds:
///
///   P_a broadcast/collect -> length argmax -> P_b -> transition gates ->
///   ell_S x (candidate broadcast -> EM selection collect) -> P_d ->
///   post-processing,
///
/// with every round's reports answered by the fleet on the thread pool and
/// ingested through a lock-free ShardedAggregator. Server-side decisions
/// are delegated to core::PrivShapeServer — the same state machine the
/// single-threaded pipeline drives — and aggregation is exact integer
/// merging, so for a fixed fleet seed the result is byte-identical to
/// core::PrivShape::Run on the same words, for any shard/thread count.
class RoundCoordinator {
 public:
  /// `pool` must outlive the coordinator; pass nullptr to run every round
  /// inline on the calling thread (still sharded, still deterministic).
  RoundCoordinator(core::MechanismConfig config, CollectorOptions options,
                   ThreadPool* pool);

  /// Runs the whole protocol over the fleet. Classification refinement
  /// (config.num_classes > 0) is not yet served over the wire.
  Result<core::MechanismResult> Collect(const ClientFleet& fleet,
                                        CollectorMetrics* metrics = nullptr);

  const core::MechanismConfig& config() const { return config_; }

 private:
  using AnswerFn =
      std::function<Result<std::string>(proto::ClientSession&)>;

  /// Broadcasts one round to `population`: shards the users, materializes
  /// each session, collects its encoded report, and batch-ingests into a
  /// fresh aggregator. `bytes_down` is the per-user request size.
  ShardedAggregator RunRound(const ClientFleet& fleet,
                             const std::vector<size_t>& population,
                             const StageSpec& spec, const AnswerFn& answer,
                             const std::string& stage, size_t bytes_down,
                             CollectorMetrics* metrics);

  size_t EffectiveShards() const;
  size_t EffectiveThreads() const;

  core::MechanismConfig config_;
  CollectorOptions options_;
  ThreadPool* pool_;
};

}  // namespace privshape::collector

#endif  // PRIVSHAPE_COLLECTOR_ROUND_COORDINATOR_H_
