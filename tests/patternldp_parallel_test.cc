#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "patternldp/pattern_ldp.h"
#include "series/generators.h"

namespace privshape {
namespace {

using pldp::PatternLdp;
using pldp::PatternLdpConfig;

series::Dataset SmallDataset(size_t n) {
  series::GeneratorOptions gen;
  gen.num_instances = n;
  gen.seed = 55;
  return series::MakeTraceDataset(gen);
}

TEST(PatternLdpParallelTest, MatchesSizesAndLabels) {
  auto mech = PatternLdp::Create(PatternLdpConfig{});
  ASSERT_TRUE(mech.ok());
  ThreadPool pool(4);
  auto dataset = SmallDataset(60);
  auto out = mech->PerturbDatasetParallel(dataset, &pool, 123);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(out->instances[i].label, dataset.instances[i].label);
    EXPECT_EQ(out->instances[i].values.size(),
              dataset.instances[i].values.size());
  }
}

TEST(PatternLdpParallelTest, DeterministicAcrossThreadCounts) {
  // Per-user seeding makes the output independent of the pool size.
  auto mech = PatternLdp::Create(PatternLdpConfig{});
  ASSERT_TRUE(mech.ok());
  auto dataset = SmallDataset(40);
  ThreadPool pool1(1), pool8(8);
  auto a = mech->PerturbDatasetParallel(dataset, &pool1, 9);
  auto b = mech->PerturbDatasetParallel(dataset, &pool8, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(a->instances[i].values, b->instances[i].values);
  }
}

TEST(PatternLdpParallelTest, DifferentSeedsDiffer) {
  auto mech = PatternLdp::Create(PatternLdpConfig{});
  ASSERT_TRUE(mech.ok());
  auto dataset = SmallDataset(10);
  ThreadPool pool(4);
  auto a = mech->PerturbDatasetParallel(dataset, &pool, 1);
  auto b = mech->PerturbDatasetParallel(dataset, &pool, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->instances[0].values, b->instances[0].values);
}

TEST(PatternLdpParallelTest, PerturbationActuallyChangesValues) {
  auto mech = PatternLdp::Create(PatternLdpConfig{});
  ASSERT_TRUE(mech.ok());
  auto dataset = SmallDataset(5);
  ThreadPool pool(2);
  auto out = mech->PerturbDatasetParallel(dataset, &pool, 77);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->instances[0].values, dataset.instances[0].values);
}

}  // namespace
}  // namespace privshape
