// Fixture: R3 decl/def disagreement and a marker header omission.
#ifndef FIXTURE_BAD_DECL_H_
#define FIXTURE_BAD_DECL_H_

// Missing #include "common/analysis_annotations.h" on purpose: a
// header using the markers must include their definition directly.

class Mismatched {
 public:
  // Declares 2 words here ...
  PS_RNG_WORDS(2)
  uint64_t Draw(Rng* rng) const;
};

#endif  // FIXTURE_BAD_DECL_H_
