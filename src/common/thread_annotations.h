/// \file
/// Clang thread-safety-analysis attribute macros (no-ops on other
/// compilers). The analysis is purely static: annotate which mutex
/// guards which member (`PS_GUARDED_BY`), which functions must hold or
/// must not hold a lock (`PS_REQUIRES` / `PS_EXCLUDES`), and which
/// functions acquire/release (`PS_ACQUIRE` / `PS_RELEASE`), and Clang's
/// `-Wthread-safety` proves every access consistent at compile time.
/// The CI `clang-thread-safety` job builds the tree with
/// `-Werror=thread-safety`, so a missing lock is a build break, not a
/// TSan lottery ticket.
///
/// The analysis only understands annotated lock types — `std::mutex`
/// from libstdc++ carries no attributes — so lock-holding classes use
/// the annotated wrappers in common/mutex.h (`Mutex`, `MutexLock`,
/// `CondVar`) instead of the std types directly.

#ifndef PRIVSHAPE_COMMON_THREAD_ANNOTATIONS_H_
#define PRIVSHAPE_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define PS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a type as a lockable capability ("mutex").
#define PS_CAPABILITY(x) PS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define PS_SCOPED_CAPABILITY PS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define PS_GUARDED_BY(x) PS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex (the
/// pointer itself may be read freely).
#define PS_PT_GUARDED_BY(x) PS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function that may only be called while holding the listed mutexes.
#define PS_REQUIRES(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the listed mutexes
/// (it acquires them itself — the deadlock-by-reentry guard).
#define PS_EXCLUDES(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function that acquires the listed mutexes and returns holding them.
#define PS_ACQUIRE(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function that releases the listed mutexes.
#define PS_RELEASE(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that acquires the mutex only when it returns `ret`.
#define PS_TRY_ACQUIRE(ret, ...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

/// Runtime assertion that the calling thread holds the mutex; the
/// analysis treats the capability as held afterwards.
#define PS_ASSERT_CAPABILITY(x) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returning a reference to the mutex that guards something.
#define PS_RETURN_CAPABILITY(x) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Documented lock-ordering edges (deadlock detection).
#define PS_ACQUIRED_BEFORE(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define PS_ACQUIRED_AFTER(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Escape hatch for functions the analysis cannot follow (condition-
/// variable internals that release and re-acquire through an opaque
/// callee). Use sparingly and say why at the call site.
#define PS_NO_THREAD_SAFETY_ANALYSIS \
  PS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // PRIVSHAPE_COMMON_THREAD_ANNOTATIONS_H_
