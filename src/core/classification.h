#ifndef PRIVSHAPE_CORE_CLASSIFICATION_H_
#define PRIVSHAPE_CORE_CLASSIFICATION_H_

#include <vector>

#include "core/baseline.h"
#include "core/config.h"
#include "core/privshape.h"
#include "eval/shape_matching.h"

namespace privshape::core {

/// Runs the baseline mechanism once per class over that class's users and
/// tags the resulting shapes with the class label ("most frequent shapes
/// estimated within each class", §V-C/E). `labels[i]` must be in
/// [0, num_classes); each per-class run sees a disjoint sub-population so
/// the user-level guarantee is unchanged.
Result<std::vector<eval::LabeledShape>> ExtractShapesPerClass(
    const BaselineMechanism& mechanism,
    const std::vector<Sequence>& sequences, const std::vector<int>& labels,
    int num_classes, int shapes_per_class);

/// PrivShape's classification output: runs the full mechanism with the OUE
/// candidate x class refinement and returns the top shapes as labeled
/// classification criteria.
Result<std::vector<eval::LabeledShape>> PrivShapeLabeledShapes(
    const PrivShape& mechanism, const std::vector<Sequence>& sequences,
    const std::vector<int>& labels);

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_CLASSIFICATION_H_
