/// \file
/// Module `protocol` — client/server framing of the collection rounds
/// (stages P_a..P_e of Algorithm 2) as encoded request/report messages.
/// Invariant: the only bytes that leave a ClientSession are the perturbed
/// reports produced by the Answer* methods, and all privacy-relevant
/// randomness is drawn from the client's own Rng.

#ifndef PRIVSHAPE_PROTOCOL_SESSION_H_
#define PRIVSHAPE_PROTOCOL_SESSION_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/rng.h"
#include "common/status.h"
#include "distance/distance.h"
#include "protocol/messages.h"
#include "protocol/round_context.h"
#include "series/sequence.h"

namespace privshape::proto {

/// The user-side endpoint of the collection protocol. Owns the user's
/// private compressed word; every Answer* method performs the stage's
/// local perturbation and returns an encoded Report — the only bytes that
/// ever leave the device. All privacy-relevant randomness comes from the
/// client's own Rng.
///
/// Two entry-point families produce byte-identical reports:
///  - the string-decoding AnswerXxxRequest methods (the wire API), which
///    rebuild the round state per call, and
///  - the Answer*(const RoundContext&, ...) hot-path overloads, which run
///    against a shared pre-decoded context plus per-worker scratch and
///    allocate nothing per report.
class ClientSession {
 public:
  /// `label` is the user's private class label, required only for the
  /// classification refinement round (P_e); -1 means unlabeled. Like the
  /// word, it is only ever read inside this session's local perturbation.
  ClientSession(Sequence word, dist::Metric metric, uint64_t seed,
                int label = -1)
      : word_(std::move(word)), metric_(metric), rng_(seed), label_(label) {}

  int label() const { return label_; }

  /// P_a stage: GRR over the clipped length range.
  Result<std::string> AnswerLengthRequest(int ell_low, int ell_high,
                                          double epsilon);

  /// P_b stage: padding-and-sampling sub-shape report at budget epsilon.
  /// `alphabet` is the SAX alphabet size; ell_s the announced trie height.
  Result<std::string> AnswerSubShapeRequest(int alphabet, int ell_s,
                                            double epsilon,
                                            bool allow_repeats);

  /// P_c stage: EM selection over the server's candidate list.
  Result<std::string> AnswerCandidateRequest(const std::string& request);

  /// P_d stage (clustering): GRR over the candidate index.
  Result<std::string> AnswerRefinementRequest(const std::string& request);

  /// P_e stage (classification): OUE bit vector over candidate x class
  /// cells. Fails (no report leaves the device) when the session is
  /// unlabeled or the label falls outside the announced class count.
  Result<std::string> AnswerClassRefineRequest(const std::string& request);

  // --- Shared-context hot path -------------------------------------------
  //
  // All overloads write the answer into *out (bits cleared, every field
  // set) and fail with InvalidArgument if ctx.kind() does not match the
  // method. `scratch` may be nullptr for the stages that need none (P_a,
  // P_b); the selection/refinement stages then allocate locally.

  /// P_a against a shared context.
  PS_REPORT_PATH
  Status AnswerLength(const RoundContext& ctx, AnswerScratch* scratch,
                      Report* out);

  /// P_b against a shared context.
  PS_REPORT_PATH
  Status AnswerSubShape(const RoundContext& ctx, AnswerScratch* scratch,
                        Report* out);

  /// P_c against a shared context: match -> score -> EM select, entirely
  /// in scratch buffers.
  PS_REPORT_PATH
  Status AnswerSelection(const RoundContext& ctx, AnswerScratch* scratch,
                         Report* out);

  /// P_d against a shared context: early-abandoning closest-candidate
  /// argmin, then GRR.
  PS_REPORT_PATH
  Status AnswerRefinement(const RoundContext& ctx, AnswerScratch* scratch,
                          Report* out);

  /// P_e against a shared context: closest-candidate argmin, then the OUE
  /// perturbation of the (candidate, label) cell written straight into
  /// out->bits (whose capacity is reused across reports).
  PS_REPORT_PATH
  Status AnswerClassRefinement(const RoundContext& ctx,
                               AnswerScratch* scratch, Report* out);

  /// Dispatches on ctx.kind() — what the round coordinator drives.
  PS_REPORT_PATH
  Status Answer(const RoundContext& ctx, AnswerScratch* scratch, Report* out);

  /// Answer + encode into the caller's batch buffer (appends only on
  /// success). The full zero-allocation per-report path.
  PS_REPORT_PATH
  Status AnswerTo(const RoundContext& ctx, AnswerScratch* scratch,
                  ReportBatch* out);

 private:
  Sequence word_;
  dist::Metric metric_;
  Rng rng_;
  int label_ = -1;
};

/// Server-side aggregation of encoded reports for one stage. Decodes,
/// validates, and debiases; malformed reports are counted and skipped
/// rather than poisoning the aggregate.
///
/// Aggregation state is pure integer counts, so Merge() is exact and
/// associative: any partition of a report stream across aggregators (the
/// collector runs one per shard) merges back to the counts a single
/// aggregator would have produced, in any merge order.
class ReportAggregator {
 public:
  ReportAggregator(ReportKind kind, size_t domain, double epsilon);

  /// Feeds one encoded report (borrowed view — the sharded collector
  /// hands in slices of a flat batch buffer); invalid ones increment
  /// rejected().
  void Consume(std::string_view encoded);

  /// Feeds an already-decoded report (the sharded collector decodes once
  /// to route by level, then hands the report here). Wrong kind or
  /// out-of-domain values increment rejected().
  void ConsumeReport(const Report& report);

  /// Folds another aggregator's counts into this one. Fails unless kind,
  /// domain, and epsilon match exactly.
  Status Merge(const ReportAggregator& other);

  /// GRR-debiased counts over the domain (kLength/kRefinement kinds),
  /// raw selection counts for kSelection, or OUE-debiased per-cell counts
  /// for kClassRefine (where a report is a whole bit vector and counts_
  /// tallies set bits per cell).
  std::vector<double> EstimatedCounts() const;

  /// Raw per-value report tallies (pre-debias), for tests and metrics.
  const std::vector<size_t>& raw_counts() const { return counts_; }

  ReportKind kind() const { return kind_; }
  size_t domain() const { return domain_; }
  double epsilon() const { return epsilon_; }
  size_t accepted() const { return accepted_; }
  size_t rejected() const { return rejected_; }

 private:
  ReportKind kind_;
  size_t domain_;
  double epsilon_;
  double oue_p_ = 0.0;  ///< OUE keep probability (kClassRefine only)
  double oue_q_ = 0.0;  ///< OUE flip probability (kClassRefine only)
  std::vector<size_t> counts_;
  size_t accepted_ = 0;
  size_t rejected_ = 0;
};

}  // namespace privshape::proto

#endif  // PRIVSHAPE_PROTOCOL_SESSION_H_
