"""Suppression file: explicit, justified exceptions to the checks.

Format (tools/psa/suppressions.txt), one entry per line:

    <check-id> <path-glob>[:<line>] -- <justification>

  * `check-id` must name a registered check (or `*` for any check —
    discouraged, but needed for fixture trees).
  * `path-glob` is a repo-relative fnmatch pattern; an optional
    `:<line>` pins the entry to one line (brittle across edits — prefer
    file scope).
  * The justification after ` -- ` is MANDATORY and must say *why* the
    violation is intentional (at least 20 characters); an entry without
    one is itself an error, so undocumented suppressions fail the lint.

Blank lines and `#` comments are ignored. Every entry must match at
least one finding in a full-tree run; stale entries are errors (they
hide future violations at the suppressed location).
"""

import fnmatch

from dataclasses import dataclass, field

from . import ir

MIN_JUSTIFICATION = 20


@dataclass
class Suppression:
    check: str
    pattern: str
    line: object  # int or None
    justification: str
    source_line: int
    used: int = 0

    def matches(self, finding):
        if self.check != "*" and self.check != finding.check:
            return False
        if not fnmatch.fnmatchcase(finding.path, self.pattern):
            return False
        if self.line is not None and self.line != finding.line:
            return False
        return True


@dataclass
class SuppressionFile:
    path: str
    entries: list = field(default_factory=list)
    problems: list = field(default_factory=list)  # list[ir.Finding]


def parse(path, text, known_checks):
    """Parses suppression text; malformed entries become findings."""
    out = SuppressionFile(path=path)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if " -- " not in line:
            out.problems.append(ir.Finding(
                "psa-suppressions", path, lineno,
                "suppression entry has no ' -- justification' — "
                "undocumented suppressions are not allowed"))
            continue
        head, justification = line.split(" -- ", 1)
        justification = justification.strip()
        parts = head.split()
        if len(parts) != 2:
            out.problems.append(ir.Finding(
                "psa-suppressions", path, lineno,
                f"malformed suppression head '{head.strip()}' — expected "
                "'<check-id> <path-glob>[:<line>]'"))
            continue
        check, target = parts
        if check != "*" and check not in known_checks:
            out.problems.append(ir.Finding(
                "psa-suppressions", path, lineno,
                f"unknown check id '{check}' (known: "
                f"{', '.join(sorted(known_checks))})"))
            continue
        line_no = None
        pattern = target
        if ":" in target:
            pattern, _, line_part = target.rpartition(":")
            if line_part.isdigit():
                line_no = int(line_part)
            else:
                out.problems.append(ir.Finding(
                    "psa-suppressions", path, lineno,
                    f"suppression line pin '{line_part}' is not a "
                    "number"))
                continue
        if len(justification) < MIN_JUSTIFICATION:
            out.problems.append(ir.Finding(
                "psa-suppressions", path, lineno,
                f"justification too thin ({len(justification)} chars, "
                f"need >= {MIN_JUSTIFICATION}): say WHY the violation "
                "is intentional"))
            continue
        out.entries.append(Suppression(
            check=check, pattern=pattern, line=line_no,
            justification=justification, source_line=lineno))
    return out


def apply(findings, supp_file, require_used=True):
    """Marks suppressed findings; returns (active, suppressed, problems).

    `problems` includes parse errors plus one error per entry that
    matched nothing (stale suppression), unless require_used is False
    (used for partial-tree runs where absence proves nothing).
    """
    active = []
    suppressed = []
    for finding in findings:
        hit = next((e for e in supp_file.entries if e.matches(finding)),
                   None)
        if hit is not None:
            hit.used += 1
            finding.suppressed_by = (
                f"{supp_file.path}:{hit.source_line}")
            suppressed.append(finding)
        else:
            active.append(finding)
    problems = list(supp_file.problems)
    if require_used:
        for entry in supp_file.entries:
            if entry.used == 0:
                problems.append(ir.Finding(
                    "psa-suppressions", supp_file.path, entry.source_line,
                    f"stale suppression: '{entry.check} {entry.pattern}"
                    f"{':' + str(entry.line) if entry.line else ''}' "
                    "matched no finding — delete it (stale entries mask "
                    "future violations)"))
    return active, suppressed, problems
