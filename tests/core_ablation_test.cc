// Tests for the ablation switches in MechanismConfig (§IV-C design
// choices) and the utility relationships Theorem 4 predicts.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/privshape.h"
#include "trie/trie.h"

namespace privshape {
namespace {

using core::MechanismConfig;
using core::PrivShape;

std::vector<Sequence> PlantedSequences(size_t n, uint64_t seed = 1) {
  std::vector<Sequence> out;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.Uniform();
    if (u < 0.6) {
      out.push_back({0, 1, 2});
    } else if (u < 0.9) {
      out.push_back({2, 1, 0});
    } else {
      out.push_back({1, 0, 1});
    }
  }
  return out;
}

MechanismConfig TestConfig() {
  MechanismConfig config;
  config.epsilon = 6.0;
  config.t = 3;
  config.k = 2;
  config.c = 3;
  config.ell_high = 6;
  config.metric = dist::Metric::kSed;
  config.seed = 7;
  return config;
}

TEST(AblationTest, DisableRefinementStillRecoversShape) {
  MechanismConfig config = TestConfig();
  config.disable_refinement = true;
  PrivShape mech(config);
  auto result = mech.Run(PlantedSequences(6000));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->shapes.size(), 1u);
  EXPECT_EQ(SequenceToString(result->shapes[0].shape), "abc");
  // P_d was never charged.
  EXPECT_EQ(result->accountant.charges().count("Pd"), 0u);
}

TEST(AblationTest, DisableRefinementRejectsClassification) {
  MechanismConfig config = TestConfig();
  config.disable_refinement = true;
  config.num_classes = 2;
  PrivShape mech(config);
  auto sequences = PlantedSequences(1000);
  std::vector<int> labels(sequences.size(), 0);
  EXPECT_FALSE(mech.Run(sequences, &labels).ok());
}

TEST(AblationTest, DisablePostprocessingMayReturnDuplicates) {
  MechanismConfig config = TestConfig();
  config.disable_postprocessing = true;
  PrivShape mech(config);
  auto result = mech.Run(PlantedSequences(6000));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->shapes.size(), 2u);
  EXPECT_EQ(SequenceToString(result->shapes[0].shape), "abc");
}

TEST(AblationTest, BothSwitchesComposable) {
  MechanismConfig config = TestConfig();
  config.disable_refinement = true;
  config.disable_postprocessing = true;
  PrivShape mech(config);
  auto result = mech.Run(PlantedSequences(4000));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->shapes.size(), 1u);
}

// Theorem 4's driver: PrivShape's per-level perturbation domain (<= c*k *
// fan-out along frequent transitions) is far smaller than the baseline's
// t*(t-1)^(l-1) worst case. Verify the domain-size inequality directly on
// trie growth.
TEST(Theorem4Test, PrunedDomainNeverExceedsWorstCase) {
  const int t = 4;
  const size_t ck = 6;
  auto pruned = trie::CandidateTrie::Create(t);
  auto full = trie::CandidateTrie::Create(t);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(full.ok());
  pruned->ExpandRoot();
  full->ExpandRoot();
  Rng rng(13);
  for (int level = 1; level <= 4; ++level) {
    // Assign arbitrary frequencies, prune to c*k, expand everything.
    for (int id : pruned->Frontier()) {
      ASSERT_TRUE(pruned->SetFrequency(id, rng.Uniform()).ok());
    }
    pruned->PruneToTopK(ck);
    pruned->ExpandAll();
    full->ExpandAll();
    EXPECT_LE(pruned->Frontier().size(),
              ck * static_cast<size_t>(t - 1));
    EXPECT_LE(pruned->Frontier().size(), full->Frontier().size());
  }
  // The unpruned trie realizes the Theorem 4 worst case t*(t-1)^(l-1).
  EXPECT_EQ(full->Frontier().size(), 4u * 3u * 3u * 3u * 3u);
}

}  // namespace
}  // namespace privshape
