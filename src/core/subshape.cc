#include "core/subshape.h"

#include <algorithm>
#include <numeric>

#include "ldp/grr.h"

namespace privshape::core {

size_t PairToIndex(Symbol a, Symbol b, int t, bool allow_repeats) {
  size_t ai = a, bi = b;
  if (allow_repeats) {
    return ai * static_cast<size_t>(t) + bi;
  }
  // Skip the diagonal: row a has t-1 entries.
  return ai * static_cast<size_t>(t - 1) + (bi > ai ? bi - 1 : bi);
}

trie::Transition IndexToPair(size_t index, int t, bool allow_repeats) {
  if (allow_repeats) {
    return {static_cast<Symbol>(index / static_cast<size_t>(t)),
            static_cast<Symbol>(index % static_cast<size_t>(t))};
  }
  size_t row = index / static_cast<size_t>(t - 1);
  size_t col = index % static_cast<size_t>(t - 1);
  if (col >= row) ++col;
  return {static_cast<Symbol>(row), static_cast<Symbol>(col)};
}

size_t SubShapeDomainSize(int t, bool allow_repeats) {
  size_t pairs = allow_repeats
                     ? static_cast<size_t>(t) * static_cast<size_t>(t)
                     : static_cast<size_t>(t) * static_cast<size_t>(t - 1);
  return pairs + 1;  // sentinel padding bucket
}

Result<SubShapeEstimates> EstimateSubShapes(
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, int ell_s, int t, size_t top_m,
    double epsilon, bool allow_repeats, Rng* rng) {
  if (ell_s < 1) return Status::InvalidArgument("ell_s must be >= 1");
  SubShapeEstimates estimates;
  if (ell_s == 1) return estimates;  // no adjacent pairs exist

  size_t num_levels = static_cast<size_t>(ell_s - 1);
  size_t domain = SubShapeDomainSize(t, allow_repeats);
  size_t sentinel = domain - 1;

  // One GRR aggregator per level; a user contributes to exactly one.
  std::vector<ldp::Grr> oracles;
  oracles.reserve(num_levels);
  for (size_t j = 0; j < num_levels; ++j) {
    auto grr = ldp::Grr::Create(domain, epsilon);
    if (!grr.ok()) return grr.status();
    oracles.push_back(std::move(*grr));
  }

  for (size_t user : population) {
    if (user >= sequences.size()) {
      return Status::OutOfRange("population index outside dataset");
    }
    const Sequence& seq = sequences[user];
    // Level j in {1, ..., ell_s - 1}; uniform, data-independent.
    size_t j = 1 + rng->Index(num_levels);
    size_t value;
    if (j + 1 <= seq.size()) {
      Symbol a = seq[j - 1];
      Symbol b = seq[j];
      if (!allow_repeats && a == b) {
        // Cannot occur for compressed input; map defensively to sentinel.
        value = sentinel;
      } else {
        value = PairToIndex(a, b, t, allow_repeats);
      }
    } else {
      value = sentinel;  // the sampled pair lies in the padded region
    }
    PRIVSHAPE_RETURN_IF_ERROR(oracles[j - 1].SubmitUser(value, rng));
  }

  estimates.counts.resize(num_levels);
  estimates.top_transitions.resize(num_levels);
  for (size_t lvl = 0; lvl < num_levels; ++lvl) {
    std::vector<double> counts = oracles[lvl].EstimateCounts();
    estimates.counts[lvl] = counts;
    // Rank real pairs only (drop the sentinel bucket).
    std::vector<size_t> order(sentinel);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return counts[a] > counts[b];
    });
    size_t keep = std::min(top_m, order.size());
    for (size_t i = 0; i < keep; ++i) {
      estimates.top_transitions[lvl].push_back(
          IndexToPair(order[i], t, allow_repeats));
    }
  }
  return estimates;
}

}  // namespace privshape::core
