#!/usr/bin/env bash
# One-shot developer gate: run before pushing. Covers the repo's
# compiler-free and compiler-cheap checks:
#
#   1. clang-format --dry-run over the C++ file set (advisory: prints
#      drift as warnings; formatting is style, not correctness).
#   2. Static analysis (tools/analyze.py = layering lint + the PrivShape
#      Analyzer): self-test, then the real src/ tree (fatal). Runs on
#      the pure-Python token engine when libclang is absent; --all also
#      feeds the compile database so out-of-src TUs are covered.
#   3. clang-tidy over the changed .cc files under src/ (fatal), using
#      a compile database configured on demand.
#
# Usage:
#   tools/check.sh              # changed files vs the merge base
#   tools/check.sh --all        # whole tree (what the CI lint job runs)
#   tools/check.sh --base REF   # changed files vs REF
#
# Tools that are not installed are reported as SKIPPED rather than
# failing, so the gate is useful on minimal machines; the CI lint job
# installs everything, so nothing is skipped there.
set -euo pipefail

cd "$(dirname "$0")/.."

mode=changed
base=""
for arg in "$@"; do
  case "$arg" in
    --all) mode=all ;;
    --base) base=__next__ ;;
    *)
      if [ "$base" = "__next__" ]; then base="$arg"; else
        echo "usage: tools/check.sh [--all] [--base REF]" >&2
        exit 2
      fi
      ;;
  esac
done
if [ "$base" = "__next__" ]; then
  echo "error: --base requires an argument" >&2
  exit 2
fi

# --- File set -------------------------------------------------------------
cxx_files=()
if [ "$mode" = "all" ]; then
  while IFS= read -r f; do
    cxx_files+=("$f")
  done < <(git ls-files 'src/*.cc' 'src/*.h' 'tests/*.cc' 'fuzz/*.cc' \
                        'bench/*.cc' 'examples/*.cpp')
else
  if [ -z "$base" ]; then
    base=$(git merge-base HEAD origin/main 2>/dev/null ||
           git rev-parse 'HEAD~1' 2>/dev/null || echo HEAD)
  fi
  while IFS= read -r f; do
    case "$f" in
      src/*.cc | src/*.h | tests/*.cc | fuzz/*.cc | bench/*.cc | \
          examples/*.cpp)
        [ -f "$f" ] && cxx_files+=("$f")
        ;;
    esac
  done < <(git diff --name-only --diff-filter=d "$base" -- .)
fi

failed=0
note() { printf '== %s\n' "$*"; }

# --- 1. clang-format (advisory) ------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  if [ "${#cxx_files[@]}" -eq 0 ]; then
    note "clang-format: no C++ files in the change set"
  elif clang-format --dry-run "${cxx_files[@]}" 2>&1 | grep -q .; then
    note "clang-format: drift found (advisory, not fatal):"
    clang-format --dry-run "${cxx_files[@]}" 2>&1 |
      grep -E '^[^ ]+:[0-9]+:' | cut -d: -f1 | sort -u | sed 's/^/   /'
  else
    note "clang-format: clean (${#cxx_files[@]} files)"
  fi
else
  note "clang-format: SKIPPED (not installed)"
fi

# --- 2. Static analysis: layering + PrivShape Analyzer (fatal) ------------
if command -v python3 >/dev/null 2>&1; then
  analyze_args=()
  if [ "$mode" = "all" ]; then analyze_args+=(--all); fi
  if python3 tools/analyze.py --self-test >/dev/null &&
      python3 tools/analyze.py --root . "${analyze_args[@]}"; then
    :
  else
    note "static analysis: FAILED"
    failed=1
  fi
else
  note "static analysis: SKIPPED (python3 not installed)"
fi

# --- 3. clang-tidy on changed src/ sources (fatal) ------------------------
tidy_files=()
for f in "${cxx_files[@]}"; do
  case "$f" in src/*.cc) tidy_files+=("$f") ;; esac
done
if ! command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy: SKIPPED (not installed)"
elif [ "${#tidy_files[@]}" -eq 0 ]; then
  note "clang-tidy: no src/ sources in the change set"
else
  # clang-tidy needs a compile database; configure a dedicated dir so
  # the developer's main build settings are left alone. Tests, bench,
  # examples, and fuzzers are off — the database only has to cover src/.
  db=build-tidy
  if [ ! -f "$db/compile_commands.json" ]; then
    note "clang-tidy: configuring $db for compile_commands.json"
    cmake -B "$db" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DPRIVSHAPE_BUILD_TESTS=OFF -DPRIVSHAPE_BUILD_BENCH=OFF \
      -DPRIVSHAPE_BUILD_EXAMPLES=OFF -DPRIVSHAPE_BUILD_FUZZERS=OFF \
      >/dev/null
  fi
  note "clang-tidy: ${#tidy_files[@]} files"
  if printf '%s\n' "${tidy_files[@]}" |
      xargs -P "$(nproc)" -n 4 clang-tidy -p "$db" --quiet \
        --warnings-as-errors='*'; then
    note "clang-tidy: clean"
  else
    note "clang-tidy: FAILED"
    failed=1
  fi
fi

if [ "$failed" -ne 0 ]; then
  note "check.sh: FAILED"
  exit 1
fi
note "check.sh: OK"
