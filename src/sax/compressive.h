#ifndef PRIVSHAPE_SAX_COMPRESSIVE_H_
#define PRIVSHAPE_SAX_COMPRESSIVE_H_

#include "series/sequence.h"

namespace privshape::sax {

/// Compressive SAX (§III-B): collapses runs of repeated symbols so
/// "aaaccccccbbbbaaa" becomes "acba". The result never contains two equal
/// adjacent symbols — an invariant the trie expansion relies on.
Sequence CompressSax(const Sequence& word);

/// True iff `word` contains no equal adjacent symbols (i.e. is a fixed
/// point of CompressSax).
bool IsCompressed(const Sequence& word);

}  // namespace privshape::sax

#endif  // PRIVSHAPE_SAX_COMPRESSIVE_H_
