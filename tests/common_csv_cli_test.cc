#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/cli.h"
#include "common/csv.h"

namespace privshape {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/privshape_csv_test.csv";
};

TEST_F(CsvTest, WriteAndReadBack) {
  {
    CsvWriter writer(path_);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow(std::vector<double>{1.5, 2.25, -3.0});
    writer.WriteRow(std::vector<double>{4.0, 5.0, 6.0});
  }
  auto rows = ReadCsvDoubles(path_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_DOUBLE_EQ((*rows)[0][0], 1.5);
  EXPECT_DOUBLE_EQ((*rows)[0][2], -3.0);
  EXPECT_DOUBLE_EQ((*rows)[1][1], 5.0);
}

TEST_F(CsvTest, HeaderThenRows) {
  {
    CsvWriter writer(path_);
    writer.WriteHeader({"epsilon", "ari"});
    writer.WriteRow(std::vector<std::string>{"4", "0.68"});
  }
  std::ifstream in(path_);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "epsilon,ari");
  std::getline(in, line);
  EXPECT_EQ(line, "4,0.68");
}

TEST_F(CsvTest, ReadMissingFileFails) {
  auto rows = ReadCsvDoubles("/nonexistent/path.csv");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
}

TEST_F(CsvTest, ReadNonNumericFails) {
  {
    std::ofstream out(path_);
    out << "1,abc,3\n";
  }
  auto rows = ReadCsvDoubles(path_);
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

// --- Real-world CSV hardening (BOM / CRLF / ragged / quoting) -----------

TEST_F(CsvTest, Utf8BomIsStripped) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "\xEF\xBB\xBF" << "1,2\n3,4\n";
  }
  auto rows = ReadCsvDoubles(path_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_DOUBLE_EQ((*rows)[0][0], 1.0);  // BOM must not poison cell [0][0]
  EXPECT_DOUBLE_EQ((*rows)[1][1], 4.0);
}

TEST_F(CsvTest, CrlfLineEndingsAreTrimmed) {
  {
    std::ofstream out(path_, std::ios::binary);
    // Includes a blank CRLF line: pre-fix, the stray "\r" became a cell
    // and the whole file was rejected as non-numeric.
    out << "1,2\r\n3,4\r\n\r\n";
  }
  auto rows = ReadCsvDoubles(path_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_DOUBLE_EQ((*rows)[0][1], 2.0);  // no stray \r glued to "2"
  EXPECT_DOUBLE_EQ((*rows)[1][1], 4.0);
}

TEST_F(CsvTest, RaggedRowsAreRejected) {
  {
    std::ofstream out(path_);
    out << "1,2,3\n4,5\n";
  }
  auto rows = ReadCsvDoubles(path_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rows.status().message().find("ragged"), std::string::npos);
}

TEST_F(CsvTest, TrailingJunkInCellIsRejected) {
  {
    std::ofstream out(path_);
    out << "1,2suffix\n";  // std::stod would silently read 2
  }
  auto rows = ReadCsvDoubles(path_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(EscapeCsvCellTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(EscapeCsvCell("plain"), "plain");
  EXPECT_EQ(EscapeCsvCell("3.14"), "3.14");
  EXPECT_EQ(EscapeCsvCell("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvCell("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(EscapeCsvCell("two\nlines"), "\"two\nlines\"");
}

// Found by fuzz_csv: a doubled BOM strips once at parse, leaving the
// second BOM as cell content. If the writer then emits that cell
// unquoted at the start of a file, a reparse strips it again and the
// cell no longer round-trips. EscapeCsvCell must quote BOM-leading
// cells so the file-level strip cannot fire on cell content.
TEST(EscapeCsvCellTest, QuotesCellStartingWithBom) {
  const std::string bom = "\xEF\xBB\xBF";
  EXPECT_EQ(EscapeCsvCell(bom + "h1"), "\"" + bom + "h1\"");

  auto first = ParseCsvString(bom + bom + "h1,h2\n");
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->size(), 1u);
  EXPECT_EQ((*first)[0], (std::vector<std::string>{bom + "h1", "h2"}));

  std::string rewritten =
      EscapeCsvCell((*first)[0][0]) + "," + EscapeCsvCell((*first)[0][1]) +
      "\n";
  auto second = ParseCsvString(rewritten);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_EQ(second->size(), 1u);
  EXPECT_EQ((*second)[0], (*first)[0]);
}

TEST(ParseCsvStringTest, HandlesQuotedCells) {
  auto rows = ParseCsvString("a,\"b,c\",\"say \"\"hi\"\"\"\n\"x\ny\",z\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0],
            (std::vector<std::string>{"a", "b,c", "say \"hi\""}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"x\ny", "z"}));
}

TEST(ParseCsvStringTest, RejectsMalformedQuoting) {
  EXPECT_FALSE(ParseCsvString("\"unterminated\n").ok());
  EXPECT_FALSE(ParseCsvString("\"closed\"junk\n").ok());
  EXPECT_FALSE(ParseCsvString("mid\"quote\n").ok());
}

TEST_F(CsvTest, QuotedCellsRoundTripThroughWriter) {
  std::vector<std::string> nasty = {"a,b", "say \"hi\"", "multi\nline",
                                    "plain"};
  {
    CsvWriter writer(path_);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow(nasty);
    writer.WriteRow(std::vector<std::string>{"1", "2", "3", "4"});
  }
  std::ifstream in(path_, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto rows = ParseCsvString(buffer.str());
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], nasty);  // commas/quotes/newlines survived
  EXPECT_EQ((*rows)[1],
            (std::vector<std::string>{"1", "2", "3", "4"}));
}

TEST(FormatDoubleTest, Renders) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(std::nan("")), "nan");
}

TEST(CliTest, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--users=500", "--epsilon=2.5",
                        "--name=trace"};
  CliArgs args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("users", 0), 500);
  EXPECT_DOUBLE_EQ(args.GetDouble("epsilon", 0.0), 2.5);
  EXPECT_EQ(args.GetString("name", ""), "trace");
}

TEST(CliTest, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--users", "123"};
  CliArgs args(3, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("users", 0), 123);
}

TEST(CliTest, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("users", 77), 77);
  EXPECT_FALSE(args.Has("users"));
}

TEST(CliTest, BareFlagActsAsBoolean) {
  const char* argv[] = {"prog", "--verbose"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_TRUE(args.Has("verbose"));
  EXPECT_EQ(args.GetInt("verbose", 0), 1);
}

TEST(CliTest, EnvFallback) {
  setenv("PRIVSHAPE_FALLBACK_TEST_KEY", "99", 1);
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("fallback_test_key", 0), 99);
  unsetenv("PRIVSHAPE_FALLBACK_TEST_KEY");
}

TEST(CliTest, FlagBeatsEnv) {
  setenv("PRIVSHAPE_PRIORITY_KEY", "1", 1);
  const char* argv[] = {"prog", "--priority_key=2"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("priority_key", 0), 2);
  unsetenv("PRIVSHAPE_PRIORITY_KEY");
}

TEST(CliTest, MalformedNumberFallsBack) {
  const char* argv[] = {"prog", "--users=abc"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("users", 42), 42);
}

TEST(CliTest, ThreadsFlagParsed) {
  const char* argv[] = {"prog", "--threads=6"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(ThreadsFromArgs(args), 6u);
}

TEST(CliTest, ThreadsDefaultsToHardware) {
  // Shield against a PRIVSHAPE_THREADS inherited from the invoking shell.
  unsetenv("PRIVSHAPE_THREADS");
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  // 0 = "hardware concurrency" by ThreadPool convention.
  EXPECT_EQ(ThreadsFromArgs(args), 0u);
  EXPECT_EQ(ThreadsFromArgs(args, 4), 4u);
}

TEST(CliTest, ThreadsEnvFallback) {
  setenv("PRIVSHAPE_THREADS", "3", 1);
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(ThreadsFromArgs(args), 3u);
  unsetenv("PRIVSHAPE_THREADS");
}

TEST(CliTest, NegativeThreadsFallsBack) {
  const char* argv[] = {"prog", "--threads=-2"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(ThreadsFromArgs(args, 1), 1u);
}

// --- Strict numeric flag parsing ----------------------------------------

TEST(CliTest, TrailingJunkIsMalformedNotTruncated) {
  // Pre-fix, std::stoi("12abc") silently yielded 12.
  const char* argv[] = {"prog", "--users=12abc"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("users", 42), 42);
  auto strict = args.GetIntStatus("users", 42);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
}

TEST(CliTest, MalformedThreadsEnvFallsBackInsteadOfAborting) {
  setenv("PRIVSHAPE_THREADS", "abc", 1);
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  // Must not throw/abort; malformed env means "use the default".
  EXPECT_EQ(ThreadsFromArgs(args, 4), 4u);
  setenv("PRIVSHAPE_THREADS", "7xyz", 1);
  EXPECT_EQ(ThreadsFromArgs(args, 4), 4u);
  setenv("PRIVSHAPE_THREADS", "-3", 1);
  EXPECT_EQ(ThreadsFromArgs(args, 4), 4u);
  unsetenv("PRIVSHAPE_THREADS");
}

TEST(CliTest, OutOfRangeIntFallsBack) {
  setenv("PRIVSHAPE_THREADS", "99999999999999999999", 1);
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(ThreadsFromArgs(args, 2), 2u);
  EXPECT_EQ(args.GetInt("threads", -1), -1);
  unsetenv("PRIVSHAPE_THREADS");
}

TEST(ParseIntFlagTest, StrictParse) {
  EXPECT_EQ(*ParseIntFlag("n", "123"), 123);
  EXPECT_EQ(*ParseIntFlag("n", "-7"), -7);
  EXPECT_EQ(*ParseIntFlag("n", "  42  "), 42);  // surrounding whitespace ok
  EXPECT_FALSE(ParseIntFlag("n", "").ok());
  EXPECT_FALSE(ParseIntFlag("n", "  ").ok());
  EXPECT_FALSE(ParseIntFlag("n", "abc").ok());
  EXPECT_FALSE(ParseIntFlag("n", "12abc").ok());
  EXPECT_FALSE(ParseIntFlag("n", "1.5").ok());
  EXPECT_FALSE(ParseIntFlag("n", "99999999999999999999").ok());
  auto err = ParseIntFlag("users", "junk");
  ASSERT_FALSE(err.ok());
  // The error names the flag so CLI users see what to fix.
  EXPECT_NE(err.status().message().find("--users"), std::string::npos);
}

TEST(ParseDoubleFlagTest, StrictParse) {
  EXPECT_DOUBLE_EQ(*ParseDoubleFlag("x", "2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDoubleFlag("x", "1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(*ParseDoubleFlag("x", "-0.25"), -0.25);
  EXPECT_FALSE(ParseDoubleFlag("x", "").ok());
  EXPECT_FALSE(ParseDoubleFlag("x", "2.5x").ok());
  EXPECT_FALSE(ParseDoubleFlag("x", "nope").ok());
  EXPECT_FALSE(ParseDoubleFlag("x", "1e999999").ok());
}

TEST(CliTest, GetDoubleStatusReportsMalformed) {
  const char* argv[] = {"prog", "--epsilon=4.0.1"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.GetDouble("epsilon", 1.0), 1.0);
  EXPECT_FALSE(args.GetDoubleStatus("epsilon", 1.0).ok());
  // Missing flag still yields the default, not an error.
  auto missing = args.GetDoubleStatus("absent", 2.0);
  ASSERT_TRUE(missing.ok());
  EXPECT_DOUBLE_EQ(*missing, 2.0);
}

}  // namespace
}  // namespace privshape
