// Quickstart: the smallest end-to-end PrivShape run.
//
// 1000 simulated users each hold a private time series drawn from one of
// three shapes. Each series is transformed locally with Compressive SAX
// and PrivShape extracts the top-k frequent shapes under user-level
// eps-LDP — the server never sees an unperturbed report.
//
// Build and run:  ./build/examples/quickstart

#include <iostream>

#include "core/pipeline.h"
#include "core/privshape.h"
#include "series/generators.h"
#include "series/sequence.h"

int main() {
  using namespace privshape;

  // 1) Simulated private data: three reactor-style transient classes.
  series::GeneratorOptions gen;
  gen.num_instances = 1000;
  gen.seed = 42;
  series::Dataset dataset = series::MakeTraceDataset(gen);

  // 2) Local, deterministic transformation (no budget spent): SAX with
  //    alphabet t = 4 and segment length w = 10, then run-length
  //    compression to the essential shape.
  core::TransformOptions transform;
  transform.t = 4;
  transform.w = 10;
  auto sequences = core::TransformDataset(dataset, transform);
  if (!sequences.ok()) {
    std::cerr << "transform failed: " << sequences.status() << "\n";
    return 1;
  }
  std::cout << "example compressed sequence of user 0: \""
            << SequenceToString((*sequences)[0]) << "\"\n";

  // 3) Run PrivShape at eps = 4 under user-level LDP.
  core::MechanismConfig config;
  config.epsilon = 4.0;
  config.t = 4;
  config.k = 3;   // extract the top-3 frequent shapes
  config.c = 3;   // keep top c*k candidates while pruning
  config.metric = dist::Metric::kSed;
  config.seed = 42;

  core::PrivShape mechanism(config);
  auto result = mechanism.Run(*sequences);
  if (!result.ok()) {
    std::cerr << "mechanism failed: " << result.status() << "\n";
    return 1;
  }

  // 4) Inspect the output.
  std::cout << "estimated frequent length: " << result->frequent_length
            << "\n";
  std::cout << "top-" << config.k << " frequent shapes:\n";
  for (const auto& shape : result->shapes) {
    std::cout << "  \"" << SequenceToString(shape.shape)
              << "\"  estimated count: " << shape.frequency << "\n";
  }
  std::cout << "user-level budget spent: "
            << result->accountant.UserLevelEpsilon() << " (of "
            << config.epsilon << ")\n";
  return 0;
}
