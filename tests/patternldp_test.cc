#include "patternldp/pattern_ldp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "patternldp/pid.h"
#include "series/generators.h"

namespace privshape {
namespace {

using pldp::ImportanceScores;
using pldp::PatternLdp;
using pldp::PatternLdpConfig;
using pldp::PidController;

TEST(PidTest, ProportionalOnlyTracksError) {
  PidController pid(2.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(pid.Update(1.0), 2.0);
  EXPECT_DOUBLE_EQ(pid.Update(-0.5), -1.0);
}

TEST(PidTest, IntegralAccumulates) {
  PidController pid(0.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(pid.Update(1.0), 1.0);
  EXPECT_DOUBLE_EQ(pid.Update(1.0), 2.0);
  EXPECT_DOUBLE_EQ(pid.Update(1.0), 3.0);
}

TEST(PidTest, DerivativeSeesChange) {
  PidController pid(0.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(pid.Update(1.0), 0.0);  // no previous error yet
  EXPECT_DOUBLE_EQ(pid.Update(3.0), 2.0);
  EXPECT_DOUBLE_EQ(pid.Update(3.0), 0.0);
}

TEST(PidTest, ResetClearsState) {
  PidController pid(1.0, 1.0, 1.0);
  pid.Update(5.0);
  pid.Reset();
  EXPECT_DOUBLE_EQ(pid.Update(1.0), 2.0);  // kp*1 + ki*1 + kd*0
}

TEST(ImportanceTest, LinearSeriesHasLowInteriorScores) {
  std::vector<double> linear;
  for (int i = 0; i < 50; ++i) linear.push_back(0.1 * i);
  auto scores = ImportanceScores(linear, 0.9, 0.1, 0.0);
  ASSERT_EQ(scores.size(), linear.size());
  for (size_t i = 2; i < scores.size(); ++i) {
    EXPECT_NEAR(scores[i], 0.0, 1e-9);
  }
}

TEST(ImportanceTest, TrendChangeScoresHigh) {
  // Flat then a sharp step: the step point must outscore flat points.
  std::vector<double> v(40, 0.0);
  for (size_t i = 20; i < 40; ++i) v[i] = 5.0;
  auto scores = ImportanceScores(v, 0.9, 0.1, 0.0);
  double flat_score = scores[10];
  double step_score = scores[20];
  EXPECT_GT(step_score, flat_score + 1.0);
}

TEST(ImportanceTest, TinySeriesUniform) {
  auto scores = ImportanceScores({1.0, 2.0}, 0.9, 0.1, 0.0);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
  EXPECT_DOUBLE_EQ(scores[1], 1.0);
}

TEST(PatternLdpTest, ConfigValidation) {
  PatternLdpConfig config;
  config.epsilon = 0.0;
  EXPECT_FALSE(PatternLdp::Create(config).ok());
  config.epsilon = 1.0;
  config.sample_fraction = 0.0;
  EXPECT_FALSE(PatternLdp::Create(config).ok());
  config.sample_fraction = 1.5;
  EXPECT_FALSE(PatternLdp::Create(config).ok());
  config.sample_fraction = 0.1;
  config.clip = -1.0;
  EXPECT_FALSE(PatternLdp::Create(config).ok());
}

TEST(PatternLdpTest, OutputPreservesLength) {
  PatternLdpConfig config;
  auto mech = PatternLdp::Create(config);
  ASSERT_TRUE(mech.ok());
  Rng rng(121);
  std::vector<double> v = ZNormalized(std::vector<double>{
      0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1});
  auto out = mech->PerturbSeries(v, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), v.size());
}

TEST(PatternLdpTest, EmptySeriesFails) {
  auto mech = PatternLdp::Create(PatternLdpConfig{});
  ASSERT_TRUE(mech.ok());
  Rng rng(122);
  EXPECT_FALSE(mech->PerturbSeries({}, &rng).ok());
}

TEST(PatternLdpTest, HighBudgetTracksShape) {
  // With a huge budget, the perturbed series must stay close to the input.
  PatternLdpConfig config;
  config.epsilon = 500.0;
  config.sample_fraction = 0.5;
  auto mech = PatternLdp::Create(config);
  ASSERT_TRUE(mech.ok());
  Rng rng(123);
  series::GeneratorOptions gen;
  gen.num_instances = 3;
  auto dataset = series::MakeTraceDataset(gen);
  const auto& v = dataset.instances[0].values;
  auto out = mech->PerturbSeries(v, &rng);
  ASSERT_TRUE(out.ok());
  double err = 0;
  for (size_t i = 0; i < v.size(); ++i) err += std::abs((*out)[i] - v[i]);
  err /= static_cast<double>(v.size());
  // PatternLDP interpolates between sampled anchors, so even a huge budget
  // leaves residual reconstruction error; it just must be clearly small
  // compared to the z-scored signal's unit scale.
  EXPECT_LT(err, 1.0);
}

TEST(PatternLdpTest, LowBudgetDistortsShape) {
  // The paper's core observation: under user-level privacy the per-point
  // budget collapses and the shape washes out. Distortion at eps = 0.5
  // must far exceed distortion at eps = 500.
  auto distortion = [](double eps, uint64_t seed) {
    PatternLdpConfig config;
    config.epsilon = eps;
    auto mech = PatternLdp::Create(config);
    Rng rng(seed);
    series::GeneratorOptions gen;
    gen.num_instances = 3;
    gen.seed = 9;
    auto dataset = series::MakeTraceDataset(gen);
    const auto& v = dataset.instances[0].values;
    auto out = mech->PerturbSeries(v, &rng);
    double err = 0;
    for (size_t i = 0; i < v.size(); ++i) err += std::abs((*out)[i] - v[i]);
    return err / static_cast<double>(v.size());
  };
  double low = 0, high = 0;
  for (uint64_t s = 0; s < 5; ++s) {
    low += distortion(0.5, 200 + s);
    high += distortion(500.0, 300 + s);
  }
  EXPECT_GT(low, 2.0 * high);
}

TEST(PatternLdpTest, PerturbDatasetKeepsLabelsAndSizes) {
  auto mech = PatternLdp::Create(PatternLdpConfig{});
  ASSERT_TRUE(mech.ok());
  Rng rng(124);
  series::GeneratorOptions gen;
  gen.num_instances = 9;
  auto dataset = series::MakeTraceDataset(gen);
  auto out = mech->PerturbDataset(dataset, &rng);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(out->instances[i].label, dataset.instances[i].label);
    EXPECT_EQ(out->instances[i].values.size(),
              dataset.instances[i].values.size());
  }
}

TEST(PatternLdpTest, MinSamplesHonored) {
  PatternLdpConfig config;
  config.sample_fraction = 0.001;  // would sample < min_samples
  config.min_samples = 4;
  auto mech = PatternLdp::Create(config);
  ASSERT_TRUE(mech.ok());
  Rng rng(125);
  std::vector<double> v(100, 0.0);
  auto out = mech->PerturbSeries(v, &rng);
  ASSERT_TRUE(out.ok());  // just exercising the floor path
}

}  // namespace
}  // namespace privshape
