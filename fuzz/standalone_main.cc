/// \file
/// Driver for fuzz harnesses on toolchains without libFuzzer (GCC, or
/// clang without compiler-rt): replays corpus files/directories passed
/// on the command line, then feeds `--runs=N` pseudo-random inputs
/// through the same `LLVMFuzzerTestOneInput` entry point. Random inputs
/// are derived from corpus entries by deterministic mutation (bit
/// flips, truncation, splices) so the smoke run probes near the
/// interesting surface instead of pure noise. Deterministic by
/// construction — a failure reproduces from the same command line.
///
/// This is a smoke driver, not a coverage-guided fuzzer; the CI
/// `fuzz-smoke` job runs the real libFuzzer build.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

/// xorshift64* — tiny deterministic PRNG, independent of std::rand.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed != 0 ? seed : 0x9e3779b97f4a7c15) {}
  uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1d;
  }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }
};

bool ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

void CollectInputs(const std::string& path,
                   std::vector<std::string>* files) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "standalone fuzz driver: cannot stat %s\n",
                 path.c_str());
    return;
  }
  if (S_ISDIR(st.st_mode)) {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return;
    std::vector<std::string> entries;
    while (dirent* e = ::readdir(dir)) {
      if (e->d_name[0] == '.') continue;
      entries.push_back(path + "/" + e->d_name);
    }
    ::closedir(dir);
    // readdir order is filesystem-dependent; sort for determinism.
    std::sort(entries.begin(), entries.end());
    for (const auto& entry : entries) CollectInputs(entry, files);
  } else if (S_ISREG(st.st_mode)) {
    files->push_back(path);
  }
}

std::vector<uint8_t> Mutate(const std::vector<std::vector<uint8_t>>& corpus,
                            Rng& rng) {
  std::vector<uint8_t> input;
  if (!corpus.empty()) input = corpus[rng.Below(corpus.size())];
  switch (rng.Below(6)) {
    case 0:  // pure random bytes
      input.resize(rng.Below(256));
      for (auto& b : input) b = static_cast<uint8_t>(rng.Next());
      break;
    case 1:  // truncate
      if (!input.empty()) input.resize(rng.Below(input.size()));
      break;
    case 2:  // flip bits
      for (size_t i = 0, n = 1 + rng.Below(8); i < n && !input.empty(); ++i) {
        input[rng.Below(input.size())] ^=
            static_cast<uint8_t>(1u << rng.Below(8));
      }
      break;
    case 3: {  // splice two corpus entries
      if (corpus.size() >= 2) {
        const auto& other = corpus[rng.Below(corpus.size())];
        size_t cut = rng.Below(input.size() + 1);
        size_t ocut = rng.Below(other.size() + 1);
        input.resize(cut);
        input.insert(input.end(), other.begin() + ocut, other.end());
      }
      break;
    }
    case 4:  // insert random bytes
      for (size_t i = 0, n = 1 + rng.Below(16); i < n; ++i) {
        input.insert(input.begin() + rng.Below(input.size() + 1),
                     static_cast<uint8_t>(rng.Next()));
      }
      break;
    default:  // overwrite a run with one value (length-prefix smashing)
      if (!input.empty()) {
        size_t at = rng.Below(input.size());
        size_t n = rng.Below(input.size() - at);
        std::memset(input.data() + at, static_cast<int>(rng.Next()), n);
      }
      break;
  }
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  size_t runs = 0;
  uint64_t seed = 1;
  std::string dump_last;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--runs=", 0) == 0 || arg.rfind("-runs=", 0) == 0) {
      runs = static_cast<size_t>(
          std::strtoull(arg.substr(arg.find('=') + 1).c_str(), nullptr, 10));
    } else if (arg.rfind("--seed=", 0) == 0 || arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.substr(arg.find('=') + 1).c_str(), nullptr, 10);
    } else if (arg.rfind("--dump-last=", 0) == 0) {
      // Crash triage: persist every input before running it, so the one
      // that aborted the process is on disk afterwards.
      dump_last = arg.substr(arg.find('=') + 1);
    } else if (arg.rfind('-', 0) == 0) {
      // Ignore unknown flags so libFuzzer-style invocations still work.
    } else {
      CollectInputs(arg, &files);
    }
  }

  std::vector<std::vector<uint8_t>> corpus;
  for (const auto& path : files) {
    std::vector<uint8_t> bytes;
    if (!ReadFile(path, &bytes)) {
      std::fprintf(stderr, "standalone fuzz driver: cannot read %s\n",
                   path.c_str());
      return 2;
    }
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    corpus.push_back(std::move(bytes));
  }

  Rng rng(seed);
  for (size_t i = 0; i < runs; ++i) {
    std::vector<uint8_t> input = Mutate(corpus, rng);
    if (!dump_last.empty()) {
      std::ofstream out(dump_last, std::ios::binary);
      out.write(reinterpret_cast<const char*>(input.data()),
                static_cast<std::streamsize>(input.size()));
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("standalone fuzz driver: %zu corpus inputs + %zu runs OK\n",
              corpus.size(), runs);
  return 0;
}
