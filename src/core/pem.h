#ifndef PRIVSHAPE_CORE_PEM_H_
#define PRIVSHAPE_CORE_PEM_H_

#include <vector>

#include "core/config.h"

namespace privshape::core {

/// Prefix Extending Method (Wang, Li, Jha — TDSC'21), adapted from bit
/// strings to SAX words. The paper's §III-C discusses PEM as the natural
/// competitor for candidate generation and §VI reviews it; this
/// implementation lets the benches quantify the claim that PEM's larger
/// per-round expansion domain degrades EM/GRR utility when the symbol
/// alphabet exceeds two.
///
/// Each round extends the surviving prefixes by `gamma` symbols at once;
/// a fresh user group reports (GRR over the candidate set + "other") which
/// candidate prefixes their own word starts with.
struct PemConfig {
  double epsilon = 4.0;
  int t = 4;            ///< alphabet size
  int k = 3;            ///< shapes to output
  size_t keep = 9;      ///< prefixes kept per round (c*k in PrivShape terms)
  int gamma = 2;        ///< symbols appended per round
  int ell = 8;          ///< target shape length
  bool allow_repeats = false;
  uint64_t seed = 2023;

  Status Validate() const;
};

class PemMiner {
 public:
  explicit PemMiner(PemConfig config) : config_(config) {}

  /// Mines the top-k frequent words of length config.ell from the users'
  /// compressed words under eps-LDP (one report per user; disjoint user
  /// groups per round => user-level parallel composition).
  Result<MechanismResult> Run(const std::vector<Sequence>& sequences) const;

  const PemConfig& config() const { return config_; }

 private:
  PemConfig config_;
};

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_PEM_H_
