"""Check: privacy-budget flow into mechanism constructions.

Every LDP mechanism must receive its epsilon from a traced budget
expression — a MechanismConfig field, a function parameter, a split
computed from one — never a raw numeric literal at the construction
site. Literal epsilons bypass the PrivacyAccountant entirely: the
paper's user-level guarantee is the max over populations of *charged*
budget, so an uncharged hard-coded epsilon silently voids the proof.
With multi-task fleets (per-user budget accounting across concurrent
tasks) on the roadmap, every construction site must already be on the
audited tree.

Scope: all of src/. Tests, benches and examples are free to use
literals (they *are* the budget authority for their scenario).
"""

from .. import ir

CHECK_ID = "psa-budget-flow"
DESCRIPTION = ("mechanism constructions receive epsilon from a traced "
               "budget expression, never a raw literal")

# Mechanism factory -> index of the epsilon parameter.
MECHANISMS = {
    "Grr": 1,
    "UnaryEncoding": 1,
    "Olh": 1,
    "ExponentialMechanism": 0,
    "PiecewiseMechanism": 0,
    "DuchiMechanism": 0,
    "LaplaceMechanism": 0,
}
FACTORY = "Create"


def run(files, registry):
    findings = []
    for src in files:
        if src.module is None:
            continue
        findings.extend(_scan(src))
    return findings


def _scan(src):
    findings = []
    tokens = src.tokens
    n = len(tokens)
    for i in range(n - 3):
        if not (tokens[i].kind == ir.IDENT
                and tokens[i].text in MECHANISMS
                and tokens[i + 1].text == "::"
                and tokens[i + 2].text == FACTORY
                and tokens[i + 3].text == "("):
            continue
        mech = tokens[i].text
        eps_index = MECHANISMS[mech]
        args = _split_args(tokens, i + 3)
        if eps_index >= len(args):
            continue  # decl or forward use; nothing to trace
        arg = args[eps_index]
        lit = _literal_value(arg)
        if lit is not None:
            findings.append(ir.Finding(
                CHECK_ID, src.path, arg[0].line,
                f"{mech}::Create receives the raw epsilon literal "
                f"{lit} — thread it from a MechanismConfig / accountant-"
                "traced budget expression so per-user accounting can "
                "audit the split"))
    return findings


def _split_args(tokens, open_idx):
    """Top-level comma-split argument token lists of the call."""
    depth = 0
    args = [[]]
    k = open_idx
    while k < len(tokens):
        t = tokens[k].text
        if t in "([{":
            depth += 1
            if depth == 1:
                k += 1
                continue
        elif t in ")]}":
            depth -= 1
            if depth == 0:
                break
        if depth >= 1:
            if t == "," and depth == 1:
                args.append([])
            else:
                args[-1].append(tokens[k])
        k += 1
    if args == [[]]:
        return []
    return args


def _literal_value(arg_tokens):
    """The literal text if the argument is a bare numeric, else None.

    Unary sign and redundant parentheses/casts around a literal still
    count as a literal: `(0.5)`, `-1.0`, `double{2}` are all untraced.
    """
    toks = [t for t in arg_tokens
            if t.text not in ("(", ")", "{", "}", "+", "-")
            and not (t.kind == ir.IDENT and t.text in (
                "double", "float", "static_cast"))
            and t.text not in ("<", ">")]
    if len(toks) == 1 and toks[0].kind == ir.NUMBER:
        sign = "-" if any(t.text == "-" for t in arg_tokens) else ""
        return sign + toks[0].text
    return None
