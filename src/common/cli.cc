#include "common/cli.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace privshape {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "1";  // bare flag acts as boolean
    }
  }
}

bool CliArgs::Lookup(const std::string& name, std::string* out) const {
  auto it = flags_.find(name);
  if (it != flags_.end()) {
    *out = it->second;
    return true;
  }
  std::string env_name = "PRIVSHAPE_" + name;
  std::transform(env_name.begin(), env_name.end(), env_name.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (const char* env = std::getenv(env_name.c_str())) {
    *out = env;
    return true;
  }
  return false;
}

int CliArgs::GetInt(const std::string& name, int def) const {
  std::string v;
  if (!Lookup(name, &v)) return def;
  try {
    return std::stoi(v);
  } catch (...) {
    return def;
  }
}

double CliArgs::GetDouble(const std::string& name, double def) const {
  std::string v;
  if (!Lookup(name, &v)) return def;
  try {
    return std::stod(v);
  } catch (...) {
    return def;
  }
}

std::string CliArgs::GetString(const std::string& name,
                               const std::string& def) const {
  std::string v;
  return Lookup(name, &v) ? v : def;
}

bool CliArgs::Has(const std::string& name) const {
  std::string v;
  return Lookup(name, &v);
}

size_t ThreadsFromArgs(const CliArgs& args, size_t def) {
  int threads = args.GetInt("threads", static_cast<int>(def));
  if (threads < 0) return def;
  return static_cast<size_t>(threads);
}

}  // namespace privshape
