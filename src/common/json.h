#ifndef PRIVSHAPE_COMMON_JSON_H_
#define PRIVSHAPE_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace privshape {

/// Minimal write-only JSON document builder used by the collector metrics
/// export and the bench harness `--json` output. Insertion order is
/// preserved so emitted files diff cleanly across runs. No parsing — the
/// repo only ever produces JSON, never consumes it.
class JsonValue {
 public:
  /// Scalar constructors.
  static JsonValue Str(std::string s);
  static JsonValue Num(double v);
  static JsonValue Int(int64_t v);
  static JsonValue Uint(uint64_t v);
  static JsonValue Bool(bool v);
  static JsonValue Null();

  /// Composite constructors.
  static JsonValue Object();
  static JsonValue Array();

  /// Object insertion (last write for a key wins; order preserved).
  /// Returns *this for chaining. Aborts in debug builds on non-objects.
  JsonValue& Set(const std::string& key, JsonValue value);

  /// Array append; aborts in debug builds on non-arrays.
  JsonValue& Push(JsonValue value);

  bool IsObject() const { return kind_ == Kind::kObject; }
  bool IsArray() const { return kind_ == Kind::kArray; }
  size_t size() const { return children_.size(); }

  /// Serializes the document. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits a compact single line.
  std::string Dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  JsonValue() : kind_(Kind::kNull) {}

  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::string scalar_;  ///< pre-rendered number, or raw string payload
  std::vector<std::pair<std::string, JsonValue>> children_;
};

/// Escapes a string for embedding in a JSON document (without quotes).
std::string JsonEscape(const std::string& s);

/// Renders a double the way JSON expects: finite values via shortest
/// round-trip formatting, NaN/Inf as null (JSON has no encoding for them).
std::string JsonNumber(double v);

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_JSON_H_
