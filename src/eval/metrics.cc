#include "eval/metrics.h"

namespace privshape::eval {

Result<std::vector<std::vector<size_t>>> ConfusionMatrix(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes) {
  if (truth.size() != predicted.size()) {
    return Status::InvalidArgument("label vectors must have equal length");
  }
  if (truth.empty()) {
    return Status::InvalidArgument("empty labelings");
  }
  if (num_classes < 1) {
    return Status::InvalidArgument("need at least one class");
  }
  std::vector<std::vector<size_t>> matrix(
      static_cast<size_t>(num_classes),
      std::vector<size_t>(static_cast<size_t>(num_classes), 0));
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0 || truth[i] >= num_classes || predicted[i] < 0 ||
        predicted[i] >= num_classes) {
      return Status::OutOfRange("label outside [0, num_classes)");
    }
    matrix[static_cast<size_t>(truth[i])]
          [static_cast<size_t>(predicted[i])]++;
  }
  return matrix;
}

Result<ClassificationReport> ComputeClassificationReport(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes) {
  auto matrix = ConfusionMatrix(truth, predicted, num_classes);
  if (!matrix.ok()) return matrix.status();

  ClassificationReport report;
  size_t k = static_cast<size_t>(num_classes);
  report.precision.assign(k, 0.0);
  report.recall.assign(k, 0.0);
  report.f1.assign(k, 0.0);

  size_t correct = 0;
  for (size_t c = 0; c < k; ++c) {
    size_t tp = (*matrix)[c][c];
    correct += tp;
    size_t predicted_c = 0, actual_c = 0;
    for (size_t r = 0; r < k; ++r) {
      predicted_c += (*matrix)[r][c];
      actual_c += (*matrix)[c][r];
    }
    double precision = predicted_c > 0
                           ? static_cast<double>(tp) /
                                 static_cast<double>(predicted_c)
                           : 0.0;
    double recall =
        actual_c > 0
            ? static_cast<double>(tp) / static_cast<double>(actual_c)
            : 0.0;
    report.precision[c] = precision;
    report.recall[c] = recall;
    report.f1[c] = (precision + recall) > 0
                       ? 2.0 * precision * recall / (precision + recall)
                       : 0.0;
    report.macro_precision += precision;
    report.macro_recall += recall;
    report.macro_f1 += report.f1[c];
  }
  report.macro_precision /= static_cast<double>(k);
  report.macro_recall /= static_cast<double>(k);
  report.macro_f1 /= static_cast<double>(k);
  report.accuracy =
      static_cast<double>(correct) / static_cast<double>(truth.size());
  return report;
}

}  // namespace privshape::eval
