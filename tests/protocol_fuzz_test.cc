/// Fuzz-style hardening tests for the wire layer: every systematically
/// corrupted report (truncations, bit flips, wrong kinds, huge fields,
/// trailing garbage) must either decode to an equivalent valid report or
/// be counted in rejected() — and must never corrupt the aggregate
/// estimates of the well-formed reports around it.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "protocol/codec.h"
#include "protocol/messages.h"
#include "protocol/session.h"

namespace privshape {
namespace {

using proto::Decoder;
using proto::DecodeReport;
using proto::Encoder;
using proto::EncodeReport;
using proto::Report;
using proto::ReportAggregator;
using proto::ReportKind;

Report ValidReport(uint64_t value = 3) {
  Report report;
  report.kind = ReportKind::kLength;
  report.value = value;
  return report;
}

TEST(ProtocolFuzzTest, EveryTruncationIsRejectedByDecode) {
  std::string wire = EncodeReport(ValidReport());
  for (size_t len = 0; len < wire.size(); ++len) {
    auto decoded = DecodeReport(wire.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncation at " << len << " decoded";
  }
}

TEST(ProtocolFuzzTest, BitFlipsNeverSmuggleInvalidReportsThroughAggregation) {
  // A single flipped bit may legitimately still decode (e.g. it only
  // moved the value within the domain). The invariant is that Consume
  // agrees exactly with DecodeReport's verdict: everything else lands in
  // rejected(), and nothing crashes along the way.
  const size_t kDomain = 10;
  std::string wire = EncodeReport(ValidReport());
  ReportAggregator agg(ReportKind::kLength, kDomain, 2.0);
  size_t expect_accepted = 0;
  size_t expect_rejected = 0;
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = wire;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      auto decoded = DecodeReport(flipped);
      if (decoded.ok() && decoded->kind == ReportKind::kLength &&
          decoded->value < kDomain) {
        ++expect_accepted;
      } else {
        ++expect_rejected;
      }
      agg.Consume(flipped);
    }
  }
  EXPECT_EQ(agg.accepted(), expect_accepted);
  EXPECT_EQ(agg.rejected(), expect_rejected);
  // Version and kind flips alone guarantee a healthy rejected pile.
  EXPECT_GT(expect_rejected, 8u);
}

TEST(ProtocolFuzzTest, AggregatorCountsEveryMalformedInputAsRejected) {
  const size_t kDomain = 10;
  ReportAggregator agg(ReportKind::kLength, kDomain, 2.0);

  std::vector<std::string> malformed;
  std::string wire = EncodeReport(ValidReport());
  // Truncations.
  for (size_t len = 0; len < wire.size(); ++len) {
    malformed.push_back(wire.substr(0, len));
  }
  // Trailing garbage.
  malformed.push_back(wire + "x");
  malformed.push_back(wire + wire);
  // Wrong kinds.
  for (auto kind : {ReportKind::kSubShape, ReportKind::kSelection,
                    ReportKind::kRefinement, ReportKind::kClassRefine}) {
    Report wrong;
    wrong.kind = kind;
    wrong.value = 1;
    malformed.push_back(EncodeReport(wrong));
  }
  // Unknown kinds (including the first id past kClassRefine — a
  // rolled-forward fleet must not smuggle future kinds past an old
  // aggregator) and an unknown version.
  for (uint64_t kind : {uint64_t{6}, uint64_t{77}}) {
    Encoder enc;
    enc.PutVarint(proto::kWireVersion);
    enc.PutVarint(kind);
    enc.PutVarint(0);
    enc.PutVarint(0);
    enc.PutBytes({});
    malformed.push_back(enc.Release());
  }
  {
    Encoder enc;
    enc.PutVarint(proto::kWireVersion + 9);
    enc.PutVarint(1);
    enc.PutVarint(0);
    enc.PutVarint(0);
    enc.PutBytes({});
    malformed.push_back(enc.Release());
  }
  // Out-of-domain values, including overflow-bait ones.
  for (uint64_t value :
       {uint64_t{kDomain}, uint64_t{kDomain + 1}, uint64_t{1} << 40,
        ~uint64_t{0}}) {
    malformed.push_back(EncodeReport(ValidReport(value)));
  }
  // Pure noise.
  malformed.push_back(std::string(64, '\xff'));
  malformed.push_back(std::string(64, '\0'));
  malformed.push_back("not-a-report");

  for (const std::string& bad : malformed) agg.Consume(bad);
  EXPECT_EQ(agg.accepted(), 0u);
  EXPECT_EQ(agg.rejected(), malformed.size());
}

TEST(ProtocolFuzzTest, MalformedReportsNeverCorruptEstimates) {
  const size_t kDomain = 6;
  const double kEps = 3.0;

  // Clean aggregate: 40 users reporting value 2, 20 reporting value 4.
  auto feed_valid = [](ReportAggregator* agg) {
    for (int i = 0; i < 40; ++i) agg->Consume(EncodeReport(ValidReport(2)));
    for (int i = 0; i < 20; ++i) agg->Consume(EncodeReport(ValidReport(4)));
  };
  ReportAggregator clean(ReportKind::kLength, kDomain, kEps);
  feed_valid(&clean);

  // Same valid stream, interleaved with hostile inputs.
  ReportAggregator attacked(ReportKind::kLength, kDomain, kEps);
  std::string wire = EncodeReport(ValidReport(2));
  for (int i = 0; i < 40; ++i) {
    attacked.Consume(EncodeReport(ValidReport(2)));
    attacked.Consume(wire.substr(0, wire.size() / 2));
    attacked.Consume(EncodeReport(ValidReport(uint64_t{1} << 50)));
  }
  for (int i = 0; i < 20; ++i) {
    attacked.Consume(EncodeReport(ValidReport(4)));
    Report wrong;
    wrong.kind = ReportKind::kRefinement;
    wrong.value = 2;
    attacked.Consume(EncodeReport(wrong));
  }

  EXPECT_EQ(attacked.accepted(), clean.accepted());
  EXPECT_EQ(attacked.rejected(), 100u);
  EXPECT_EQ(attacked.raw_counts(), clean.raw_counts());
  // Byte-identical debiased estimates: rejects must not feed the `n` term.
  EXPECT_EQ(attacked.EstimatedCounts(), clean.EstimatedCounts());
  for (double v : attacked.EstimatedCounts()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(ProtocolFuzzTest, DecoderNeverReadsPastTruncatedBuffers) {
  // Exercise the raw codec getters over adversarial buffers; Result-based
  // errors (never exceptions, never overreads under ASan).
  for (const std::string& buffer :
       {std::string(""), std::string(1, '\x80'), std::string(9, '\xff'),
        std::string(3, 'x'), std::string(7, '\0')}) {
    Decoder varints(buffer);
    while (varints.GetVarint().ok()) {
    }
    EXPECT_FALSE(varints.GetVarint().ok());
    Decoder doubles(buffer);
    while (doubles.GetDouble().ok()) {
    }
    EXPECT_FALSE(doubles.GetDouble().ok());
    Decoder bytes(buffer);
    while (bytes.GetBytes().ok()) {
    }
    EXPECT_FALSE(bytes.GetBytes().ok());
  }
}

TEST(ProtocolFuzzTest, CandidateRequestCorruptionRejected) {
  proto::CandidateRequest request;
  request.level = 2;
  request.epsilon = 4.0;
  request.candidates = {{0, 1, 2}, {2, 1}};
  std::string wire = proto::EncodeCandidateRequest(request);
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(proto::DecodeCandidateRequest(wire.substr(0, len)).ok())
        << "truncation at " << len;
  }
  EXPECT_FALSE(proto::DecodeCandidateRequest(wire + "zz").ok());
}

TEST(ProtocolFuzzTest, ClassRefineReportBitLengthEnforced) {
  // A P_e report is a whole OUE bit vector; the aggregator must reject
  // anything but exactly `domain` bits (shorter, longer, empty, or with a
  // stray value field), and still count clean reports around the junk.
  const size_t kCells = 6;
  ReportAggregator agg(ReportKind::kClassRefine, kCells, 2.0);
  Report good;
  good.kind = ReportKind::kClassRefine;
  good.bits = {1, 0, 0, 1, 0, 1};
  agg.Consume(EncodeReport(good));

  for (size_t bits : {size_t{0}, size_t{1}, kCells - 1, kCells + 1,
                      size_t{64}}) {
    Report bad;
    bad.kind = ReportKind::kClassRefine;
    bad.bits.assign(bits, 1);
    agg.Consume(EncodeReport(bad));
  }
  Report stray_value = good;
  stray_value.value = 3;
  agg.Consume(EncodeReport(stray_value));
  Report stray_level = good;
  stray_level.level = 7;
  agg.Consume(EncodeReport(stray_level));

  EXPECT_EQ(agg.accepted(), 1u);
  EXPECT_EQ(agg.rejected(), 7u);
  EXPECT_EQ(agg.raw_counts(), (std::vector<size_t>{1, 0, 0, 1, 0, 1}));
}

TEST(ProtocolFuzzTest, ClassRefineReportSurvivesRoundTripAndTruncation) {
  Report report;
  report.kind = ReportKind::kClassRefine;
  report.bits = {1, 0, 1, 1, 0, 0, 1, 0};
  std::string wire = EncodeReport(report);
  auto decoded = DecodeReport(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, report);
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(DecodeReport(wire.substr(0, len)).ok())
        << "truncation at " << len;
  }
  EXPECT_FALSE(DecodeReport(wire + "x").ok());
}

TEST(ProtocolFuzzTest, LengthRequestCorruptionRejected) {
  proto::LengthRequest request;
  request.ell_low = 1;
  request.ell_high = 10;
  request.epsilon = 4.0;
  std::string wire = proto::EncodeLengthRequest(request);
  auto decoded = proto::DecodeLengthRequest(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, request);
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(proto::DecodeLengthRequest(wire.substr(0, len)).ok())
        << "truncation at " << len;
  }
  EXPECT_FALSE(proto::DecodeLengthRequest(wire + "z").ok());
  // A range that cannot fit an int is corrupt, not a 2^40-bucket domain.
  Encoder enc;
  enc.PutVarint(proto::kWireVersion);
  enc.PutVarint(uint64_t{1} << 40);
  enc.PutVarint(uint64_t{1} << 41);
  enc.PutDouble(4.0);
  EXPECT_FALSE(proto::DecodeLengthRequest(enc.buffer()).ok());
}

TEST(ProtocolFuzzTest, SubShapeRequestCorruptionRejected) {
  proto::SubShapeRequest request;
  request.alphabet = 4;
  request.ell_s = 6;
  request.epsilon = 2.0;
  request.allow_repeats = true;
  std::string wire = proto::EncodeSubShapeRequest(request);
  auto decoded = proto::DecodeSubShapeRequest(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, request);
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(proto::DecodeSubShapeRequest(wire.substr(0, len)).ok())
        << "truncation at " << len;
  }
  EXPECT_FALSE(proto::DecodeSubShapeRequest(wire + "z").ok());
  // allow_repeats is a strict boolean on the wire.
  Encoder enc;
  enc.PutVarint(proto::kWireVersion);
  enc.PutVarint(4);
  enc.PutVarint(6);
  enc.PutDouble(2.0);
  enc.PutVarint(2);
  EXPECT_FALSE(proto::DecodeSubShapeRequest(enc.buffer()).ok());
}

TEST(ProtocolFuzzTest, ClassRefineRequestCorruptionRejected) {
  proto::ClassRefineRequest request;
  request.epsilon = 4.0;
  request.num_classes = 3;
  request.candidates = {{0, 1, 2}, {2, 1}};
  std::string wire = proto::EncodeClassRefineRequest(request);
  auto decoded = proto::DecodeClassRefineRequest(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, request);
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(proto::DecodeClassRefineRequest(wire.substr(0, len)).ok())
        << "truncation at " << len;
  }
  EXPECT_FALSE(proto::DecodeClassRefineRequest(wire + "zz").ok());
}

}  // namespace
}  // namespace privshape
