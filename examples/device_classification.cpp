// Device-state classification (the paper's Trace workload).
//
// A fleet of monitoring devices reports transient signatures: level
// shifts, overshooting ramps, damped oscillations. Labels are sensitive
// too, so PrivShape's classification variant reports (shape, label) cells
// through OUE inside the two-level refinement. The extracted labeled
// shapes then classify a held-out test set by nearest string-edit
// distance.
//
// Run: ./build/examples/device_classification [--users=3000] [--epsilon=4]

#include <iostream>

#include "common/cli.h"
#include "core/classification.h"
#include "core/pipeline.h"
#include "core/privshape.h"
#include "eval/ari.h"
#include "eval/shape_matching.h"
#include "series/generators.h"
#include "series/time_series.h"

int main(int argc, char** argv) {
  using namespace privshape;
  CliArgs args(argc, argv);
  size_t users = static_cast<size_t>(args.GetInt("users", 3000));
  double epsilon = args.GetDouble("epsilon", 4.0);

  series::GeneratorOptions gen;
  gen.num_instances = users;
  gen.seed = 7;
  series::Dataset dataset = series::MakeTraceDataset(gen);
  series::Dataset train, test;
  series::TrainTestSplit(dataset, 0.8, 7, &train, &test);
  std::cout << train.size() << " training users, " << test.size()
            << " test instances, 3 transient classes\n";

  core::TransformOptions transform;
  transform.t = 4;
  transform.w = 10;
  auto train_seqs = core::TransformDataset(train, transform);
  auto test_seqs = core::TransformDataset(test, transform);
  if (!train_seqs.ok() || !test_seqs.ok()) {
    std::cerr << "transform failed\n";
    return 1;
  }

  core::MechanismConfig config;
  config.epsilon = epsilon;
  config.t = 4;
  config.k = 3;
  config.c = 3;
  config.metric = dist::Metric::kSed;
  config.num_classes = 3;  // enables the OUE candidate x class refinement
  config.seed = 7;

  std::vector<int> train_labels;
  for (const auto& inst : train.instances) {
    train_labels.push_back(inst.label);
  }
  core::PrivShape mechanism(config);
  auto shapes =
      core::PrivShapeLabeledShapes(mechanism, *train_seqs, train_labels);
  if (!shapes.ok()) {
    std::cerr << shapes.status() << "\n";
    return 1;
  }

  std::cout << "\nextracted classification criteria (eps=" << epsilon
            << "):\n";
  for (const auto& shape : *shapes) {
    std::cout << "  class " << shape.label << " <- \""
              << SequenceToString(shape.shape) << "\"\n";
  }

  auto classifier =
      eval::NearestShapeClassifier::Create(*shapes, dist::Metric::kSed);
  std::vector<int> truth;
  for (const auto& inst : test.instances) truth.push_back(inst.label);
  auto predictions = classifier->ClassifyBatch(*test_seqs);
  auto accuracy = eval::Accuracy(truth, predictions);
  std::cout << "\nheld-out classification accuracy: " << *accuracy << "\n";
  std::cout << "every training label was only read inside its owner's "
               "local OUE encoding; the server saw noisy bit vectors.\n";
  return 0;
}
