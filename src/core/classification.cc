#include "core/classification.h"

namespace privshape::core {

Result<std::vector<eval::LabeledShape>> ExtractShapesPerClass(
    const BaselineMechanism& mechanism,
    const std::vector<Sequence>& sequences, const std::vector<int>& labels,
    int num_classes, int shapes_per_class) {
  if (sequences.size() != labels.size()) {
    return Status::InvalidArgument("one label per sequence required");
  }
  if (num_classes < 1) {
    return Status::InvalidArgument("need at least one class");
  }
  std::vector<eval::LabeledShape> out;
  for (int cls = 0; cls < num_classes; ++cls) {
    std::vector<Sequence> class_sequences;
    for (size_t i = 0; i < sequences.size(); ++i) {
      if (labels[i] == cls) class_sequences.push_back(sequences[i]);
    }
    if (class_sequences.empty()) continue;
    MechanismConfig config = mechanism.config();
    config.k = shapes_per_class;
    config.num_classes = 0;
    config.seed = mechanism.config().seed + static_cast<uint64_t>(cls) + 1;
    BaselineMechanism per_class(config);
    auto result = per_class.Run(class_sequences);
    if (!result.ok()) return result.status();
    for (const auto& shape : result->shapes) {
      out.push_back({shape.shape, cls});
    }
  }
  if (out.empty()) {
    return Status::Internal("no shapes extracted for any class");
  }
  return out;
}

Result<std::vector<eval::LabeledShape>> PrivShapeLabeledShapes(
    const PrivShape& mechanism, const std::vector<Sequence>& sequences,
    const std::vector<int>& labels) {
  if (mechanism.config().num_classes < 1) {
    return Status::FailedPrecondition(
        "PrivShapeLabeledShapes requires config.num_classes > 0");
  }
  auto result = mechanism.Run(sequences, &labels);
  if (!result.ok()) return result.status();
  std::vector<eval::LabeledShape> out;
  for (const auto& shape : result->shapes) {
    out.push_back({shape.shape, shape.label});
  }
  if (out.empty()) {
    return Status::Internal("PrivShape produced no labeled shapes");
  }
  return out;
}

}  // namespace privshape::core
