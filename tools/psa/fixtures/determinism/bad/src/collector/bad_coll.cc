// Fixture: in src/collector the determinism rules bind inside
// PS_REPORT_PATH functions — this one reads a clock there.
#include <chrono>

#include "common/analysis_annotations.h"

namespace privshape::collector {

PS_REPORT_PATH
double BadReportPathClock() {
  return static_cast<double>(std::chrono::system_clock::now()
                                 .time_since_epoch()
                                 .count());
}

}  // namespace privshape::collector
