#include "common/math_utils.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace privshape {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double Stddev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

void ZNormalize(std::vector<double>* v, double eps) {
  double m = Mean(*v);
  double s = Stddev(*v);
  if (s < eps) {
    std::fill(v->begin(), v->end(), 0.0);
    return;
  }
  for (double& x : *v) x = (x - m) / s;
}

std::vector<double> ZNormalized(const std::vector<double>& v, double eps) {
  std::vector<double> out = v;
  ZNormalize(&out, eps);
  return out;
}

double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

double InverseNormalCdf(double p) {
  // Peter Acklam's algorithm, coefficients from the canonical reference.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;

  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();

  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double LogSumExp(const std::vector<double>& x) {
  if (x.empty()) return -std::numeric_limits<double>::infinity();
  double mx = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(mx)) return mx;
  double acc = 0.0;
  for (double v : x) acc += std::exp(v - mx);
  return mx + std::log(acc);
}

std::vector<double> ResampleLinear(const std::vector<double>& v,
                                   size_t target_len) {
  if (v.empty() || target_len == 0) return {};
  if (v.size() == 1) return std::vector<double>(target_len, v[0]);
  std::vector<double> out(target_len);
  double scale = static_cast<double>(v.size() - 1) /
                 static_cast<double>(std::max<size_t>(target_len - 1, 1));
  for (size_t i = 0; i < target_len; ++i) {
    double pos = static_cast<double>(i) * scale;
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = pos - static_cast<double>(lo);
    out[i] = v[lo] * (1.0 - frac) + v[hi] * frac;
  }
  return out;
}

}  // namespace privshape
