"""Engine frontends: turn a source tree into ir.SourceFile objects.

Mirrors the fuzzer-engine auto-selection (PRIVSHAPE_FUZZER_ENGINE):
the libclang engine is used when the ``clang.cindex`` bindings import
and a usable libclang is found; otherwise the pure-Python tokenizer
engine takes over with identical downstream semantics. `--engine`
forces one explicitly.

File discovery is compile-db aware: when a compile_commands.json is
available (given via --compile-db, or auto-discovered under build*/)
its entries seed the file set — so the analyzer sees exactly what the
build sees — and first-party headers are added by walking src/, since
compile databases never list headers.
"""

import json
import os

from . import ir
from . import tokenizer

SOURCE_EXTS = (".h", ".cc")
SKIP_DIRS = {"CMakeFiles"}


def discover_files(root, compile_db=None):
    """Repo-relative source paths to analyze, deterministically ordered.

    Only first-party files under src/ are returned: the semantic
    contracts are about library code, not tests/bench/examples (which
    legitimately use literals and ad-hoc randomness).
    """
    paths = set()
    src_root = os.path.join(root, "src")
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(SOURCE_EXTS):
                full = os.path.join(dirpath, name)
                paths.add(os.path.relpath(full, root).replace(os.sep, "/"))
    for entry in load_compile_db(root, compile_db):
        rel = entry.get("_relpath")
        if rel and rel.startswith("src/") and rel.endswith(SOURCE_EXTS):
            paths.add(rel)
    return sorted(paths)


def load_compile_db(root, compile_db=None):
    """Parses compile_commands.json entries; [] when none is usable.

    Each returned entry gains a `_relpath` key (repo-relative posix
    path) for files inside the repo; entries pointing outside the repo
    (fetched third-party sources) are dropped.
    """
    path = compile_db
    if path is None:
        candidates = []
        try:
            for name in sorted(os.listdir(root)):
                cand = os.path.join(root, name, "compile_commands.json")
                if name.startswith("build") and os.path.isfile(cand):
                    candidates.append(cand)
        except OSError:
            return []
        if not candidates:
            return []
        path = candidates[0]
    try:
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError):
        return []
    out = []
    root_abs = os.path.abspath(root)
    for entry in entries:
        file_path = entry.get("file", "")
        if not os.path.isabs(file_path):
            file_path = os.path.join(entry.get("directory", ""), file_path)
        file_path = os.path.abspath(file_path)
        if not file_path.startswith(root_abs + os.sep):
            continue
        entry["_relpath"] = os.path.relpath(file_path,
                                            root_abs).replace(os.sep, "/")
        out.append(entry)
    return out


class TokenEngine:
    """Pure-Python frontend; always available."""

    name = "token"

    def __init__(self, root):
        self.root = root

    def parse(self, rel_path):
        with open(os.path.join(self.root, rel_path), encoding="utf-8",
                  errors="replace") as f:
            return tokenizer.tokenize(f.read(), rel_path)


class ClangEngine:
    """libclang frontend: same IR, produced from clang's own lexer.

    Only tokenization is delegated to libclang (TranslationUnit token
    streams are stable across libclang versions); all check semantics
    stay in the shared IR layer, so this engine and the token engine
    cannot drift apart on what a check means.
    """

    name = "clang"

    _KIND_MAP = None  # populated lazily once cindex is imported

    def __init__(self, root, cindex):
        self.root = root
        self.index = cindex.Index.create()
        self.cindex = cindex
        if ClangEngine._KIND_MAP is None:
            k = cindex.TokenKind
            ClangEngine._KIND_MAP = {
                k.IDENTIFIER: ir.IDENT,
                k.KEYWORD: ir.IDENT,  # keywords are identifiers to checks
                k.LITERAL: None,  # refined per-spelling below
                k.PUNCTUATION: ir.PUNCT,
                k.COMMENT: "",  # dropped
            }

    def parse(self, rel_path):
        full = os.path.join(self.root, rel_path)
        # Parse as a single file with preprocessing disabled as far as
        # possible: -fsyntax-only over the raw buffer. Include-path
        # errors are fine — token streams do not require resolution.
        tu = self.index.parse(
            full, args=["-x", "c++", "-std=c++17", "-fsyntax-only"],
            options=self.cindex.TranslationUnit.PARSE_INCOMPLETE)
        tokens = []
        for tok in tu.get_tokens(extent=tu.cursor.extent):
            kind = self._KIND_MAP.get(tok.kind, ir.PUNCT)
            if kind == "":
                continue
            spelling = tok.spelling
            if kind is None:  # literal: number vs string vs char
                if spelling.startswith(('"', 'u8"', 'u"', 'U"', 'L"', 'R"')):
                    kind = ir.STRING
                elif spelling.startswith(("'", "u'", "U'", "L'")):
                    kind = ir.CHAR
                else:
                    kind = ir.NUMBER
            tokens.append(
                ir.Token(kind, spelling, tok.location.line))
        includes = []
        for line, tok in _pairwise_includes(tokens):
            includes.append((line, tok))
        src = ir.SourceFile(path=rel_path, tokens=tokens, includes=includes)
        return src


def _pairwise_includes(tokens):
    """Recovers #include "..." edges from a clang token stream."""
    for i, tok in enumerate(tokens):
        if (tok.kind == ir.IDENT and tok.text == "include" and i >= 1
                and tokens[i - 1].text == "#" and i + 1 < len(tokens)
                and tokens[i + 1].kind == ir.STRING):
            yield tok.line, tokens[i + 1].text.strip('"')


def select_engine(root, prefer="auto"):
    """Returns (engine, notice). prefer in {auto, token, clang}."""
    if prefer not in ("auto", "token", "clang"):
        raise ValueError(f"unknown engine '{prefer}'")
    if prefer == "token":
        return TokenEngine(root), "engine: token (forced)"
    try:
        import clang.cindex as cindex  # noqa: deferred optional import
        cindex.Index.create()
        return (ClangEngine(root, cindex),
                "engine: clang (libclang bindings available)")
    except Exception as e:  # ImportError, LibclangError, ...
        if prefer == "clang":
            raise RuntimeError(
                f"--engine clang requested but libclang is unusable: {e}")
        return (TokenEngine(root),
                "engine: token (libclang not available)")
