#include "common/batch_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace privshape {
namespace {

TEST(BatchQueueTest, FifoWithinOneProducer) {
  BatchQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
}

TEST(BatchQueueTest, CloseDrainsRemainingItemsThenStops) {
  BatchQueue<int> queue(0);  // unbounded
  queue.Push(7);
  queue.Push(8);
  queue.Close();
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(queue.Pop(&out));
  // Pushing after close drops the item.
  EXPECT_FALSE(queue.Push(9));
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(BatchQueueTest, CloseWakesBlockedPop) {
  BatchQueue<int> queue(2);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(queue.Pop(&out));  // blocks until Close
    popped = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());
  queue.Close();
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(BatchQueueTest, FullQueueExertsBackpressure) {
  BatchQueue<int> queue(2);
  std::atomic<size_t> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < 4; ++i) {
      queue.Push(i);
      pushed.fetch_add(1);
    }
  });
  // The producer must stall after filling the capacity-2 queue.
  for (int spin = 0; spin < 100 && pushed.load() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(pushed.load(), 2u);
  EXPECT_EQ(queue.size(), 2u);
  // Draining unblocks it.
  int out = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, i);
  }
  producer.join();
  EXPECT_EQ(pushed.load(), 4u);
}

TEST(BatchQueueTest, ManyProducersOneConsumerLosesNothing) {
  constexpr size_t kProducers = 8;
  constexpr size_t kPerProducer = 500;
  BatchQueue<size_t> queue(3);  // tiny: constant backpressure
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  size_t total = 0;
  size_t count = 0;
  std::thread consumer([&] {
    size_t item = 0;
    while (queue.Pop(&item)) {
      total += item;
      ++count;
    }
  });
  for (auto& producer : producers) producer.join();
  queue.Close();
  consumer.join();
  size_t n = kProducers * kPerProducer;
  EXPECT_EQ(count, n);
  EXPECT_EQ(total, n * (n - 1) / 2);  // every value exactly once
}

TEST(BatchQueueTest, MoveOnlyItemsMoveThrough) {
  BatchQueue<std::vector<std::string>> queue(1);
  queue.Push({"a", "b"});
  std::vector<std::string> out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace privshape
