// Figs. 10 and 12: extracted shapes on the Trace dataset at eps = 4 and
// eps = 8 (t = 4, w = 10, seed 2023). The PatternLDP column uses KShape
// centers of the perturbed data, as the paper does for Trace.

#include <iostream>

#include "bench/harness.h"
#include "core/pipeline.h"
#include "eval/kshape.h"
#include "patternldp/pattern_ldp.h"
#include "series/generators.h"
#include "series/time_series.h"

namespace pb = privshape::bench;

namespace {

void RunAtEps(double epsilon, const pb::ExperimentScale& scale) {
  privshape::series::GeneratorOptions gen;
  gen.num_instances = scale.users;
  gen.seed = scale.seed;
  auto dataset = privshape::series::MakeTraceDataset(gen);
  privshape::series::Dataset train, test;
  privshape::series::TrainTestSplit(dataset, 0.8, scale.seed, &train, &test);
  auto transform = pb::TraceTransform();

  pb::PrintTitle("Fig. " + std::string(epsilon > 6 ? "12" : "10") +
                 ": extracted shapes (Trace), eps=" +
                 privshape::FormatDouble(epsilon));

  std::cout << "Ground Truth:\n";
  for (const auto& shape : pb::GroundTruthShapes(train, transform)) {
    std::cout << "  class " << shape.label << ": \""
              << privshape::SequenceToString(shape.shape) << "\"\n";
  }

  // PatternLDP -> KShape centers -> Compressive SAX.
  privshape::pldp::PatternLdpConfig pl_config;
  pl_config.epsilon = epsilon;
  auto pl = privshape::pldp::PatternLdp::Create(pl_config);
  privshape::Rng rng(scale.seed);
  auto perturbed = pl->PerturbDataset(train, &rng);
  std::cout << "PatternLDP (KShape centers of perturbed data):\n";
  if (perturbed.ok()) {
    std::vector<std::vector<double>> points;
    // Subsample for KShape (it is O(n * len^2) per iteration).
    size_t stride = std::max<size_t>(1, perturbed->size() / 120);
    for (size_t i = 0; i < perturbed->size(); i += stride) {
      points.push_back(perturbed->instances[i].values);
    }
    privshape::eval::KShapeOptions ks;
    ks.k = 3;
    ks.max_iterations = 8;
    ks.seed = scale.seed;
    auto result = privshape::eval::KShape(points, ks);
    if (result.ok()) {
      for (size_t c = 0; c < result->centroids.size(); ++c) {
        auto word =
            privshape::core::TransformSeries(result->centroids[c], transform);
        std::cout << "  center " << c << ": \""
                  << (word.ok() ? privshape::SequenceToString(*word) : "?")
                  << "\"\n";
      }
    }
  }

  auto config = pb::TraceConfig(epsilon, scale.seed);
  privshape::core::MechanismConfig baseline_config = config;
  baseline_config.baseline_threshold =
      100.0 * static_cast<double>(scale.users) / 40000.0;
  auto baseline =
      pb::RunBaselineClassification(train, test, transform, baseline_config);
  std::cout << "Baseline (label -> shape):\n";
  for (const auto& shape : baseline.shapes) {
    std::cout << "  class " << shape.label << ": \""
              << privshape::SequenceToString(shape.shape) << "\"\n";
  }

  privshape::core::MechanismConfig ps_config = config;
  ps_config.num_classes = 3;
  auto priv = pb::RunPrivShapeClassification(train, test, transform,
                                             ps_config);
  std::cout << "PrivShape (label -> shape):\n";
  for (const auto& shape : priv.shapes) {
    std::cout << "  class " << shape.label << ": \""
              << privshape::SequenceToString(shape.shape) << "\"\n";
  }
  std::cout << "Accuracy: Baseline="
            << privshape::FormatDouble(baseline.accuracy, 3)
            << " PrivShape=" << privshape::FormatDouble(priv.accuracy, 3)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 2400, 1);
  RunAtEps(4.0, scale);   // Fig. 10
  RunAtEps(8.0, scale);   // Fig. 12
  std::cout << "\nExpected shape (paper Figs. 10/12): PrivShape matches "
               "Ground Truth; PatternLDP centers stay distorted even at "
               "eps = 8.\n";
  return 0;
}
