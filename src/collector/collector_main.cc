/// \file
/// `privshape_collector` — end-to-end collection server over a simulated
/// fleet. Synthesizes (or loads) a fleet of users, runs the full
/// Algorithm 2 protocol through the sharded multi-threaded
/// RoundCoordinator, prints the extracted shapes and throughput metrics,
/// and optionally verifies the determinism contract against the
/// single-threaded core pipeline.
///
/// Examples:
///   privshape_collector --dataset trace --users 1000000 --threads 8
///   privshape_collector --users 20000 --threads 4 --check-determinism \
///       --json metrics.json
///   privshape_collector --csv data.csv --epsilon 2 --users 50000

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "collector/client_fleet.h"
#include "collector/round_coordinator.h"
#include "common/cli.h"
#include "common/csv.h"
#include "core/pipeline.h"
#include "core/privshape.h"

namespace {

using namespace privshape;  // NOLINT(build/namespaces)

struct FleetSetup {
  collector::ClientFleet::WordFn word_fn;
  core::MechanismConfig config;
  std::string description;
};

Result<FleetSetup> BuildSetup(const CliArgs& args) {
  FleetSetup setup;
  uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 2023));
  std::string dataset = args.GetString("dataset", "trace");
  bool symbols = dataset == "symbols";

  // Paper-default mechanism configs (§V-B3): Trace uses t=4/k=3/SED,
  // Symbols t=6/k=6/DTW.
  core::MechanismConfig config;
  config.t = symbols ? 6 : 4;
  config.k = symbols ? 6 : 3;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = symbols ? 15 : 10;
  config.metric = symbols ? dist::Metric::kDtw : dist::Metric::kSed;
  config.epsilon = args.GetDouble("epsilon", 4.0);
  config.seed = seed;
  config.k = args.GetInt("k", config.k);
  config.c = args.GetInt("c", config.c);
  setup.config = config;

  std::string csv = args.GetString("csv", "");
  if (!csv.empty()) {
    auto rows = ReadCsvDoubles(csv);
    if (!rows.ok()) return rows.status();
    if (rows->empty()) {
      return Status::InvalidArgument("CSV dataset is empty: " + csv);
    }
    core::TransformOptions transform;
    transform.t = config.t;
    transform.w = symbols ? 25 : 10;
    std::vector<Sequence> words;
    words.reserve(rows->size());
    for (size_t i = 0; i < rows->size(); ++i) {
      auto word = core::TransformSeries((*rows)[i], transform);
      if (!word.ok()) {
        // Fail loudly: a fleet of placeholder words would "succeed" end
        // to end while never ingesting the dataset.
        return Status::InvalidArgument(
            "CSV row " + std::to_string(i) + " of " + csv +
            " cannot be transformed (" + word.status().ToString() + ")");
      }
      words.push_back(std::move(*word));
    }
    setup.description = "csv:" + csv;
    // Tile the CSV rows across the requested fleet size.
    setup.word_fn = collector::ClientFleet::TiledWords(std::move(words));
    return setup;
  }

  auto words = collector::GeneratedWordSource(dataset, seed);
  if (!words.ok()) return words.status();
  setup.description = "generated:" + dataset;
  setup.word_fn = std::move(*words);
  return setup;
}

void PrintShapes(const core::MechanismResult& result) {
  std::printf("frequent length ell_S = %d\n", result.frequent_length);
  std::printf("%-4s %-20s %s\n", "#", "shape", "est. frequency");
  for (size_t i = 0; i < result.shapes.size(); ++i) {
    std::printf("%-4zu %-20s %.1f\n", i,
                SequenceToString(result.shapes[i].shape).c_str(),
                result.shapes[i].frequency);
  }
}

bool SameShapes(const core::MechanismResult& a,
                const core::MechanismResult& b) {
  if (a.frequent_length != b.frequent_length) return false;
  if (a.shapes.size() != b.shapes.size()) return false;
  for (size_t i = 0; i < a.shapes.size(); ++i) {
    if (a.shapes[i].shape != b.shapes[i].shape) return false;
    // Bit-exact: both paths share the debias formulas and per-user seeds.
    if (a.shapes[i].frequency != b.shapes[i].frequency) return false;
  }
  return true;
}

/// Non-negative flag value; negatives fall back to `def` instead of
/// wrapping through size_t to ~2^64.
size_t GetCount(const CliArgs& args, const std::string& name, int def) {
  int value = args.GetInt(name, def);
  return static_cast<size_t>(value >= 0 ? value : def);
}

int Main(int argc, char** argv) {
  CliArgs args(argc, argv);
  size_t users = GetCount(args, "users", 100000);
  size_t threads = ThreadsFromArgs(args);
  collector::CollectorOptions options;
  options.num_shards = GetCount(args, "shards", 0);
  options.batch_size = GetCount(args, "batch_size", 256);

  auto setup = BuildSetup(args);
  if (!setup.ok()) {
    std::cerr << "privshape_collector: " << setup.status() << "\n";
    return 1;
  }

  ThreadPool pool(threads);
  collector::ClientFleet fleet(users, setup->word_fn, setup->config.metric,
                               setup->config.seed);
  collector::RoundCoordinator coordinator(setup->config, options, &pool);

  std::printf("privshape_collector: %s, %zu users, %zu threads, %zu shards\n",
              setup->description.c_str(), users, pool.num_threads(),
              options.num_shards > 0 ? options.num_shards
                                     : pool.num_threads());
  collector::CollectorMetrics metrics;
  auto result = coordinator.Collect(fleet, &metrics);
  if (!result.ok()) {
    std::cerr << "privshape_collector: " << result.status() << "\n";
    return 1;
  }
  PrintShapes(*result);
  std::printf("\n%-10s %10s %10s %10s %12s %10s\n", "stage", "users",
              "accepted", "rejected", "reports/s", "seconds");
  for (const auto& round : metrics.rounds) {
    std::printf("%-10s %10zu %10zu %10zu %12.0f %10.3f\n",
                round.stage.c_str(), round.users, round.accepted,
                round.rejected, round.ReportsPerSec(), round.seconds);
  }
  std::printf("total: %zu reports in %.3fs (%.0f reports/s)\n",
              metrics.TotalReports(), metrics.total_seconds,
              metrics.TotalReportsPerSec());

  std::string json = args.GetString("json", "");
  if (!json.empty()) {
    Status written = metrics.WriteJsonFile(json);
    if (!written.ok()) {
      std::cerr << "privshape_collector: " << written << "\n";
      return 1;
    }
    std::printf("metrics written to %s\n", json.c_str());
  }

  if (args.Has("check-determinism") || args.Has("check_determinism")) {
    // Contract: byte-identical shapes vs. the single-threaded core
    // pipeline on the same words, for shard counts {1, 4, 16}.
    std::printf("\ndeterminism check: materializing %zu words...\n", users);
    std::vector<Sequence> words = fleet.MaterializeWords();
    core::PrivShape reference(setup->config);
    auto expected = reference.Run(words);
    if (!expected.ok()) {
      std::cerr << "privshape_collector: core pipeline failed: "
                << expected.status() << "\n";
      return 1;
    }
    bool all_ok = SameShapes(*expected, *result);
    std::printf("  collector(run) == core: %s\n",
                all_ok ? "OK" : "MISMATCH");
    // Re-runs serve the already-materialized words (identical fleet, but
    // without re-synthesizing 3 x users raw series).
    collector::ClientFleet check_fleet = collector::ClientFleet::FromWords(
        std::move(words), users, setup->config.metric, setup->config.seed);
    for (size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
      collector::CollectorOptions opt = options;
      opt.num_shards = shards;
      collector::RoundCoordinator check(setup->config, opt, &pool);
      auto got = check.Collect(check_fleet);
      bool ok = got.ok() && SameShapes(*expected, *got);
      std::printf("  collector(shards=%zu) == core: %s\n", shards,
                  ok ? "OK" : "MISMATCH");
      all_ok = all_ok && ok;
    }
    if (!all_ok) {
      std::cerr << "privshape_collector: determinism contract VIOLATED\n";
      return 2;
    }
    std::printf("determinism contract holds\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
