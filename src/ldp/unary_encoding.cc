#include "ldp/unary_encoding.h"

#include <cmath>

#include "common/simd.h"

namespace privshape::ldp {

Result<UnaryEncoding> UnaryEncoding::Create(size_t domain_size,
                                            double epsilon, Variant variant) {
  if (domain_size < 1) {
    return Status::InvalidArgument("unary encoding domain must be >= 1");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  double p, q;
  if (variant == Variant::kSymmetric) {
    double e2 = std::exp(epsilon / 2.0);
    p = e2 / (e2 + 1.0);
    q = 1.0 - p;
  } else {
    p = 0.5;
    q = 1.0 / (std::exp(epsilon) + 1.0);
  }
  return UnaryEncoding(domain_size, epsilon, p, q);
}

PS_RNG_WORDS(d_)
std::vector<uint8_t> UnaryEncoding::PerturbValue(size_t value,
                                                 Rng* rng) const {
  std::vector<uint64_t> words;
  std::vector<uint8_t> bits;
  EncodeInto(value, rng, &words, &bits);
  return bits;
}

PS_RNG_WORDS(d_)
void UnaryEncoding::EncodeInto(size_t value, Rng* rng,
                               std::vector<uint64_t>* words,
                               std::vector<uint8_t>* bits) const {
  words->resize(d_);
  bits->resize(d_);
  rng->FillU64(words->data(), d_);
  // Every cell is a q-threshold compare; the single 1-hot cell is then
  // re-decided against its own word with the p threshold, so the word ->
  // bit mapping per cell never depends on how many cells precede it.
  simd::LessThanU64(words->data(), d_, q_threshold_, bits->data());
  if (value < d_) {
    (*bits)[value] = (*words)[value] < p_threshold_ ? 1 : 0;
  }
}

PS_RNG_WORDS(d_)
Status UnaryEncoding::SubmitUser(size_t value, Rng* rng) {
  if (value >= d_) {
    return Status::OutOfRange("unary encoding input outside domain");
  }
  return SubmitBits(PerturbValue(value, rng));
}

Status UnaryEncoding::SubmitBits(const std::vector<uint8_t>& bits) {
  if (bits.size() != d_) {
    return Status::InvalidArgument("bit vector length mismatch");
  }
  for (size_t i = 0; i < d_; ++i) {
    if (bits[i]) ++bit_counts_[i];
  }
  ++n_;
  return Status::Ok();
}

std::vector<double> UnaryEncoding::EstimateCounts() const {
  std::vector<double> out(d_);
  double n = static_cast<double>(n_);
  for (size_t v = 0; v < d_; ++v) {
    out[v] = (static_cast<double>(bit_counts_[v]) - n * q_) / (p_ - q_);
  }
  return out;
}

void UnaryEncoding::Reset() {
  std::fill(bit_counts_.begin(), bit_counts_.end(), 0);
  n_ = 0;
}

}  // namespace privshape::ldp
