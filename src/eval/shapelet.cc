#include "eval/shapelet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

namespace privshape::eval {

double SubsequenceDistance(const Sequence& sequence,
                           const Sequence& candidate, dist::Metric metric) {
  auto distance = dist::MakeDistance(metric);
  if (sequence.size() <= candidate.size()) {
    return distance->Distance(sequence, candidate);
  }
  double best = std::numeric_limits<double>::infinity();
  size_t window = candidate.size();
  for (size_t start = 0; start + window <= sequence.size(); ++start) {
    Sequence view(sequence.begin() + static_cast<long>(start),
                  sequence.begin() + static_cast<long>(start + window));
    best = std::min(best, distance->Distance(view, candidate));
  }
  return best;
}

double LabelEntropy(const std::vector<int>& labels) {
  if (labels.empty()) return 0.0;
  std::map<int, size_t> counts;
  for (int l : labels) counts[l]++;
  double entropy = 0.0;
  double n = static_cast<double>(labels.size());
  for (const auto& [_, c] : counts) {
    double p = static_cast<double>(c) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double InformationGain(const std::vector<int>& labels,
                       const std::vector<bool>& mask) {
  std::vector<int> left, right;
  for (size_t i = 0; i < labels.size(); ++i) {
    (mask[i] ? left : right).push_back(labels[i]);
  }
  double n = static_cast<double>(labels.size());
  double split_entropy =
      (static_cast<double>(left.size()) / n) * LabelEntropy(left) +
      (static_cast<double>(right.size()) / n) * LabelEntropy(right);
  return LabelEntropy(labels) - split_entropy;
}

namespace {

int MajorityOf(const std::vector<int>& labels, const std::vector<bool>& mask) {
  std::map<int, size_t> counts;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (mask[i]) counts[labels[i]]++;
  }
  int best = -1;
  size_t best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

/// Best threshold for one candidate: scan midpoints between consecutive
/// distinct distances, pick the split with maximal information gain.
Shapelet EvaluateCandidate(const Sequence& pattern,
                           const std::vector<double>& distances,
                           const std::vector<int>& labels) {
  Shapelet best;
  best.pattern = pattern;
  std::vector<double> sorted = distances;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<bool> mask(labels.size());
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    double threshold = 0.5 * (sorted[i] + sorted[i + 1]);
    for (size_t j = 0; j < labels.size(); ++j) {
      mask[j] = distances[j] <= threshold;
    }
    double gain = InformationGain(labels, mask);
    if (gain > best.info_gain) {
      best.info_gain = gain;
      best.threshold = threshold;
      best.majority_label = MajorityOf(labels, mask);
    }
  }
  return best;
}

}  // namespace

Result<std::vector<Shapelet>> DiscoverShapelets(
    const std::vector<Sequence>& sequences, const std::vector<int>& labels,
    const std::vector<Sequence>& seed_shapes,
    const ShapeletOptions& options) {
  if (sequences.size() != labels.size()) {
    return Status::InvalidArgument("one label per sequence required");
  }
  if (sequences.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  if (seed_shapes.empty()) {
    return Status::InvalidArgument("need at least one seed shape");
  }
  if (options.min_length < 1 || options.max_length < options.min_length) {
    return Status::InvalidArgument("invalid candidate length range");
  }

  // Enumerate distinct sub-words of the seeds in the length range.
  std::set<Sequence> candidates;
  for (const auto& seed : seed_shapes) {
    for (size_t len = options.min_length;
         len <= std::min(options.max_length, seed.size()); ++len) {
      for (size_t start = 0; start + len <= seed.size(); ++start) {
        candidates.insert(Sequence(
            seed.begin() + static_cast<long>(start),
            seed.begin() + static_cast<long>(start + len)));
      }
    }
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("seeds shorter than min_length");
  }

  std::vector<Shapelet> scored;
  std::vector<double> distances(sequences.size());
  for (const auto& pattern : candidates) {
    for (size_t i = 0; i < sequences.size(); ++i) {
      distances[i] = SubsequenceDistance(sequences[i], pattern,
                                         options.metric);
    }
    scored.push_back(EvaluateCandidate(pattern, distances, labels));
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Shapelet& a, const Shapelet& b) {
                     return a.info_gain > b.info_gain;
                   });
  // Label-diverse selection: a decision list needs shapelets that fire for
  // different classes, so take the best shapelet of each distinct majority
  // label first, then fill the remaining slots by gain.
  std::vector<Shapelet> selected;
  std::set<int> seen_labels;
  for (const auto& s : scored) {
    if (selected.size() >= options.top_k) break;
    if (seen_labels.insert(s.majority_label).second) selected.push_back(s);
  }
  for (const auto& s : scored) {
    if (selected.size() >= options.top_k) break;
    bool already = false;
    for (const auto& chosen : selected) {
      if (chosen.pattern == s.pattern &&
          chosen.threshold == s.threshold) {
        already = true;
        break;
      }
    }
    if (!already) selected.push_back(s);
  }
  std::stable_sort(selected.begin(), selected.end(),
                   [](const Shapelet& a, const Shapelet& b) {
                     return a.info_gain > b.info_gain;
                   });
  return selected;
}

int ClassifyWithShapelets(const Sequence& sequence,
                          const std::vector<Shapelet>& shapelets,
                          dist::Metric metric, int fallback_label) {
  for (const auto& shapelet : shapelets) {
    double d = SubsequenceDistance(sequence, shapelet.pattern, metric);
    if (d <= shapelet.threshold) return shapelet.majority_label;
  }
  return fallback_label;
}

}  // namespace privshape::eval
