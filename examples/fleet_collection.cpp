// Fleet collection: PrivShape served at scale by the collector subsystem.
//
// A simulated fleet of 20,000 clients is materialized lazily from seeds —
// no per-user state exists until a user is asked to answer, so the same
// code runs million-user fleets in constant memory. The RoundCoordinator
// drives Algorithm 2's four rounds (P_a..P_d) over the wire protocol:
// every byte that reaches the server is a perturbed, encoded report,
// streamed through bounded batch queues into lock-free sharded
// aggregation — and optionally served by several independent collectors
// whose integer state merges exactly.
//
// The punchline is the determinism contract: for a fixed seed the
// collector's shapes are byte-identical to the single-threaded
// core::PrivShape pipeline, for any shard/thread count — verified at the
// end of this example.
//
// Build and run:  ./build/examples/fleet_collection

#include <cstdio>
#include <iostream>

#include "collector/client_fleet.h"
#include "collector/multi_collector.h"
#include "collector/round_coordinator.h"
#include "core/privshape.h"
#include "series/sequence.h"

int main() {
  using namespace privshape;

  // 1) The mechanism configuration (paper's Trace defaults).
  core::MechanismConfig config;
  config.epsilon = 4.0;
  config.t = 4;
  config.k = 3;
  config.c = 3;
  config.ell_high = 10;
  config.metric = dist::Metric::kSed;
  config.seed = 42;

  // 2) A lazy fleet: user u's private series (and so its compressed word)
  //    is synthesized on demand from a per-user derived seed — see
  //    collector::GeneratedWordSource for the recipe (per-user Rng ->
  //    class template -> warp/noise -> Compressive SAX). Any
  //    deterministic, thread-safe `Sequence(size_t)` works here.
  const size_t kUsers = 20000;
  auto word_fn = collector::GeneratedWordSource("trace", config.seed);
  if (!word_fn.ok()) {
    std::cerr << "fleet setup failed: " << word_fn.status() << "\n";
    return 1;
  }
  collector::ClientFleet fleet(kUsers, *word_fn, config.metric, config.seed);

  // 3) Serve the four collection rounds on 4 threads, 8 shards, with
  //    streaming ingestion: answering workers push report batches into
  //    bounded queues while drainer threads aggregate concurrently
  //    (queue_depth bounds the in-flight batches — that is the
  //    backpressure). Set options.streaming = false for the old
  //    answer-then-aggregate barrier path; the shapes cannot change.
  ThreadPool pool(4);
  collector::CollectorOptions options;
  options.num_shards = 8;
  options.queue_depth = 8;
  collector::RoundCoordinator coordinator(config, options, &pool);
  collector::CollectorMetrics metrics;
  auto result = coordinator.Collect(fleet, &metrics);
  if (!result.ok()) {
    std::cerr << "collection failed: " << result.status() << "\n";
    return 1;
  }

  // 3b) The same protocol served by 3 independent collection sites, each
  //     owning a third of every round's population, merged exactly
  //     (integer counts) before each server decision — still
  //     byte-identical, which is the point: sharding, streaming, and
  //     multi-collector merge are pure serving-layer choices.
  collector::MultiCollector sites(config, options, &pool, 3);
  auto merged = sites.Collect(fleet);
  if (!merged.ok()) {
    std::cerr << "multi-collector collection failed: " << merged.status()
              << "\n";
    return 1;
  }
  bool sites_match = merged->shapes.size() == result->shapes.size();
  for (size_t i = 0; sites_match && i < merged->shapes.size(); ++i) {
    sites_match = merged->shapes[i].shape == result->shapes[i].shape &&
                  merged->shapes[i].frequency == result->shapes[i].frequency;
  }
  std::cout << "3 merged collectors == 1 collector: "
            << (sites_match ? "yes (byte-identical)" : "NO — bug!") << "\n";
  if (!sites_match) return 1;

  std::cout << "extracted shapes (frequent length "
            << result->frequent_length << "):\n";
  for (const auto& shape : result->shapes) {
    std::printf("  \"%s\"  est. frequency %.1f\n",
                SequenceToString(shape.shape).c_str(), shape.frequency);
  }
  std::printf("served %zu accepted reports in %.2fs (%.0f accepted/s)\n",
              metrics.TotalAccepted(), metrics.total_seconds,
              metrics.TotalAcceptedPerSec());

  // 4) The determinism contract: the single-threaded pipeline on the same
  //    words produces byte-identical shapes.
  core::PrivShape reference(config);
  auto expected = reference.Run(fleet.MaterializeWords());
  if (!expected.ok()) {
    std::cerr << "core pipeline failed: " << expected.status() << "\n";
    return 1;
  }
  bool identical = expected->shapes.size() == result->shapes.size();
  for (size_t i = 0; identical && i < expected->shapes.size(); ++i) {
    identical = expected->shapes[i].shape == result->shapes[i].shape &&
                expected->shapes[i].frequency == result->shapes[i].frequency;
  }
  std::cout << "collector == single-threaded core pipeline: "
            << (identical ? "yes (byte-identical)" : "NO — bug!") << "\n";
  return identical ? 0 : 1;
}
