#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sax/compressive.h"
#include "series/generators.h"

namespace privshape {
namespace {

using core::ReconstructShape;
using core::TransformDataset;
using core::TransformOptions;
using core::TransformSeries;

std::vector<double> Wave(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2.0 * M_PI * static_cast<double>(i) /
                    static_cast<double>(n));
  }
  return v;
}

TEST(PipelineTest, SaxPathProducesCompressedWord) {
  TransformOptions options;
  options.t = 4;
  options.w = 10;
  auto word = TransformSeries(Wave(200), options);
  ASSERT_TRUE(word.ok());
  EXPECT_TRUE(sax::IsCompressed(*word));
  EXPECT_GT(word->size(), 1u);
  EXPECT_LE(word->size(), 20u);  // 200 / 10 segments max
  for (Symbol s : *word) EXPECT_LT(s, 4);
}

TEST(PipelineTest, NoCompressionKeepsSegmentCount) {
  TransformOptions options;
  options.t = 4;
  options.w = 10;
  options.compress = false;
  auto word = TransformSeries(Wave(200), options);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(word->size(), 20u);
}

TEST(PipelineTest, WithoutSaxUsesGridAlphabet) {
  TransformOptions options;
  options.use_sax = false;
  auto word = TransformSeries(Wave(100), options);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(options.EffectiveAlphabet(), 8);  // §V-J's 0.33 grid
  for (Symbol s : *word) EXPECT_LT(static_cast<int>(s), 8);
  EXPECT_TRUE(sax::IsCompressed(*word));
}

TEST(PipelineTest, EffectiveAlphabetMatchesMode) {
  TransformOptions options;
  options.t = 6;
  EXPECT_EQ(options.EffectiveAlphabet(), 6);
  options.use_sax = false;
  EXPECT_EQ(options.EffectiveAlphabet(), 8);
}

TEST(PipelineTest, TransformDatasetPreservesOrder) {
  series::GeneratorOptions gen;
  gen.num_instances = 12;
  auto dataset = series::MakeTraceDataset(gen);
  TransformOptions options;
  auto words = TransformDataset(dataset, options);
  ASSERT_TRUE(words.ok());
  ASSERT_EQ(words->size(), 12u);
  // Same instance transformed alone gives the same word.
  auto single = TransformSeries(dataset.instances[5].values, options);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ((*words)[5], *single);
}

TEST(PipelineTest, EmptySeriesFails) {
  TransformOptions options;
  EXPECT_FALSE(TransformSeries({}, options).ok());
}

TEST(PipelineTest, ReconstructSaxShapeHasExpectedLength) {
  TransformOptions options;
  options.t = 4;
  options.w = 5;
  Sequence word = {0, 3, 1};
  auto rec = ReconstructShape(word, options);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 15u);  // 3 symbols x w=5
  EXPECT_LT((*rec)[0], (*rec)[5]);  // 'a' level below 'd' level
}

TEST(PipelineTest, ReconstructGridShapeMonotoneInSymbol) {
  TransformOptions options;
  options.use_sax = false;
  Sequence word = {0, 3, 7};
  auto rec = ReconstructShape(word, options);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->size(), 3u);
  EXPECT_LT((*rec)[0], (*rec)[1]);
  EXPECT_LT((*rec)[1], (*rec)[2]);
}

TEST(PipelineTest, SpeedInvarianceThroughCompression) {
  // The paper's Example I/II: the same gesture at half speed (every value
  // repeated) compresses to the same essential shape.
  TransformOptions options;
  options.t = 4;
  options.w = 10;
  std::vector<double> fast = Wave(200);
  std::vector<double> slow;
  for (double v : fast) {
    slow.push_back(v);
    slow.push_back(v);
  }
  auto fast_word = TransformSeries(fast, options);
  auto slow_word = TransformSeries(slow, options);
  ASSERT_TRUE(fast_word.ok());
  ASSERT_TRUE(slow_word.ok());
  EXPECT_EQ(*fast_word, *slow_word);
}

}  // namespace
}  // namespace privshape
