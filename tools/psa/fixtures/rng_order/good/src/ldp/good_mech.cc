// Fixture: the clean twin — same shapes as bad_mech.cc, all contracts
// satisfied.
#include "common/analysis_annotations.h"
#include "common/rng.h"

namespace privshape::ldp {

class GoodOracle {
 public:
  // Fixed two-word draw, proven by the FillU64 literal.
  PS_RNG_WORDS(2)
  uint64_t PerturbValue(Rng* rng) const {
    uint64_t words[2];
    rng->FillU64(words, 2);
    return words[0] ^ words[1];
  }

  // Unqualified call to an annotated sibling resolves through the
  // enclosing class; 2 == 2.
  PS_RNG_WORDS(2)
  uint64_t SubmitUser(Rng* rng) const { return PerturbValue(rng); }
};

// A canonical definition may use the Rng convenience draws — this is
// where the mechanism's order is defined.
PS_RNG_CANONICAL
size_t CanonicalSelect(Rng* rng) { return rng->Index(7); }

// Report-path code reaches randomness only through annotated helpers.
PS_REPORT_PATH
uint64_t GoodReport(const GoodOracle& oracle, Rng* rng) {
  size_t pick = CanonicalSelect(rng);
  return oracle.PerturbValue(rng) + pick;
}

// A nested-template return type: the `>>` token closes two template
// levels, so the marker must still attach to the declarator.
PS_REPORT_PATH
Result<std::vector<std::vector<double>>> GoodNestedReturn(
    const GoodOracle& oracle, Rng* rng) {
  Result<std::vector<std::vector<double>>> out;
  out.value.resize(1);
  out.value[0].push_back(static_cast<double>(oracle.PerturbValue(rng)));
  return out;
}

}  // namespace privshape::ldp
