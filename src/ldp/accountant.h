#ifndef PRIVSHAPE_LDP_ACCOUNTANT_H_
#define PRIVSHAPE_LDP_ACCOUNTANT_H_

#include <map>
#include <string>

#include "common/status.h"

namespace privshape::ldp {

/// Tracks the user-level privacy budget spent by a mechanism run.
///
/// PrivShape allocates *disjoint* user populations to its stages, so the
/// user-level guarantee follows from parallel composition: the budget of a
/// user equals the total charged to the single population that user belongs
/// to. Charges to the same population compose sequentially (they add up).
class PrivacyAccountant {
 public:
  /// Records that every user in `population` spent `epsilon`.
  Status Charge(const std::string& population, double epsilon);

  /// Sequentially composed budget of one population (0 if never charged).
  double PopulationEpsilon(const std::string& population) const;

  /// The user-level guarantee of the whole mechanism: the maximum over
  /// populations (parallel composition across disjoint user groups).
  double UserLevelEpsilon() const;

  /// Fails if the user-level guarantee exceeds `budget` (+ tolerance).
  Status CheckWithinBudget(double budget, double tolerance = 1e-9) const;

  const std::map<std::string, double>& charges() const { return charges_; }

 private:
  std::map<std::string, double> charges_;
};

}  // namespace privshape::ldp

#endif  // PRIVSHAPE_LDP_ACCOUNTANT_H_
