#ifndef PRIVSHAPE_COMMON_RNG_H_
#define PRIVSHAPE_COMMON_RNG_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <random>
#include <vector>

namespace privshape {

/// Deterministically derives an independent stream seed from a base seed
/// and a stream index (SplitMix64 finalizer over the combined words).
///
/// This is how every simulated user gets its own reproducible randomness:
/// user i's draws depend only on (base, i), never on how many other users
/// ran before it or on which thread/shard processed it. The single-threaded
/// core pipeline and the multi-threaded collector both derive per-user
/// engines through this function, which is what makes their outputs
/// byte-identical for a fixed seed.
inline uint64_t DeriveSeed(uint64_t base, uint64_t stream) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Drop-in mt19937_64 with lazy seeding and a lazy first twist.
///
/// Emits the exact output stream of std::mt19937_64 (the generator is
/// fully specified by the standard, so this is checked bit-for-bit in
/// tests), but defers the work: std::mt19937_64 seeds all 312 state words
/// up front and block-twists all 312 on the first draw (~2.4us on a small
/// core) — yet a simulated client answering one collection round draws
/// only a handful of values. Output k (for k < n - m = 156) depends only
/// on seeded words k, k+1 and k+m, so this engine seeds just the prefix
/// it needs and computes outputs one at a time. Hot-path sessions never
/// pay for state they do not consume; heavy consumers (series generators,
/// shuffles) transparently materialize a real std::mt19937_64 at output
/// 156 and continue from it, so long streams cost what they always did.
class LazyMt64 {
 public:
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  explicit LazyMt64(uint64_t seed) : seed_(seed), seeded_(1) {
    state_[0] = seed;
  }

  result_type operator()() {
    if (full_) return (*full_)();
    if (pos_ == kLazyOutputs) {
      // Past the lazily computable prefix: replay into a full engine
      // (discard is exact) and delegate from here on.
      full_.emplace(seed_);
      full_->discard(pos_);
      return (*full_)();
    }
    // Standard recurrence for output pos_ (x_{n+pos_}); every referenced
    // word is part of the original seeded state because pos_ + m < n.
    SeedTo(pos_ + kM + 1);
    uint64_t y = (state_[pos_] & kUpperMask) |
                 (state_[pos_ + 1] & kLowerMask);
    uint64_t x = state_[pos_ + kM] ^ (y >> 1) ^ ((y & 1) ? kA : 0);
    ++pos_;
    // Tempering, as specified.
    x ^= (x >> 29) & 0x5555555555555555ULL;
    x ^= (x << 17) & 0x71d67fffeda60000ULL;
    x ^= (x << 37) & 0xfff7eee000000000ULL;
    x ^= x >> 43;
    return x;
  }

  void discard(unsigned long long z) {  // NOLINT(runtime/int)
    for (; z > 0; --z) (*this)();
  }

  /// Bulk draw: writes the next `n` outputs of the stream into `out`,
  /// exactly as `n` successive operator() calls would. A request that
  /// would cross the lazy prefix materializes the full engine once up
  /// front instead of paying the per-draw position check `n` times —
  /// this is the primitive behind the batched OUE/GRR bit generation.
  void FillU64(uint64_t* out, size_t n) {
    if (!full_ && pos_ + n > kLazyOutputs) {
      full_.emplace(seed_);
      full_->discard(pos_);
    }
    if (full_) {
      for (size_t i = 0; i < n; ++i) out[i] = (*full_)();
      return;
    }
    for (size_t i = 0; i < n; ++i) out[i] = (*this)();
  }

 private:
  static constexpr size_t kN = 312;
  static constexpr size_t kM = 156;
  static constexpr size_t kLazyOutputs = kN - kM;
  static constexpr uint64_t kA = 0xb5026f5aa96619e9ULL;
  static constexpr uint64_t kF = 6364136223846793005ULL;
  static constexpr int kR = 31;
  static constexpr uint64_t kLowerMask = (uint64_t{1} << kR) - 1;
  static constexpr uint64_t kUpperMask = ~kLowerMask;

  void SeedTo(size_t count) {
    for (; seeded_ < count; ++seeded_) {
      state_[seeded_] =
          kF * (state_[seeded_ - 1] ^ (state_[seeded_ - 1] >> 62)) +
          seeded_;
    }
  }

  uint64_t state_[kN];  // seeded prefix only; filled on demand
  uint64_t seed_;
  size_t seeded_;
  size_t pos_ = 0;
  std::optional<std::mt19937_64> full_;
};

/// Maps a probability to the raw-u64 acceptance threshold used by the
/// batched Bernoulli rule `bit = (u < ThresholdForProbability(p))` for a
/// uniform engine word u: threshold = round-toward-zero of p * 2^64, so
/// the realized probability is within 2^-64 of the double `p` itself
/// (p's own representation error dwarfs this for any LDP parameter).
/// Clamps: p <= 0 never fires, p >= 1 fires for every word but
/// u == 2^64 - 1 (probability 2^-64; no validated mechanism passes
/// p outside (0, 1)).
inline uint64_t ThresholdForProbability(double p) {
  if (p <= 0.0) return 0;
  double scaled = std::ldexp(p, 64);
  if (scaled >= 18446744073709551616.0) return ~uint64_t{0};
  return static_cast<uint64_t>(scaled);
}

/// Maps one uniform engine word to a uniform index in [0, n) by the
/// multiply-shift (Lemire) reduction: high 64 bits of u * n. Bias is at
/// most n / 2^64 — immaterial for any candidate-domain n — and unlike
/// rejection sampling it consumes exactly one word, which is what makes
/// batched GRR draws possible (fixed words per report).
inline uint64_t BoundedFromU64(uint64_t u, uint64_t n) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(u) * n) >> 64);
}

/// Deterministic random engine used across the library.
///
/// Every randomized component takes a Rng& (or a seed) explicitly so tests
/// and benchmarks are reproducible; there is no hidden global generator.
/// The bit stream is exactly std::mt19937_64's (via LazyMt64 above), so
/// per-user seeding stays cheap on the collection hot path without
/// changing a single draw anywhere.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n); n must be positive.
  size_t Index(size_t n) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Standard (or scaled) normal draw.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Laplace(0, b) draw via inverse CDF.
  double Laplace(double scale) {
    double u = Uniform(-0.5, 0.5);
    double sign = u < 0 ? -1.0 : 1.0;
    return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
  }

  /// Samples an index proportionally to the given non-negative weights.
  /// Returns weights.size() - 1 on degenerate input (all zero weights are
  /// treated as uniform).
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Bulk raw draw: the next `n` engine outputs, in stream order. The
  /// batched LDP paths (ThresholdForProbability / BoundedFromU64 over a
  /// block of words) consume randomness through this instead of one
  /// distribution call per bit.
  void FillU64(uint64_t* out, size_t n) { engine_.FillU64(out, n); }

  /// Derives an independent child engine; used to give each simulated user
  /// or worker thread its own stream.
  Rng Fork() { return Rng(engine_()); }

  LazyMt64& engine() { return engine_; }

 private:
  LazyMt64 engine_;
};

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_RNG_H_
