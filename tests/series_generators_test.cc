#include "series/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"

namespace privshape {
namespace {

using series::GeneratorOptions;
using series::TrigWaveOptions;

TEST(GeneratorsTest, SymbolsDatasetShape) {
  GeneratorOptions options;
  options.num_instances = 60;
  auto d = series::MakeSymbolsDataset(options);
  ASSERT_EQ(d.size(), 60u);
  for (const auto& inst : d.instances) {
    EXPECT_EQ(inst.values.size(), 398u);
    EXPECT_GE(inst.label, 0);
    EXPECT_LT(inst.label, 6);
  }
  EXPECT_EQ(d.Labels().size(), 6u);
}

TEST(GeneratorsTest, TraceDatasetShape) {
  GeneratorOptions options;
  options.num_instances = 30;
  auto d = series::MakeTraceDataset(options);
  ASSERT_EQ(d.size(), 30u);
  for (const auto& inst : d.instances) {
    EXPECT_EQ(inst.values.size(), 275u);
    EXPECT_GE(inst.label, 0);
    EXPECT_LT(inst.label, 3);
  }
}

TEST(GeneratorsTest, InstancesAreZNormalized) {
  GeneratorOptions options;
  options.num_instances = 12;
  auto d = series::MakeSymbolsDataset(options);
  for (const auto& inst : d.instances) {
    EXPECT_NEAR(Mean(inst.values), 0.0, 1e-9);
    EXPECT_NEAR(Stddev(inst.values), 1.0, 1e-9);
  }
}

TEST(GeneratorsTest, DeterministicBySeed) {
  GeneratorOptions options;
  options.num_instances = 10;
  options.seed = 99;
  auto a = series::MakeTraceDataset(options);
  auto b = series::MakeTraceDataset(options);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.instances[i].values, b.instances[i].values);
  }
}

TEST(GeneratorsTest, DifferentSeedsDiffer) {
  GeneratorOptions a_opt, b_opt;
  a_opt.num_instances = b_opt.num_instances = 4;
  a_opt.seed = 1;
  b_opt.seed = 2;
  auto a = series::MakeSymbolsDataset(a_opt);
  auto b = series::MakeSymbolsDataset(b_opt);
  EXPECT_NE(a.instances[0].values, b.instances[0].values);
}

TEST(GeneratorsTest, WithinClassMoreSimilarThanAcrossClass) {
  GeneratorOptions options;
  options.num_instances = 60;
  options.noise_stddev = 0.05;
  auto d = series::MakeSymbolsDataset(options);
  // Average L2 within class 0 vs class 0->1.
  auto l2 = [](const std::vector<double>& x, const std::vector<double>& y) {
    double acc = 0;
    for (size_t i = 0; i < x.size(); ++i) acc += (x[i] - y[i]) * (x[i] - y[i]);
    return std::sqrt(acc);
  };
  auto c0 = d.FilterByLabel(0);
  auto c1 = d.FilterByLabel(1);
  double within = l2(c0.instances[0].values, c0.instances[1].values);
  double across = l2(c0.instances[0].values, c1.instances[0].values);
  EXPECT_LT(within, across);
}

TEST(GeneratorsTest, TemplatesAreDistinctAcrossClasses) {
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      auto ta = series::SymbolsTemplate(a);
      auto tb = series::SymbolsTemplate(b);
      double diff = 0;
      for (size_t i = 0; i < ta.size(); ++i) diff += std::abs(ta[i] - tb[i]);
      EXPECT_GT(diff, 10.0) << "classes " << a << " vs " << b;
    }
  }
}

TEST(GeneratorsTest, SmoothTimeWarpPreservesEndpointsAndLength) {
  std::vector<double> v(100);
  for (size_t i = 0; i < v.size(); ++i) v[i] = std::sin(0.1 * static_cast<double>(i));
  Rng rng(5);
  auto w = series::SmoothTimeWarp(v, 0.2, &rng);
  ASSERT_EQ(w.size(), v.size());
  EXPECT_NEAR(w.front(), v.front(), 1e-9);
  EXPECT_NEAR(w.back(), v.back(), 1e-9);
}

TEST(GeneratorsTest, SmoothTimeWarpZeroStrengthIsIdentity) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  Rng rng(6);
  EXPECT_EQ(series::SmoothTimeWarp(v, 0.0, &rng), v);
}

TEST(GeneratorsTest, TrigWaveLabelsAlternate) {
  TrigWaveOptions options;
  options.num_instances = 10;
  options.length = 100;
  options.noise_stddev = 0.0;
  options.z_normalize = false;
  auto d = series::MakeTrigWaveDataset(options);
  ASSERT_EQ(d.size(), 10u);
  // label 0 = sine starts at 0; label 1 = cosine starts at 1.
  EXPECT_NEAR(d.instances[0].values[0], 0.0, 1e-9);
  EXPECT_NEAR(d.instances[1].values[0], 1.0, 1e-9);
}

TEST(GeneratorsTest, TrigWaveSubsetPrefixShortensSeries) {
  TrigWaveOptions options;
  options.num_instances = 4;
  options.length = 1000;
  options.subset_prefix = 200;
  auto d = series::MakeTrigWaveDataset(options);
  for (const auto& inst : d.instances) {
    EXPECT_EQ(inst.values.size(), 200u);
  }
}

TEST(GeneratorsTest, TrigWaveFullPeriodSineSumNearZero) {
  TrigWaveOptions options;
  options.num_instances = 1;
  options.length = 400;
  options.noise_stddev = 0.0;
  options.z_normalize = false;
  auto d = series::MakeTrigWaveDataset(options);
  double sum = 0;
  for (double v : d.instances[0].values) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

}  // namespace
}  // namespace privshape
