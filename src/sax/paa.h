#ifndef PRIVSHAPE_SAX_PAA_H_
#define PRIVSHAPE_SAX_PAA_H_

#include <vector>

#include "common/status.h"

namespace privshape::sax {

/// Piecewise Aggregate Approximation with fixed segment length `w`
/// (the paper's convention: an m-length series becomes ceil(m/w) segment
/// means; the final segment may be shorter). w must be >= 1.
Result<std::vector<double>> PiecewiseAggregate(
    const std::vector<double>& values, int w);

}  // namespace privshape::sax

#endif  // PRIVSHAPE_SAX_PAA_H_
