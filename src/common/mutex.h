/// \file
/// Annotated mutex primitives for Clang thread-safety analysis
/// (common/thread_annotations.h): a `Mutex` the analysis can see
/// through, the RAII `MutexLock`, and a `CondVar` that keeps the
/// analysis sound across waits. Zero-cost wrappers over the std
/// primitives — every method is an inline forward — so adopting them
/// buys compile-time lock checking without touching codegen.
///
/// Usage pattern (see common/batch_queue.h for a full example):
///
///   class Account {
///     Mutex mu_;
///     int64_t balance_ PS_GUARDED_BY(mu_) = 0;
///    public:
///     void Deposit(int64_t n) PS_EXCLUDES(mu_) {
///       MutexLock lock(&mu_);
///       balance_ += n;   // OK: analysis knows mu_ is held
///     }
///   };
///
/// Condition waits: `CondVar::Wait(&mu_)` releases and re-acquires
/// internally, which the analysis cannot follow; the method is
/// annotated PS_REQUIRES(mu_) and its body opts out of analysis, so
/// callers keep full checking while the wait itself stays opaque.
/// Write waits as explicit predicate loops:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);

#ifndef PRIVSHAPE_COMMON_MUTEX_H_
#define PRIVSHAPE_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace privshape {

/// A std::mutex the thread-safety analysis understands. Lock-holding
/// classes declare `Mutex mu_;` and mark shared state
/// `PS_GUARDED_BY(mu_)`.
class PS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PS_ACQUIRE() { mu_.lock(); }
  void Unlock() PS_RELEASE() { mu_.unlock(); }
  bool TryLock() PS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex — the annotated std::lock_guard.
class PS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with Mutex. Wait requires the mutex held
/// and returns with it held again; spurious wakeups happen, so callers
/// loop on their predicate (see the file comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, sleeps until notified, re-acquires.
  /// The release/re-acquire happens inside std::condition_variable,
  /// invisible to the analysis — hence the opt-out on the body; the
  /// PS_REQUIRES contract keeps every caller checked.
  void Wait(Mutex* mu) PS_REQUIRES(mu) PS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // caller still owns the mutex, as annotated
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_MUTEX_H_
