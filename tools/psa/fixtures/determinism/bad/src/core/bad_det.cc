// Fixture: determinism violations in a strict module (src/core is
// deterministic top to bottom). Token-level analysis only.
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <unordered_map>

namespace privshape::core {

double WallClockSeed() {
  // Wall-clock read feeding computation.
  auto now = std::chrono::steady_clock::now();
  return static_cast<double>(now.time_since_epoch().count());
}

int GlobalRand() { return std::rand(); }

double HashOrderSum(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) total += kv.second;  // hash order
  return total;
}

double TextRoundTrip(const std::string& s) { return std::stod(s); }

uint64_t LocalEngine() {
  std::mt19937_64 engine(42);  // engines live in common/rng.h only
  return engine();
}

}  // namespace privshape::core
