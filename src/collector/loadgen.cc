#include "collector/loadgen.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/socket.h"
#include "net/frame.h"
#include "protocol/round_context.h"
#include "protocol/session.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace privshape::collector {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// What one connection thread produced.
struct ConnOutcome {
  net::CompleteMsg complete;
  size_t rounds = 0;
  size_t reports_sent = 0;
  size_t client_errors = 0;
  size_t bytes_up = 0;
  size_t bytes_down = 0;
  /// (stage name, RoundBegin->RoundDone nanoseconds) per served round.
  std::vector<std::pair<std::string, uint64_t>> round_latency;
};

/// Protocol-stage name of a round, derived from its report kind and how
/// many selection rounds this connection has already served: the daemon
/// broadcasts P_c levels in order, so the per-connection count IS the
/// trie level.
std::string StageName(proto::ReportKind kind, size_t selection_rounds) {
  switch (kind) {
    case proto::ReportKind::kLength:
      return "Pa";
    case proto::ReportKind::kSubShape:
      return "Pb";
    case proto::ReportKind::kSelection:
      return "Pc.level" + std::to_string(selection_rounds);
    case proto::ReportKind::kRefinement:
      return "Pd";
    case proto::ReportKind::kClassRefine:
      return "Pe";
  }
  return "unknown";
}

/// Blocks until the next whole frame arrives (reads bounded by the
/// socket's SO_RCVTIMEO). A server-sent Error frame is surfaced as the
/// daemon's message, not as a framing failure.
Result<net::Frame> ReadFrame(int fd, net::FrameReader* reader,
                             size_t* bytes_down) {
  char buf[64 * 1024];
  while (true) {
    net::Frame frame;
    auto next = reader->Next(&frame);
    if (!next.ok()) return next.status();
    if (*next) {
      if (frame.type == net::MsgType::kError) {
        auto message = net::DecodeError(frame.payload);
        return Status::Internal(
            "server error: " +
            (message.ok() ? *message : message.status().message()));
      }
      return frame;
    }
    auto read = ReadSome(fd, buf, sizeof(buf));
    if (!read.ok()) return read.status();
    if (*read == 0) {
      return Status::Internal("server closed the connection");
    }
    *bytes_down += *read;
    reader->Append(std::string_view(buf, *read));
  }
}

Status SendFrame(int fd, net::MsgType type, std::string_view body,
                 size_t* bytes_up) {
  std::string frame;
  net::AppendFrame(type, body, &frame);
  *bytes_up += frame.size();
  return WriteAll(fd, frame);
}

/// Decodes a round's broadcast request into the shared RoundContext every
/// assigned user answers against — the same pre-decode the in-process
/// coordinator does once per round.
Result<proto::RoundContext> ContextFor(const net::RoundBeginMsg& msg,
                                       dist::Metric metric) {
  switch (msg.kind) {
    case proto::ReportKind::kLength: {
      auto request = proto::DecodeLengthRequest(msg.request);
      if (!request.ok()) return request.status();
      return proto::RoundContext::Length(*request);
    }
    case proto::ReportKind::kSubShape: {
      auto request = proto::DecodeSubShapeRequest(msg.request);
      if (!request.ok()) return request.status();
      return proto::RoundContext::SubShape(*request);
    }
    case proto::ReportKind::kSelection:
      return proto::RoundContext::Selection(msg.request, metric);
    case proto::ReportKind::kRefinement:
      return proto::RoundContext::Refinement(msg.request, metric);
    case proto::ReportKind::kClassRefine:
      return proto::RoundContext::ClassRefinement(msg.request, metric);
  }
  return Status::InvalidArgument("unknown round kind");
}

/// One connection's whole lifecycle: handshake, rounds, Complete.
Result<ConnOutcome> RunConnection(const ClientFleet& fleet,
                                  const LoadgenOptions& options) {
  auto connected = TcpConnect(options.host, options.port);
  if (!connected.ok()) return connected.status();
  UniqueFd fd = std::move(*connected);
  PRIVSHAPE_RETURN_IF_ERROR(SetNoDelay(fd.get()));
  PRIVSHAPE_RETURN_IF_ERROR(
      SetRecvTimeout(fd.get(), options.timeout_seconds));

  ConnOutcome outcome;
  net::FrameReader reader;

  net::HelloMsg hello;
  hello.fleet_users = fleet.num_users();
  PRIVSHAPE_RETURN_IF_ERROR(SendFrame(fd.get(), net::MsgType::kHello,
                                      net::EncodeHello(hello),
                                      &outcome.bytes_up));
  auto welcome_frame = ReadFrame(fd.get(), &reader, &outcome.bytes_down);
  if (!welcome_frame.ok()) return welcome_frame.status();
  if (welcome_frame->type != net::MsgType::kWelcome) {
    return Status::Internal("expected Welcome, got frame type " +
                            std::to_string(static_cast<uint64_t>(
                                welcome_frame->type)));
  }
  auto welcome = net::DecodeWelcome(welcome_frame->payload);
  if (!welcome.ok()) return welcome.status();
  // The handshake echo is the last line of defense of the determinism
  // contract: a daemon configured for a different fleet must fail here,
  // not produce silently different shapes.
  if (welcome->version != net::kNetVersion) {
    return Status::FailedPrecondition(
        "protocol version mismatch: daemon speaks v" +
        std::to_string(welcome->version));
  }
  if (welcome->num_users != fleet.num_users()) {
    return Status::FailedPrecondition(
        "daemon runs " + std::to_string(welcome->num_users) +
        " users, fleet has " + std::to_string(fleet.num_users()));
  }
  if (welcome->seed != fleet.seed()) {
    return Status::FailedPrecondition(
        "daemon seed " + std::to_string(welcome->seed) +
        " != fleet seed " + std::to_string(fleet.seed()));
  }
  if (welcome->num_classes > 0 && !fleet.labeled()) {
    return Status::FailedPrecondition(
        "daemon serves classification (num_classes=" +
        std::to_string(welcome->num_classes) + ") but the fleet is unlabeled");
  }

  size_t batch_size = options.batch_size > 0 ? options.batch_size : 1;
  size_t selection_rounds = 0;
  while (true) {
    auto frame = ReadFrame(fd.get(), &reader, &outcome.bytes_down);
    if (!frame.ok()) return frame.status();
    if (frame->type == net::MsgType::kComplete) {
      auto complete = net::DecodeComplete(frame->payload);
      if (!complete.ok()) return complete.status();
      outcome.complete = std::move(*complete);
      return outcome;
    }
    if (frame->type != net::MsgType::kRoundBegin) {
      return Status::Internal(
          "expected RoundBegin or Complete, got frame type " +
          std::to_string(static_cast<uint64_t>(frame->type)));
    }
    auto round = net::DecodeRoundBegin(frame->payload);
    if (!round.ok()) return round.status();
    // The client-observed latency clock starts here: the round is in
    // hand, everything until RoundDone is this connection's work.
    uint64_t round_start_ns = NowNs();
    std::string stage = StageName(round->kind, selection_rounds);
    if (round->kind == proto::ReportKind::kSelection) ++selection_rounds;
    telemetry::TraceSpan round_span(telemetry::GlobalTrace(), stage,
                                    "client");
    auto ctx = ContextFor(*round, fleet.metric());
    if (!ctx.ok()) return ctx.status();

    // Same zero-allocation answer path as the in-process stripes: one
    // scratch and one flat batch buffer reused across the assignment.
    proto::AnswerScratch scratch;
    proto::ReportBatch batch;
    batch.Reserve(batch_size);
    size_t errors = 0;
    for (uint64_t user : round->users) {
      if (user >= fleet.num_users()) {
        return Status::Internal("assigned out-of-range user " +
                                std::to_string(user));
      }
      proto::ClientSession session =
          fleet.MakeSession(static_cast<size_t>(user));
      Status answered = session.AnswerTo(*ctx, &scratch, &batch);
      if (!answered.ok()) {
        ++errors;
        continue;
      }
      if (batch.size() >= batch_size) {
        outcome.reports_sent += batch.size();
        PRIVSHAPE_RETURN_IF_ERROR(
            SendFrame(fd.get(), net::MsgType::kBatchUpload,
                      net::EncodeBatchUpload(round->round_id, batch),
                      &outcome.bytes_up));
        batch = proto::ReportBatch();
        batch.Reserve(batch_size);
      }
    }
    if (!batch.empty()) {
      outcome.reports_sent += batch.size();
      PRIVSHAPE_RETURN_IF_ERROR(
          SendFrame(fd.get(), net::MsgType::kBatchUpload,
                    net::EncodeBatchUpload(round->round_id, batch),
                    &outcome.bytes_up));
    }
    net::RoundDoneMsg done;
    done.round_id = round->round_id;
    done.answered = round->users.size() - errors;
    done.client_errors = errors;
    PRIVSHAPE_RETURN_IF_ERROR(SendFrame(fd.get(), net::MsgType::kRoundDone,
                                        net::EncodeRoundDone(done),
                                        &outcome.bytes_up));
    round_span.Close();
    outcome.round_latency.emplace_back(std::move(stage),
                                       NowNs() - round_start_ns);
    outcome.client_errors += errors;
    ++outcome.rounds;
  }
}

}  // namespace

Result<LoadgenOutcome> RunLoadgen(const ClientFleet& fleet,
                                  const LoadgenOptions& options) {
  if (options.connections == 0) {
    return Status::InvalidArgument("connections must be >= 1");
  }
  if (options.port == 0) {
    return Status::InvalidArgument("port must be set");
  }

  size_t n = options.connections;
  std::vector<ConnOutcome> outcomes(n);
  std::vector<Status> statuses(n, Status::Ok());
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      try {
        auto run = RunConnection(fleet, options);
        if (run.ok()) {
          outcomes[i] = std::move(*run);
        } else {
          statuses[i] = run.status();
        }
      } catch (const std::exception& e) {
        statuses[i] = Status::Internal(std::string("connection ") +
                                       std::to_string(i) + ": " + e.what());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(), "connection " + std::to_string(i) +
                                            ": " + statuses[i].message());
    }
  }

  // The Complete broadcast is one encode fanned out to every connection;
  // any divergence means the transport corrupted it.
  for (size_t i = 1; i < n; ++i) {
    if (!(outcomes[i].complete == outcomes[0].complete)) {
      return Status::Internal("divergent Complete broadcasts across " +
                              std::to_string(n) + " connections");
    }
  }

  LoadgenOutcome total;
  total.result.frequent_length =
      static_cast<int>(outcomes[0].complete.frequent_length);
  total.result.shapes.reserve(outcomes[0].complete.shapes.size());
  for (const auto& shape : outcomes[0].complete.shapes) {
    core::ShapeCandidate candidate;
    candidate.shape = shape.shape;
    candidate.frequency = shape.frequency;
    candidate.label = shape.label;
    total.result.shapes.push_back(std::move(candidate));
  }
  for (const auto& outcome : outcomes) {
    total.rounds = std::max(total.rounds, outcome.rounds);
    total.reports_sent += outcome.reports_sent;
    total.client_errors += outcome.client_errors;
    total.bytes_up += outcome.bytes_up;
    total.bytes_down += outcome.bytes_down;
  }

  // Fold every connection's per-round samples into one histogram per
  // stage (first-appearance order = protocol order, since connection 0
  // serves every round) and derive the client-observed percentiles.
  std::vector<std::string> stage_order;
  std::map<std::string, std::unique_ptr<telemetry::Histogram>> by_stage;
  for (const auto& outcome : outcomes) {
    for (const auto& [stage, ns] : outcome.round_latency) {
      auto [it, inserted] = by_stage.try_emplace(stage, nullptr);
      if (inserted) {
        it->second = std::make_unique<telemetry::Histogram>();
        stage_order.push_back(stage);
      }
      it->second->Record(ns);
    }
  }
  total.stage_latency.reserve(stage_order.size());
  for (const std::string& stage : stage_order) {
    telemetry::HistogramSnapshot snap = by_stage[stage]->Snapshot();
    StageLatency lat;
    lat.stage = stage;
    lat.samples = snap.count;
    lat.p50_ns = snap.Quantile(0.50);
    lat.p95_ns = snap.Quantile(0.95);
    lat.p99_ns = snap.Quantile(0.99);
    lat.max_ns = snap.max;
    lat.mean_ns = snap.Mean();
    total.stage_latency.push_back(std::move(lat));
  }
  return total;
}

}  // namespace privshape::collector
