"""Analyzer self-test: every check proven to fire AND to stay quiet.

Each check family has a fixture mini-tree under tools/psa/fixtures/:
a `bad/` tree where every rule is violated once (the check must produce
exactly the expected findings) and a `good/` twin exercising the same
shapes legally (the whole analyzer must stay silent). On top of the
fixtures, unit assertions cover the tokenizer, suppression parsing,
SARIF emission, and compile-db edge cases — the places where a silent
regression would blind every check at once.
"""

import json
import os
import tempfile

from . import annotations
from . import engine
from . import ir
from . import runner
from . import sarif
from . import suppressions
from . import tokenizer
from .checks import ALL_CHECKS, check_ids

FIXTURES = os.path.join("tools", "psa", "fixtures")


class Failure(AssertionError):
    pass


def _check(cond, message):
    if not cond:
        raise Failure(message)


def _quiet(_msg):
    pass


def _analyze_fixture(root, tree):
    path = os.path.join(root, FIXTURES, tree)
    _check(os.path.isdir(path), f"fixture tree missing: {path}")
    code, active, suppressed = runner.analyze_tree(
        path, prefer_engine="token", log=_quiet)
    _check(code != 2, f"{tree}: analyzer internal error")
    return code, active, suppressed


def _expect_tree(root, tree, expected):
    """expected: list of (check_id, path_suffix, message_substring)."""
    code, active, _ = _analyze_fixture(root, tree)
    rendered = "\n".join("  " + f.render() for f in active) or "  (none)"
    _check(len(active) == len(expected),
           f"{tree}: expected {len(expected)} finding(s), got "
           f"{len(active)}:\n{rendered}")
    _check(code == (1 if expected else 0),
           f"{tree}: exit code {code} with {len(active)} finding(s)")
    for check_id, suffix, substring in expected:
        hits = [f for f in active
                if f.check == check_id and f.path.endswith(suffix)
                and substring in f.message]
        _check(hits, f"{tree}: no {check_id} finding at *{suffix} "
                     f"containing '{substring}':\n{rendered}")


# --- fixture trees --------------------------------------------------------


def test_rng_order_fires(root):
    _expect_tree(root, os.path.join("rng_order", "bad"), [
        ("psa-rng-order", "bad_mech.cc", "raw std randomness"),
        ("psa-rng-order", "bad_mech.cc", "direct engine() access"),
        ("psa-rng-order", "bad_mech.cc", "raw Rng draw Uniform()"),
        ("psa-rng-order", "bad_mech.cc", "call graph consumes 3 word(s)"),
        ("psa-rng-order", "bad_mech.cc", "inside a branch/loop"),
        ("psa-rng-order", "bad_mech.cc", "outside any PS_REPORT_PATH"),
        ("psa-rng-order", "bad_decl.h", "disagrees between declaration"),
        ("psa-rng-order", "bad_decl.h", "without including"),
    ])


def test_rng_order_quiet(root):
    _expect_tree(root, os.path.join("rng_order", "good"), [])


def test_determinism_fires(root):
    _expect_tree(root, os.path.join("determinism", "bad"), [
        ("psa-determinism", "bad_det.cc", "wall-clock read 'steady_clock'"),
        ("psa-determinism", "bad_det.cc", "process-global randomness"),
        ("psa-determinism", "bad_det.cc", "'unordered_map'"),
        ("psa-determinism", "bad_det.cc", "float/text round-trip 'stod'"),
        ("psa-determinism", "bad_det.cc", "local 'mt19937_64' engine"),
        ("psa-determinism", "bad_coll.cc", "wall-clock read 'system_clock'"),
    ])


def test_determinism_quiet(root):
    _expect_tree(root, os.path.join("determinism", "good"), [])


def test_budget_flow_fires(root):
    _expect_tree(root, os.path.join("budget_flow", "bad"), [
        ("psa-budget-flow", "bad_budget.cc", "literal 1.0"),
        ("psa-budget-flow", "bad_budget.cc", "literal 0.5"),
        ("psa-budget-flow", "bad_budget.cc", "literal 2.0"),
    ])


def test_budget_flow_quiet(root):
    _expect_tree(root, os.path.join("budget_flow", "good"), [])


def test_purity_fires(root):
    _expect_tree(root, os.path.join("purity", "bad"), [
        ("psa-purity", "bad_atomic.cc", "memory_order_relaxed outside"),
        ("psa-purity", "bad_telemetry.cc", "remove #include"),
        ("psa-purity", "bad_telemetry.cc", "references telemetry::"),
    ])


def test_purity_quiet(root):
    _expect_tree(root, os.path.join("purity", "good"), [])


# --- tokenizer ------------------------------------------------------------


def test_tokenizer_comments_and_strings(root):
    src = tokenizer.tokenize(
        '// steady_clock in a comment\n'
        'int a = 1; /* rand() in\n a block comment */\n'
        'const char* s = "std::rand() inside a string";\n'
        "char c = 'x';\n", "src/core/t.cc")
    idents = [t.text for t in src.tokens if t.kind == ir.IDENT]
    _check("steady_clock" not in idents, "comment text leaked as tokens")
    _check("rand" not in idents, "comment/string text leaked as tokens")
    strings = [t for t in src.tokens if t.kind == ir.STRING]
    _check(len(strings) == 1, f"expected 1 string token, got {strings}")
    _check(strings[0].line == 4, f"string line {strings[0].line} != 4")
    chars = [t for t in src.tokens if t.kind == ir.CHAR]
    _check(len(chars) == 1, "char literal not tokenized")


def test_tokenizer_raw_strings(root):
    src = tokenizer.tokenize(
        'auto r = R"fmt(rand() %f "quote")fmt";\nint after = 2;\n',
        "src/core/t.cc")
    idents = [t.text for t in src.tokens if t.kind == ir.IDENT]
    _check("rand" not in idents, "raw string content leaked")
    _check("after" in idents, "tokens after raw string lost")
    after = next(t for t in src.tokens if t.text == "after")
    _check(after.line == 2, f"line tracking broke after raw string "
                            f"({after.line} != 2)")


def test_tokenizer_preprocessor(root):
    src = tokenizer.tokenize(
        '#include "ldp/grr.h"\n'
        '#include <unordered_map>\n'
        '#define HELPER(x) \\\n'
        '  std::rand(x)\n'
        'int live = 1;\n', "src/core/t.cc")
    idents = [t.text for t in src.tokens if t.kind == ir.IDENT]
    _check("unordered_map" not in idents, "system include leaked tokens")
    _check("rand" not in idents, "macro continuation line leaked tokens")
    _check("live" in idents, "code after directives lost")
    _check(src.includes == [(1, "ldp/grr.h")],
           f"include capture wrong: {src.includes}")
    live = next(t for t in src.tokens if t.text == "live")
    _check(live.line == 5, f"line tracking broke across directives "
                           f"({live.line} != 5)")


# --- suppressions ---------------------------------------------------------


def test_suppression_parse_problems(root):
    known = set(check_ids())
    text = "\n".join([
        "# comment, ignored",
        "",
        "psa-purity src/common/shutdown.cc",  # no justification
        "psa-purity too many words here -- a justification long enough",
        "psa-nonexistent src/a.cc -- a justification long enough here",
        "psa-purity src/a.cc:xy -- a justification long enough here",
        "psa-purity src/a.cc -- too thin",
    ])
    supp = suppressions.parse("tools/psa/suppressions.txt", text, known)
    _check(not supp.entries, f"malformed entries accepted: {supp.entries}")
    msgs = [p.message for p in supp.problems]
    _check(len(msgs) == 5, f"expected 5 parse problems, got {msgs}")
    for needle in ("no ' -- justification'", "malformed suppression head",
                   "unknown check id", "is not a number",
                   "justification too thin"):
        _check(any(needle in m for m in msgs),
               f"missing parse problem '{needle}' in {msgs}")


def test_suppression_apply(root):
    known = set(check_ids())
    text = ("psa-purity src/x/*.cc:7 -- relaxed counter is the module's "
            "documented contract\n"
            "psa-determinism src/never/*.cc -- matches nothing so it "
            "must be reported stale\n")
    supp = suppressions.parse("tools/psa/suppressions.txt", text, known)
    _check(len(supp.entries) == 2, f"parse rejected entries: "
                                   f"{[p.message for p in supp.problems]}")
    hit = ir.Finding("psa-purity", "src/x/a.cc", 7, "m")
    wrong_line = ir.Finding("psa-purity", "src/x/a.cc", 9, "m")
    active, suppressed, problems = suppressions.apply(
        [hit, wrong_line], supp, require_used=True)
    _check(suppressed == [hit], "line-pinned suppression did not match")
    _check(hit.suppressed_by.endswith(":1"), "suppressed_by not recorded")
    _check(active == [wrong_line] or wrong_line in active,
           "non-matching finding was suppressed")
    _check(any("stale suppression" in p.message for p in problems),
           "unused entry not reported stale")
    # Partial-tree runs must not report staleness.
    _, _, lenient = suppressions.apply([hit], supp, require_used=False)
    _check(not lenient, "require_used=False still reported staleness")


def test_suppression_end_to_end(root):
    tree = os.path.join(root, FIXTURES, "purity", "bad")
    with tempfile.NamedTemporaryFile(
            "w", suffix=".txt", delete=False) as f:
        f.write("psa-purity */bad_atomic.cc -- fixture: proving the "
                "suppression path end to end\n")
        supp_path = f.name
    try:
        code, active, suppressed = runner.analyze_tree(
            tree, prefer_engine="token", suppression_path=supp_path,
            log=_quiet)
    finally:
        os.unlink(supp_path)
    _check(len(suppressed) == 1, f"expected 1 suppressed finding, got "
                                 f"{[f.render() for f in suppressed]}")
    _check(len(active) == 2 and code == 1,
           "suppression swallowed unrelated findings")


# --- SARIF ----------------------------------------------------------------


def test_sarif_smoke(root):
    plain = ir.Finding("psa-determinism", "src/core/a.cc", 12, "msg")
    shushed = ir.Finding("psa-purity", "src/common/b.h", 3, "msg2",
                         suppressed_by="tools/psa/suppressions.txt:4")
    log = sarif.to_sarif([plain, shushed], ALL_CHECKS, "1.0.0")
    log = json.loads(json.dumps(log))  # must be JSON-serializable
    _check(log["version"] == "2.1.0", "SARIF version missing")
    _check("sarif-schema-2.1.0" in log["$schema"], "SARIF $schema missing")
    run = log["runs"][0]
    _check(run["tool"]["driver"]["name"] == "privshape-analyzer",
           "driver name missing")
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    _check(set(check_ids()) | {"psa-suppressions"} <= rule_ids,
           f"rules incomplete: {rule_ids}")
    results = run["results"]
    _check(len(results) == 2, "result count wrong")
    _check(results[0]["ruleId"] == "psa-determinism" and
           results[0]["level"] == "error", "result head wrong")
    loc = results[0]["locations"][0]["physicalLocation"]
    _check(loc["artifactLocation"]["uri"] == "src/core/a.cc" and
           loc["region"]["startLine"] == 12, "result location wrong")
    _check("suppressions" not in results[0], "active result marked "
                                             "suppressed")
    _check(results[1]["suppressions"][0]["kind"] == "external",
           "suppressed result lacks suppression record")


# --- engine / discovery ---------------------------------------------------


def test_compile_db_edges(root):
    with tempfile.TemporaryDirectory() as tmp:
        build = os.path.join(tmp, "build")
        os.makedirs(build)
        db = os.path.join(build, "compile_commands.json")
        with open(db, "w", encoding="utf-8") as f:
            f.write("{not json")
        _check(engine.load_compile_db(tmp) == [],
               "malformed compile db not tolerated")
        entries = [
            {"directory": tmp, "file": "src/core/a.cc", "command": "c++"},
            {"directory": tmp, "file": "/usr/lib/x.cc", "command": "c++"},
        ]
        with open(db, "w", encoding="utf-8") as f:
            json.dump(entries, f)
        loaded = engine.load_compile_db(tmp)
        _check([e["_relpath"] for e in loaded] == ["src/core/a.cc"],
               f"compile db relpath/out-of-repo handling wrong: {loaded}")
        os.makedirs(os.path.join(tmp, "src", "core"))
        with open(os.path.join(tmp, "src", "core", "h.h"), "w") as f:
            f.write("int x;\n")
        files = engine.discover_files(tmp)
        _check(files == ["src/core/a.cc", "src/core/h.h"],
               f"discovery must union walk + compile db: {files}")


def test_engine_selection(root):
    eng, notice = engine.select_engine(root, "token")
    _check(eng.name == "token" and "forced" in notice,
           "forced token engine not honored")
    eng, notice = engine.select_engine(root, "auto")
    _check(eng.name in ("token", "clang"), f"auto engine broken: {notice}")
    try:
        engine.select_engine(root, "cppcheck")
    except ValueError:
        pass
    else:
        raise Failure("unknown engine name accepted")


def test_receiver_aliases(root):
    # The repo's naming conventions the resolver leans on; if these
    # drift, ambiguous PerturbValue calls stop resolving.
    _check(annotations.RECEIVER_ALIASES.get("grr") == "Grr" and
           annotations.RECEIVER_ALIASES.get("oue") == "UnaryEncoding" and
           annotations.RECEIVER_ALIASES.get("em") == "ExponentialMechanism",
           f"receiver aliases drifted: {annotations.RECEIVER_ALIASES}")


TESTS = [
    test_rng_order_fires,
    test_rng_order_quiet,
    test_determinism_fires,
    test_determinism_quiet,
    test_budget_flow_fires,
    test_budget_flow_quiet,
    test_purity_fires,
    test_purity_quiet,
    test_tokenizer_comments_and_strings,
    test_tokenizer_raw_strings,
    test_tokenizer_preprocessor,
    test_suppression_parse_problems,
    test_suppression_apply,
    test_suppression_end_to_end,
    test_sarif_smoke,
    test_compile_db_edges,
    test_engine_selection,
    test_receiver_aliases,
]


def run_selftest(root, log=print):
    """Runs every self-test; returns 0 on success, 1 on failure."""
    failures = 0
    for test in TESTS:
        name = test.__name__
        try:
            test(root)
        except Failure as e:
            failures += 1
            log(f"psa-selftest: FAIL {name}: {e}")
        except Exception as e:  # noqa: broad on purpose — report, not crash
            failures += 1
            log(f"psa-selftest: ERROR {name}: {type(e).__name__}: {e}")
        else:
            log(f"psa-selftest: ok {name}")
    if failures:
        log(f"psa-selftest: {failures}/{len(TESTS)} test(s) failed")
        return 1
    log(f"psa-selftest: all {len(TESTS)} tests passed")
    return 0
