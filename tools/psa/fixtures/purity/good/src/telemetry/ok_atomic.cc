// Fixture: relaxed atomics are the telemetry module's whole point —
// monotonic counters with no ordering obligations. Never a finding here.
#include <atomic>

namespace privshape::telemetry {

void BumpCounter(std::atomic<uint64_t>* counter) {
  counter->fetch_add(1, std::memory_order_relaxed);
}

uint64_t ReadCounter(const std::atomic<uint64_t>& counter) {
  return counter.load(std::memory_order_relaxed);
}

}  // namespace privshape::telemetry
