#include "common/math_utils.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privshape {
namespace {

TEST(MathTest, MeanAndVariance) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(Variance(v), 2.0);
  EXPECT_DOUBLE_EQ(Stddev(v), std::sqrt(2.0));
}

TEST(MathTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
}

TEST(MathTest, ZNormalizeProducesZeroMeanUnitVar) {
  std::vector<double> v = {2, 4, 6, 8, 10, 12};
  ZNormalize(&v);
  EXPECT_NEAR(Mean(v), 0.0, 1e-12);
  EXPECT_NEAR(Stddev(v), 1.0, 1e-12);
}

TEST(MathTest, ZNormalizeConstantSeriesBecomesZeros) {
  std::vector<double> v = {7, 7, 7, 7};
  ZNormalize(&v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(MathTest, ZNormalizedCopyLeavesInputIntact) {
  std::vector<double> v = {1, 2, 3};
  auto z = ZNormalized(v);
  EXPECT_EQ(v[0], 1);
  EXPECT_NEAR(Mean(z), 0.0, 1e-12);
}

TEST(MathTest, ClampBounds) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathTest, InverseNormalCdfKnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  // The paper's t=3 SAX breakpoints: +/- 0.43.
  EXPECT_NEAR(InverseNormalCdf(1.0 / 3.0), -0.4307, 1e-3);
  EXPECT_NEAR(InverseNormalCdf(2.0 / 3.0), 0.4307, 1e-3);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959964, 1e-6);
}

TEST(MathTest, InverseNormalCdfIsInverseOfCdf) {
  for (double p = 0.01; p < 1.0; p += 0.007) {
    EXPECT_NEAR(NormalCdf(InverseNormalCdf(p)), p, 1e-8) << "p=" << p;
  }
}

TEST(MathTest, InverseNormalCdfEdgeCases) {
  EXPECT_TRUE(std::isinf(InverseNormalCdf(0.0)));
  EXPECT_TRUE(std::isinf(InverseNormalCdf(1.0)));
  EXPECT_LT(InverseNormalCdf(0.0), 0.0);
  EXPECT_GT(InverseNormalCdf(1.0), 0.0);
}

TEST(MathTest, LogSumExpMatchesDirectComputation) {
  std::vector<double> x = {0.1, 0.7, -1.2};
  double direct =
      std::log(std::exp(0.1) + std::exp(0.7) + std::exp(-1.2));
  EXPECT_NEAR(LogSumExp(x), direct, 1e-12);
}

TEST(MathTest, LogSumExpStableForLargeInputs) {
  std::vector<double> x = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(x), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, ResampleLinearIdentity) {
  std::vector<double> v = {1, 2, 3, 4};
  auto r = ResampleLinear(v, 4);
  ASSERT_EQ(r.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(r[i], v[i], 1e-12);
}

TEST(MathTest, ResampleLinearUpsamplesEndpoints) {
  std::vector<double> v = {0.0, 10.0};
  auto r = ResampleLinear(v, 11);
  ASSERT_EQ(r.size(), 11u);
  EXPECT_NEAR(r.front(), 0.0, 1e-12);
  EXPECT_NEAR(r.back(), 10.0, 1e-12);
  EXPECT_NEAR(r[5], 5.0, 1e-12);
}

TEST(MathTest, ResampleLinearDownsamples) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(i);
  auto r = ResampleLinear(v, 5);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_NEAR(r.front(), 0.0, 1e-9);
  EXPECT_NEAR(r.back(), 100.0, 1e-9);
}

}  // namespace
}  // namespace privshape
