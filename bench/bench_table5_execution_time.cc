// Table V: execution time of the three mechanisms on the clustering task
// (Symbols, t=6, w=25) and the classification task (Trace, t=4, w=10) at
// eps = 4. Uses google-benchmark; the paper's expected shape is
// PrivShape <= Baseline << PatternLDP (PatternLDP spends its time fitting
// the downstream model).

#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "series/generators.h"
#include "series/time_series.h"

namespace pb = privshape::bench;

namespace {

constexpr double kEpsilon = 4.0;

size_t BenchUsers() {
  const char* env = std::getenv("PRIVSHAPE_USERS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 2000;
}

privshape::series::Dataset SymbolsData() {
  privshape::series::GeneratorOptions gen;
  gen.num_instances = BenchUsers();
  gen.seed = 2023;
  return privshape::series::MakeSymbolsDataset(gen);
}

privshape::series::Dataset TraceData() {
  privshape::series::GeneratorOptions gen;
  gen.num_instances = BenchUsers();
  gen.seed = 2023;
  return privshape::series::MakeTraceDataset(gen);
}

void BM_Clustering_Baseline(benchmark::State& state) {
  auto dataset = SymbolsData();
  auto transform = pb::SymbolsTransform();
  auto config = pb::SymbolsConfig(kEpsilon, 2023);
  config.baseline_threshold =
      100.0 * static_cast<double>(dataset.size()) / 40000.0;
  for (auto _ : state) {
    auto outcome = pb::RunBaselineClustering(dataset, transform, config);
    benchmark::DoNotOptimize(outcome.ari);
  }
}
BENCHMARK(BM_Clustering_Baseline)->Unit(benchmark::kMillisecond);

void BM_Clustering_PrivShape(benchmark::State& state) {
  auto dataset = SymbolsData();
  auto transform = pb::SymbolsTransform();
  auto config = pb::SymbolsConfig(kEpsilon, 2023);
  for (auto _ : state) {
    auto outcome = pb::RunPrivShapeClustering(dataset, transform, config);
    benchmark::DoNotOptimize(outcome.ari);
  }
}
BENCHMARK(BM_Clustering_PrivShape)->Unit(benchmark::kMillisecond);

void BM_Clustering_PatternLDP(benchmark::State& state) {
  auto dataset = SymbolsData();
  auto transform = pb::SymbolsTransform();
  pb::PatternLdpBenchOptions pl;
  pl.epsilon = kEpsilon;
  for (auto _ : state) {
    auto outcome =
        pb::RunPatternLdpKMeansClustering(dataset, transform, pl, 6);
    benchmark::DoNotOptimize(outcome.ari);
  }
}
BENCHMARK(BM_Clustering_PatternLDP)->Unit(benchmark::kMillisecond);

void BM_Classification_Baseline(benchmark::State& state) {
  auto dataset = TraceData();
  privshape::series::Dataset train, test;
  privshape::series::TrainTestSplit(dataset, 0.8, 2023, &train, &test);
  auto transform = pb::TraceTransform();
  auto config = pb::TraceConfig(kEpsilon, 2023);
  config.baseline_threshold =
      100.0 * static_cast<double>(dataset.size()) / 40000.0;
  for (auto _ : state) {
    auto outcome =
        pb::RunBaselineClassification(train, test, transform, config);
    benchmark::DoNotOptimize(outcome.accuracy);
  }
}
BENCHMARK(BM_Classification_Baseline)->Unit(benchmark::kMillisecond);

void BM_Classification_PrivShape(benchmark::State& state) {
  auto dataset = TraceData();
  privshape::series::Dataset train, test;
  privshape::series::TrainTestSplit(dataset, 0.8, 2023, &train, &test);
  auto transform = pb::TraceTransform();
  auto config = pb::TraceConfig(kEpsilon, 2023);
  config.num_classes = 3;
  for (auto _ : state) {
    auto outcome =
        pb::RunPrivShapeClassification(train, test, transform, config);
    benchmark::DoNotOptimize(outcome.accuracy);
  }
}
BENCHMARK(BM_Classification_PrivShape)->Unit(benchmark::kMillisecond);

void BM_Classification_PatternLDP(benchmark::State& state) {
  auto dataset = TraceData();
  privshape::series::Dataset train, test;
  privshape::series::TrainTestSplit(dataset, 0.8, 2023, &train, &test);
  pb::PatternLdpBenchOptions pl;
  pl.epsilon = kEpsilon;
  for (auto _ : state) {
    auto outcome = pb::RunPatternLdpRfClassification(train, test, pl, 3);
    benchmark::DoNotOptimize(outcome.accuracy);
  }
}
BENCHMARK(BM_Classification_PatternLDP)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
