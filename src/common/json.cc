#include "common/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace privshape {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // %.17g round-trips every double; trim to the shortest representation
  // that still round-trips for readable output.
  for (int precision = 6; precision <= 17; ++precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::Num(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = JsonNumber(value);
  return v;
}

JsonValue JsonValue::Int(int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::to_string(value);
  return v;
}

JsonValue JsonValue::Uint(uint64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::to_string(value);
  return v;
}

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  assert(kind_ == Kind::kObject && "Set() requires an object");
  for (auto& [k, v] : children_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  children_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::Push(JsonValue value) {
  assert(kind_ == Kind::kArray && "Push() requires an array");
  children_.emplace_back(std::string(), std::move(value));
  return *this;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent <= 0) return;
    *out += '\n';
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      *out += scalar_;
      break;
    case Kind::kString:
      *out += '"';
      *out += JsonEscape(scalar_);
      *out += '"';
      break;
    case Kind::kObject: {
      *out += '{';
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) *out += ',';
        newline(depth + 1);
        *out += '"';
        *out += JsonEscape(children_[i].first);
        *out += indent > 0 ? "\": " : "\":";
        children_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!children_.empty()) newline(depth);
      *out += '}';
      break;
    }
    case Kind::kArray: {
      *out += '[';
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) *out += ',';
        newline(depth + 1);
        children_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!children_.empty()) newline(depth);
      *out += ']';
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

}  // namespace privshape
