#include "distance/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace privshape::dist {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

template <typename Cost>
double DtwImpl(size_t n, size_t m, int band, const Cost& cost) {
  if (n == 0 || m == 0) return n == m ? 0.0 : kInf;
  // Rolling two-row DP over the (n+1) x (m+1) table.
  std::vector<double> prev(m + 1, kInf), curr(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    size_t lo = 1, hi = m;
    if (band >= 0) {
      // Sakoe-Chiba: |i - j| <= band, after scaling for unequal lengths.
      double scaled = static_cast<double>(i) * static_cast<double>(m) /
                      static_cast<double>(n);
      lo = static_cast<size_t>(
          std::max(1.0, std::ceil(scaled - static_cast<double>(band))));
      hi = static_cast<size_t>(std::min(
          static_cast<double>(m),
          std::floor(scaled + static_cast<double>(band))));
    }
    for (size_t j = lo; j <= hi; ++j) {
      double c = cost(i - 1, j - 1);
      double best = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = c + best;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

class DtwDistance : public SequenceDistance {
 public:
  double Distance(const Sequence& a, const Sequence& b) const override {
    return DtwSymbolic(a, b);
  }
  Metric metric() const override { return Metric::kDtw; }
};

class SedDistance : public SequenceDistance {
 public:
  double Distance(const Sequence& a, const Sequence& b) const override {
    return EditDistance(a, b);
  }
  Metric metric() const override { return Metric::kSed; }
};

class EuclideanDistance : public SequenceDistance {
 public:
  double Distance(const Sequence& a, const Sequence& b) const override {
    return EuclideanSymbolic(a, b);
  }
  Metric metric() const override { return Metric::kEuclidean; }
};

class HausdorffDistance : public SequenceDistance {
 public:
  double Distance(const Sequence& a, const Sequence& b) const override {
    return HausdorffSymbolic(a, b);
  }
  Metric metric() const override { return Metric::kHausdorff; }
};

}  // namespace

Result<Metric> MetricFromString(const std::string& name) {
  if (name == "dtw") return Metric::kDtw;
  if (name == "sed" || name == "edit") return Metric::kSed;
  if (name == "euclidean" || name == "l2") return Metric::kEuclidean;
  if (name == "hausdorff") return Metric::kHausdorff;
  return Status::InvalidArgument("unknown distance metric: " + name);
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kDtw:
      return "dtw";
    case Metric::kSed:
      return "sed";
    case Metric::kEuclidean:
      return "euclidean";
    case Metric::kHausdorff:
      return "hausdorff";
  }
  return "?";
}

std::unique_ptr<SequenceDistance> MakeDistance(Metric metric) {
  switch (metric) {
    case Metric::kDtw:
      return std::make_unique<DtwDistance>();
    case Metric::kSed:
      return std::make_unique<SedDistance>();
    case Metric::kEuclidean:
      return std::make_unique<EuclideanDistance>();
    case Metric::kHausdorff:
      return std::make_unique<HausdorffDistance>();
  }
  return nullptr;
}

double DtwSymbolic(const Sequence& a, const Sequence& b, int band) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) {
    // Align the empty word against everything: charge each symbol's level.
    const Sequence& s = a.empty() ? b : a;
    double total = 0.0;
    for (Symbol x : s) total += static_cast<double>(x) + 1.0;
    return total;
  }
  return DtwImpl(a.size(), b.size(), band, [&](size_t i, size_t j) {
    return std::abs(static_cast<double>(a[i]) - static_cast<double>(b[j]));
  });
}

double EditDistance(const Sequence& a, const Sequence& b) {
  size_t n = a.size(), m = b.size();
  std::vector<double> prev(m + 1), curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<double>(i);
    for (size_t j = 1; j <= m; ++j) {
      double sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0.0 : 1.0);
      curr[j] = std::min({prev[j] + 1.0, curr[j - 1] + 1.0, sub});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double EuclideanSymbolic(const Sequence& a, const Sequence& b) {
  size_t n = std::max(a.size(), b.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Pad the shorter word with its last symbol (empty words pad with 0).
    double x = i < a.size()
                   ? static_cast<double>(a[i])
                   : (a.empty() ? 0.0 : static_cast<double>(a.back()));
    double y = i < b.size()
                   ? static_cast<double>(b[i])
                   : (b.empty() ? 0.0 : static_cast<double>(b.back()));
    acc += (x - y) * (x - y);
  }
  return std::sqrt(acc);
}

double HausdorffSymbolic(const Sequence& a, const Sequence& b) {
  if (a.empty() || b.empty()) return a.size() == b.size() ? 0.0 : kInf;
  auto point = [](const Sequence& s, size_t i) {
    double x = s.size() > 1 ? static_cast<double>(i) /
                                  static_cast<double>(s.size() - 1)
                            : 0.0;
    return std::pair<double, double>(x, static_cast<double>(s[i]));
  };
  auto directed = [&](const Sequence& p, const Sequence& q) {
    double worst = 0.0;
    for (size_t i = 0; i < p.size(); ++i) {
      auto [xi, yi] = point(p, i);
      double best = kInf;
      for (size_t j = 0; j < q.size(); ++j) {
        auto [xj, yj] = point(q, j);
        double d = std::hypot(xi - xj, yi - yj);
        best = std::min(best, d);
      }
      worst = std::max(worst, best);
    }
    return worst;
  };
  return std::max(directed(a, b), directed(b, a));
}

double DtwNumeric(const std::vector<double>& a, const std::vector<double>& b,
                  int band) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return kInf;
  return DtwImpl(a.size(), b.size(), band,
                 [&](size_t i, size_t j) { return std::abs(a[i] - b[j]); });
}

Result<double> EuclideanNumeric(const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "EuclideanNumeric requires equal-length inputs");
  }
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(acc);
}

}  // namespace privshape::dist
