/// Loopback fault injection against the CollectorDaemon: clients that
/// send garbage, lie in the handshake, upload stale or over-cap batches,
/// double-send the round barrier, vanish mid-round, or stall past the
/// deadline. In every case the protocol must complete with the surviving
/// clients, the failure must land in the right counter (protocol_errors /
/// stale_batches / deadline_drops / per-round client_errors), and a clean
/// re-run afterwards must still be byte-identical to the core pipeline.
/// Runs under the "concurrency" label so the TSan CI job hunts races in
/// the event loop + drainer-thread handoff.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "collector/client_fleet.h"
#include "collector/daemon.h"
#include "collector/loadgen.h"
#include "collector/shapes_io.h"
#include "common/rng.h"
#include "common/socket.h"
#include "core/privshape.h"
#include "net/frame.h"

namespace privshape {
namespace {

using collector::ClientFleet;
using collector::CollectorDaemon;
using collector::CollectorMetrics;
using collector::DaemonOptions;
using collector::LoadgenOptions;
using core::MechanismConfig;

constexpr size_t kUsers = 600;

Sequence PlantedWord(size_t user, uint64_t seed = 1) {
  Rng rng(DeriveSeed(seed, user));
  double u = rng.Uniform();
  if (u < 0.6) return {0, 1, 2};
  if (u < 0.9) return {2, 1, 0};
  return {1, 0, 1};
}

MechanismConfig TestConfig() {
  MechanismConfig config;
  config.epsilon = 6.0;
  config.t = 3;
  config.k = 2;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 6;
  config.metric = dist::Metric::kSed;
  config.seed = 23;
  return config;
}

ClientFleet TestFleet(const MechanismConfig& config) {
  return ClientFleet(
      kUsers, [](size_t user) { return PlantedWord(user); }, config.metric,
      config.seed);
}

// --- Raw scripted-client plumbing ---------------------------------------

Result<net::Frame> ReadFrameBlocking(int fd, net::FrameReader* reader) {
  char buf[4096];
  while (true) {
    net::Frame frame;
    auto next = reader->Next(&frame);
    if (!next.ok()) return next.status();
    if (*next) return frame;
    auto n = ReadSome(fd, buf, sizeof(buf));
    if (!n.ok()) return n.status();
    if (*n == 0) return Status::Internal("connection closed");
    reader->Append(std::string_view(buf, *n));
  }
}

Status SendFrameTo(int fd, net::MsgType type, std::string_view body) {
  std::string frame;
  net::AppendFrame(type, body, &frame);
  return WriteAll(fd, frame);
}

Result<UniqueFd> ConnectAndHandshake(uint16_t port,
                                     net::FrameReader* reader,
                                     uint64_t fleet_users = kUsers) {
  auto fd = TcpConnect("127.0.0.1", port);
  if (!fd.ok()) return fd.status();
  PRIVSHAPE_RETURN_IF_ERROR(SetRecvTimeout(fd->get(), 30.0));
  net::HelloMsg hello;
  hello.fleet_users = fleet_users;
  PRIVSHAPE_RETURN_IF_ERROR(
      SendFrameTo(fd->get(), net::MsgType::kHello, net::EncodeHello(hello)));
  auto welcome = ReadFrameBlocking(fd->get(), reader);
  if (!welcome.ok()) return welcome.status();
  if (welcome->type != net::MsgType::kWelcome) {
    return Status::Internal("expected Welcome, got type " +
                            std::to_string(static_cast<uint64_t>(
                                welcome->type)));
  }
  return fd;
}

/// Handshakes and then follows the rounds with a caller-chosen behavior
/// until the daemon completes, drops the connection, or errors it out.
/// Returns the number of rounds seen.
size_t RunScripted(
    uint16_t port,
    const std::function<Status(int fd, const net::RoundBeginMsg&)>&
        on_round) {
  net::FrameReader reader;
  auto fd = ConnectAndHandshake(port, &reader);
  if (!fd.ok()) return 0;
  size_t rounds = 0;
  while (true) {
    auto frame = ReadFrameBlocking(fd->get(), &reader);
    if (!frame.ok()) return rounds;  // dropped or closed: scripted exit
    if (frame->type == net::MsgType::kComplete) return rounds;
    if (frame->type == net::MsgType::kError) continue;  // drop follows
    if (frame->type != net::MsgType::kRoundBegin) return rounds;
    auto round = net::DecodeRoundBegin(frame->payload);
    if (!round.ok()) return rounds;
    ++rounds;
    if (!on_round(fd->get(), *round).ok()) return rounds;
  }
}

/// Starts a daemon plus an honest single-connection loadgen thread, runs
/// `fault` inline against the same port, and returns the daemon's result.
struct FaultRun {
  Result<core::MechanismResult> served = Status::Internal("not run");
  Result<collector::LoadgenOutcome> loadgen = Status::Internal("not run");
  CollectorMetrics metrics;
  collector::DaemonStats stats;
};

FaultRun RunWithFault(const MechanismConfig& config, const ClientFleet& fleet,
                      size_t min_clients, double round_deadline,
                      const std::function<void(uint16_t port)>& fault,
                      bool fault_before_loadgen = false) {
  DaemonOptions options;
  options.port = 0;
  options.min_clients = min_clients;
  options.num_shards = 4;
  options.num_drainers = 2;
  options.accept_timeout_seconds = 60.0;
  options.round_deadline_seconds = round_deadline;
  CollectorDaemon daemon(config, fleet.num_users(), options);
  FaultRun run;
  Status started = daemon.Start();
  if (!started.ok()) {
    run.served = started;
    return run;
  }
  uint16_t port = daemon.port();
  std::thread serve([&] { run.served = daemon.Serve(&run.metrics); });
  // Some scenarios need the fault fully processed before the honest
  // client arrives (so round one deterministically excludes it).
  if (fault_before_loadgen) fault(port);
  std::thread honest([&] {
    LoadgenOptions client;
    client.port = port;
    client.connections = 1;
    client.batch_size = 64;
    client.timeout_seconds = 120.0;
    run.loadgen = collector::RunLoadgen(fleet, client);
  });
  if (!fault_before_loadgen) fault(port);
  honest.join();
  serve.join();
  run.stats = daemon.stats();
  return run;
}

// --- Scenarios -----------------------------------------------------------

TEST(CollectorDaemonFaultTest, GarbageBeforeHandshakeIsDroppedAndCounted) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = TestFleet(config);
  FaultRun run = RunWithFault(
      config, fleet, /*min_clients=*/1, /*round_deadline=*/60.0,
      [](uint16_t port) {
        auto fd = TcpConnect("127.0.0.1", port);
        ASSERT_TRUE(fd.ok()) << fd.status();
        ASSERT_TRUE(SetRecvTimeout(fd->get(), 30.0).ok());
        // A stray HTTP client: the "length prefix" decodes to ~0.5 GB,
        // rejected before any allocation; the connection is dropped.
        ASSERT_TRUE(
            WriteAll(fd->get(), "GET / HTTP/1.1\r\nHost: x\r\n\r\n").ok());
        char buf[4096];
        while (true) {  // drain until the daemon resets the connection
          auto n = ReadSome(fd->get(), buf, sizeof(buf));
          if (!n.ok() || *n == 0) break;
        }
      },
      /*fault_before_loadgen=*/true);

  ASSERT_TRUE(run.served.ok()) << run.served.status();
  ASSERT_TRUE(run.loadgen.ok()) << run.loadgen.status();
  EXPECT_GE(run.stats.protocol_errors, 1u);
  EXPECT_GE(run.stats.disconnects, 1u);
  EXPECT_EQ(run.stats.handshakes, 1u);  // only the honest client

  // The garbage connection never handshaked, so it was never assigned
  // users: full parity with the core pipeline must survive the attack.
  core::PrivShape reference(config);
  auto expected = reference.Run(fleet.MaterializeWords());
  ASSERT_TRUE(expected.ok()) << expected.status();
  EXPECT_TRUE(collector::SameShapes(*expected, *run.served));
  EXPECT_TRUE(collector::SameShapes(*expected, run.loadgen->result));
}

TEST(CollectorDaemonFaultTest, FleetSizeMismatchHelloIsRejected) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = TestFleet(config);
  FaultRun run = RunWithFault(
      config, fleet, /*min_clients=*/1, /*round_deadline=*/60.0,
      [](uint16_t port) {
        net::FrameReader reader;
        auto fd = ConnectAndHandshake(port, &reader, /*fleet_users=*/999);
        // The daemon must refuse the handshake (Error frame, then close),
        // so ConnectAndHandshake cannot have returned a Welcome.
        EXPECT_FALSE(fd.ok());
      },
      /*fault_before_loadgen=*/true);

  ASSERT_TRUE(run.served.ok()) << run.served.status();
  ASSERT_TRUE(run.loadgen.ok()) << run.loadgen.status();
  EXPECT_GE(run.stats.protocol_errors, 1u);
  EXPECT_EQ(run.stats.handshakes, 1u);
}

TEST(CollectorDaemonFaultTest, UnknownFrameKindAfterHandshakeDrops) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = TestFleet(config);
  FaultRun run = RunWithFault(
      config, fleet, /*min_clients=*/2, /*round_deadline=*/60.0,
      [](uint16_t port) {
        // Participate in the handshake and wait for an assignment, then
        // answer with a message kind the protocol has never heard of.
        // Sending it mid-round keeps the scenario deterministic: the
        // honest client is already counted toward min_clients, so the
        // drop cannot stall the accept barrier.
        size_t rounds = RunScripted(
            port, [](int fd, const net::RoundBeginMsg&) {
              return SendFrameTo(fd, static_cast<net::MsgType>(42),
                                 "mystery");
            });
        EXPECT_EQ(rounds, 1u);
      });

  ASSERT_TRUE(run.served.ok()) << run.served.status();
  ASSERT_TRUE(run.loadgen.ok()) << run.loadgen.status();
  EXPECT_GE(run.stats.protocol_errors, 1u);
  EXPECT_GE(run.stats.disconnects, 1u);
}

TEST(CollectorDaemonFaultTest, DisconnectMidRoundCompletesWithSurvivors) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = TestFleet(config);
  FaultRun run = RunWithFault(
      config, fleet, /*min_clients=*/2, /*round_deadline=*/60.0,
      [](uint16_t port) {
        size_t rounds = RunScripted(port, [](int, const net::RoundBeginMsg&) {
          // Receive the first assignment, then vanish without a word.
          return Status::Internal("disconnect now");
        });
        EXPECT_EQ(rounds, 1u);
      });

  // The round must complete with the honest survivor's reports, the
  // protocol must run to the end, and the defectors' users must be
  // accounted as client errors in round one.
  ASSERT_TRUE(run.served.ok()) << run.served.status();
  ASSERT_TRUE(run.loadgen.ok()) << run.loadgen.status();
  EXPECT_GE(run.stats.disconnects, 1u);
  ASSERT_FALSE(run.metrics.rounds.empty());
  EXPECT_GT(run.metrics.rounds[0].client_errors, 0u);
  EXPECT_EQ(run.stats.deadline_drops, 0u);
}

TEST(CollectorDaemonFaultTest, StaleUploadsAreDiscardedAndCounted) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = TestFleet(config);
  FaultRun run = RunWithFault(
      config, fleet, /*min_clients=*/2, /*round_deadline=*/60.0,
      [](uint16_t port) {
        RunScripted(port, [](int fd, const net::RoundBeginMsg& round) {
          // A batch for the previous round: must be discarded (counted
          // stale), never aggregated, and must not kill the connection.
          proto::ReportBatch stale;
          stale.AppendEncoded("not-a-report");
          PRIVSHAPE_RETURN_IF_ERROR(
              SendFrameTo(fd, net::MsgType::kBatchUpload,
                          net::EncodeBatchUpload(round.round_id - 1, stale)));
          // Then barrier honestly, declaring every assigned user failed.
          net::RoundDoneMsg done;
          done.round_id = round.round_id;
          done.answered = 0;
          done.client_errors = round.users.size();
          return SendFrameTo(fd, net::MsgType::kRoundDone,
                             net::EncodeRoundDone(done));
        });
      });

  ASSERT_TRUE(run.served.ok()) << run.served.status();
  ASSERT_TRUE(run.loadgen.ok()) << run.loadgen.status();
  EXPECT_GE(run.stats.stale_batches, 1u);
  EXPECT_EQ(run.stats.protocol_errors, 0u);  // stale != violation
  ASSERT_FALSE(run.metrics.rounds.empty());
  EXPECT_GT(run.metrics.rounds[0].client_errors, 0u);
}

TEST(CollectorDaemonFaultTest, OverCapUploadDropsConnection) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = TestFleet(config);
  FaultRun run = RunWithFault(
      config, fleet, /*min_clients=*/2, /*round_deadline=*/60.0,
      [](uint16_t port) {
        size_t rounds = RunScripted(
            port, [](int fd, const net::RoundBeginMsg& round) {
              // One report more than the assignment: the cap is the only
              // thing standing between a duplicate-happy client and
              // double-counted estimates, so the connection must die.
              proto::ReportBatch flood;
              for (size_t i = 0; i <= round.users.size(); ++i) {
                flood.AppendEncoded("x");
              }
              return SendFrameTo(
                  fd, net::MsgType::kBatchUpload,
                  net::EncodeBatchUpload(round.round_id, flood));
            });
        EXPECT_EQ(rounds, 1u);
      });

  ASSERT_TRUE(run.served.ok()) << run.served.status();
  ASSERT_TRUE(run.loadgen.ok()) << run.loadgen.status();
  EXPECT_GE(run.stats.protocol_errors, 1u);
  EXPECT_GE(run.stats.disconnects, 1u);
  ASSERT_FALSE(run.metrics.rounds.empty());
  EXPECT_GT(run.metrics.rounds[0].client_errors, 0u);
}

TEST(CollectorDaemonFaultTest, DuplicateRoundDoneDropsConnection) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = TestFleet(config);
  FaultRun run = RunWithFault(
      config, fleet, /*min_clients=*/2, /*round_deadline=*/60.0,
      [](uint16_t port) {
        RunScripted(port, [](int fd, const net::RoundBeginMsg& round) {
          net::RoundDoneMsg done;
          done.round_id = round.round_id;
          done.answered = 0;
          done.client_errors = round.users.size();
          std::string body = net::EncodeRoundDone(done);
          PRIVSHAPE_RETURN_IF_ERROR(
              SendFrameTo(fd, net::MsgType::kRoundDone, body));
          return SendFrameTo(fd, net::MsgType::kRoundDone, body);
        });
      });

  ASSERT_TRUE(run.served.ok()) << run.served.status();
  ASSERT_TRUE(run.loadgen.ok()) << run.loadgen.status();
  EXPECT_GE(run.stats.protocol_errors, 1u);
}

TEST(CollectorDaemonFaultTest, StallPastDeadlineIsDroppedRoundCompletes) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = TestFleet(config);
  FaultRun run = RunWithFault(
      config, fleet, /*min_clients=*/2, /*round_deadline=*/1.5,
      [](uint16_t port) {
        size_t rounds = RunScripted(port, [](int, const net::RoundBeginMsg&) {
          // Say nothing, send nothing: just keep the socket open. The
          // daemon's deadline must cut us loose (read returns EOF).
          return Status::Ok();
        });
        EXPECT_EQ(rounds, 1u);
      });

  ASSERT_TRUE(run.served.ok()) << run.served.status();
  ASSERT_TRUE(run.loadgen.ok()) << run.loadgen.status();
  EXPECT_GE(run.stats.deadline_drops, 1u);
  EXPECT_GE(run.stats.disconnects, 1u);
  ASSERT_FALSE(run.metrics.rounds.empty());
  EXPECT_GT(run.metrics.rounds[0].client_errors, 0u);
}

TEST(CollectorDaemonFaultTest, CleanRerunAfterFaultsMatchesCore) {
  // Faulty runs leave no residue: a fresh daemon + clean loadgen right
  // after the fault suite still satisfies the byte-identical contract.
  MechanismConfig config = TestConfig();
  ClientFleet fleet = TestFleet(config);
  FaultRun run = RunWithFault(config, fleet, /*min_clients=*/1,
                              /*round_deadline=*/60.0, [](uint16_t) {});
  ASSERT_TRUE(run.served.ok()) << run.served.status();
  ASSERT_TRUE(run.loadgen.ok()) << run.loadgen.status();
  core::PrivShape reference(config);
  auto expected = reference.Run(fleet.MaterializeWords());
  ASSERT_TRUE(expected.ok()) << expected.status();
  EXPECT_TRUE(collector::SameShapes(*expected, *run.served));
  EXPECT_TRUE(collector::SameShapes(*expected, run.loadgen->result));
  EXPECT_EQ(run.stats.protocol_errors, 0u);
  EXPECT_EQ(run.stats.disconnects, 0u);
}

}  // namespace
}  // namespace privshape
