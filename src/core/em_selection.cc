#include "core/em_selection.h"

#include <algorithm>
#include <limits>

#include "ldp/exponential.h"

namespace privshape::core {

std::vector<double> MatchDistances(const Sequence& seq,
                                   const std::vector<Sequence>& candidates,
                                   bool prefix_compare,
                                   const dist::SequenceDistance& distance) {
  std::vector<double> distances(candidates.size());
  for (size_t cand = 0; cand < candidates.size(); ++cand) {
    const Sequence& shape = candidates[cand];
    if (prefix_compare && seq.size() > shape.size()) {
      Sequence prefix(seq.begin(), seq.begin() + static_cast<long>(shape.size()));
      distances[cand] = distance.Distance(prefix, shape);
    } else {
      distances[cand] = distance.Distance(seq, shape);
    }
  }
  return distances;
}

size_t ClosestCandidate(const Sequence& seq,
                        const std::vector<Sequence>& candidates,
                        const dist::SequenceDistance& distance) {
  double best = std::numeric_limits<double>::infinity();
  size_t best_idx = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double d = distance.Distance(seq, candidates[i]);
    if (d < best) {
      best = d;
      best_idx = i;
    }
  }
  return best_idx;
}

Result<std::vector<double>> EmSelectionCounts(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, dist::Metric metric,
    double epsilon, bool prefix_compare, Rng* rng) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidates to select among");
  }
  auto em = ldp::ExponentialMechanism::Create(epsilon);
  if (!em.ok()) return em.status();
  auto distance = dist::MakeDistance(metric);

  std::vector<double> counts(candidates.size(), 0.0);
  for (size_t user : population) {
    if (user >= sequences.size()) {
      return Status::OutOfRange("population index outside dataset");
    }
    std::vector<double> distances =
        MatchDistances(sequences[user], candidates, prefix_compare, *distance);
    std::vector<double> scores = ldp::ScoresFromDistances(distances);
    auto pick = em->Select(scores, rng);
    if (!pick.ok()) return pick.status();
    counts[*pick] += 1.0;
  }
  return counts;
}

}  // namespace privshape::core
