"""PrivShape Analyzer (psa): repo-specific semantic static analysis.

A check-plugin framework that walks the C++ tree (via the compile
database when one exists) and enforces the semantic contracts generic
tools cannot see: the canonical RNG consumption order, report-path
determinism, privacy-budget flow, and telemetry/layering purity.

Two interchangeable engine frontends produce the same token IR:

  * ``clang``  — libclang (``clang.cindex``) tokenization over the
    compile database; used automatically when the bindings import.
  * ``token``  — a pure-Python C++ tokenizer; always available, and the
    reference implementation for the check semantics.

Entry point: ``tools/analyze.py`` (also runs the layering lint).
"""

__version__ = "1.0.0"
