#ifndef PRIVSHAPE_COMMON_MATH_UTILS_H_
#define PRIVSHAPE_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

namespace privshape {

/// Arithmetic mean; returns 0 for an empty input.
double Mean(const std::vector<double>& v);

/// Population variance (divides by n); returns 0 for fewer than 2 points.
double Variance(const std::vector<double>& v);

/// Population standard deviation.
double Stddev(const std::vector<double>& v);

/// In-place z-score normalization: (x - mean) / stddev. A constant series
/// (stddev below `eps`) is mapped to all zeros, matching the convention of
/// the UCR archive preprocessing the paper relies on.
void ZNormalize(std::vector<double>* v, double eps = 1e-12);

/// Returns the z-normalized copy of `v`.
std::vector<double> ZNormalized(const std::vector<double>& v,
                                double eps = 1e-12);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation; |relative error| < 1.15e-9 on (0,1)). Used to derive SAX
/// breakpoints for any alphabet size instead of a hardcoded lookup table.
double InverseNormalCdf(double p);

/// CDF of the standard normal distribution.
double NormalCdf(double x);

/// log(sum_i exp(x_i)) computed stably.
double LogSumExp(const std::vector<double>& x);

/// Linear interpolation of `v` resampled to `target_len` points.
std::vector<double> ResampleLinear(const std::vector<double>& v,
                                   size_t target_len);

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_MATH_UTILS_H_
