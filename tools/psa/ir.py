"""Shared intermediate representation for the analyzer.

Both engine frontends (libclang and the pure-Python tokenizer) lower a
translation unit to the same structures, so every check is written once
against this IR and behaves identically under either engine:

  Token       -- (kind, text, line); comments and whitespace dropped.
  SourceFile  -- tokens + include edges + repo-relative path/module.
  Finding     -- one diagnostic, with the check id SARIF keys off.
"""

from dataclasses import dataclass, field

# Token kinds.
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"


@dataclass
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self):  # compact in check debugging output
        return f"{self.text}@{self.line}"


@dataclass
class SourceFile:
    """One analyzed file, tokenized."""

    path: str  # repo-relative, posix separators (e.g. src/ldp/grr.cc)
    tokens: list  # list[Token]
    includes: list = field(default_factory=list)  # [(line, "ldp/grr.h")]

    @property
    def module(self):
        """The src/<module>/ the file belongs to, or None."""
        parts = self.path.split("/")
        if len(parts) >= 3 and parts[0] == "src":
            return parts[1]
        return None


# Severities map onto SARIF result levels.
ERROR = "error"
WARNING = "warning"
NOTE = "note"


@dataclass
class Finding:
    check: str  # check id, e.g. "psa-rng-order"
    path: str  # repo-relative file
    line: int
    message: str
    severity: str = ERROR
    suppressed_by: str = ""  # set by the suppression pass

    def render(self):
        tag = "" if self.severity == ERROR else f" [{self.severity}]"
        return f"{self.path}:{self.line}: {self.check}{tag}: {self.message}"
