// Fig. 9: clustering ARI on the Symbols dataset versus the privacy budget
// eps in {0.1, 0.5, 1, 2, ..., 10}, for PrivShape, the baseline mechanism,
// and PatternLDP+KMeans.

#include <iostream>

#include "bench/harness.h"
#include "series/generators.h"

namespace pb = privshape::bench;

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 2000, 2);

  std::vector<double> budgets = {0.1, 0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  pb::PrintTitle("Fig. 9: clustering ARI vs eps (Symbols)");
  pb::PrintHeader({"eps", "PrivShape", "Baseline", "PatternLDP+KMeans"});
  auto csv = pb::MaybeCsv("fig9_clustering_sweep");
  if (csv) csv->WriteHeader({"eps", "privshape", "baseline", "patternldp"});

  for (double eps : budgets) {
    double ps = 0, bl = 0, pl_ari = 0;
    for (int trial = 0; trial < scale.trials; ++trial) {
      uint64_t seed = scale.seed + static_cast<uint64_t>(trial);
      privshape::series::GeneratorOptions gen;
      gen.num_instances = scale.users;
      gen.seed = seed;
      auto dataset = privshape::series::MakeSymbolsDataset(gen);
      auto transform = pb::SymbolsTransform();

      auto config = pb::SymbolsConfig(eps, seed);
      ps += pb::RunPrivShapeClustering(dataset, transform, config).ari;

      privshape::core::MechanismConfig baseline_config = config;
      baseline_config.baseline_threshold =
          100.0 * static_cast<double>(scale.users) / 40000.0;
      bl += pb::RunBaselineClustering(dataset, transform, baseline_config)
                .ari;

      pb::PatternLdpBenchOptions pl;
      pl.epsilon = eps;
      pl.seed = seed;
      pl_ari +=
          pb::RunPatternLdpKMeansClustering(dataset, transform, pl, 6).ari;
    }
    double n = scale.trials;
    std::vector<std::string> row = {privshape::FormatDouble(eps, 3),
                                    privshape::FormatDouble(ps / n, 4),
                                    privshape::FormatDouble(bl / n, 4),
                                    privshape::FormatDouble(pl_ari / n, 4)};
    pb::PrintRow(row);
    if (csv) csv->WriteRow(row);
  }

  std::cout << "\nExpected shape (paper Fig. 9): PrivShape dominates at "
               "every eps; PatternLDP stays near ARI ~ 0 even at eps = 4.\n";
  return 0;
}
