/// Graceful-shutdown contract: SIGINT/SIGTERM (or an in-process
/// RequestShutdown) must stop the collector mid-protocol with
/// StatusCode::kCancelled — queues drained, drainer threads joined,
/// sockets closed — while the metrics collected so far stay intact so
/// the operator's --json file is still written. Runs under the
/// "concurrency" label: cancellation races the drainer handoff, which is
/// exactly where TSan should be watching.

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <thread>

#include "collector/client_fleet.h"
#include "collector/daemon.h"
#include "collector/loadgen.h"
#include "collector/round_coordinator.h"
#include "common/rng.h"
#include "common/shutdown.h"
#include "common/thread_pool.h"

namespace privshape {
namespace {

using collector::ClientFleet;
using collector::CollectorDaemon;
using collector::CollectorMetrics;
using collector::DaemonOptions;
using collector::LoadgenOptions;
using core::MechanismConfig;

constexpr size_t kUsers = 400;

MechanismConfig TestConfig() {
  MechanismConfig config;
  config.epsilon = 6.0;
  config.t = 3;
  config.k = 2;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 6;
  config.metric = dist::Metric::kSed;
  config.seed = 29;
  return config;
}

Sequence PlantedWord(size_t user) {
  Rng rng(DeriveSeed(3, user));
  return rng.Uniform() < 0.7 ? Sequence{0, 1, 2} : Sequence{2, 1, 0};
}

/// Every test begins and ends with a clear flag — a shutdown requested by
/// one test must never leak into the next.
class ShutdownTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetShutdownForTest(); }
  void TearDown() override { ResetShutdownForTest(); }
};

TEST_F(ShutdownTest, SignalHandlerSetsTheFlag) {
  InstallShutdownHandler();
  EXPECT_FALSE(ShutdownRequested());
  std::raise(SIGINT);
  EXPECT_TRUE(ShutdownRequested());
  ResetShutdownForTest();
  std::raise(SIGTERM);
  EXPECT_TRUE(ShutdownRequested());
}

TEST_F(ShutdownTest, InProcessCollectReturnsCancelledMidProtocol) {
  MechanismConfig config = TestConfig();
  // The fleet's word function doubles as the trigger: after enough users
  // have answered (mid-round, well past the first stripe), request
  // shutdown exactly the way the signal handler would.
  auto answered = std::make_shared<std::atomic<size_t>>(0);
  ClientFleet fleet(
      kUsers,
      [answered](size_t user) {
        if (answered->fetch_add(1) == kUsers / 2) RequestShutdown();
        return PlantedWord(user);
      },
      config.metric, config.seed);

  ThreadPool pool(4);
  collector::RoundCoordinator coordinator(config, {}, &pool);
  CollectorMetrics metrics;
  auto result = coordinator.Collect(fleet, &metrics);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status();
  // The rounds that finished before the cancel stay on the books.
  EXPECT_GT(answered->load(), kUsers / 2);
}

TEST_F(ShutdownTest, CollectBeforeAnyRoundIsCancelledImmediately) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet(
      kUsers, [](size_t user) { return PlantedWord(user); }, config.metric,
      config.seed);
  RequestShutdown();
  ThreadPool pool(2);
  collector::RoundCoordinator coordinator(config, {}, &pool);
  auto result = coordinator.Collect(fleet);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(ShutdownTest, DaemonServeCancelsCleanlyWithMetricsPopulated) {
  MechanismConfig config = TestConfig();
  // The loadgen runs in this process, so the fleet's word function is the
  // deterministic trigger: partway through answering round one it raises
  // the (process-global) shutdown flag the daemon's event loop polls.
  // No sleeps, no race with a fast loopback protocol run.
  auto answered = std::make_shared<std::atomic<size_t>>(0);
  ClientFleet fleet(
      kUsers,
      [answered](size_t user) {
        if (answered->fetch_add(1) == kUsers / 4) RequestShutdown();
        return PlantedWord(user);
      },
      config.metric, config.seed);

  DaemonOptions options;
  options.port = 0;
  options.min_clients = 1;
  options.num_shards = 2;
  options.num_drainers = 2;
  options.accept_timeout_seconds = 60.0;
  options.round_deadline_seconds = 60.0;
  CollectorDaemon daemon(config, fleet.num_users(), options);
  ASSERT_TRUE(daemon.Start().ok());

  Result<core::MechanismResult> served = Status::Internal("not run");
  CollectorMetrics metrics;
  std::thread serve([&] { served = daemon.Serve(&metrics); });

  // The honest client's connection dies with the daemon, so the loadgen
  // is allowed (expected, even) to fail.
  std::thread client([&] {
    LoadgenOptions opts;
    opts.port = daemon.port();
    opts.connections = 1;
    opts.batch_size = 16;
    opts.timeout_seconds = 10.0;
    (void)collector::RunLoadgen(fleet, opts);
  });

  serve.join();
  client.join();

  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kCancelled)
      << served.status();
  // Metrics survive the cancel: the operator still gets a JSON report.
  EXPECT_EQ(metrics.ingest, "socket");
  EXPECT_EQ(daemon.stats().handshakes, 1u);
}

TEST_F(ShutdownTest, DaemonServeBeforeAcceptIsCancelled) {
  MechanismConfig config = TestConfig();
  DaemonOptions options;
  options.port = 0;
  options.accept_timeout_seconds = 60.0;
  CollectorDaemon daemon(config, kUsers, options);
  ASSERT_TRUE(daemon.Start().ok());

  Result<core::MechanismResult> served = Status::Internal("not run");
  std::thread serve([&] { served = daemon.Serve(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  RequestShutdown();
  serve.join();
  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kCancelled)
      << served.status();
}

}  // namespace
}  // namespace privshape
