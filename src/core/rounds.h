/// \file
/// Algorithm 2 as explicit server-side rounds. `PrivShapeServer` is the
/// single implementation of every server-side decision (length argmax,
/// transition gating, trie pruning, refinement, post-processing) — both the
/// in-process `core::PrivShape` mechanism and the multi-threaded
/// `collector::RoundCoordinator` drive it, which is what makes their
/// outputs byte-identical. The Local*Round functions are the in-process
/// "fleet": they answer each round exactly as a wire-level ClientSession
/// would, deriving every user's randomness from DeriveSeed(seed, user) so
/// results do not depend on iteration or thread order.

#ifndef PRIVSHAPE_CORE_ROUNDS_H_
#define PRIVSHAPE_CORE_ROUNDS_H_

#include <utility>
#include <vector>

#include "common/analysis_annotations.h"
#include "core/config.h"
#include "core/subshape.h"
#include "ldp/grr.h"
#include "trie/trie.h"

namespace privshape::core {

/// Server-side state machine of PrivShape (Algorithm 2). The caller runs
/// the collection rounds (locally or over the wire) and feeds back the
/// aggregated counts; the server makes every decision that follows from
/// them. Methods must be called in protocol order:
///
///   FinishLength -> FinishSubShapes -> (BeginTrieLevel, FinishTrieLevel)
///   x ell_S -> BeginRefinement -> one of FinishRefinement /
///   FinishClassRefinement / FinishWithoutRefinement.
///
/// The final Finish* call consumes the server and returns the
/// MechanismResult (including the privacy-accountant audit trail).
class PrivShapeServer {
 public:
  static Result<PrivShapeServer> Create(MechanismConfig config);

  const MechanismConfig& config() const { return config_; }

  /// Top c*k candidates survive pruning at every level.
  size_t ck() const;

  /// P_a: fixes the trie height ell_S from debiased length counts
  /// (argmax; first maximum wins) and charges the accountant.
  Status FinishLength(const std::vector<double>& debiased_counts);

  int frequent_length() const { return ell_s_; }

  /// Number of sub-shape levels (ell_S - 1; 0 means skip the P_b round).
  size_t NumSubShapeLevels() const;

  /// P_b: ranks the per-level debiased pair counts into the transition
  /// gates used by the trie expansion. Pass {} when ell_S == 1.
  Status FinishSubShapes(const std::vector<std::vector<double>>& level_counts);

  /// P_c, one call per level in [0, ell_S): prunes the frontier, expands
  /// it (gated by the frequent transitions, falling back to the full
  /// fan-out when the gate would dead-end), and returns the candidate
  /// shapes to broadcast for EM selection.
  Result<std::vector<Sequence>> BeginTrieLevel(int level);

  /// Feeds back one selection count per candidate returned by the matching
  /// BeginTrieLevel call.
  Status FinishTrieLevel(const std::vector<double>& selection_counts);

  /// P_d: prunes the leaves to the top c*k and returns the refinement
  /// candidate list (errors if the trie dead-ended).
  Result<std::vector<Sequence>> BeginRefinement();

  /// Clustering refinement: debiased GRR counts over candidate indices
  /// (domain max(|candidates|, 2)). Runs post-processing and returns the
  /// final result.
  Result<MechanismResult> FinishRefinement(
      const std::vector<double>& debiased_counts);

  /// Classification refinement (§V-E): debiased OUE counts over
  /// candidate x class cells, row-major.
  Result<MechanismResult> FinishClassRefinement(
      const std::vector<double>& cell_counts);

  /// Ablation (`disable_refinement`): ranks leaves by their last
  /// trie-level EM counts; P_d stays unused.
  Result<MechanismResult> FinishWithoutRefinement();

 private:
  explicit PrivShapeServer(MechanismConfig config,
                           trie::CandidateTrie trie)
      : config_(config), trie_(std::move(trie)) {}

  /// Stage 5 (post-processing) for the clustering task, shared by
  /// FinishRefinement and FinishWithoutRefinement.
  Result<MechanismResult> Finalize(const std::vector<double>& refined,
                                   const std::vector<int>& refined_labels);

  /// Fills result_.refined_pool from the refinement candidates.
  void BuildRefinedPool(const std::vector<double>& refined,
                        const std::vector<int>& refined_labels);

  /// Shared epilogue: frequency-sorts result_.shapes (stable, so
  /// already-ordered pushes keep their order), audits the budget, and
  /// consumes the server.
  Result<MechanismResult> EmitSorted();

  MechanismConfig config_;
  trie::CandidateTrie trie_;
  MechanismResult result_;
  SubShapeEstimates subshapes_;
  int ell_s_ = 0;
  int current_level_ = -1;       ///< level served by the last BeginTrieLevel
  std::vector<Sequence> candidates_;  ///< refinement candidates
};

/// Per-user answer computations shared by the in-process rounds and the
/// wire-level ClientSession, so one user produces the same perturbed
/// report (same draws, same order) on either path. These are the only
/// implementations of the P_a/P_b user-side logic.
///
/// P_a: length clipped into [ell_low, ell_high], GRR-perturbed. `grr`
/// must span the (ell_high - ell_low + 1)-value domain, which must have
/// >= 2 values (the one-value domain reports 0 without randomness; both
/// callers special-case it).
PS_RNG_WORDS(2)
size_t AnswerLengthValue(const Sequence& word, int ell_low, int ell_high,
                         const ldp::Grr& grr, Rng* rng);

/// P_b: samples level j uniformly from {1, ..., ell_s - 1}, then GRR-
/// perturbs the index of the adjacent pair at j (the sentinel bucket for
/// padded or invalid positions). Returns {level, perturbed value}.
PS_REPORT_PATH
std::pair<uint64_t, size_t> AnswerSubShapeValue(const Sequence& word,
                                                int ell_s, int t,
                                                bool allow_repeats,
                                                const ldp::Grr& grr,
                                                Rng* rng);

/// In-process round runners: each answers one collection round for a
/// population exactly as the wire-level ClientSession would, with user
/// `u`'s randomness drawn from Rng(DeriveSeed(seed, u)).
///
/// P_a — returns debiased GRR counts over the clipped length domain.
PS_REPORT_PATH
Result<std::vector<double>> LocalLengthRound(
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, int ell_low, int ell_high,
    double epsilon, uint64_t seed);

/// P_b — returns per-level debiased pair counts (empty when ell_s == 1).
PS_REPORT_PATH
Result<std::vector<std::vector<double>>> LocalSubShapeRound(
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, int ell_s, int t, double epsilon,
    bool allow_repeats, uint64_t seed);

/// P_c — returns raw EM selection counts per candidate.
PS_REPORT_PATH
Result<std::vector<double>> LocalSelectionRound(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, dist::Metric metric,
    double epsilon, uint64_t seed);

/// P_d (clustering) — returns debiased GRR counts over candidate indices.
PS_REPORT_PATH
Result<std::vector<double>> LocalRefinementRound(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, dist::Metric metric,
    double epsilon, uint64_t seed);

/// P_d (classification) — returns debiased OUE counts over candidate x
/// class cells, row-major.
PS_REPORT_PATH
Result<std::vector<double>> LocalClassRefinementRound(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences, const std::vector<int>& labels,
    const std::vector<size_t>& population, dist::Metric metric,
    int num_classes, double epsilon, uint64_t seed);

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_ROUNDS_H_
