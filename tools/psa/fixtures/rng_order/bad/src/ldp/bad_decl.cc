// Fixture: definition half of the R3 decl/def mismatch.
#include "ldp/bad_decl.h"

// ... but defines (and actually consumes) 1 word here.
PS_RNG_WORDS(1)
uint64_t Mismatched::Draw(Rng* rng) const {
  uint64_t word;
  rng->FillU64(&word, 1);
  return word;
}
