// Table III: quantitative measures of extracted shapes on the Symbols
// dataset (clustering task, eps = 4, t = 6, w = 25). Rows: PatternLDP,
// Baseline, PrivShape; columns: DTW, SED, Euclidean (distance to ground
// truth, lower is better) and ARI (higher is better).

#include <iostream>

#include "bench/harness.h"
#include "series/generators.h"

namespace pb = privshape::bench;

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 3000, 3);
  double epsilon = args.GetDouble("epsilon", 4.0);

  pb::PrintTitle("Table III: Quantitative measures of shapes (Symbols), eps=" +
                 privshape::FormatDouble(epsilon));
  pb::PrintHeader({"Mechanism", "DTW", "SED", "Euclidean", "ARI"});
  auto csv = pb::MaybeCsv("table3_symbols_quality");
  if (csv) csv->WriteHeader({"mechanism", "dtw", "sed", "euclidean", "ari"});

  pb::ClusteringOutcome pattern_sum, baseline_sum, privshape_sum;
  for (int trial = 0; trial < scale.trials; ++trial) {
    uint64_t seed = scale.seed + static_cast<uint64_t>(trial);
    privshape::series::GeneratorOptions gen;
    gen.num_instances = scale.users;
    gen.seed = seed;
    auto dataset = privshape::series::MakeSymbolsDataset(gen);
    auto transform = pb::SymbolsTransform();

    pb::PatternLdpBenchOptions pl;
    pl.epsilon = epsilon;
    pl.seed = seed;
    auto pattern = pb::RunPatternLdpKMeansClustering(dataset, transform, pl,
                                                     /*k=*/6);

    auto config = pb::SymbolsConfig(epsilon, seed);
    privshape::core::MechanismConfig baseline_config = config;
    baseline_config.baseline_threshold =
        100.0 * static_cast<double>(scale.users) / 40000.0;
    auto baseline =
        pb::RunBaselineClustering(dataset, transform, baseline_config);
    auto priv = pb::RunPrivShapeClustering(dataset, transform, config);

    auto acc = [](pb::ClusteringOutcome* sum,
                  const pb::ClusteringOutcome& one) {
      sum->ari += one.ari;
      sum->quality.dtw += one.quality.dtw;
      sum->quality.sed += one.quality.sed;
      sum->quality.euclidean += one.quality.euclidean;
    };
    acc(&pattern_sum, pattern);
    acc(&baseline_sum, baseline);
    acc(&privshape_sum, priv);
  }

  double n = scale.trials;
  auto emit = [&](const std::string& name, const pb::ClusteringOutcome& sum) {
    std::vector<std::string> row = {
        name, privshape::FormatDouble(sum.quality.dtw / n, 4),
        privshape::FormatDouble(sum.quality.sed / n, 4),
        privshape::FormatDouble(sum.quality.euclidean / n, 4),
        privshape::FormatDouble(sum.ari / n, 4)};
    pb::PrintRow(row);
    if (csv) csv->WriteRow(row);
  };
  emit("PatternLDP", pattern_sum);
  emit("Baseline", baseline_sum);
  emit("PrivShape", privshape_sum);

  std::cout << "\nPaper reference (Table III): PatternLDP 38.97/10.11/46.3/"
               "0.00; Baseline 32.74/12.81/35.86/0.45; PrivShape "
               "20.99/1.83/4.74/0.68.\nExpected shape: PrivShape < Baseline "
               "< PatternLDP on distances; reverse order on ARI.\n";
  return 0;
}
