file(REMOVE_RECURSE
  "libprivshape_net.a"
)
