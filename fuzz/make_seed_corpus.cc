/// \file
/// Seed-corpus generator for the fuzz harnesses: emits small valid (and
/// near-valid) inputs built with the real encoders, one subdirectory
/// per harness, so fuzzing starts at the interesting surface instead of
/// random noise. Checked-in binaries are avoided on purpose — CI and
/// the ctest smoke regenerate the corpus from this program, which keeps
/// seeds in lockstep with the wire format.
///
/// Usage: make_seed_corpus OUTDIR
/// Writes OUTDIR/{frame_reader,codec,csv,candidate_table}/NNN_name files.

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "protocol/codec.h"
#include "protocol/messages.h"

namespace net = privshape::net;
namespace proto = privshape::proto;
using privshape::Sequence;

namespace {

bool WriteSeed(const std::string& dir, const std::string& name,
               const std::string& bytes) {
  std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "make_seed_corpus: cannot write %s\n", path.c_str());
    return false;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

bool MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  std::fprintf(stderr, "make_seed_corpus: cannot mkdir %s\n", path.c_str());
  return false;
}

/// Prefix byte steering the harness (chunking pattern / decoder pick),
/// then the payload.
std::string Steered(uint8_t selector, const std::string& payload) {
  std::string out(1, static_cast<char>(selector));
  out += payload;
  return out;
}

std::string SampleReportBytes(proto::ReportKind kind) {
  proto::Report report;
  report.kind = kind;
  report.level = 3;
  report.value = 17;
  if (kind == proto::ReportKind::kClassRefine) {
    report.bits = {1, 0, 1, 1, 0, 0};
  }
  return proto::EncodeReport(report);
}

bool EmitFrameReaderSeeds(const std::string& dir) {
  // One valid frame of every message type, each under all four chunking
  // patterns via the selector byte.
  std::vector<std::pair<std::string, std::string>> frames;

  net::HelloMsg hello;
  hello.fleet_users = 20000;
  std::string f;
  net::AppendFrame(net::MsgType::kHello, net::EncodeHello(hello), &f);
  frames.emplace_back("hello", f);

  net::WelcomeMsg welcome;
  welcome.conn_id = 7;
  welcome.num_users = 20000;
  welcome.num_classes = 3;
  welcome.seed = 42;
  welcome.epsilon = 4.0;
  f.clear();
  net::AppendFrame(net::MsgType::kWelcome, net::EncodeWelcome(welcome), &f);
  frames.emplace_back("welcome", f);

  net::RoundBeginMsg begin;
  begin.round_id = 2;
  begin.kind = proto::ReportKind::kSelection;
  proto::CandidateRequest creq;
  creq.level = 2;
  creq.epsilon = 1.0;
  creq.candidates = {Sequence{0, 1, 2}, Sequence{2, 1, 0}};
  begin.request = proto::EncodeCandidateRequest(creq);
  begin.users = {0, 1, 2, 5, 8};
  f.clear();
  net::AppendFrame(net::MsgType::kRoundBegin, net::EncodeRoundBegin(begin),
                   &f);
  frames.emplace_back("round_begin", f);

  proto::ReportBatch batch;
  batch.AppendEncoded(SampleReportBytes(proto::ReportKind::kLength));
  batch.AppendEncoded(SampleReportBytes(proto::ReportKind::kSelection));
  batch.AppendEncoded(SampleReportBytes(proto::ReportKind::kClassRefine));
  f.clear();
  net::AppendFrame(net::MsgType::kBatchUpload,
                   net::EncodeBatchUpload(2, batch), &f);
  frames.emplace_back("batch_upload", f);

  net::RoundDoneMsg done;
  done.round_id = 2;
  done.answered = 4;
  done.client_errors = 1;
  f.clear();
  net::AppendFrame(net::MsgType::kRoundDone, net::EncodeRoundDone(done), &f);
  frames.emplace_back("round_done", f);

  net::CompleteMsg complete;
  complete.frequent_length = 8;
  net::WireShape shape;
  shape.shape = Sequence{0, 2, 1};
  shape.label = 1;
  shape.frequency = 0.25;
  complete.shapes.push_back(shape);
  f.clear();
  net::AppendFrame(net::MsgType::kComplete, net::EncodeComplete(complete),
                   &f);
  frames.emplace_back("complete", f);

  f.clear();
  net::AppendFrame(net::MsgType::kError, net::EncodeError("deadline"), &f);
  frames.emplace_back("error", f);

  // A back-to-back pair, so split points land across frame boundaries.
  std::string pair = frames[0].second + frames[4].second;
  frames.emplace_back("hello_then_done", pair);

  for (const auto& [name, bytes] : frames) {
    for (uint8_t chunking = 0; chunking < 4; ++chunking) {
      if (!WriteSeed(dir, "frame_" + name + "_c" + std::to_string(chunking),
                     Steered(chunking, bytes))) {
        return false;
      }
    }
  }
  return true;
}

bool EmitCodecSeeds(const std::string& dir) {
  bool ok = true;
  ok &= WriteSeed(dir, "report_length",
                  Steered(0, SampleReportBytes(proto::ReportKind::kLength)));
  ok &= WriteSeed(
      dir, "report_class",
      Steered(0, SampleReportBytes(proto::ReportKind::kClassRefine)));

  proto::CandidateRequest creq;
  creq.level = 4;
  creq.epsilon = 2.0;
  creq.candidates = {Sequence{0, 1, 0}, Sequence{1, 2, 3}, Sequence{3, 0}};
  ok &= WriteSeed(dir, "candidate_request",
                  Steered(1, proto::EncodeCandidateRequest(creq)));

  proto::LengthRequest lreq;
  lreq.ell_low = 2;
  lreq.ell_high = 16;
  lreq.epsilon = 1.0;
  ok &= WriteSeed(dir, "length_request",
                  Steered(2, proto::EncodeLengthRequest(lreq)));

  proto::SubShapeRequest sreq;
  sreq.alphabet = 4;
  sreq.ell_s = 3;
  sreq.epsilon = 1.0;
  sreq.allow_repeats = true;
  ok &= WriteSeed(dir, "subshape_request",
                  Steered(3, proto::EncodeSubShapeRequest(sreq)));

  proto::ClassRefineRequest xreq;
  xreq.epsilon = 2.0;
  xreq.num_classes = 3;
  xreq.candidates = {Sequence{0, 1}, Sequence{1, 0}};
  ok &= WriteSeed(dir, "class_refine_request",
                  Steered(4, proto::EncodeClassRefineRequest(xreq)));

  // Primitive soup for the walker and the batch splitter.
  proto::Encoder enc;
  enc.PutVarint(300);
  enc.PutDouble(2.5);
  enc.PutString("abc");
  enc.PutVarint(0);
  std::string soup = enc.Release();
  ok &= WriteSeed(dir, "primitive_walk", Steered(5, soup));
  ok &= WriteSeed(dir, "batch_roundtrip",
                  Steered(6, SampleReportBytes(proto::ReportKind::kSubShape) +
                                 soup));
  return ok;
}

bool EmitCandidateTableSeeds(const std::string& dir) {
  // Format: selector (metric/prefix), word length + symbols, then a
  // run of length-prefixed candidates. Seeds target the grouping and
  // padding arithmetic: mixed lengths, non-lane-multiple group sizes,
  // empties, duplicates, and exact ties.
  bool ok = true;
  auto seq = [](std::initializer_list<uint8_t> bytes) {
    return std::string(bytes.begin(), bytes.end());
  };
  // DTW, no prefix: three groups (lengths 1/3/3), word length 4.
  ok &= WriteSeed(dir, "mixed_lengths",
                  Steered(0, seq({4, 1, 2, 0, 3,            // word
                                  1, 3,                     // {3}
                                  3, 0, 1, 2,               // {0,1,2}
                                  3, 2, 2, 2,               // {2,2,2}
                                  1, 4})));                 // {4}
  // SED + prefix: word longer than every candidate.
  ok &= WriteSeed(dir, "sed_prefix",
                  Steered(3, seq({6, 0, 1, 2, 3, 4, 0,
                                  2, 1, 2,
                                  2, 0, 1,
                                  3, 4, 4, 4})));
  // Empty word and an empty candidate: the degenerate DP branches.
  ok &= WriteSeed(dir, "empties",
                  Steered(0, seq({0,
                                  0,                        // empty candidate
                                  2, 1, 3,
                                  1, 0})));
  // Five identical candidates: all distances tie, argmin must stay 0.
  ok &= WriteSeed(dir, "all_ties",
                  Steered(1, seq({2, 2, 2,
                                  2, 1, 3, 2, 1, 3, 2, 1, 3,
                                  2, 1, 3, 2, 1, 3})));
  return ok;
}

bool EmitCsvSeeds(const std::string& dir) {
  bool ok = true;
  ok &= WriteSeed(dir, "plain", "a,b,c\r\n1,2,3\r\n");
  ok &= WriteSeed(dir, "quoted",
                  "\"a,b\",\"say \"\"hi\"\"\",\"multi\nline\"\r\nx,y,z\r\n");
  ok &= WriteSeed(dir, "bom_crlf", "\xEF\xBB\xBFh1,h2\r\n\r\n0.5,-3e4\r\n");
  ok &= WriteSeed(dir, "ragged", "a,b\r\n1\r\n1,2,3\r\n");
  ok &= WriteSeed(dir, "labels", "user,label\n0,2\n1,0\n2,1\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_seed_corpus OUTDIR\n");
    return 2;
  }
  std::string root = argv[1];
  if (!MakeDir(root)) return 1;
  struct Target {
    const char* name;
    bool (*emit)(const std::string&);
  };
  const Target targets[] = {
      {"frame_reader", EmitFrameReaderSeeds},
      {"codec", EmitCodecSeeds},
      {"csv", EmitCsvSeeds},
      {"candidate_table", EmitCandidateTableSeeds},
  };
  for (const auto& target : targets) {
    std::string dir = root + "/" + target.name;
    if (!MakeDir(dir) || !target.emit(dir)) return 1;
  }
  std::printf("make_seed_corpus: wrote seeds under %s\n", root.c_str());
  return 0;
}
