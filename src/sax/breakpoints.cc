#include "sax/breakpoints.h"

#include <cmath>

#include "common/math_utils.h"

namespace privshape::sax {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;

double NormalPdf(double x) {
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}
}  // namespace

Result<std::vector<double>> Breakpoints(int t) {
  if (t < 2 || t > 26) {
    return Status::InvalidArgument("SAX alphabet size must be in [2, 26]");
  }
  std::vector<double> out;
  out.reserve(static_cast<size_t>(t) - 1);
  for (int i = 1; i < t; ++i) {
    out.push_back(
        InverseNormalCdf(static_cast<double>(i) / static_cast<double>(t)));
  }
  return out;
}

Result<std::vector<double>> SymbolLevels(int t) {
  auto bp = Breakpoints(t);
  if (!bp.ok()) return bp.status();
  const std::vector<double>& b = *bp;
  std::vector<double> levels(static_cast<size_t>(t));
  for (int i = 0; i < t; ++i) {
    // Band (lo, hi); conditional mean of N(0,1) is (pdf(lo)-pdf(hi))/mass.
    double lo_pdf = (i == 0) ? 0.0 : NormalPdf(b[static_cast<size_t>(i) - 1]);
    double hi_pdf = (i == t - 1) ? 0.0 : NormalPdf(b[static_cast<size_t>(i)]);
    double lo_cdf =
        (i == 0) ? 0.0 : NormalCdf(b[static_cast<size_t>(i) - 1]);
    double hi_cdf =
        (i == t - 1) ? 1.0 : NormalCdf(b[static_cast<size_t>(i)]);
    double mass = hi_cdf - lo_cdf;
    levels[static_cast<size_t>(i)] =
        mass > 0 ? (lo_pdf - hi_pdf) / mass : 0.0;
  }
  return levels;
}

}  // namespace privshape::sax
