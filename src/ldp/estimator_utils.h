#ifndef PRIVSHAPE_LDP_ESTIMATOR_UTILS_H_
#define PRIVSHAPE_LDP_ESTIMATOR_UTILS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace privshape::ldp {

/// Analytic estimator variance of a frequency oracle for a value with true
/// count n_v out of n reports (Wang et al., USENIX Security'17, Eq. (6)):
///   Var = n * q(1-q)/(p-q)^2 + n_v * (1 - p - q)/(p - q).
/// Used to pick oracles and to size populations in the benches.
double OracleVariance(double p, double q, double n, double n_v);

/// GRR p/q for a domain of size d at budget eps.
void GrrParameters(size_t domain, double epsilon, double* p, double* q);

/// Debiases raw GRR report counts: out[v] = (counts[v] - n*q) / (p - q)
/// with n = total reports. This is THE debias formula for the repo — the
/// in-process Grr oracle, the wire-level ReportAggregator, and the sharded
/// collector all route through it, so a given integer count vector yields
/// byte-identical estimates regardless of which path produced it.
std::vector<double> DebiasGrrCounts(const std::vector<size_t>& counts,
                                    size_t num_reports, double epsilon);

/// OUE p/q at budget eps.
void OueParameters(double epsilon, double* p, double* q);

/// Approximate two-sided confidence half-width for an estimated count at
/// the given z-score (1.96 ~ 95%).
double ConfidenceHalfWidth(double p, double q, double n, double n_v,
                           double z = 1.96);

/// Post-processes raw (possibly negative) debiased count estimates onto
/// the probability simplex scaled by their total: Norm-Sub projection
/// (Wang et al., VLDB'20): clip negatives and redistribute the deficit
/// uniformly over the remaining positive cells until convergence. Returns
/// non-negative counts summing to max(total, 0).
std::vector<double> NormSub(const std::vector<double>& estimates,
                            double total);

/// The smallest population size for which the oracle's standard deviation
/// on a zero-frequency value stays below `target_count`. Handy for sizing
/// P_b / P_d in experiments.
Result<size_t> MinimumPopulation(double p, double q, double target_count);

}  // namespace privshape::ldp

#endif  // PRIVSHAPE_LDP_ESTIMATOR_UTILS_H_
