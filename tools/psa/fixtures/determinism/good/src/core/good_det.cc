// Fixture: the clean twin — ordered containers, seeded Rng, binary
// values end to end.
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"

namespace privshape::core {

double OrderedSum(const std::map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) total += kv.second;  // sorted order
  return total;
}

uint64_t SeededDraw(uint64_t seed) {
  Rng rng(DeriveSeed(seed, 0));
  uint64_t word;
  rng.FillU64(&word, 1);
  return word;
}

// Mentioning a banned name in a comment (steady_clock) or a string is
// not a finding: "std::rand() is banned here".
const char* Doc() { return "no rand, no stod, no unordered_map"; }

}  // namespace privshape::core
