#include "common/shutdown.h"

#include <csignal>

#include <atomic>

namespace privshape {

namespace {

std::atomic<bool> g_shutdown_requested{false};

// Only the async-signal-safe atomic store may run here.
void HandleSignal(int /*signum*/) {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

void InstallShutdownHandler() {
  struct sigaction action {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking syscalls must EINTR
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_relaxed);
}

void RequestShutdown() {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
}

void ResetShutdownForTest() {
  g_shutdown_requested.store(false, std::memory_order_relaxed);
}

}  // namespace privshape
