#ifndef PRIVSHAPE_BENCH_HARNESS_H_
#define PRIVSHAPE_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/json.h"
#include "core/baseline.h"
#include "core/config.h"
#include "core/pipeline.h"
#include "core/privshape.h"
#include "eval/shape_matching.h"
#include "series/time_series.h"

namespace privshape::bench {

/// Scale knobs shared by every bench binary. The paper runs 40,000 users
/// and 500 trials on a 20-core Xeon; defaults here are laptop-sized and
/// raised with --users/--trials/--threads (or PRIVSHAPE_USERS /
/// PRIVSHAPE_TRIALS / PRIVSHAPE_THREADS).
struct ExperimentScale {
  size_t users = 3000;
  int trials = 3;
  uint64_t seed = 2023;
  size_t threads = 0;  ///< worker threads; 0 = hardware concurrency
};

ExperimentScale ScaleFromArgs(const CliArgs& args,
                              size_t default_users = 3000,
                              int default_trials = 3);

/// Distances between extracted shapes and ground truth, averaged over
/// ground-truth shapes after greedy nearest matching by DTW — the
/// quantitative measures of Tables III/IV.
struct ShapeQuality {
  double dtw = 0.0;
  double sed = 0.0;
  double euclidean = 0.0;
};

/// Ground-truth shapes: the per-class mean of the clean dataset pushed
/// through the same Compressive-SAX transform ("Ground Truth and
/// PatternLDP are also pre-processed by Compressive SAX", §V-E).
std::vector<eval::LabeledShape> GroundTruthShapes(
    const series::Dataset& dataset, const core::TransformOptions& transform);

ShapeQuality MeasureShapeQuality(
    const std::vector<Sequence>& extracted,
    const std::vector<eval::LabeledShape>& ground_truth);

/// One mechanism run on a clustering task.
struct ClusteringOutcome {
  double ari = 0.0;
  ShapeQuality quality;
  std::vector<Sequence> shapes;
  double seconds = 0.0;
};

/// One mechanism run on a classification task.
struct ClassificationOutcome {
  double accuracy = 0.0;
  ShapeQuality quality;
  std::vector<eval::LabeledShape> shapes;
  double seconds = 0.0;
};

/// PrivShape / baseline clustering: extract shapes, assign every sequence
/// to its nearest shape, score ARI against the true labels (§V-C).
ClusteringOutcome RunPrivShapeClustering(
    const series::Dataset& dataset, const core::TransformOptions& transform,
    const core::MechanismConfig& config);
ClusteringOutcome RunBaselineClustering(
    const series::Dataset& dataset, const core::TransformOptions& transform,
    const core::MechanismConfig& config);

/// PatternLDP + KMeans clustering on the perturbed numeric series; shape
/// quality comes from the KMeans centroids pushed through Compressive SAX.
struct PatternLdpBenchOptions {
  double epsilon = 4.0;
  int kmeans_restarts = 2;
  int kmeans_max_iterations = 60;
  int rf_trees = 15;
  int rf_feature_paa = 10;  ///< PAA segment length for RF features
  uint64_t seed = 2023;
};

ClusteringOutcome RunPatternLdpKMeansClustering(
    const series::Dataset& dataset, const core::TransformOptions& transform,
    const PatternLdpBenchOptions& options, int k);

/// Classification runners (train/test protocol of §V-E).
ClassificationOutcome RunPrivShapeClassification(
    const series::Dataset& train, const series::Dataset& test,
    const core::TransformOptions& transform,
    const core::MechanismConfig& config);
ClassificationOutcome RunBaselineClassification(
    const series::Dataset& train, const series::Dataset& test,
    const core::TransformOptions& transform,
    const core::MechanismConfig& config);
ClassificationOutcome RunPatternLdpRfClassification(
    const series::Dataset& train, const series::Dataset& test,
    const PatternLdpBenchOptions& options, int num_classes);

/// Paper-default configurations.
core::TransformOptions SymbolsTransform();   // t=6, w=25
core::TransformOptions TraceTransform();     // t=4, w=10
core::MechanismConfig SymbolsConfig(double epsilon, uint64_t seed);
core::MechanismConfig TraceConfig(double epsilon, uint64_t seed);

/// Console table helpers (markdown-ish, matching the paper's row layout).
void PrintTitle(const std::string& title);
void PrintHeader(const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);

/// Opens `<PRIVSHAPE_CSV_DIR>/<name>.csv` when the env var is set;
/// otherwise returns nullptr (callers skip CSV output).
std::unique_ptr<CsvWriter> MaybeCsv(const std::string& name);

/// Machine-readable bench output: one {benchmark, params, metrics} record
/// per measured configuration, flushed as a JSON array. This is the
/// BENCH_*.json format tracking the repo's perf trajectory across PRs.
class JsonBenchWriter {
 public:
  explicit JsonBenchWriter(std::string path);

  /// Appends one record. Param values are strings (they name the swept
  /// configuration); metric values are numbers.
  void AddRecord(
      const std::string& benchmark,
      const std::vector<std::pair<std::string, std::string>>& params,
      const std::vector<std::pair<std::string, double>>& metrics);

  /// Run-wide facts that hold for every record (e.g. the machine's
  /// hardware_concurrency). Setting any meta switches the file format
  /// from a bare record array to {"meta": {...}, "records": [...]} —
  /// benches that never call SetMeta keep the legacy array shape.
  void SetMeta(const std::string& key, const std::string& value);
  void SetMeta(const std::string& key, uint64_t value);

  /// Writes the file; returns false on I/O failure. Called by the
  /// destructor, but call it explicitly to observe errors.
  bool Flush();

  ~JsonBenchWriter();

 private:
  std::string path_;
  JsonValue meta_;
  JsonValue records_;
  bool flushed_ = false;
};

/// JSON writer for `--json <path>` (env PRIVSHAPE_JSON); `default_path`
/// non-empty makes the bench always emit there unless overridden.
/// Returns nullptr when neither is set.
std::unique_ptr<JsonBenchWriter> MaybeJson(
    const CliArgs& args, const std::string& default_path = "");

}  // namespace privshape::bench

#endif  // PRIVSHAPE_BENCH_HARNESS_H_
