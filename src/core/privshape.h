/// \file
/// Module `core` — the end-to-end mechanisms: the baseline trie mechanism
/// (Algorithm 1, §III), PrivShape (Algorithm 2, §IV) with length estimation,
/// sub-shape transition mining, EM candidate selection (§IV-B) and two-level
/// refinement, plus the orchestration pipeline. Invariant: each user is
/// assigned to exactly one population/stage, so user-level eps-LDP holds by
/// parallel composition (Theorem 3).

#ifndef PRIVSHAPE_CORE_PRIVSHAPE_H_
#define PRIVSHAPE_CORE_PRIVSHAPE_H_

#include <vector>

#include "core/config.h"

namespace privshape::core {

/// PrivShape (Algorithm 2) — the paper's optimized mechanism:
///
///  1. frequent-length estimation from P_a (GRR),
///  2. frequent sub-shape estimation from P_b via padding-and-sampling,
///  3. trie expansion from P_c, gated by the top c*k sub-shape transitions
///     per level and pruned to the top c*k candidates per level,
///  4. two-level refinement from P_d: leaf candidates are pruned to the
///     top c*k and re-estimated (GRR over candidate ids for clustering;
///     OUE over candidate x class cells for classification),
///  5. post-processing: candidates are grouped into k clusters under the
///     configured distance and the most frequent member of each cluster is
///     output, so near-duplicate shapes do not crowd out distinct ones.
///
/// Every user participates in exactly one stage, so the mechanism is
/// eps-LDP at the user level by parallel composition (Theorem 3).
class PrivShape {
 public:
  explicit PrivShape(MechanismConfig config) : config_(config) {}

  /// `sequences[i]` is user i's Compressive-SAX word. `labels` is required
  /// when config.num_classes > 0 (classification refinement) and must hold
  /// values in [0, num_classes); each label is only read inside its owner's
  /// local OUE encoding.
  Result<MechanismResult> Run(const std::vector<Sequence>& sequences,
                              const std::vector<int>* labels = nullptr) const;

  const MechanismConfig& config() const { return config_; }

 private:
  MechanismConfig config_;
};

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_PRIVSHAPE_H_
