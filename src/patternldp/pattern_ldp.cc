#include "patternldp/pattern_ldp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/math_utils.h"
#include "ldp/numeric.h"
#include "patternldp/pid.h"

namespace privshape::pldp {

Result<PatternLdp> PatternLdp::Create(const PatternLdpConfig& config) {
  if (config.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (config.sample_fraction <= 0.0 || config.sample_fraction > 1.0) {
    return Status::InvalidArgument("sample_fraction must be in (0, 1]");
  }
  if (config.clip <= 0.0) {
    return Status::InvalidArgument("clip bound must be positive");
  }
  return PatternLdp(config);
}

Result<std::vector<double>> PatternLdp::PerturbSeries(
    const std::vector<double>& values, Rng* rng) const {
  if (values.empty()) {
    return Status::InvalidArgument("cannot perturb an empty series");
  }
  size_t n = values.size();
  std::vector<double> scores =
      ImportanceScores(values, config_.kp, config_.ki, config_.kd);

  // Sample the most important points as anchors; endpoints are always
  // anchors so interpolation covers the whole record.
  size_t target = std::max(
      config_.min_samples,
      static_cast<size_t>(std::ceil(config_.sample_fraction *
                                    static_cast<double>(n))));
  target = std::min(target, n);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  std::vector<char> sampled(n, 0);
  sampled[0] = sampled[n - 1] = 1;
  size_t count = (n > 1) ? 2 : 1;
  for (size_t idx : order) {
    if (count >= target) break;
    if (!sampled[idx]) {
      sampled[idx] = 1;
      ++count;
    }
  }

  // Allocate the single user-level budget across anchors proportionally to
  // their importance (minimum share keeps every anchor usable).
  std::vector<size_t> anchors;
  for (size_t i = 0; i < n; ++i) {
    if (sampled[i]) anchors.push_back(i);
  }
  double score_total = 0.0;
  for (size_t idx : anchors) score_total += scores[idx];
  // Importance-proportional shares with a floor of half the uniform share,
  // renormalized so the per-anchor budgets sum to exactly epsilon (the
  // floor alone would overspend the user-level budget).
  const double kMinShare = 0.5 / static_cast<double>(anchors.size());
  std::vector<double> shares(anchors.size());
  double share_total = 0.0;
  for (size_t a = 0; a < anchors.size(); ++a) {
    double raw = score_total > 1e-12
                     ? scores[anchors[a]] / score_total
                     : 1.0 / static_cast<double>(anchors.size());
    shares[a] = std::max(raw, kMinShare);
    share_total += shares[a];
  }
  for (double& s : shares) s /= share_total;

  std::vector<double> out(n, 0.0);
  std::vector<double> anchor_values(anchors.size(), 0.0);
  for (size_t a = 0; a < anchors.size(); ++a) {
    size_t idx = anchors[a];
    double eps_i = config_.epsilon * shares[a];
    auto pm = ldp::PiecewiseMechanism::Create(eps_i);
    if (!pm.ok()) return pm.status();
    double scaled = Clamp(values[idx], -config_.clip, config_.clip) /
                    config_.clip;
    anchor_values[a] = pm->Perturb(scaled, rng) * config_.clip;
  }

  // Linear interpolation between perturbed anchors.
  for (size_t a = 0; a + 1 < anchors.size(); ++a) {
    size_t lo = anchors[a], hi = anchors[a + 1];
    for (size_t i = lo; i <= hi; ++i) {
      double frac = hi == lo ? 0.0
                             : static_cast<double>(i - lo) /
                                   static_cast<double>(hi - lo);
      out[i] = anchor_values[a] * (1.0 - frac) + anchor_values[a + 1] * frac;
    }
  }
  if (anchors.size() == 1) {
    std::fill(out.begin(), out.end(), anchor_values[0]);
  }
  return out;
}

Result<series::Dataset> PatternLdp::PerturbDatasetParallel(
    const series::Dataset& dataset, ThreadPool* pool, uint64_t seed) const {
  series::Dataset out;
  out.instances.resize(dataset.size());
  std::vector<Status> statuses(dataset.size());
  pool->ParallelFor(dataset.size(), [&](size_t i) {
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    auto perturbed = PerturbSeries(dataset.instances[i].values, &rng);
    if (!perturbed.ok()) {
      statuses[i] = perturbed.status();
      return;
    }
    out.instances[i].values = std::move(*perturbed);
    out.instances[i].label = dataset.instances[i].label;
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return out;
}

Result<series::Dataset> PatternLdp::PerturbDataset(
    const series::Dataset& dataset, Rng* rng) const {
  series::Dataset out;
  out.instances.reserve(dataset.size());
  for (const auto& inst : dataset.instances) {
    auto perturbed = PerturbSeries(inst.values, rng);
    if (!perturbed.ok()) return perturbed.status();
    series::TimeSeries copy;
    copy.values = std::move(*perturbed);
    copy.label = inst.label;
    out.instances.push_back(std::move(copy));
  }
  return out;
}

}  // namespace privshape::pldp
