#include "core/population.h"

#include <gtest/gtest.h>

#include <set>

namespace privshape {
namespace {

using core::FourWaySplit;
using core::PartitionGroups;
using core::SplitFourWay;

TEST(PopulationTest, SplitsAreDisjointAndCoverEveryone) {
  Rng rng(81);
  FourWaySplit s = SplitFourWay(1000, 0.02, 0.08, 0.7, 0.2, &rng);
  std::set<size_t> all;
  for (const auto* group : {&s.pa, &s.pb, &s.pc, &s.pd}) {
    for (size_t u : *group) {
      EXPECT_TRUE(all.insert(u).second) << "duplicate user " << u;
    }
  }
  EXPECT_EQ(all.size(), 1000u);
}

TEST(PopulationTest, FractionsRoughlyRespected) {
  Rng rng(82);
  FourWaySplit s = SplitFourWay(10000, 0.02, 0.08, 0.7, 0.2, &rng);
  EXPECT_EQ(s.pa.size(), 200u);
  EXPECT_EQ(s.pb.size(), 800u);
  EXPECT_EQ(s.pd.size(), 2000u);
  EXPECT_EQ(s.pc.size(), 7000u);  // absorbs the remainder
}

TEST(PopulationTest, TinyPopulationStillFillsPa) {
  Rng rng(83);
  FourWaySplit s = SplitFourWay(10, 0.02, 0.08, 0.7, 0.2, &rng);
  EXPECT_GE(s.pa.size(), 1u);  // mandatory stage never starves
}

TEST(PopulationTest, ZeroFractionGroupsAreEmpty) {
  Rng rng(84);
  FourWaySplit s = SplitFourWay(100, 0.1, 0.0, 0.9, 0.0, &rng);
  EXPECT_TRUE(s.pb.empty());
  EXPECT_TRUE(s.pd.empty());
  EXPECT_EQ(s.pa.size() + s.pc.size(), 100u);
}

TEST(PopulationTest, DeterministicGivenRngState) {
  Rng r1(85), r2(85);
  FourWaySplit a = SplitFourWay(500, 0.02, 0.08, 0.7, 0.2, &r1);
  FourWaySplit b = SplitFourWay(500, 0.02, 0.08, 0.7, 0.2, &r2);
  EXPECT_EQ(a.pa, b.pa);
  EXPECT_EQ(a.pc, b.pc);
}

TEST(PartitionGroupsTest, EvenSplit) {
  std::vector<size_t> users = {1, 2, 3, 4, 5, 6};
  auto groups = PartitionGroups(users, 3);
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& g : groups) EXPECT_EQ(g.size(), 2u);
}

TEST(PartitionGroupsTest, UnevenSplitDiffersByAtMostOne) {
  std::vector<size_t> users = {1, 2, 3, 4, 5, 6, 7};
  auto groups = PartitionGroups(users, 3);
  ASSERT_EQ(groups.size(), 3u);
  size_t mn = 100, mx = 0, total = 0;
  for (const auto& g : groups) {
    mn = std::min(mn, g.size());
    mx = std::max(mx, g.size());
    total += g.size();
  }
  EXPECT_EQ(total, 7u);
  EXPECT_LE(mx - mn, 1u);
}

TEST(PartitionGroupsTest, MoreGroupsThanUsers) {
  std::vector<size_t> users = {1, 2};
  auto groups = PartitionGroups(users, 5);
  ASSERT_EQ(groups.size(), 5u);
  size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, 2u);
}

TEST(PartitionGroupsTest, EmptyUsers) {
  auto groups = PartitionGroups({}, 3);
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& g : groups) EXPECT_TRUE(g.empty());
}

}  // namespace
}  // namespace privshape
