#include "ldp/exponential.h"

#include <algorithm>
#include <cmath>

namespace privshape::ldp {

Result<ExponentialMechanism> ExponentialMechanism::Create(double epsilon,
                                                          double sensitivity) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument("sensitivity must be positive");
  }
  return ExponentialMechanism(epsilon, sensitivity);
}

Status ExponentialMechanism::SelectionProbabilitiesInto(
    const std::vector<double>& scores, std::vector<double>* probs) const {
  if (scores.empty()) {
    return Status::InvalidArgument("empty candidate set");
  }
  // Stabilize by subtracting the max exponent before exponentiating.
  double coeff = epsilon_ / (2.0 * sensitivity_);
  double mx = *std::max_element(scores.begin(), scores.end());
  probs->resize(scores.size());
  double total = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    (*probs)[i] = std::exp(coeff * (scores[i] - mx));
    total += (*probs)[i];
  }
  for (double& p : *probs) p /= total;
  return Status::Ok();
}

Result<std::vector<double>> ExponentialMechanism::SelectionProbabilities(
    const std::vector<double>& scores) const {
  std::vector<double> probs;
  PRIVSHAPE_RETURN_IF_ERROR(SelectionProbabilitiesInto(scores, &probs));
  return probs;
}

PS_RNG_CANONICAL
Result<size_t> ExponentialMechanism::Select(const std::vector<double>& scores,
                                            Rng* rng) const {
  std::vector<double> probs;
  return Select(scores, rng, &probs);
}

PS_RNG_CANONICAL
Result<size_t> ExponentialMechanism::Select(
    const std::vector<double>& scores, Rng* rng,
    std::vector<double>* probs_scratch) const {
  PRIVSHAPE_RETURN_IF_ERROR(SelectionProbabilitiesInto(scores, probs_scratch));
  return rng->Discrete(*probs_scratch);
}

std::vector<double> ScoresFromDistances(const std::vector<double>& distances) {
  std::vector<double> scores;
  ScoresFromDistancesInto(distances, &scores);
  return scores;
}

void ScoresFromDistancesInto(const std::vector<double>& distances,
                             std::vector<double>* scores) {
  scores->assign(distances.size(), 1.0);
  if (distances.empty()) return;
  double mn = *std::min_element(distances.begin(), distances.end());
  double mx = *std::max_element(distances.begin(), distances.end());
  if (mx - mn < 1e-12) return;  // all equally good
  for (size_t i = 0; i < distances.size(); ++i) {
    (*scores)[i] = (mx - distances[i]) / (mx - mn);
  }
}

}  // namespace privshape::ldp
