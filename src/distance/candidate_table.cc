#include "distance/candidate_table.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "common/simd.h"

namespace privshape::dist {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Two-row DTW DP over V::kLanes candidates at once. `plane` points at
/// this lane block's first symbol; row j of the group's symbols is at
/// `plane + j * stride`. `prev`/`curr` are (m + 1) * kLanes doubles.
/// Per lane this is exactly DtwImpl's unbanded recurrence in the same
/// order — curr[j] = |w_i - b_j| + min(min(prev[j], curr[j-1]),
/// prev[j-1]) — so lane results are bit-identical to the scalar kernel.
/// Callers guarantee n >= 1 and m >= 1 (the empty cases take DtwView's
/// special branch).
template <typename V>
void DtwBlock(const Symbol* word, size_t n, const double* plane,
              size_t stride, size_t m, double* prev, double* curr,
              double* out) {
  constexpr size_t kW = V::kLanes;
  const V inf = V::Set1(kInf);
  V::Set1(0.0).Store(prev);
  for (size_t j = 1; j <= m; ++j) inf.Store(prev + j * kW);
  for (size_t i = 1; i <= n; ++i) {
    const V wi = V::Set1(static_cast<double>(word[i - 1]));
    inf.Store(curr);
    V curr_jm1 = inf;
    V prev_jm1 = V::Load(prev);
    for (size_t j = 1; j <= m; ++j) {
      V cost = V::Abs(V::Sub(wi, V::Load(plane + (j - 1) * stride)));
      V prev_j = V::Load(prev + j * kW);
      V best = V::Min(V::Min(prev_j, curr_jm1), prev_jm1);
      V cj = V::Add(cost, best);
      cj.Store(curr + j * kW);
      curr_jm1 = cj;
      prev_jm1 = prev_j;
    }
    std::swap(prev, curr);
  }
  V::Load(prev + m * kW).Store(out);
}

/// Two-row Levenshtein DP over V::kLanes candidates at once; per lane
/// exactly EditImpl's recurrence and order — curr[j] =
/// min(min(prev[j] + 1, curr[j-1] + 1), prev[j-1] + neq-cost). Handles
/// n == 0 and m == 0 naturally (the DP degenerates to m resp. n), so it
/// needs no empty-case branch.
template <typename V>
void SedBlock(const Symbol* word, size_t n, const double* plane,
              size_t stride, size_t m, double* prev, double* curr,
              double* out) {
  constexpr size_t kW = V::kLanes;
  for (size_t j = 0; j <= m; ++j) {
    V::Set1(static_cast<double>(j)).Store(prev + j * kW);
  }
  const V one = V::Set1(1.0);
  for (size_t i = 1; i <= n; ++i) {
    const V wi = V::Set1(static_cast<double>(word[i - 1]));
    V ci = V::Set1(static_cast<double>(i));
    ci.Store(curr);
    V curr_jm1 = ci;
    V prev_jm1 = V::Load(prev);
    for (size_t j = 1; j <= m; ++j) {
      V sub = V::Add(prev_jm1, V::NeqCost(wi, V::Load(plane + (j - 1) * stride)));
      V prev_j = V::Load(prev + j * kW);
      V cj = V::Min(V::Min(V::Add(prev_j, one), V::Add(curr_jm1, one)), sub);
      cj.Store(curr + j * kW);
      curr_jm1 = cj;
      prev_jm1 = prev_j;
    }
    std::swap(prev, curr);
  }
  V::Load(prev + m * kW).Store(out);
}

}  // namespace

CandidateTable CandidateTable::Build(std::vector<Sequence> candidates) {
  CandidateTable table;
  table.candidates_ = std::move(candidates);
  // Deterministic grouping: ascending length, original order within a
  // group (std::map keeps lengths sorted; indices are appended in
  // original order, so two builds of the same list are identical).
  std::map<size_t, std::vector<uint32_t>> by_length;
  for (size_t i = 0; i < table.candidates_.size(); ++i) {
    by_length[table.candidates_[i].size()].push_back(
        static_cast<uint32_t>(i));
  }
  constexpr size_t kW = simd::kDoubleLanes;
  for (const auto& [length, indices] : by_length) {
    Group g;
    g.length = length;
    g.count = indices.size();
    g.padded = (indices.size() + kW - 1) / kW * kW;
    g.plane_offset = table.symbols_.size();
    g.index_offset = table.original_index_.size();
    table.symbols_.resize(table.symbols_.size() + length * g.padded, 0.0);
    for (size_t c = 0; c < g.count; ++c) {
      const Sequence& seq = table.candidates_[indices[c]];
      for (size_t j = 0; j < length; ++j) {
        table.symbols_[g.plane_offset + j * g.padded + c] =
            static_cast<double>(seq[j]);
      }
    }
    table.original_index_.insert(table.original_index_.end(),
                                 indices.begin(), indices.end());
    table.groups_.push_back(g);
  }
  return table;
}

PS_REPORT_PATH
void CandidateTable::MatchInto(SymbolView word,
                               const SequenceDistance& distance,
                               bool prefix_compare, TableScratch* scratch,
                               std::vector<double>* out) const {
  out->resize(candidates_.size());
  TableScratch local;
  TableScratch* s = scratch != nullptr ? scratch : &local;
  Metric metric = distance.metric();
  if (metric != Metric::kDtw && metric != Metric::kSed) {
    // No vectorized kernel for this metric: the per-candidate reference
    // loop, identical to core::MatchDistancesInto.
    for (size_t cand = 0; cand < candidates_.size(); ++cand) {
      const Sequence& shape = candidates_[cand];
      SymbolView lhs = prefix_compare && word.size() > shape.size()
                           ? word.Sub(0, shape.size())
                           : word;
      (*out)[cand] = distance.Distance(lhs, SymbolView(shape), &s->dtw);
    }
    return;
  }
  constexpr size_t kW = simd::kDoubleLanes;
  for (const Group& g : groups_) {
    // All candidates in a group share one length, hence one prefix view.
    SymbolView lhs = prefix_compare && word.size() > g.length
                         ? word.Sub(0, g.length)
                         : word;
    size_t n = lhs.size();
    size_t m = g.length;
    if (metric == Metric::kDtw && (n == 0 || m == 0)) {
      // DtwView's empty-word branch (sum of levels) is not a DP; take
      // the scalar kernel per candidate.
      for (size_t c = 0; c < g.count; ++c) {
        size_t orig = original_index_[g.index_offset + c];
        (*out)[orig] = DtwSymbolic(lhs, SymbolView(candidates_[orig]),
                                   /*band=*/-1, &s->dtw);
      }
      continue;
    }
    s->prev.resize((m + 1) * kW);
    s->curr.resize((m + 1) * kW);
    double lane_out[kW];
    for (size_t c0 = 0; c0 < g.padded; c0 += kW) {
      const double* plane = symbols_.data() + g.plane_offset + c0;
      if (metric == Metric::kDtw) {
        DtwBlock<simd::VecD>(lhs.data(), n, plane, g.padded, m,
                             s->prev.data(), s->curr.data(), lane_out);
      } else {
        SedBlock<simd::VecD>(lhs.data(), n, plane, g.padded, m,
                             s->prev.data(), s->curr.data(), lane_out);
      }
      for (size_t lane = 0; lane < kW && c0 + lane < g.count; ++lane) {
        (*out)[original_index_[g.index_offset + c0 + lane]] =
            lane_out[lane];
      }
    }
  }
}

PS_REPORT_PATH
size_t CandidateTable::Closest(SymbolView word,
                               const SequenceDistance& distance,
                               TableScratch* scratch) const {
  if (candidates_.empty()) return 0;
  TableScratch local;
  TableScratch* s = scratch != nullptr ? scratch : &local;
  Metric metric = distance.metric();
  if (metric != Metric::kDtw && metric != Metric::kSed) {
    // Reference early-abandoning scan (core::ClosestCandidate).
    double best = kInf;
    size_t best_idx = 0;
    for (size_t i = 0; i < candidates_.size(); ++i) {
      double d = distance.DistanceBounded(word, SymbolView(candidates_[i]),
                                          best, &s->dtw);
      if (d < best) {
        best = d;
        best_idx = i;
      }
    }
    return best_idx;
  }
  // Full distances, then an original-order scan with strict `d < best`:
  // the abandoning scan only ever skips candidates whose distance is
  // provably >= the running best (which it would not have selected), so
  // the argmin and its first-index tie-breaking are identical.
  MatchInto(word, distance, /*prefix_compare=*/false, s, &s->dists);
  double best = kInf;
  size_t best_idx = 0;
  for (size_t i = 0; i < s->dists.size(); ++i) {
    if (s->dists[i] < best) {
      best = s->dists[i];
      best_idx = i;
    }
  }
  return best_idx;
}

}  // namespace privshape::dist
