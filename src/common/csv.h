#ifndef PRIVSHAPE_COMMON_CSV_H_
#define PRIVSHAPE_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace privshape {

/// Minimal CSV writer used by the bench harness to dump table/figure data
/// (one file per experiment when PRIVSHAPE_CSV_DIR is set).
class CsvWriter {
 public:
  /// Opens `path` for writing; check `ok()` before use.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.is_open(); }

  /// Writes a header row.
  void WriteHeader(const std::vector<std::string>& columns);

  /// Writes one row of mixed values already rendered as strings.
  void WriteRow(const std::vector<std::string>& cells);

  /// Convenience: renders doubles with 6 significant digits.
  void WriteRow(const std::vector<double>& cells);

 private:
  std::ofstream out_;
};

/// Parses a CSV file of doubles (no quoting support; plenty for our fixtures).
Result<std::vector<std::vector<double>>> ReadCsvDoubles(
    const std::string& path);

/// Renders a double compactly for CSV/console output.
std::string FormatDouble(double v, int precision = 6);

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_CSV_H_
