#include "net/frame.h"

#include <cstdlib>
#include <limits>

#include "common/logging.h"
#include "protocol/codec.h"
#include "telemetry/telemetry.h"

namespace privshape::net {

namespace {

using proto::Decoder;
using proto::Encoder;

/// Wire-layer instruments, resolved once per process and recorded through
/// cached pointers (relaxed atomics — the framing hot path never takes
/// the registry mutex after first use).
struct FrameCounters {
  telemetry::Counter* frames_written;
  telemetry::Counter* bytes_written;
  telemetry::Counter* frames_decoded;
  telemetry::Counter* bytes_decoded;
  telemetry::Counter* frame_errors;

  static FrameCounters& Get() {
    static FrameCounters counters = [] {
      telemetry::Registry& reg = telemetry::Registry::Default();
      return FrameCounters{reg.GetCounter("net_frames_written_total"),
                           reg.GetCounter("net_frame_bytes_written_total"),
                           reg.GetCounter("net_frames_decoded_total"),
                           reg.GetCounter("net_frame_bytes_decoded_total"),
                           reg.GetCounter("net_frame_errors_total")};
    }();
    return counters;
  }
};

void PutU32Le(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32Le(const char* bytes) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[i]))
             << (8 * i);
  }
  return value;
}

/// Requires the whole body consumed — trailing garbage in any message is
/// a protocol error, exactly like the report codec.
Status RequireAtEnd(const Decoder& dec) {
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing garbage after message");
  }
  return Status::Ok();
}

}  // namespace

void AppendFrame(MsgType type, std::string_view body, std::string* out) {
  std::string payload;
  Encoder enc(&payload);
  enc.PutVarint(static_cast<uint64_t>(type));
  payload.append(body.data(), body.size());
  // The length prefix is 32-bit and every compliant reader rejects
  // payloads over kMaxFramePayload, so a writer-side violation is a
  // programming error, not a runtime condition: fail loudly instead of
  // letting the uint32_t cast truncate into a silently corrupt stream.
  if (payload.size() > kMaxFramePayload) {
    PS_LOG(kError, "net")
        << "AppendFrame payload exceeds protocol cap"
        << Kv("size", static_cast<int64_t>(payload.size()));
    std::abort();
  }
  PutU32Le(static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
  FrameCounters& counters = FrameCounters::Get();
  counters.frames_written->Add(1);
  counters.bytes_written->Add(4 + payload.size());
}

FrameReader::FrameReader(uint32_t max_payload) : max_payload_(max_payload) {}

void FrameReader::Append(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

Result<bool> FrameReader::Next(Frame* out) {
  if (!error_.ok()) return error_;
  size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return false;
  uint32_t len = GetU32Le(buffer_.data() + consumed_);
  // The cap is enforced the instant the 4 length bytes arrive — before
  // any buffering or allocation proportional to the claimed size.
  if (len == 0 || len > max_payload_) {
    error_ = Status::InvalidArgument(
        "frame payload length " + std::to_string(len) +
        " outside (0, " + std::to_string(max_payload_) + "]");
    FrameCounters::Get().frame_errors->Add(1);
    return error_;
  }
  if (avail < 4 + static_cast<size_t>(len)) return false;
  std::string_view payload(buffer_.data() + consumed_ + 4, len);
  Decoder dec(payload);
  auto type = dec.GetVarint();
  if (!type.ok()) {
    error_ = Status::InvalidArgument("unparseable frame type varint");
    FrameCounters::Get().frame_errors->Add(1);
    return error_;
  }
  out->type = static_cast<MsgType>(*type);
  out->payload.assign(payload.substr(payload.size() - dec.remaining()));
  consumed_ += 4 + static_cast<size_t>(len);
  FrameCounters& counters = FrameCounters::Get();
  counters.frames_decoded->Add(1);
  counters.bytes_decoded->Add(4 + static_cast<size_t>(len));
  // Reclaim the parsed prefix once it dominates the buffer, so a
  // long-lived connection never grows its read buffer unboundedly.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return true;
}

std::string EncodeHello(const HelloMsg& msg) {
  Encoder enc;
  enc.PutVarint(kHelloMagic);
  enc.PutVarint(msg.version);
  enc.PutVarint(msg.fleet_users);
  return enc.Release();
}

Result<HelloMsg> DecodeHello(std::string_view body) {
  Decoder dec(body);
  auto magic = dec.GetVarint();
  if (!magic.ok()) return magic.status();
  if (*magic != kHelloMagic) {
    return Status::InvalidArgument("bad hello magic");
  }
  HelloMsg msg;
  auto version = dec.GetVarint();
  if (!version.ok()) return version.status();
  msg.version = *version;
  if (msg.version != kNetVersion) {
    return Status::InvalidArgument(
        "unsupported wire version " + std::to_string(msg.version));
  }
  auto users = dec.GetVarint();
  if (!users.ok()) return users.status();
  msg.fleet_users = *users;
  PRIVSHAPE_RETURN_IF_ERROR(RequireAtEnd(dec));
  return msg;
}

std::string EncodeWelcome(const WelcomeMsg& msg) {
  Encoder enc;
  enc.PutVarint(msg.version);
  enc.PutVarint(msg.conn_id);
  enc.PutVarint(msg.num_users);
  enc.PutVarint(msg.num_classes);
  enc.PutVarint(msg.seed);
  enc.PutDouble(msg.epsilon);
  return enc.Release();
}

Result<WelcomeMsg> DecodeWelcome(std::string_view body) {
  Decoder dec(body);
  WelcomeMsg msg;
  auto version = dec.GetVarint();
  if (!version.ok()) return version.status();
  msg.version = *version;
  if (msg.version != kNetVersion) {
    return Status::InvalidArgument(
        "unsupported wire version " + std::to_string(msg.version));
  }
  auto conn = dec.GetVarint();
  if (!conn.ok()) return conn.status();
  msg.conn_id = *conn;
  auto users = dec.GetVarint();
  if (!users.ok()) return users.status();
  msg.num_users = *users;
  auto classes = dec.GetVarint();
  if (!classes.ok()) return classes.status();
  msg.num_classes = *classes;
  auto seed = dec.GetVarint();
  if (!seed.ok()) return seed.status();
  msg.seed = *seed;
  auto epsilon = dec.GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  msg.epsilon = *epsilon;
  PRIVSHAPE_RETURN_IF_ERROR(RequireAtEnd(dec));
  return msg;
}

std::string EncodeRoundBegin(const RoundBeginMsg& msg) {
  Encoder enc;
  enc.PutVarint(msg.round_id);
  enc.PutVarint(static_cast<uint64_t>(msg.kind));
  enc.PutString(msg.request);
  enc.PutVarint(msg.users.size());
  for (uint64_t user : msg.users) enc.PutVarint(user);
  return enc.Release();
}

Result<RoundBeginMsg> DecodeRoundBegin(std::string_view body) {
  Decoder dec(body);
  RoundBeginMsg msg;
  auto round = dec.GetVarint();
  if (!round.ok()) return round.status();
  msg.round_id = *round;
  auto kind = dec.GetVarint();
  if (!kind.ok()) return kind.status();
  if (*kind < static_cast<uint64_t>(proto::ReportKind::kLength) ||
      *kind > static_cast<uint64_t>(proto::ReportKind::kClassRefine)) {
    return Status::InvalidArgument("unknown report kind " +
                                   std::to_string(*kind));
  }
  msg.kind = static_cast<proto::ReportKind>(*kind);
  auto request = dec.GetStringView();
  if (!request.ok()) return request.status();
  msg.request.assign(*request);
  auto count = dec.GetVarint();
  if (!count.ok()) return count.status();
  // Every user id takes >= 1 byte, so a count beyond the remaining bytes
  // is corrupt — checked before the reserve, like the codec's GetBytes.
  if (*count > dec.remaining()) {
    return Status::OutOfRange("user count exceeds message size");
  }
  msg.users.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto user = dec.GetVarint();
    if (!user.ok()) return user.status();
    msg.users.push_back(*user);
  }
  PRIVSHAPE_RETURN_IF_ERROR(RequireAtEnd(dec));
  return msg;
}

std::string EncodeBatchUpload(uint64_t round_id,
                              const proto::ReportBatch& batch) {
  Encoder enc;
  enc.PutVarint(round_id);
  enc.PutVarint(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) enc.PutString(batch.view(i));
  return enc.Release();
}

Result<BatchUploadView> DecodeBatchUpload(std::string_view body) {
  Decoder dec(body);
  BatchUploadView view;
  auto round = dec.GetVarint();
  if (!round.ok()) return round.status();
  view.round_id = *round;
  auto count = dec.GetVarint();
  if (!count.ok()) return count.status();
  if (*count > dec.remaining()) {
    return Status::OutOfRange("report count exceeds message size");
  }
  view.reports.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto report = dec.GetStringView();
    if (!report.ok()) return report.status();
    view.reports.push_back(*report);
  }
  PRIVSHAPE_RETURN_IF_ERROR(RequireAtEnd(dec));
  return view;
}

std::string EncodeRoundDone(const RoundDoneMsg& msg) {
  Encoder enc;
  enc.PutVarint(msg.round_id);
  enc.PutVarint(msg.answered);
  enc.PutVarint(msg.client_errors);
  return enc.Release();
}

Result<RoundDoneMsg> DecodeRoundDone(std::string_view body) {
  Decoder dec(body);
  RoundDoneMsg msg;
  auto round = dec.GetVarint();
  if (!round.ok()) return round.status();
  msg.round_id = *round;
  auto answered = dec.GetVarint();
  if (!answered.ok()) return answered.status();
  msg.answered = *answered;
  auto errors = dec.GetVarint();
  if (!errors.ok()) return errors.status();
  msg.client_errors = *errors;
  PRIVSHAPE_RETURN_IF_ERROR(RequireAtEnd(dec));
  return msg;
}

std::string EncodeComplete(const CompleteMsg& msg) {
  Encoder enc;
  enc.PutVarint(msg.frequent_length);
  enc.PutVarint(msg.shapes.size());
  for (const WireShape& shape : msg.shapes) {
    enc.PutBytes(shape.shape);
    // label >= -1 always; +1 keeps the varint unsigned.
    enc.PutVarint(static_cast<uint64_t>(shape.label + 1));
    enc.PutDouble(shape.frequency);
  }
  return enc.Release();
}

Result<CompleteMsg> DecodeComplete(std::string_view body) {
  Decoder dec(body);
  CompleteMsg msg;
  auto length = dec.GetVarint();
  if (!length.ok()) return length.status();
  msg.frequent_length = *length;
  auto count = dec.GetVarint();
  if (!count.ok()) return count.status();
  if (*count > dec.remaining()) {
    return Status::OutOfRange("shape count exceeds message size");
  }
  msg.shapes.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    WireShape shape;
    auto symbols = dec.GetBytes();
    if (!symbols.ok()) return symbols.status();
    shape.shape = std::move(*symbols);
    auto label = dec.GetVarint();
    if (!label.ok()) return label.status();
    if (*label > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
      return Status::OutOfRange("shape label out of range");
    }
    shape.label = static_cast<int>(*label) - 1;
    auto frequency = dec.GetDouble();
    if (!frequency.ok()) return frequency.status();
    shape.frequency = *frequency;
    msg.shapes.push_back(std::move(shape));
  }
  PRIVSHAPE_RETURN_IF_ERROR(RequireAtEnd(dec));
  return msg;
}

std::string EncodeError(std::string_view message) {
  Encoder enc;
  enc.PutString(message);
  return enc.Release();
}

Result<std::string> DecodeError(std::string_view body) {
  Decoder dec(body);
  auto message = dec.GetStringView();
  if (!message.ok()) return message.status();
  std::string out(*message);
  PRIVSHAPE_RETURN_IF_ERROR(RequireAtEnd(dec));
  return out;
}

}  // namespace privshape::net
