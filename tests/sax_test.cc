#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "sax/breakpoints.h"
#include "sax/compressive.h"
#include "sax/grid_discretizer.h"
#include "sax/paa.h"
#include "sax/sax.h"
#include "series/sequence.h"

namespace privshape {
namespace {

using sax::Breakpoints;
using sax::CompressSax;
using sax::IsCompressed;
using sax::PiecewiseAggregate;
using sax::SaxTransformer;
using sax::SymbolLevels;

TEST(BreakpointsTest, PaperLookupTableForT3) {
  auto bp = Breakpoints(3);
  ASSERT_TRUE(bp.ok());
  ASSERT_EQ(bp->size(), 2u);
  EXPECT_NEAR((*bp)[0], -0.43, 0.01);  // the paper's Fig. 3 table
  EXPECT_NEAR((*bp)[1], 0.43, 0.01);
}

TEST(BreakpointsTest, ClassicTableForT4AndT5) {
  auto bp4 = Breakpoints(4);
  ASSERT_TRUE(bp4.ok());
  EXPECT_NEAR((*bp4)[0], -0.6745, 1e-3);
  EXPECT_NEAR((*bp4)[1], 0.0, 1e-9);
  EXPECT_NEAR((*bp4)[2], 0.6745, 1e-3);
  auto bp5 = Breakpoints(5);
  ASSERT_TRUE(bp5.ok());
  EXPECT_NEAR((*bp5)[0], -0.8416, 1e-3);
  EXPECT_NEAR((*bp5)[3], 0.8416, 1e-3);
}

TEST(BreakpointsTest, RejectsInvalidAlphabet) {
  EXPECT_FALSE(Breakpoints(1).ok());
  EXPECT_FALSE(Breakpoints(27).ok());
  EXPECT_TRUE(Breakpoints(2).ok());
  EXPECT_TRUE(Breakpoints(26).ok());
}

// Property: breakpoints are strictly increasing for every alphabet size.
class BreakpointMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(BreakpointMonotonicityTest, StrictlyIncreasing) {
  auto bp = Breakpoints(GetParam());
  ASSERT_TRUE(bp.ok());
  for (size_t i = 1; i < bp->size(); ++i) {
    EXPECT_LT((*bp)[i - 1], (*bp)[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlphabets, BreakpointMonotonicityTest,
                         ::testing::Range(2, 27));

TEST(SymbolLevelsTest, LevelsAreMonotoneAndSymmetric) {
  auto levels = SymbolLevels(4);
  ASSERT_TRUE(levels.ok());
  ASSERT_EQ(levels->size(), 4u);
  for (size_t i = 1; i < levels->size(); ++i) {
    EXPECT_LT((*levels)[i - 1], (*levels)[i]);
  }
  // Symmetric alphabet: level_i == -level_{t-1-i}.
  EXPECT_NEAR((*levels)[0], -(*levels)[3], 1e-9);
  EXPECT_NEAR((*levels)[1], -(*levels)[2], 1e-9);
}

TEST(SymbolLevelsTest, LevelsAverageToZero) {
  // Equal-mass bands of a standard normal: E[X] = 0 = mean of band means.
  for (int t = 2; t <= 8; ++t) {
    auto levels = SymbolLevels(t);
    ASSERT_TRUE(levels.ok());
    double sum = 0.0;
    for (double l : *levels) sum += l;
    EXPECT_NEAR(sum / t, 0.0, 1e-9) << "t=" << t;
  }
}

TEST(PaaTest, ExactSegments) {
  auto paa = PiecewiseAggregate({1, 1, 2, 2, 3, 3}, 2);
  ASSERT_TRUE(paa.ok());
  EXPECT_EQ(*paa, (std::vector<double>{1, 2, 3}));
}

TEST(PaaTest, RaggedFinalSegment) {
  auto paa = PiecewiseAggregate({2, 4, 6, 8, 10}, 2);
  ASSERT_TRUE(paa.ok());
  ASSERT_EQ(paa->size(), 3u);
  EXPECT_DOUBLE_EQ((*paa)[0], 3.0);
  EXPECT_DOUBLE_EQ((*paa)[1], 7.0);
  EXPECT_DOUBLE_EQ((*paa)[2], 10.0);  // lone element
}

TEST(PaaTest, SegmentLongerThanSeries) {
  auto paa = PiecewiseAggregate({1, 2, 3}, 10);
  ASSERT_TRUE(paa.ok());
  ASSERT_EQ(paa->size(), 1u);
  EXPECT_DOUBLE_EQ((*paa)[0], 2.0);
}

TEST(PaaTest, InvalidInputs) {
  EXPECT_FALSE(PiecewiseAggregate({}, 2).ok());
  EXPECT_FALSE(PiecewiseAggregate({1.0}, 0).ok());
}

TEST(SaxTest, PaperFigure3Example) {
  // Reconstruct the paper's Fig. 3: m = 128, w = 8, t = 3 gives the word
  // "aaaccccccbbbbaaa". Build a pre-normalized series whose segment means
  // fall in the right bands (a < -0.43, -0.43 <= b < 0.43, c >= 0.43).
  std::string expected = "aaaccccccbbbbaaa";
  std::vector<double> values;
  for (char c : expected) {
    double level = c == 'a' ? -1.0 : (c == 'b' ? 0.0 : 1.0);
    for (int i = 0; i < 8; ++i) values.push_back(level);
  }
  ASSERT_EQ(values.size(), 128u);
  auto sax = SaxTransformer::Create(3, 8, /*z_normalize=*/false);
  ASSERT_TRUE(sax.ok());
  auto word = sax->Transform(values);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(SequenceToString(*word), expected);
  // And Compressive SAX reduces it to "acba" (§III-B).
  EXPECT_EQ(SequenceToString(CompressSax(*word)), "acba");
}

TEST(SaxTest, ZNormalizationMakesScaleInvariant) {
  std::vector<double> base = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<double> scaled;
  for (double v : base) scaled.push_back(10.0 * v + 100.0);
  auto sax = SaxTransformer::Create(4, 2, /*z_normalize=*/true);
  ASSERT_TRUE(sax.ok());
  auto a = sax->Transform(base);
  auto b = sax->Transform(scaled);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SaxTest, DiscretizeRespectsBreakpoints) {
  auto sax = SaxTransformer::Create(3, 1, false);
  ASSERT_TRUE(sax.ok());
  EXPECT_EQ(sax->Discretize(-1.0), 0);
  EXPECT_EQ(sax->Discretize(0.0), 1);
  EXPECT_EQ(sax->Discretize(1.0), 2);
}

TEST(SaxTest, TransformEmptyFails) {
  auto sax = SaxTransformer::Create(3, 2, true);
  ASSERT_TRUE(sax.ok());
  EXPECT_FALSE(sax->Transform({}).ok());
}

TEST(SaxTest, ReconstructExpandsSymbolsToLevels) {
  auto sax = SaxTransformer::Create(3, 4, false);
  ASSERT_TRUE(sax.ok());
  Sequence word = {0, 2};
  auto rec = sax->Reconstruct(word);
  ASSERT_EQ(rec.size(), 8u);
  EXPECT_LT(rec[0], 0.0);   // symbol 'a' level is negative
  EXPECT_GT(rec[4], 0.0);   // symbol 'c' level is positive
  EXPECT_DOUBLE_EQ(rec[0], rec[3]);
}

TEST(SaxTest, RoundTripRecoversWord) {
  // Transforming a reconstruction yields the original word back (without
  // normalization, levels fall inside their own bands by construction).
  auto sax = SaxTransformer::Create(5, 3, false);
  ASSERT_TRUE(sax.ok());
  Sequence word = {0, 4, 2, 1, 3};
  auto rec = sax->Reconstruct(word);
  auto back = sax->Transform(rec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, word);
}

TEST(CompressiveTest, RemovesRuns) {
  auto s = SequenceFromString("aaabbbcccaaa");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(SequenceToString(CompressSax(*s)), "abca");
}

TEST(CompressiveTest, AlreadyCompressedIsIdentity) {
  auto s = SequenceFromString("abcabc");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(CompressSax(*s), *s);
}

TEST(CompressiveTest, EmptyAndSingle) {
  EXPECT_TRUE(CompressSax({}).empty());
  EXPECT_EQ(CompressSax({3}), (Sequence{3}));
}

TEST(CompressiveTest, IdempotenceProperty) {
  // CompressSax is a projection: applying twice equals applying once.
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    Sequence s;
    size_t len = rng.Index(30);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    Sequence once = CompressSax(s);
    EXPECT_TRUE(IsCompressed(once));
    EXPECT_EQ(CompressSax(once), once);
  }
}

TEST(GridDiscretizerTest, PaperAblationGridHasEightBands) {
  // 0.33-unit intervals from -0.99 to 0.99 -> 7 edges -> 8 bands (§V-J).
  sax::GridDiscretizer grid(0.33, 0.99);
  EXPECT_EQ(grid.alphabet_size(), 8);
}

TEST(GridDiscretizerTest, BandAssignment) {
  sax::GridDiscretizer grid(0.33, 0.99);
  EXPECT_EQ(grid.Discretize(-5.0), 0);
  EXPECT_EQ(grid.Discretize(5.0), 7);
  // Zero sits in the middle of the grid.
  Symbol mid = grid.Discretize(0.0);
  EXPECT_GT(mid, 0);
  EXPECT_LT(mid, 7);
}

TEST(GridDiscretizerTest, MonotoneInValue) {
  sax::GridDiscretizer grid(0.33, 0.99);
  Symbol prev = 0;
  for (double v = -2.0; v <= 2.0; v += 0.01) {
    Symbol s = grid.Discretize(v);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(GridDiscretizerTest, TransformWholeSeries) {
  sax::GridDiscretizer grid(0.5, 1.0);
  Sequence word = grid.Transform({-2.0, 0.0, 2.0});
  ASSERT_EQ(word.size(), 3u);
  EXPECT_LT(word[0], word[1]);
  EXPECT_LT(word[1], word[2]);
}

}  // namespace
}  // namespace privshape
