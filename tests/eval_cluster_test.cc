#include <gtest/gtest.h>

#include <set>

#include "eval/agglomerative.h"
#include "eval/kmedoids.h"

namespace privshape {
namespace {

using eval::AgglomerativeCluster;
using eval::KMedoids;
using eval::Linkage;

/// Distance matrix with two obvious groups: {0,1,2} tight, {3,4} tight,
/// large separation between groups.
std::vector<std::vector<double>> TwoGroupMatrix() {
  const double kNear = 1.0, kFar = 50.0;
  std::vector<std::vector<double>> d(5, std::vector<double>(5, 0.0));
  auto set = [&](size_t i, size_t j, double v) { d[i][j] = d[j][i] = v; };
  set(0, 1, kNear);
  set(0, 2, kNear);
  set(1, 2, kNear);
  set(3, 4, kNear);
  for (size_t i : {0u, 1u, 2u}) {
    for (size_t j : {3u, 4u}) set(i, j, kFar);
  }
  return d;
}

TEST(AgglomerativeTest, RecoversTwoGroups) {
  for (Linkage linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    auto labels = AgglomerativeCluster(TwoGroupMatrix(), 2, linkage);
    ASSERT_TRUE(labels.ok());
    EXPECT_EQ((*labels)[0], (*labels)[1]);
    EXPECT_EQ((*labels)[1], (*labels)[2]);
    EXPECT_EQ((*labels)[3], (*labels)[4]);
    EXPECT_NE((*labels)[0], (*labels)[3]);
  }
}

TEST(AgglomerativeTest, KEqualsNLeavesSingletons) {
  auto labels = AgglomerativeCluster(TwoGroupMatrix(), 5);
  ASSERT_TRUE(labels.ok());
  std::set<int> distinct(labels->begin(), labels->end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(AgglomerativeTest, KEqualsOneMergesAll) {
  auto labels = AgglomerativeCluster(TwoGroupMatrix(), 1);
  ASSERT_TRUE(labels.ok());
  for (int l : *labels) EXPECT_EQ(l, (*labels)[0]);
}

TEST(AgglomerativeTest, RejectsInvalidInputs) {
  EXPECT_FALSE(AgglomerativeCluster({}, 1).ok());
  EXPECT_FALSE(AgglomerativeCluster(TwoGroupMatrix(), 0).ok());
  EXPECT_FALSE(AgglomerativeCluster(TwoGroupMatrix(), 6).ok());
  std::vector<std::vector<double>> ragged = {{0.0, 1.0}, {1.0}};
  EXPECT_FALSE(AgglomerativeCluster(ragged, 1).ok());
}

TEST(AgglomerativeTest, LabelsAreContiguousFromZero) {
  auto labels = AgglomerativeCluster(TwoGroupMatrix(), 2);
  ASSERT_TRUE(labels.ok());
  std::set<int> distinct(labels->begin(), labels->end());
  EXPECT_EQ(distinct.size(), 2u);
  EXPECT_TRUE(distinct.count(0));
  EXPECT_TRUE(distinct.count(1));
}

TEST(KMedoidsTest, RecoversTwoGroups) {
  auto result = KMedoids(TwoGroupMatrix(), 2, /*seed=*/3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignments[0], result->assignments[1]);
  EXPECT_EQ(result->assignments[1], result->assignments[2]);
  EXPECT_EQ(result->assignments[3], result->assignments[4]);
  EXPECT_NE(result->assignments[0], result->assignments[3]);
}

TEST(KMedoidsTest, MedoidsAreMembers) {
  auto result = KMedoids(TwoGroupMatrix(), 2, 4);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->medoids.size(), 2u);
  for (size_t m : result->medoids) EXPECT_LT(m, 5u);
}

TEST(KMedoidsTest, CostIsSumOfAssignedDistances) {
  auto result = KMedoids(TwoGroupMatrix(), 2, 5);
  ASSERT_TRUE(result.ok());
  // Optimal cost: each non-medoid point sits at distance 1 from its
  // medoid: 2 points in the triple + 1 in the pair = 3.
  EXPECT_NEAR(result->total_cost, 3.0, 1e-9);
}

TEST(KMedoidsTest, RejectsInvalidInputs) {
  EXPECT_FALSE(KMedoids({}, 1).ok());
  EXPECT_FALSE(KMedoids(TwoGroupMatrix(), 0).ok());
  EXPECT_FALSE(KMedoids(TwoGroupMatrix(), 9).ok());
}

}  // namespace
}  // namespace privshape
