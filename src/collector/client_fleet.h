/// \file
/// Module `collector` — the serving layer over the protocol: a sharded,
/// multi-threaded collection server that drives Algorithm 2's four rounds
/// (P_a..P_d) over a simulated fleet of clients. Invariant: for a fixed
/// fleet seed the extracted shapes are byte-identical to the
/// single-threaded core pipeline, for any shard/thread count.

#ifndef PRIVSHAPE_COLLECTOR_CLIENT_FLEET_H_
#define PRIVSHAPE_COLLECTOR_CLIENT_FLEET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "distance/distance.h"
#include "protocol/session.h"
#include "series/sequence.h"

namespace privshape::collector {

/// A simulated fleet of `num_users` clients, materialized lazily: the
/// fleet holds only a word-synthesis function and a base seed, and builds
/// user u's ClientSession on demand with randomness derived from
/// DeriveSeed(seed, u). Memory per in-flight user is O(word length), so a
/// million-user fleet costs nothing until its users are asked to answer —
/// and every materialization of the same user yields the same session.
class ClientFleet {
 public:
  /// Synthesizes user u's private compressed word. Must be deterministic
  /// in u and thread-safe (it is called concurrently from round workers).
  using WordFn = std::function<Sequence(size_t user)>;

  /// User u's private class label in [0, num_classes), required by the
  /// classification refinement round. Same contract as WordFn
  /// (deterministic, thread-safe); a null LabelFn means the fleet is
  /// unlabeled and can only serve the clustering protocol.
  using LabelFn = std::function<int(size_t user)>;

  ClientFleet(size_t num_users, WordFn word_fn, dist::Metric metric,
              uint64_t seed, LabelFn label_fn = nullptr)
      : num_users_(num_users),
        word_fn_(std::move(word_fn)),
        label_fn_(std::move(label_fn)),
        metric_(metric),
        seed_(seed) {}

  /// Fleet over a fixed word list, tiled when `num_users` exceeds it.
  /// The list is captured by value (words are tiny); use the WordFn
  /// constructor to avoid materializing giant fleets. A non-empty
  /// `labels` list (which must be the same length as `words`) is tiled
  /// identically, so user u keeps the label of its word.
  static ClientFleet FromWords(std::vector<Sequence> words,
                               size_t num_users, dist::Metric metric,
                               uint64_t seed,
                               std::vector<int> labels = {});

  /// The tiling WordFn FromWords is built on (modulo indexing; an empty
  /// list yields empty words), reusable where only the word source is
  /// needed.
  static WordFn TiledWords(std::vector<Sequence> words);

  /// The matching label tiler (same modulo as TiledWords, so a label
  /// always rides with its word). An empty list yields a null LabelFn —
  /// an unlabeled fleet.
  static LabelFn TiledLabels(std::vector<int> labels);

  size_t num_users() const { return num_users_; }
  dist::Metric metric() const { return metric_; }
  uint64_t seed() const { return seed_; }

  /// True when the fleet carries per-user labels (classification can be
  /// served over the wire).
  bool labeled() const { return label_fn_ != nullptr; }

  /// Materializes user u's client endpoint. The session owns the user's
  /// word, label (-1 when unlabeled), and a per-user Rng stream; the
  /// caller drives exactly one Answer* call on it (each user belongs to
  /// one round's population).
  proto::ClientSession MakeSession(size_t user) const;

  /// User u's word alone (used by the determinism check, which feeds the
  /// same words to the single-threaded core pipeline).
  Sequence WordFor(size_t user) const { return word_fn_(user); }

  /// User u's label, or -1 for an unlabeled fleet.
  int LabelFor(size_t user) const {
    return label_fn_ ? label_fn_(user) : -1;
  }

  /// All words, in user order. O(n) memory — determinism checks only.
  std::vector<Sequence> MaterializeWords() const;

  /// All labels, in user order (empty for an unlabeled fleet).
  std::vector<int> MaterializeLabels() const;

 private:
  size_t num_users_;
  WordFn word_fn_;
  LabelFn label_fn_;
  dist::Metric metric_;
  uint64_t seed_;
};

/// The one word source for generated fleets (the CLI, the throughput
/// bench, and the example all share it — a fleet built from the same
/// `dataset` and `seed` is the same fleet everywhere): user u's raw
/// Trace-/Symbols-style instance (class u mod #classes) is synthesized
/// from a data stream derived off `seed` — deliberately disjoint from the
/// per-user privacy streams DeriveSeed(seed, u) — then pushed through the
/// paper's Compressive-SAX transform (Trace: t=4/w=10; Symbols: t=6/w=25).
/// `dataset` must be "trace" or "symbols".
Result<ClientFleet::WordFn> GeneratedWordSource(const std::string& dataset,
                                                uint64_t seed);

/// The matching label source for generated fleets: user u's ground-truth
/// class is `u % classes` (trace: 3, symbols: 6) — exactly the class its
/// GeneratedWordSource instance was synthesized from, so a labeled fleet
/// built from both functions is self-consistent.
Result<ClientFleet::LabelFn> GeneratedLabelSource(const std::string& dataset);

/// Class count of a generated dataset (trace: 3, symbols: 6).
Result<int> GeneratedNumClasses(const std::string& dataset);

/// Paper-default mechanism configuration for a generated dataset (§V-B3):
/// Trace t=4/k=3/ell_high=10/SED, Symbols t=6/k=6/ell_high=15/DTW. Both
/// the in-process collector CLI and the daemon/loadgen pair start from
/// this one helper, so a dataset name means the same mechanism everywhere.
Result<core::MechanismConfig> GeneratedDatasetConfig(
    const std::string& dataset);

/// Parses a single-column CSV of integer class labels (one per row) and
/// validates every value against [0, num_classes) at ingest time — a bad
/// label is a clear InvalidArgument here, never a failure deep inside the
/// refinement round. Multi-column rows are rejected.
Result<std::vector<int>> ParseLabelsCsv(const std::string& text,
                                        int num_classes);

}  // namespace privshape::collector

#endif  // PRIVSHAPE_COLLECTOR_CLIENT_FLEET_H_
