/// \file
/// Module `distance` — distances between SAX words (DTW, SED, Euclidean,
/// Hausdorff; §V-H ablation). Symbols are treated as ordinal, charging
/// |a - b| per aligned pair. Invariant: all metrics are symmetric and
/// non-negative; only Euclidean requires equal lengths.

#ifndef PRIVSHAPE_DISTANCE_DISTANCE_H_
#define PRIVSHAPE_DISTANCE_DISTANCE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "series/sequence.h"

namespace privshape::dist {

/// Distance metrics the paper evaluates (§V-H). DTW is the clustering
/// default (Symbols), SED the classification default (Trace).
enum class Metric { kDtw, kSed, kEuclidean, kHausdorff };

/// Parses "dtw" / "sed" / "euclidean" / "hausdorff".
Result<Metric> MetricFromString(const std::string& name);
const char* MetricName(Metric metric);

/// Distance between two SAX words. Symbols are ordinal, so metrics charge
/// |a - b| per aligned symbol pair unless stated otherwise.
class SequenceDistance {
 public:
  virtual ~SequenceDistance() = default;
  virtual double Distance(const Sequence& a, const Sequence& b) const = 0;
  virtual Metric metric() const = 0;
};

/// Factory for the metric implementations below.
std::unique_ptr<SequenceDistance> MakeDistance(Metric metric);

/// Dynamic time warping with per-pair cost |a - b|; optional Sakoe-Chiba
/// band (band < 0 disables it). Satisfies the relaxed decomposition
/// dist(S,S') <= dist(PRE,PRE') + dist(SUF,SUF') used by Lemma 1.
double DtwSymbolic(const Sequence& a, const Sequence& b, int band = -1);

/// Levenshtein string edit distance with unit insert/delete/substitute.
double EditDistance(const Sequence& a, const Sequence& b);

/// Euclidean distance; the shorter word is padded with its final symbol so
/// sequences of different compressed lengths remain comparable.
double EuclideanSymbolic(const Sequence& a, const Sequence& b);

/// Hausdorff distance over the point sets {(i, a_i)}; index coordinates are
/// scaled into [0, 1] so long words are not dominated by the time axis.
double HausdorffSymbolic(const Sequence& a, const Sequence& b);

/// Numeric DTW (|x - y| cost) used when matching reconstructed shapes
/// against numeric centroids, as the paper does in Figs. 8/10.
double DtwNumeric(const std::vector<double>& a, const std::vector<double>& b,
                  int band = -1);

/// Numeric L2 distance; requires equal lengths.
Result<double> EuclideanNumeric(const std::vector<double>& a,
                                const std::vector<double>& b);

}  // namespace privshape::dist

#endif  // PRIVSHAPE_DISTANCE_DISTANCE_H_
