#include "series/generators.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace privshape::series {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Gaussian bump centred at c with width w, evaluated at x in [0,1].
double Bump(double x, double c, double w) {
  double d = (x - c) / w;
  return std::exp(-0.5 * d * d);
}

std::vector<double> AddNoiseAndScale(std::vector<double> base,
                                     const GeneratorOptions& options,
                                     Rng* rng) {
  double scale = 1.0 + rng->Uniform(-options.amplitude_jitter,
                                    options.amplitude_jitter);
  for (double& v : base) {
    v = v * scale + rng->Gaussian(0.0, options.noise_stddev);
  }
  if (options.z_normalize) ZNormalize(&base);
  return base;
}

TimeSeries MakeTemplateInstance(int label, size_t length,
                                const GeneratorOptions& options,
                                std::vector<double> (*make_template)(int,
                                                                     size_t),
                                Rng* rng) {
  std::vector<double> base = make_template(label, length);
  base = SmoothTimeWarp(base, options.warp_strength, rng);
  TimeSeries inst;
  inst.values = AddNoiseAndScale(std::move(base), options, rng);
  inst.label = label;
  return inst;
}

Dataset MakeTemplateDataset(const GeneratorOptions& options, int num_classes,
                            size_t length,
                            std::vector<double> (*make_template)(int,
                                                                 size_t)) {
  Dataset out;
  out.instances.reserve(options.num_instances);
  Rng rng(options.seed);
  for (size_t i = 0; i < options.num_instances; ++i) {
    int label = static_cast<int>(i % static_cast<size_t>(num_classes));
    out.instances.push_back(
        MakeTemplateInstance(label, length, options, make_template, &rng));
  }
  return out;
}

}  // namespace

TimeSeries MakeSymbolsInstance(int label, const GeneratorOptions& options,
                               Rng* rng) {
  return MakeTemplateInstance(label, kSymbolsLength, options,
                              &SymbolsTemplate, rng);
}

TimeSeries MakeTraceInstance(int label, const GeneratorOptions& options,
                             Rng* rng) {
  return MakeTemplateInstance(label, kTraceLength, options, &TraceTemplate,
                              rng);
}

std::vector<double> SymbolsTemplate(int label, size_t length) {
  std::vector<double> v(length);
  for (size_t i = 0; i < length; ++i) {
    double x = static_cast<double>(i) / static_cast<double>(length - 1);
    double y = 0.0;
    switch (label) {
      case 0:  // single positive stroke
        y = 2.0 * Bump(x, 0.35, 0.12);
        break;
      case 1:  // single negative stroke, later in the gesture
        y = -2.0 * Bump(x, 0.6, 0.12);
        break;
      case 2:  // up stroke then down stroke
        y = 1.8 * Bump(x, 0.25, 0.09) - 1.8 * Bump(x, 0.7, 0.09);
        break;
      case 3:  // down stroke then up stroke
        y = -1.8 * Bump(x, 0.3, 0.09) + 1.8 * Bump(x, 0.75, 0.09);
        break;
      case 4:  // double positive strokes
        y = 1.5 * Bump(x, 0.25, 0.07) + 1.5 * Bump(x, 0.65, 0.07);
        break;
      case 5:  // slow triangle sweep
        y = 1.5 * (x < 0.5 ? 2.0 * x : 2.0 * (1.0 - x));
        break;
      default:
        y = 0.0;
        break;
    }
    v[i] = y;
  }
  return v;
}

std::vector<double> TraceTemplate(int label, size_t length) {
  std::vector<double> v(length);
  for (size_t i = 0; i < length; ++i) {
    double x = static_cast<double>(i) / static_cast<double>(length - 1);
    double y = 0.0;
    switch (label) {
      case 0: {  // dip then rise to a new level (UCR Trace style)
        if (x < 0.2) {
          y = 0.0;
        } else if (x < 0.35) {
          // pronounced undershoot before the transition
          y = -1.0 * std::sin((x - 0.2) / 0.15 * kPi);
        } else if (x < 0.6) {
          // smooth rise to the upper plateau
          y = 0.5 * (1.0 - std::cos((x - 0.35) / 0.25 * kPi));
        } else {
          y = 1.0;
        }
        break;
      }
      case 1: {  // ramp with second-order overshoot, settling high
        if (x < 0.3) {
          y = 0.0;
        } else {
          double s = (x - 0.3) / 0.7;
          y = 1.0 - std::exp(-5.0 * s) * std::cos(9.0 * s);
        }
        break;
      }
      case 2: {  // damped oscillation returning to a lower level
        if (x < 0.2) {
          y = 1.0;
        } else {
          double s = (x - 0.2) / 0.8;
          y = std::exp(-3.0 * s) * std::cos(14.0 * s);
        }
        break;
      }
      default:
        y = 0.0;
        break;
    }
    v[i] = y;
  }
  return v;
}

std::vector<double> SmoothTimeWarp(const std::vector<double>& values,
                                   double strength, Rng* rng) {
  if (values.size() < 3 || strength <= 0.0) return values;
  // Monotone warp through K interior control points: position p_k of the
  // identity map is displaced by up to `strength` of the inter-knot gap,
  // then the map is piecewise-linearly interpolated and used to resample.
  constexpr int kKnots = 4;
  std::vector<double> knots_in(kKnots + 2), knots_out(kKnots + 2);
  knots_in.front() = knots_out.front() = 0.0;
  knots_in.back() = knots_out.back() = 1.0;
  for (int k = 1; k <= kKnots; ++k) {
    double base = static_cast<double>(k) / (kKnots + 1);
    knots_in[k] = base;
    double gap = 1.0 / (kKnots + 1);
    knots_out[k] = base + rng->Uniform(-strength, strength) * gap;
  }
  // Enforce strict monotonicity of the output knots.
  for (int k = 1; k <= kKnots + 1; ++k) {
    knots_out[k] = std::max(knots_out[k], knots_out[k - 1] + 1e-4);
  }
  double norm = knots_out.back();
  for (double& k : knots_out) k /= norm;

  size_t n = values.size();
  std::vector<double> out(n);
  size_t seg = 0;
  for (size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i) / static_cast<double>(n - 1);
    while (seg + 2 < knots_in.size() && x > knots_in[seg + 1]) ++seg;
    double t = (x - knots_in[seg]) / (knots_in[seg + 1] - knots_in[seg]);
    double warped = knots_out[seg] + t * (knots_out[seg + 1] - knots_out[seg]);
    double pos = warped * static_cast<double>(n - 1);
    size_t lo = std::min(static_cast<size_t>(pos), n - 1);
    size_t hi = std::min(lo + 1, n - 1);
    double frac = pos - static_cast<double>(lo);
    out[i] = values[lo] * (1.0 - frac) + values[hi] * frac;
  }
  return out;
}

Dataset MakeSymbolsDataset(const GeneratorOptions& options) {
  return MakeTemplateDataset(options, /*num_classes=*/6, /*length=*/398,
                             &SymbolsTemplate);
}

Dataset MakeTraceDataset(const GeneratorOptions& options) {
  return MakeTemplateDataset(options, /*num_classes=*/3, /*length=*/275,
                             &TraceTemplate);
}

Dataset MakeTrigWaveDataset(const TrigWaveOptions& options) {
  Dataset out;
  out.instances.reserve(options.num_instances);
  Rng rng(options.seed);
  size_t emit = options.subset_prefix > 0
                    ? std::min(options.subset_prefix, options.length)
                    : options.length;
  for (size_t i = 0; i < options.num_instances; ++i) {
    int label = static_cast<int>(i % 2);
    TimeSeries inst;
    inst.label = label;
    inst.values.resize(emit);
    for (size_t j = 0; j < emit; ++j) {
      double phase =
          2.0 * kPi * static_cast<double>(j) /
          static_cast<double>(options.length);
      double y = label == 0 ? std::sin(phase) : std::cos(phase);
      inst.values[j] = y + rng.Gaussian(0.0, options.noise_stddev);
    }
    if (options.z_normalize) ZNormalize(&inst.values);
    out.instances.push_back(std::move(inst));
  }
  return out;
}

}  // namespace privshape::series
