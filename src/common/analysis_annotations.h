#ifndef PRIVSHAPE_COMMON_ANALYSIS_ANNOTATIONS_H_
#define PRIVSHAPE_COMMON_ANALYSIS_ANNOTATIONS_H_

/// Semantic-contract markers consumed by the PrivShape Analyzer
/// (tools/psa/, driven through tools/analyze.py). They attach
/// machine-checkable contracts to function declarations/definitions:
///
///   PS_REPORT_PATH
///     The function runs on the per-report path: it (transitively)
///     produces, perturbs, or aggregates a client report. Inside it the
///     analyzer bans raw randomness (std::*_distribution, the Rng
///     convenience draws, direct engine operator() access) — engine
///     words may only be consumed through the blessed batched helpers
///     (LazyMt64::FillU64 / Rng::FillU64) or through functions that are
///     themselves annotated — and applies the strict determinism rules
///     (no wall-clock reads, no unordered-container iteration feeding
///     results, no float/text round-trips).
///
///   PS_RNG_CANONICAL
///     The function *defines* a canonical randomness-consumption order
///     (a mechanism's own perturbation routine). Raw Rng draws are
///     allowed inside it — this is the single place the order lives —
///     and report-path code may call it. Every mechanism's Perturb /
///     Select carries this (or the stronger PS_RNG_WORDS below);
///     call sites must go through them, never re-derive the draws.
///
///   PS_RNG_WORDS(n)
///     Implies PS_RNG_CANONICAL, and additionally declares that one
///     call consumes exactly `n` raw engine words. For an integer
///     literal `n` the analyzer cross-checks the declared count against
///     the call graph (FillU64 literals plus annotated callees must sum
///     to `n`, on a straight-line path). A symbolic expression (e.g.
///     PS_RNG_WORDS(domain_size())) documents a data-dependent count;
///     the analyzer then only enforces that every consumption site is
///     blessed. Declaration and definition annotations must agree.
///
/// Under Clang the markers also expand to `annotate` attributes so the
/// libclang engine (and any future AST tooling) sees them natively; on
/// other compilers they vanish. Either way the token-level fallback
/// engine recognizes them by spelling, so the contracts are enforced on
/// every development machine, not just where libclang is installed.
#if defined(__clang__)
#define PS_REPORT_PATH __attribute__((annotate("ps_report_path")))
#define PS_RNG_CANONICAL __attribute__((annotate("ps_rng_canonical")))
#define PS_RNG_WORDS(n) __attribute__((annotate("ps_rng_words=" #n)))
#else
#define PS_REPORT_PATH
#define PS_RNG_CANONICAL
#define PS_RNG_WORDS(n)
#endif

#endif  // PRIVSHAPE_COMMON_ANALYSIS_ANNOTATIONS_H_
