#include "core/pem.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "series/sequence.h"

namespace privshape {
namespace {

using core::PemConfig;
using core::PemMiner;

std::vector<Sequence> PlantedSequences(size_t n, uint64_t seed = 1) {
  std::vector<Sequence> out;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.Uniform();
    if (u < 0.6) {
      out.push_back({0, 1, 2, 0});   // "abca"
    } else if (u < 0.9) {
      out.push_back({2, 1, 0, 2});   // "cbac"
    } else {
      out.push_back({1, 2, 0, 1});   // "bcab"
    }
  }
  return out;
}

PemConfig TestConfig() {
  PemConfig config;
  config.epsilon = 6.0;
  config.t = 3;
  config.k = 2;
  config.keep = 6;
  config.gamma = 2;
  config.ell = 4;
  config.seed = 5;
  return config;
}

TEST(PemTest, ValidatesConfig) {
  PemConfig bad = TestConfig();
  bad.gamma = 0;
  EXPECT_FALSE(PemMiner(bad).Run(PlantedSequences(100)).ok());
  bad = TestConfig();
  bad.keep = 1;  // keep < k
  EXPECT_FALSE(PemMiner(bad).Run(PlantedSequences(100)).ok());
  bad = TestConfig();
  bad.epsilon = 0;
  EXPECT_FALSE(PemMiner(bad).Run(PlantedSequences(100)).ok());
}

TEST(PemTest, RejectsEmptyDataset) {
  EXPECT_FALSE(PemMiner(TestConfig()).Run({}).ok());
}

TEST(PemTest, RecoversPlantedShapeAtHighEps) {
  PemMiner miner(TestConfig());
  auto result = miner.Run(PlantedSequences(6000));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->shapes.size(), 1u);
  EXPECT_EQ(SequenceToString(result->shapes[0].shape), "abca");
}

TEST(PemTest, GammaOneMatchesGammaTwoOnEasyData) {
  auto sequences = PlantedSequences(6000);
  PemConfig g1 = TestConfig();
  g1.gamma = 1;
  PemConfig g2 = TestConfig();
  g2.gamma = 2;
  auto r1 = PemMiner(g1).Run(sequences);
  auto r2 = PemMiner(g2).Run(sequences);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(SequenceToString(r1->shapes[0].shape), "abca");
  EXPECT_EQ(SequenceToString(r2->shapes[0].shape), "abca");
}

TEST(PemTest, OutputLengthMatchesEll) {
  PemMiner miner(TestConfig());
  auto result = miner.Run(PlantedSequences(4000));
  ASSERT_TRUE(result.ok());
  for (const auto& shape : result->shapes) {
    EXPECT_EQ(shape.shape.size(), 4u);
  }
}

TEST(PemTest, RespectsCompressionInvariant) {
  PemMiner miner(TestConfig());
  auto result = miner.Run(PlantedSequences(3000));
  ASSERT_TRUE(result.ok());
  for (const auto& shape : result->shapes) {
    for (size_t i = 1; i < shape.shape.size(); ++i) {
      EXPECT_NE(shape.shape[i], shape.shape[i - 1]);
    }
  }
}

TEST(PemTest, BudgetIsUserLevel) {
  PemMiner miner(TestConfig());
  auto result = miner.Run(PlantedSequences(3000));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->accountant.UserLevelEpsilon(), 6.0 + 1e-9);
}

TEST(PemTest, DeterministicForSeed) {
  auto sequences = PlantedSequences(3000);
  PemMiner miner(TestConfig());
  auto a = miner.Run(sequences);
  auto b = miner.Run(sequences);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->shapes.size(), b->shapes.size());
  for (size_t i = 0; i < a->shapes.size(); ++i) {
    EXPECT_EQ(a->shapes[i].shape, b->shapes[i].shape);
  }
}

TEST(PemTest, AllowRepeatsExpandsDomain) {
  // With repeats allowed the miner can represent runs.
  std::vector<Sequence> sequences(3000, Sequence{0, 0, 1, 1});
  PemConfig config = TestConfig();
  config.t = 2;
  config.allow_repeats = true;
  config.gamma = 2;
  config.ell = 4;
  PemMiner miner(config);
  auto result = miner.Run(sequences);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(SequenceToString(result->shapes[0].shape), "aabb");
}

}  // namespace
}  // namespace privshape
