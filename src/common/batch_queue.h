#ifndef PRIVSHAPE_COMMON_BATCH_QUEUE_H_
#define PRIVSHAPE_COMMON_BATCH_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace privshape {

/// Bounded blocking MPSC queue for handing batches from producers to a
/// drainer.
///
/// The collector's streaming ingestion path runs many report-producing
/// workers against exactly one aggregation drainer per queue — the
/// single-consumer contract is what lets Push skip the consumer wakeup
/// unless the queue was empty (the edge-triggered notify below). Any
/// number of producers is fine. A full queue blocks Push — that is the
/// backpressure that keeps a fast fleet from buffering unbounded report
/// batches ahead of a slow drainer.
///
/// Shutdown protocol: producers finish, the coordinator calls Close(),
/// the consumer drains the remaining items and then sees Pop return
/// false. Items pushed before Close are never lost.
template <typename T>
class BatchQueue {
 public:
  /// `capacity` is the maximum number of queued items; 0 means unbounded.
  explicit BatchQueue(size_t capacity) : capacity_(capacity) {}

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `item`) only
  /// when the queue was closed.
  bool Push(T item) PS_EXCLUDES(mu_) {
    bool was_empty;
    {
      MutexLock lock(&mu_);
      while (!closed_ && capacity_ != 0 && items_.size() >= capacity_) {
        not_full_.Wait(&mu_);
      }
      if (closed_) return false;
      was_empty = items_.empty();
      items_.push_back(std::move(item));
      if (depth_ != nullptr) {
        depth_->store(static_cast<int64_t>(items_.size()),
                      std::memory_order_relaxed);
      }
    }
    // Edge-triggered: the (single) consumer can only be asleep when it
    // saw an empty queue, so steady-state pushes skip the syscall and the
    // consumer drains whole bursts per wakeup instead of one item each.
    if (was_empty) not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while the queue is empty and open. Returns false only when the
  /// queue is closed AND fully drained. Single consumer at a time.
  bool Pop(T* out) PS_EXCLUDES(mu_) {
    bool was_full;
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.empty()) {
        not_empty_.Wait(&mu_);
      }
      if (items_.empty()) return false;
      was_full = capacity_ != 0 && items_.size() >= capacity_;
      *out = std::move(items_.front());
      items_.pop_front();
      if (depth_ != nullptr) {
        depth_->store(static_cast<int64_t>(items_.size()),
                      std::memory_order_relaxed);
      }
    }
    // Producers only sleep on a full queue; NotifyAll (not One) because
    // several may be blocked on the same full->not-full edge.
    if (was_full) not_full_.NotifyAll();
    return true;
  }

  /// Wakes every blocked Push/Pop; queued items remain poppable.
  void Close() PS_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  size_t capacity() const { return capacity_; }

  /// Optional observability hook: when set, the queue mirrors its current
  /// depth into `*gauge` (relaxed stores under the queue mutex). The
  /// pointer must outlive the queue; pass a telemetry Gauge's raw atomic
  /// so common/ stays free of a telemetry dependency. Call before any
  /// producer or consumer starts.
  void set_depth_gauge(std::atomic<int64_t>* gauge) PS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    depth_ = gauge;
  }

  /// Items currently queued (a racy snapshot under concurrency).
  size_t size() const PS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ PS_GUARDED_BY(mu_);
  const size_t capacity_;
  bool closed_ PS_GUARDED_BY(mu_) = false;
  std::atomic<int64_t>* depth_ PS_GUARDED_BY(mu_) = nullptr;
};

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_BATCH_QUEUE_H_
