#include "collector/daemon.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>

#include "common/batch_queue.h"
#include "common/logging.h"
#include "common/shutdown.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace privshape::collector {

namespace {

/// Poller tag of the listening socket (connection tags are conns_
/// indices, which can never reach this).
constexpr uint64_t kListenerTag = ~uint64_t{0};

/// Tag base of the stats endpoint: far above any realistic conns_ index,
/// below kListenerTag, so the three tag families never collide.
constexpr uint64_t kStatsTagBase = uint64_t{1} << 62;

/// Daemon-side instruments, resolved once per process (relaxed-atomic
/// record path thereafter, per the registry contract).
struct DaemonInstruments {
  telemetry::Counter* accepted;
  telemetry::Counter* handshakes;
  telemetry::Counter* disconnects;
  telemetry::Counter* protocol_errors;
  telemetry::Counter* stale_batches;
  telemetry::Counter* deadline_drops;
  telemetry::Gauge* live_connections;
  telemetry::Gauge* current_round;

  static DaemonInstruments& Get() {
    static DaemonInstruments inst = [] {
      telemetry::Registry& reg = telemetry::Registry::Default();
      return DaemonInstruments{
          reg.GetCounter("daemon_connections_accepted_total"),
          reg.GetCounter("daemon_handshakes_total"),
          reg.GetCounter("daemon_disconnects_total"),
          reg.GetCounter("daemon_protocol_errors_total"),
          reg.GetCounter("daemon_stale_batches_total"),
          reg.GetCounter("daemon_deadline_drops_total"),
          reg.GetGauge("daemon_connections_live"),
          reg.GetGauge("daemon_current_round")};
    }();
    return inst;
  }
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The drainer-side depth gauge for the daemon's queue `d`.
std::atomic<int64_t>* DaemonQueueDepthGauge(size_t d) {
  return telemetry::Registry::Default()
      .GetGauge("daemon_queue_depth_d" + std::to_string(d))
      ->raw();
}

/// How long the event loop sleeps per poll iteration while a round (or
/// the accept phase) is in flight: short enough that deadlines and the
/// shutdown flag are honored promptly.
constexpr int kPollMs = 50;

/// How long BroadcastComplete keeps flushing buffered frames before
/// giving up on a non-draining client.
constexpr double kFlushTimeoutSeconds = 5.0;

/// One queued unit of the ingestion pipeline, identical in shape to the
/// in-process coordinator's: a flat batch of encoded reports bound for
/// one aggregation lane.
struct ShardBatch {
  size_t shard = 0;
  proto::ReportBatch reports;
};

/// RoundRunner returns RoundOutcome, not Status — a fatal transport
/// failure mid-protocol (every client gone, epoll broken) escapes the
/// runner as this exception and Serve converts it back into a Status.
struct DaemonAbort {
  Status status;
};

/// Non-blocking send of as much of `data` as the socket accepts right
/// now. Returns the byte count (0 = the socket is full, try again on
/// EPOLLOUT); a peer that vanished surfaces as a status, never SIGPIPE.
Result<size_t> SendSome(int fd, std::string_view data) {
  while (true) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
}

struct RecvOutcome {
  size_t n = 0;
  bool eof = false;
  bool again = false;
};

/// Non-blocking read of up to `cap` bytes, with EOF and would-block
/// reported as distinct non-error outcomes.
Result<RecvOutcome> RecvSome(int fd, void* buf, size_t cap) {
  while (true) {
    ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) return RecvOutcome{static_cast<size_t>(n), false, false};
    if (n == 0) return RecvOutcome{0, true, false};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return RecvOutcome{0, false, true};
    }
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
}

}  // namespace

/// One client connection's whole lifecycle. Dead connections keep their
/// slot (fd closed, dead = true) so the round accounting can still read
/// how far they got.
struct CollectorDaemon::Connection {
  UniqueFd fd;
  uint64_t id = 0;
  net::FrameReader reader;
  std::string outbox;        ///< frame bytes the socket has not accepted yet
  bool want_write = false;   ///< EPOLLOUT armed for the outbox backlog
  bool handshaked = false;
  bool dead = false;

  // Per-round state, reset by RunNetworkRound.
  size_t round_index = 0;    ///< participant index -> aggregation lane
  size_t assigned = 0;       ///< users this connection answers for
  size_t uploaded = 0;       ///< reports received this round
  bool done = false;         ///< RoundDone barrier reached
  uint64_t done_errors = 0;  ///< client-reported answer failures

  /// TraceNowUs() at accept: the start of this connection's trace span.
  double connected_at_us = 0.0;

  /// Ends the connection's lifetime span (no-op unless tracing is on);
  /// called exactly once, when the connection dies.
  void RecordLifetimeSpan() const {
    if (auto* trace = telemetry::GlobalTrace()) {
      trace->RecordSpan("conn." + std::to_string(id), "connection",
                        connected_at_us, telemetry::TraceNowUs());
    }
  }
};

/// In-flight round plumbing HandleBatchUpload routes into.
struct CollectorDaemon::RoundState {
  uint64_t round_id = 0;
  size_t num_shards = 1;
  size_t num_drainers = 1;
  std::vector<std::unique_ptr<BatchQueue<ShardBatch>>>* queues = nullptr;
};

CollectorDaemon::CollectorDaemon(core::MechanismConfig config,
                                 size_t num_users, DaemonOptions options)
    : config_(config), num_users_(num_users), options_(std::move(options)) {}

CollectorDaemon::~CollectorDaemon() = default;

size_t CollectorDaemon::EffectiveDrainers() const {
  return options_.num_drainers > 0 ? options_.num_drainers : 1;
}

size_t CollectorDaemon::EffectiveShards() const {
  return options_.num_shards > 0 ? options_.num_shards : EffectiveDrainers();
}

Status CollectorDaemon::Start() {
  if (listener_.valid()) return Status::Ok();
  if (!poller_.valid()) return Status::Internal("epoll_create1 failed");
  if (num_users_ == 0) return Status::InvalidArgument("empty fleet");
  auto listener = TcpListen(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  PRIVSHAPE_RETURN_IF_ERROR(SetNonBlocking(listener_.get()));
  auto port = LocalPort(listener_.get());
  if (!port.ok()) return port.status();
  port_ = *port;
  PRIVSHAPE_RETURN_IF_ERROR(poller_.Add(listener_.get(), kListenerTag));
  if (options_.stats_enabled) {
    stats_endpoint_ = std::make_unique<telemetry::StatsEndpoint>(
        &poller_, kStatsTagBase,
        [this](std::string_view path) { return StatsContent(path); });
    PRIVSHAPE_RETURN_IF_ERROR(
        stats_endpoint_->Start(options_.host, options_.stats_port));
    PS_LOG(kInfo, "daemon") << "stats endpoint listening"
                            << Kv("port", stats_endpoint_->port());
  }
  return Status::Ok();
}

std::string CollectorDaemon::StatsContent(std::string_view path) {
  if (path == "/metrics") {
    return telemetry::Registry::Default().TextExposition();
  }
  // Everything else gets the JSON snapshot: the registry plus the
  // daemon's live protocol position. ContentFn runs on the event-loop
  // thread, so these reads never race the handlers that write them.
  JsonValue doc = JsonValue::Object();
  JsonValue daemon = JsonValue::Object();
  daemon.Set("round", JsonValue::Uint(current_round_));
  daemon.Set("round_in_flight", JsonValue::Bool(round_ != nullptr));
  daemon.Set("live_connections", JsonValue::Uint(LiveHandshaked()));
  daemon.Set("connections_accepted",
             JsonValue::Uint(stats_.connections_accepted));
  daemon.Set("handshakes", JsonValue::Uint(stats_.handshakes));
  daemon.Set("disconnects", JsonValue::Uint(stats_.disconnects));
  daemon.Set("protocol_errors", JsonValue::Uint(stats_.protocol_errors));
  daemon.Set("stale_batches", JsonValue::Uint(stats_.stale_batches));
  daemon.Set("deadline_drops", JsonValue::Uint(stats_.deadline_drops));
  doc.Set("daemon", std::move(daemon));
  doc.Set("registry", telemetry::Registry::Default().JsonSnapshot());
  return doc.Dump(2);
}

size_t CollectorDaemon::LiveHandshaked() const {
  size_t live = 0;
  for (const auto& conn : conns_) {
    if (conn != nullptr && !conn->dead && conn->handshaked) ++live;
  }
  return live;
}

void CollectorDaemon::AcceptPending() {
  while (true) {
    auto accepted = TcpAccept(listener_.get());
    if (!accepted.ok()) {
      PS_LOG(kWarning) << "accept failed: " << accepted.status().ToString();
      return;
    }
    if (!accepted->valid()) return;  // drained the backlog
    UniqueFd fd = std::move(*accepted);
    if (!SetNonBlocking(fd.get()).ok() || !SetNoDelay(fd.get()).ok()) {
      continue;  // the fd closes on scope exit
    }
    auto conn = std::make_unique<Connection>();
    conn->id = conns_.size();
    conn->fd = std::move(fd);
    conn->connected_at_us = telemetry::TraceNowUs();
    if (!poller_.Add(conn->fd.get(), conn->id).ok()) continue;
    ++stats_.connections_accepted;
    DaemonInstruments::Get().accepted->Add(1);
    conns_.push_back(std::move(conn));
  }
}

void CollectorDaemon::SendFrame(Connection& conn, net::MsgType type,
                                std::string_view body) {
  if (conn.dead) return;
  net::AppendFrame(type, body, &conn.outbox);
  FlushOutbox(conn);
}

void CollectorDaemon::FlushOutbox(Connection& conn) {
  if (conn.dead) return;
  while (!conn.outbox.empty()) {
    auto sent = SendSome(conn.fd.get(), conn.outbox);
    if (!sent.ok()) {
      DropConnection(conn, sent.status().message(), false);
      return;
    }
    if (*sent == 0) break;  // socket full; resume on EPOLLOUT
    conn.outbox.erase(0, *sent);
  }
  bool want_write = !conn.outbox.empty();
  if (want_write != conn.want_write) {
    conn.want_write = want_write;
    poller_.Modify(conn.fd.get(), conn.id, want_write);
  }
}

void CollectorDaemon::DropConnection(Connection& conn,
                                     const std::string& reason,
                                     bool protocol_error) {
  if (conn.dead) return;
  DaemonInstruments& inst = DaemonInstruments::Get();
  if (protocol_error) {
    ++stats_.protocol_errors;
    inst.protocol_errors->Add(1);
    if (auto* trace = telemetry::GlobalTrace()) {
      trace->RecordInstant("protocol_error.conn." + std::to_string(conn.id),
                           "connection");
    }
    // Best-effort: tell the peer why before the reset; if the socket
    // won't take it now, it never will.
    std::string frame;
    net::AppendFrame(net::MsgType::kError, net::EncodeError(reason), &frame);
    SendSome(conn.fd.get(), frame);
  }
  PS_LOG(kInfo, "daemon") << "dropping connection " << conn.id << ": "
                          << reason;
  poller_.Remove(conn.fd.get());
  conn.fd.Reset();
  conn.dead = true;
  ++stats_.disconnects;
  inst.disconnects->Add(1);
  if (conn.handshaked) inst.live_connections->Sub(1);
  conn.RecordLifetimeSpan();
}

void CollectorDaemon::HandleReadable(Connection& conn) {
  char buf[64 * 1024];
  while (!conn.dead) {
    auto read = RecvSome(conn.fd.get(), buf, sizeof(buf));
    if (!read.ok()) {
      DropConnection(conn, read.status().message(), false);
      return;
    }
    if (read->again) return;
    if (read->eof) {
      DropConnection(conn, "peer closed the connection", false);
      return;
    }
    conn.reader.Append(std::string_view(buf, read->n));
    net::Frame frame;
    while (!conn.dead) {
      auto next = conn.reader.Next(&frame);
      if (!next.ok()) {
        DropConnection(conn, next.status().message(), true);
        return;
      }
      if (!*next) break;
      HandleFrame(conn, frame);
    }
  }
}

void CollectorDaemon::HandleFrame(Connection& conn, const net::Frame& frame) {
  if (!conn.handshaked) {
    HandleHello(conn, frame);
    return;
  }
  switch (frame.type) {
    case net::MsgType::kBatchUpload:
      HandleBatchUpload(conn, frame);
      return;
    case net::MsgType::kRoundDone:
      HandleRoundDone(conn, frame);
      return;
    default:
      DropConnection(conn,
                     "unexpected frame type " +
                         std::to_string(static_cast<uint64_t>(frame.type)),
                     true);
  }
}

void CollectorDaemon::HandleHello(Connection& conn, const net::Frame& frame) {
  if (frame.type != net::MsgType::kHello) {
    DropConnection(conn, "expected Hello before any other frame", true);
    return;
  }
  auto hello = net::DecodeHello(frame.payload);
  if (!hello.ok()) {
    DropConnection(conn, hello.status().message(), true);
    return;
  }
  if (hello->fleet_users != num_users_) {
    DropConnection(conn,
                   "fleet size mismatch: client declares " +
                       std::to_string(hello->fleet_users) + ", daemon runs " +
                       std::to_string(num_users_),
                   true);
    return;
  }
  conn.handshaked = true;
  ++stats_.handshakes;
  DaemonInstruments::Get().handshakes->Add(1);
  DaemonInstruments::Get().live_connections->Add(1);
  net::WelcomeMsg welcome;
  welcome.conn_id = conn.id;
  welcome.num_users = num_users_;
  welcome.num_classes = static_cast<uint64_t>(
      config_.num_classes > 0 ? config_.num_classes : 0);
  welcome.seed = config_.seed;
  welcome.epsilon = config_.epsilon;
  SendFrame(conn, net::MsgType::kWelcome, net::EncodeWelcome(welcome));
}

void CollectorDaemon::HandleBatchUpload(Connection& conn,
                                        const net::Frame& frame) {
  auto upload = net::DecodeBatchUpload(frame.payload);
  if (!upload.ok()) {
    DropConnection(conn, upload.status().message(), true);
    return;
  }
  if (round_ == nullptr || upload->round_id != round_->round_id) {
    if (upload->round_id <= current_round_) {
      // A laggard's reports for a round that already completed: the
      // population split makes re-counting them impossible to do
      // exactly, so they are dropped — visibly.
      ++stats_.stale_batches;
      DaemonInstruments::Get().stale_batches->Add(1);
      return;
    }
    DropConnection(conn,
                   "upload for future round " +
                       std::to_string(upload->round_id),
                   true);
    return;
  }
  if (conn.done) {
    DropConnection(conn, "upload after RoundDone", true);
    return;
  }
  if (conn.uploaded + upload->reports.size() > conn.assigned) {
    // Duplicate or forged batches: a connection can never legitimately
    // deliver more reports than it was assigned users.
    DropConnection(conn,
                   "more reports than assigned users (" +
                       std::to_string(conn.uploaded + upload->reports.size()) +
                       " > " + std::to_string(conn.assigned) + ")",
                   true);
    return;
  }
  proto::ReportBatch batch;
  batch.Reserve(upload->reports.size());
  for (std::string_view report : upload->reports) {
    batch.AppendEncoded(report);
  }
  conn.uploaded += upload->reports.size();
  size_t shard = conn.round_index % round_->num_shards;
  // A full queue blocks here — the event loop stops reading sockets and
  // TCP pushes the backpressure down to the clients, exactly like the
  // in-process producers blocking on Push.
  (*round_->queues)[shard % round_->num_drainers]->Push(
      ShardBatch{shard, std::move(batch)});
}

void CollectorDaemon::HandleRoundDone(Connection& conn,
                                      const net::Frame& frame) {
  auto done = net::DecodeRoundDone(frame.payload);
  if (!done.ok()) {
    DropConnection(conn, done.status().message(), true);
    return;
  }
  if (round_ == nullptr || done->round_id != round_->round_id) {
    if (done->round_id <= current_round_) return;  // harmless laggard
    DropConnection(conn,
                   "RoundDone for future round " +
                       std::to_string(done->round_id),
                   true);
    return;
  }
  if (conn.done) {
    DropConnection(conn, "duplicate RoundDone", true);
    return;
  }
  if (done->answered != conn.uploaded) {
    // TCP delivers uploads in order before the barrier message, so a
    // mismatch means lost or fabricated reports — not an exact round.
    DropConnection(conn,
                   "RoundDone declares " + std::to_string(done->answered) +
                       " answers but " + std::to_string(conn.uploaded) +
                       " reports arrived",
                   true);
    return;
  }
  conn.done = true;
  conn.done_errors = done->client_errors;
}

Status CollectorDaemon::ProcessEvents(int timeout_ms) {
  PRIVSHAPE_RETURN_IF_ERROR(poller_.Wait(&events_, timeout_ms));
  for (const PollEvent& event : events_) {
    if (event.tag == kListenerTag) {
      AcceptPending();
      continue;
    }
    if (stats_endpoint_ != nullptr && stats_endpoint_->Owns(event.tag)) {
      // A scrape is served right here, between protocol frames — the
      // "mid-round, without pausing ingestion" property of the endpoint.
      stats_endpoint_->HandleEvent(event);
      continue;
    }
    if (event.tag >= conns_.size()) continue;
    Connection* conn = conns_[event.tag].get();
    if (conn == nullptr || conn->dead) continue;
    if (event.error) {
      DropConnection(*conn, "socket error/hangup", false);
      continue;
    }
    if (event.writable) FlushOutbox(*conn);
    if (!conn->dead && event.readable) HandleReadable(*conn);
  }
  return Status::Ok();
}

RoundOutcome CollectorDaemon::RunNetworkRound(
    const std::vector<size_t>& population, const StageSpec& spec,
    const std::string& encoded_request) {
  ++current_round_;
  std::vector<Connection*> participants;
  for (auto& conn : conns_) {
    if (conn != nullptr && !conn->dead && conn->handshaked) {
      participants.push_back(conn.get());
    }
  }
  if (participants.empty()) {
    throw DaemonAbort{Status::FailedPrecondition(
        "round " + std::to_string(current_round_) +
        ": every client disconnected")};
  }

  size_t num_shards = EffectiveShards();
  size_t num_drainers = std::min(EffectiveDrainers(), num_shards);
  RoundOutcome outcome{ShardedAggregator(spec, num_shards), 0, {}};
  DaemonInstruments::Get().current_round->Set(
      static_cast<int64_t>(current_round_));
  // Per-BATCH ingest latency, shared by the drainers (relaxed atomics);
  // snapshotted into the outcome after the joins.
  auto ingest_hist = std::make_unique<telemetry::Histogram>();

  std::vector<std::unique_ptr<BatchQueue<ShardBatch>>> queues;
  queues.reserve(num_drainers);
  for (size_t d = 0; d < num_drainers; ++d) {
    queues.push_back(
        std::make_unique<BatchQueue<ShardBatch>>(options_.queue_depth));
    queues.back()->set_depth_gauge(DaemonQueueDepthGauge(d));
  }
  // Same drainer topology as the in-process coordinator: drainer d is the
  // only consumer of queue d and the only writer of lanes {s : s % D == d},
  // so aggregation needs no locks and the merge stays exact.
  std::vector<std::exception_ptr> drain_errors(num_drainers);
  std::vector<std::thread> drainers;
  drainers.reserve(num_drainers);
  for (size_t d = 0; d < num_drainers; ++d) {
    drainers.emplace_back([&, d] {
      try {
        ShardBatch item;
        while (queues[d]->Pop(&item)) {
          uint64_t t0 = NowNs();
          outcome.agg.ConsumeBatch(item.shard, item.reports);
          ingest_hist->Record(NowNs() - t0);
        }
      } catch (...) {
        drain_errors[d] = std::current_exception();
        queues[d]->Close();
      }
    });
  }
  auto shutdown_drainers = [&] {
    for (auto& queue : queues) queue->Close();
    for (auto& drainer : drainers) drainer.join();
  };

  RoundState state;
  state.round_id = current_round_;
  state.num_shards = num_shards;
  state.num_drainers = num_drainers;
  state.queues = &queues;
  round_ = &state;

  try {
    // Participant p answers for the contiguous population slice
    // [n*p/P, n*(p+1)/P) — the exact stripe split the in-process rounds
    // use, though the estimates are independent of the partition either
    // way (integer-count merging is order-free).
    size_t n = population.size();
    size_t num_participants = participants.size();
    for (size_t p = 0; p < num_participants; ++p) {
      Connection* conn = participants[p];
      conn->round_index = p;
      size_t begin = n * p / num_participants;
      size_t end = n * (p + 1) / num_participants;
      conn->assigned = end - begin;
      conn->uploaded = 0;
      conn->done = false;
      conn->done_errors = 0;
      net::RoundBeginMsg msg;
      msg.round_id = current_round_;
      msg.kind = spec.kind;
      msg.request = encoded_request;
      msg.users.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        msg.users.push_back(static_cast<uint64_t>(population[i]));
      }
      SendFrame(*conn, net::MsgType::kRoundBegin, net::EncodeRoundBegin(msg));
    }

    double deadline = MonotonicSeconds() + options_.round_deadline_seconds;
    while (true) {
      bool pending = false;
      for (Connection* conn : participants) {
        if (!conn->dead && !conn->done) {
          pending = true;
          break;
        }
      }
      if (!pending) break;
      // A set shutdown flag ends the round with whatever arrived; the
      // queues drain normally below and DriveProtocol turns the flag
      // into Cancelled before any server-side decision.
      if (ShutdownRequested()) break;
      if (MonotonicSeconds() > deadline) {
        for (Connection* conn : participants) {
          if (!conn->dead && !conn->done) {
            ++stats_.deadline_drops;
            DaemonInstruments::Get().deadline_drops->Add(1);
            DropConnection(*conn, "round deadline exceeded", false);
          }
        }
        break;
      }
      Status polled = ProcessEvents(kPollMs);
      if (!polled.ok()) throw DaemonAbort{polled};
    }
  } catch (...) {
    round_ = nullptr;
    shutdown_drainers();
    throw;
  }
  round_ = nullptr;
  shutdown_drainers();
  for (const auto& error : drain_errors) {
    if (error) std::rethrow_exception(error);
  }
  outcome.ingest_latency = ingest_hist->Snapshot();

  // Every assigned-but-undelivered user of a dropped or unfinished
  // connection is a client error: the round completed without them.
  for (Connection* conn : participants) {
    if (conn->done) {
      outcome.client_errors += conn->done_errors;
    } else {
      outcome.client_errors +=
          conn->assigned - std::min(conn->uploaded, conn->assigned);
    }
  }
  return outcome;
}

void CollectorDaemon::BroadcastComplete(const core::MechanismResult& result) {
  net::CompleteMsg msg;
  msg.frequent_length = static_cast<uint64_t>(result.frequent_length);
  msg.shapes.reserve(result.shapes.size());
  for (const auto& shape : result.shapes) {
    msg.shapes.push_back(
        net::WireShape{shape.shape, shape.label, shape.frequency});
  }
  std::string body = net::EncodeComplete(msg);
  for (auto& conn : conns_) {
    if (conn != nullptr && !conn->dead && conn->handshaked) {
      SendFrame(*conn, net::MsgType::kComplete, body);
    }
  }
  // Drain the buffered frames; a client that stopped reading only costs
  // the flush timeout, never a hang.
  double deadline = MonotonicSeconds() + kFlushTimeoutSeconds;
  while (MonotonicSeconds() < deadline) {
    bool draining = false;
    for (auto& conn : conns_) {
      if (conn != nullptr && !conn->dead && !conn->outbox.empty()) {
        draining = true;
        break;
      }
    }
    if (!draining) return;
    if (!ProcessEvents(kPollMs).ok()) return;
  }
}

void CollectorDaemon::CloseAll() {
  for (auto& conn : conns_) {
    if (conn != nullptr && !conn->dead) {
      poller_.Remove(conn->fd.get());
      conn->fd.Reset();
      conn->dead = true;
      if (conn->handshaked) {
        DaemonInstruments::Get().live_connections->Sub(1);
      }
      conn->RecordLifetimeSpan();
    }
  }
  if (stats_endpoint_ != nullptr) stats_endpoint_->Close();
}

Result<core::MechanismResult> CollectorDaemon::Serve(
    CollectorMetrics* metrics) {
  PRIVSHAPE_RETURN_IF_ERROR(Start());

  auto fill_metrics = [&] {
    if (metrics == nullptr) return;
    metrics->ingest = "socket";
    metrics->num_shards = EffectiveShards();
    metrics->num_threads = EffectiveDrainers();
    metrics->queue_depth = options_.queue_depth;
    metrics->connections = stats_.handshakes;
    metrics->disconnects = stats_.disconnects;
    metrics->protocol_errors = stats_.protocol_errors;
    metrics->stale_batches = stats_.stale_batches;
    metrics->deadline_drops = stats_.deadline_drops;
  };

  // Accept phase: wait for the quorum of handshaked clients.
  double accept_deadline =
      MonotonicSeconds() + options_.accept_timeout_seconds;
  while (LiveHandshaked() < options_.min_clients) {
    if (ShutdownRequested()) {
      fill_metrics();
      CloseAll();
      return Status::Cancelled("shutdown requested before rounds started");
    }
    if (MonotonicSeconds() > accept_deadline) {
      fill_metrics();
      CloseAll();
      return Status::FailedPrecondition(
          "accept timeout: " + std::to_string(LiveHandshaked()) + " of " +
          std::to_string(options_.min_clients) +
          " required clients handshaked");
    }
    Status polled = ProcessEvents(kPollMs);
    if (!polled.ok()) {
      fill_metrics();
      CloseAll();
      return polled;
    }
  }
  PS_LOG(kInfo) << "collectord: " << LiveHandshaked()
                << " clients handshaked, starting protocol over "
                << num_users_ << " users";

  Result<core::MechanismResult> result =
      Status::Internal("protocol did not run");
  try {
    result = DriveProtocol(
        config_, num_users_,
        [this](const std::vector<size_t>& population, const StageSpec& spec,
               const std::string& encoded_request, const AnswerFn&) {
          return RunNetworkRound(population, spec, encoded_request);
        },
        metrics);
  } catch (const DaemonAbort& abort) {
    result = abort.status;
  }

  fill_metrics();
  if (result.ok()) {
    BroadcastComplete(*result);
  } else {
    std::string frame;
    net::AppendFrame(net::MsgType::kError,
                     net::EncodeError(result.status().ToString()), &frame);
    for (auto& conn : conns_) {
      if (conn != nullptr && !conn->dead && conn->handshaked) {
        SendSome(conn->fd.get(), frame);  // best effort before the close
      }
    }
  }
  CloseAll();
  return result;
}

}  // namespace privshape::collector
