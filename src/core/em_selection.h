#ifndef PRIVSHAPE_CORE_EM_SELECTION_H_
#define PRIVSHAPE_CORE_EM_SELECTION_H_

#include <vector>

#include "common/analysis_annotations.h"
#include "common/rng.h"
#include "common/status.h"
#include "distance/candidate_table.h"
#include "distance/distance.h"
#include "series/sequence.h"

namespace privshape::core {

/// Distances from one user's word to every candidate. With
/// `prefix_compare` and a word longer than a candidate, the candidate is
/// compared against the equally long prefix of the word (Lemma 1's
/// prefix-frequency reading for intermediate trie levels).
///
/// This is the ONE implementation of candidate matching: the in-process
/// mechanisms and the wire-level ClientSession both call it, so a user
/// produces the same distance vector (and hence the same EM draw) on
/// either path.
std::vector<double> MatchDistances(const Sequence& seq,
                                   const std::vector<Sequence>& candidates,
                                   bool prefix_compare,
                                   const dist::SequenceDistance& distance);

/// In-place MatchDistances for the per-report hot path: fills `*out`
/// (resized) and routes every evaluation through the scratch-reusing
/// distance kernel, so a round of N candidate matches allocates nothing.
/// Prefixes are viewed (`SymbolView`), never copied. Bit-identical
/// distance values to MatchDistances. `scratch` may be nullptr.
void MatchDistancesInto(const Sequence& seq,
                        const std::vector<Sequence>& candidates,
                        bool prefix_compare,
                        const dist::SequenceDistance& distance,
                        dist::DtwScratch* scratch, std::vector<double>* out);

/// Index of the candidate closest to `seq` (exact; ties break to the
/// first index). Shared by the refinement stage and ClientSession so both
/// paths pick the same candidate before perturbation.
size_t ClosestCandidate(const Sequence& seq,
                        const std::vector<Sequence>& candidates,
                        const dist::SequenceDistance& distance);

/// Scratch-reusing ClosestCandidate. Uses the metric's early-abandoning
/// kernel against the best-so-far bound: a candidate is abandoned only
/// once its distance provably cannot be < the current best, so the argmin
/// (including first-index tie-breaking) is exactly the exhaustive one.
/// `scratch` may be nullptr.
size_t ClosestCandidate(const Sequence& seq,
                        const std::vector<Sequence>& candidates,
                        const dist::SequenceDistance& distance,
                        dist::DtwScratch* scratch);

/// Reusable buffers for EmSelectionCounts-style per-user selection loops:
/// one instance per worker amortizes every per-user allocation of the
/// match -> score -> EM-select chain.
struct SelectionScratch {
  dist::DtwScratch dtw;
  dist::TableScratch table;  ///< for the SoA-table matching path
  std::vector<double> distances;
  std::vector<double> scores;
  std::vector<double> probs;
};

/// Sequence matching on the user side (§III-C-2, Eq. (2)): every user in
/// `population` scores all candidates by similarity to their own sequence
/// (S = normalized 1/dist) and releases one candidate index through the
/// Exponential Mechanism at budget `epsilon`. Returns the selection count
/// per candidate — the per-level frequency estimate both mechanisms use.
///
/// `prefix_compare = true` compares each candidate against the equally
/// long *prefix* of the user's sequence (Lemma 1's prefix-frequency
/// interpretation for intermediate trie levels); at the final level the
/// candidate length equals ell_S so this coincides with full-sequence
/// matching.
PS_REPORT_PATH
Result<std::vector<double>> EmSelectionCounts(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, dist::Metric metric,
    double epsilon, bool prefix_compare, Rng* rng);

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_EM_SELECTION_H_
