/// \file
/// Module `distance` — distances between SAX words (DTW, SED, Euclidean,
/// Hausdorff; §V-H ablation). Symbols are treated as ordinal, charging
/// |a - b| per aligned pair. Invariant: all metrics are symmetric and
/// non-negative; only Euclidean requires equal lengths.
///
/// The collection hot path evaluates millions of distances against one
/// shared candidate list, so every DP kernel also exists in a
/// scratch-reusing form: callers hand in a `DtwScratch` (two flat DP rows,
/// grown monotonically, one per worker thread) and a non-owning
/// `SymbolView`, and no allocation happens per evaluation. The scratch
/// overloads are bit-identical to the allocating ones — same loops, same
/// operation order — which is what lets the serving layer adopt them
/// without touching the byte-identical determinism contract.

#ifndef PRIVSHAPE_DISTANCE_DISTANCE_H_
#define PRIVSHAPE_DISTANCE_DISTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "series/sequence.h"

namespace privshape::dist {

/// Distance metrics the paper evaluates (§V-H). DTW is the clustering
/// default (Symbols), SED the classification default (Trace).
enum class Metric { kDtw, kSed, kEuclidean, kHausdorff };

/// Parses "dtw" / "sed" / "euclidean" / "hausdorff".
Result<Metric> MetricFromString(const std::string& name);
const char* MetricName(Metric metric);

/// Non-owning view of a SAX word (or a prefix of one). A `Sequence`
/// converts implicitly; prefix comparisons view the first k symbols
/// without copying them into a temporary word.
using SymbolView = Span<const Symbol>;

/// Caller-owned scratch for the two-row DP kernels (DTW and SED). The
/// rows grow monotonically and are reused across evaluations, so one
/// scratch per worker thread removes all per-distance heap traffic.
/// A default-constructed scratch is valid; the kernels size it.
struct DtwScratch {
  std::vector<double> prev;
  std::vector<double> curr;
};

/// Distance between two SAX words. Symbols are ordinal, so metrics charge
/// |a - b| per aligned symbol pair unless stated otherwise.
class SequenceDistance {
 public:
  virtual ~SequenceDistance() = default;
  virtual double Distance(const Sequence& a, const Sequence& b) const = 0;

  /// Scratch-reusing kernel over non-owning views. Bit-identical to
  /// Distance() on the same symbols; `scratch` may be nullptr (the kernel
  /// then allocates locally, like the two-argument overload).
  virtual double Distance(SymbolView a, SymbolView b,
                          DtwScratch* scratch) const = 0;

  /// Early-abandoning variant for argmin scans: returns the exact
  /// distance whenever it is < `cutoff`, and otherwise may return any
  /// value >= `cutoff` as soon as the bound is proven (for the DP metrics
  /// that is the first row whose minimum reaches the cutoff). Default
  /// implementation computes exactly.
  virtual double DistanceBounded(SymbolView a, SymbolView b, double cutoff,
                                 DtwScratch* scratch) const {
    (void)cutoff;
    return Distance(a, b, scratch);
  }

  virtual Metric metric() const = 0;
};

/// Factory for the metric implementations below.
std::unique_ptr<SequenceDistance> MakeDistance(Metric metric);

/// Dynamic time warping with per-pair cost |a - b|; optional Sakoe-Chiba
/// band (band < 0 disables it). Satisfies the relaxed decomposition
/// dist(S,S') <= dist(PRE,PRE') + dist(SUF,SUF') used by Lemma 1.
double DtwSymbolic(const Sequence& a, const Sequence& b, int band = -1);

/// Scratch-reusing DTW over views; bit-identical to the overload above.
double DtwSymbolic(SymbolView a, SymbolView b, int band, DtwScratch* scratch);

/// Early-abandoning DTW: exact when the result is < `cutoff`; returns
/// +infinity as soon as a DP row's minimum proves the final distance
/// cannot be below the cutoff (every warping path crosses every row and
/// per-cell costs are non-negative).
double DtwSymbolicBounded(SymbolView a, SymbolView b, int band, double cutoff,
                          DtwScratch* scratch);

/// Levenshtein string edit distance with unit insert/delete/substitute.
double EditDistance(const Sequence& a, const Sequence& b);

/// Scratch-reusing edit distance; bit-identical to the overload above.
double EditDistance(SymbolView a, SymbolView b, DtwScratch* scratch);

/// Early-abandoning edit distance: exact when the result is < `cutoff`;
/// returns +infinity once a DP row's minimum reaches the cutoff
/// (D[i][j] >= D[i-1][j-1], so row minima never decrease).
double EditDistanceBounded(SymbolView a, SymbolView b, double cutoff,
                           DtwScratch* scratch);

/// Euclidean distance; the shorter word is padded with its final symbol so
/// sequences of different compressed lengths remain comparable.
double EuclideanSymbolic(const Sequence& a, const Sequence& b);

/// Hausdorff distance over the point sets {(i, a_i)}; index coordinates are
/// scaled into [0, 1] so long words are not dominated by the time axis.
double HausdorffSymbolic(const Sequence& a, const Sequence& b);

/// Numeric DTW (|x - y| cost) used when matching reconstructed shapes
/// against numeric centroids, as the paper does in Figs. 8/10.
double DtwNumeric(const std::vector<double>& a, const std::vector<double>& b,
                  int band = -1);

/// Numeric L2 distance; requires equal lengths.
Result<double> EuclideanNumeric(const std::vector<double>& a,
                                const std::vector<double>& b);

}  // namespace privshape::dist

#endif  // PRIVSHAPE_DISTANCE_DISTANCE_H_
