// Design-choice ablations beyond the paper's Fig. 18 (DESIGN.md §7):
//  - two-level refinement on/off (Pd re-estimation vs trie EM counts),
//  - post-processing dedup on/off,
//  - PrivShape's trie+sub-shape candidate generation vs a PEM-style
//    prefix-extension miner (the §III-C/§VI alternative).
// Task: Trace clustering ARI at eps in {1,2,4}.

#include <iostream>

#include "bench/harness.h"
#include "core/pem.h"
#include "core/pipeline.h"
#include "eval/ari.h"
#include "eval/shape_matching.h"
#include "series/generators.h"

namespace pb = privshape::bench;

namespace {

double AriOfShapes(const std::vector<privshape::Sequence>& shapes,
                   const std::vector<privshape::Sequence>& sequences,
                   const std::vector<int>& truth) {
  if (shapes.empty()) return 0.0;
  auto assign = privshape::eval::AssignToNearestShape(
      sequences, shapes, privshape::dist::Metric::kSed);
  if (!assign.ok()) return 0.0;
  auto ari = privshape::eval::AdjustedRandIndex(truth, *assign);
  return ari.ok() ? *ari : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 2400, 2);

  pb::PrintTitle("Design ablations: Trace clustering ARI");
  pb::PrintHeader({"eps", "PrivShape", "NoRefinement", "NoPostproc",
                   "PEM(gamma=2)"});
  auto csv = pb::MaybeCsv("ablation_design");
  if (csv) {
    csv->WriteHeader({"eps", "privshape", "no_refinement", "no_postproc",
                      "pem"});
  }

  for (double eps : {1.0, 2.0, 4.0}) {
    double full = 0, no_ref = 0, no_post = 0, pem_ari = 0;
    for (int trial = 0; trial < scale.trials; ++trial) {
      uint64_t seed = scale.seed + static_cast<uint64_t>(trial);
      privshape::series::GeneratorOptions gen;
      gen.num_instances = scale.users;
      gen.seed = seed;
      auto dataset = privshape::series::MakeTraceDataset(gen);
      auto transform = pb::TraceTransform();
      auto sequences = privshape::core::TransformDataset(dataset, transform);
      if (!sequences.ok()) continue;
      std::vector<int> truth;
      for (const auto& inst : dataset.instances) truth.push_back(inst.label);

      auto run = [&](bool disable_refinement, bool disable_postprocessing) {
        auto config = pb::TraceConfig(eps, seed);
        config.disable_refinement = disable_refinement;
        config.disable_postprocessing = disable_postprocessing;
        privshape::core::PrivShape mech(config);
        auto result = mech.Run(*sequences);
        if (!result.ok()) return 0.0;
        std::vector<privshape::Sequence> shapes;
        for (const auto& s : result->shapes) shapes.push_back(s.shape);
        return AriOfShapes(shapes, *sequences, truth);
      };
      full += run(false, false);
      no_ref += run(true, false);
      no_post += run(false, true);

      privshape::core::PemConfig pem;
      pem.epsilon = eps;
      pem.t = 4;
      pem.k = 3;
      pem.keep = 9;
      pem.gamma = 2;
      pem.ell = 8;
      pem.seed = seed;
      privshape::core::PemMiner miner(pem);
      auto result = miner.Run(*sequences);
      if (result.ok()) {
        std::vector<privshape::Sequence> shapes;
        for (const auto& s : result->shapes) shapes.push_back(s.shape);
        pem_ari += AriOfShapes(shapes, *sequences, truth);
      }
    }
    double n = scale.trials;
    std::vector<std::string> row = {
        privshape::FormatDouble(eps, 3),
        privshape::FormatDouble(full / n, 4),
        privshape::FormatDouble(no_ref / n, 4),
        privshape::FormatDouble(no_post / n, 4),
        privshape::FormatDouble(pem_ari / n, 4)};
    pb::PrintRow(row);
    if (csv) csv->WriteRow(row);
  }

  std::cout << "\nExpected shape: full PrivShape >= each single ablation; "
               "PEM suffers from its larger per-round expansion domain "
               "(the paper's §III-C argument for not using PEM).\n";
  return 0;
}
