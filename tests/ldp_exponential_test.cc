#include "ldp/exponential.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace privshape {
namespace {

using ldp::ExponentialMechanism;
using ldp::ScoresFromDistances;

TEST(ExponentialTest, RejectsInvalidParameters) {
  EXPECT_FALSE(ExponentialMechanism::Create(0.0).ok());
  EXPECT_FALSE(ExponentialMechanism::Create(1.0, 0.0).ok());
  EXPECT_TRUE(ExponentialMechanism::Create(1.0).ok());
}

TEST(ExponentialTest, ProbabilitiesMatchEq2) {
  // Eq. (2): Pr[j] = exp(eps * S_j / 2) / sum_z exp(eps * S_z / 2).
  auto em = ExponentialMechanism::Create(2.0);
  ASSERT_TRUE(em.ok());
  std::vector<double> scores = {1.0, 0.5, 0.0};
  auto probs = em->SelectionProbabilities(scores);
  ASSERT_TRUE(probs.ok());
  double z = std::exp(1.0) + std::exp(0.5) + std::exp(0.0);
  EXPECT_NEAR((*probs)[0], std::exp(1.0) / z, 1e-12);
  EXPECT_NEAR((*probs)[1], std::exp(0.5) / z, 1e-12);
  EXPECT_NEAR((*probs)[2], std::exp(0.0) / z, 1e-12);
}

TEST(ExponentialTest, ProbabilitiesSumToOne) {
  auto em = ExponentialMechanism::Create(4.0);
  ASSERT_TRUE(em.ok());
  std::vector<double> scores = {0.3, 0.9, 0.1, 0.7, 0.5};
  auto probs = em->SelectionProbabilities(scores);
  ASSERT_TRUE(probs.ok());
  double sum = 0;
  for (double p : *probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ExponentialTest, EmptyCandidateSetFails) {
  auto em = ExponentialMechanism::Create(1.0);
  ASSERT_TRUE(em.ok());
  EXPECT_FALSE(em->SelectionProbabilities({}).ok());
  Rng rng(61);
  EXPECT_FALSE(em->Select({}, &rng).ok());
}

// Direct eps-LDP property: for any two users (= any two score vectors in
// [0,1]^r with sensitivity 1) and any output j, the probability ratio is
// bounded by e^eps. This is the privacy guarantee of Theorem 1's candidate
// selection, checked exactly on the implementation's own probabilities.
class EmPrivacyTest : public ::testing::TestWithParam<double> {};

TEST_P(EmPrivacyTest, RatioBoundedByExpEps) {
  double eps = GetParam();
  auto em = ExponentialMechanism::Create(eps);
  ASSERT_TRUE(em.ok());
  Rng rng(62);
  for (int trial = 0; trial < 300; ++trial) {
    size_t r = 2 + rng.Index(6);
    std::vector<double> s1(r), s2(r);
    for (size_t i = 0; i < r; ++i) {
      s1[i] = rng.Uniform();
      s2[i] = rng.Uniform();
    }
    auto p1 = em->SelectionProbabilities(s1);
    auto p2 = em->SelectionProbabilities(s2);
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p2.ok());
    for (size_t j = 0; j < r; ++j) {
      EXPECT_LE((*p1)[j] / (*p2)[j], std::exp(eps) * (1.0 + 1e-9))
          << "eps=" << eps << " trial=" << trial << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, EmPrivacyTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 4.0, 8.0));

TEST(ExponentialTest, HigherScoreSelectedMoreOften) {
  auto em = ExponentialMechanism::Create(4.0);
  ASSERT_TRUE(em.ok());
  Rng rng(63);
  std::vector<double> scores = {1.0, 0.0};
  int first = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    auto pick = em->Select(scores, &rng);
    ASSERT_TRUE(pick.ok());
    if (*pick == 0) ++first;
  }
  // Pr[0] = e^2 / (e^2 + 1) ~ 0.881.
  EXPECT_NEAR(static_cast<double>(first) / n,
              std::exp(2.0) / (std::exp(2.0) + 1.0), 0.02);
}

TEST(ExponentialTest, NumericallyStableForExtremeBudgets) {
  auto em = ExponentialMechanism::Create(1000.0);
  ASSERT_TRUE(em.ok());
  auto probs = em->SelectionProbabilities({1.0, 0.0, 0.2});
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR((*probs)[0], 1.0, 1e-9);
  EXPECT_FALSE(std::isnan((*probs)[1]));
}

TEST(ScoresFromDistancesTest, NormalizedToUnitInterval) {
  auto scores = ScoresFromDistances({2.0, 5.0, 8.0});
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);   // closest
  EXPECT_DOUBLE_EQ(scores[1], 0.5);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);   // farthest
}

TEST(ScoresFromDistancesTest, AllEqualDistancesScoreOne) {
  auto scores = ScoresFromDistances({3.0, 3.0, 3.0});
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(ScoresFromDistancesTest, EmptyInput) {
  EXPECT_TRUE(ScoresFromDistances({}).empty());
}

TEST(ScoresFromDistancesTest, SmallerDistanceLargerScore) {
  Rng rng(64);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> d(5);
    for (double& x : d) x = rng.Uniform(0.0, 10.0);
    auto s = ScoresFromDistances(d);
    for (size_t i = 0; i < d.size(); ++i) {
      for (size_t j = 0; j < d.size(); ++j) {
        if (d[i] < d[j]) {
          EXPECT_GE(s[i], s[j]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace privshape
