#include "core/subshape.h"

#include <algorithm>
#include <numeric>

#include "core/rounds.h"
#include "ldp/estimator_utils.h"
#include "ldp/grr.h"

namespace privshape::core {

size_t PairToIndex(Symbol a, Symbol b, int t, bool allow_repeats) {
  size_t ai = a, bi = b;
  if (allow_repeats) {
    return ai * static_cast<size_t>(t) + bi;
  }
  // Skip the diagonal: row a has t-1 entries.
  return ai * static_cast<size_t>(t - 1) + (bi > ai ? bi - 1 : bi);
}

trie::Transition IndexToPair(size_t index, int t, bool allow_repeats) {
  if (allow_repeats) {
    return {static_cast<Symbol>(index / static_cast<size_t>(t)),
            static_cast<Symbol>(index % static_cast<size_t>(t))};
  }
  size_t row = index / static_cast<size_t>(t - 1);
  size_t col = index % static_cast<size_t>(t - 1);
  if (col >= row) ++col;
  return {static_cast<Symbol>(row), static_cast<Symbol>(col)};
}

size_t SubShapeDomainSize(int t, bool allow_repeats) {
  size_t pairs = allow_repeats
                     ? static_cast<size_t>(t) * static_cast<size_t>(t)
                     : static_cast<size_t>(t) * static_cast<size_t>(t - 1);
  return pairs + 1;  // sentinel padding bucket
}

SubShapeEstimates RankSubShapes(
    const std::vector<std::vector<double>>& level_counts, int t, size_t top_m,
    bool allow_repeats) {
  SubShapeEstimates estimates;
  estimates.counts = level_counts;
  estimates.top_transitions.resize(level_counts.size());
  for (size_t lvl = 0; lvl < level_counts.size(); ++lvl) {
    const std::vector<double>& counts = level_counts[lvl];
    if (counts.empty()) continue;
    // Rank real pairs only (drop the sentinel bucket).
    size_t sentinel = counts.size() - 1;
    std::vector<size_t> order(sentinel);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return counts[a] > counts[b];
    });
    size_t keep = std::min(top_m, order.size());
    for (size_t i = 0; i < keep; ++i) {
      estimates.top_transitions[lvl].push_back(
          IndexToPair(order[i], t, allow_repeats));
    }
  }
  return estimates;
}

Result<SubShapeEstimates> EstimateSubShapes(
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, int ell_s, int t, size_t top_m,
    double epsilon, bool allow_repeats, Rng* rng) {
  if (ell_s < 1) return Status::InvalidArgument("ell_s must be >= 1");
  SubShapeEstimates estimates;
  if (ell_s == 1) return estimates;  // no adjacent pairs exist

  size_t num_levels = static_cast<size_t>(ell_s - 1);
  size_t domain = SubShapeDomainSize(t, allow_repeats);
  auto grr = ldp::Grr::Create(domain, epsilon);
  if (!grr.ok()) return grr.status();

  // Per-level raw tallies; a user contributes to exactly one level.
  std::vector<std::vector<size_t>> counts(num_levels,
                                          std::vector<size_t>(domain, 0));
  std::vector<size_t> reports(num_levels, 0);
  for (size_t user : population) {
    if (user >= sequences.size()) {
      return Status::OutOfRange("population index outside dataset");
    }
    // Shared user-side logic (same as ClientSession / LocalSubShapeRound),
    // here drawing from the caller's shared engine (baseline semantics).
    auto [level, value] = AnswerSubShapeValue(sequences[user], ell_s, t,
                                              allow_repeats, *grr, rng);
    counts[level - 1][value]++;
    reports[level - 1]++;
  }

  std::vector<std::vector<double>> level_counts(num_levels);
  for (size_t lvl = 0; lvl < num_levels; ++lvl) {
    level_counts[lvl] =
        ldp::DebiasGrrCounts(counts[lvl], reports[lvl], epsilon);
  }
  return RankSubShapes(level_counts, t, top_m, allow_repeats);
}

}  // namespace privshape::core
