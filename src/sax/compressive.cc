#include "sax/compressive.h"

namespace privshape::sax {

Sequence CompressSax(const Sequence& word) {
  Sequence out;
  out.reserve(word.size());
  for (Symbol s : word) {
    if (out.empty() || out.back() != s) out.push_back(s);
  }
  return out;
}

bool IsCompressed(const Sequence& word) {
  for (size_t i = 1; i < word.size(); ++i) {
    if (word[i] == word[i - 1]) return false;
  }
  return true;
}

}  // namespace privshape::sax
