#include "ldp/grr.h"

#include <cmath>

#include "ldp/estimator_utils.h"

namespace privshape::ldp {

Result<Grr> Grr::Create(size_t domain_size, double epsilon) {
  if (domain_size < 2) {
    return Status::InvalidArgument("GRR domain must have >= 2 values");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  double p = 0.0, q = 0.0;
  GrrParameters(domain_size, epsilon, &p, &q);
  return Grr(domain_size, epsilon, p, q);
}

PS_RNG_WORDS(2)
size_t Grr::PerturbValue(size_t value, Rng* rng) const {
  // Canonical consumption order: exactly two raw engine words per draw,
  // regardless of the outcome. Word 0 decides keep-vs-flip by threshold
  // compare; word 1 picks uniformly among the other d-1 values by
  // multiply-shift. Fixed word counts are what let callers batch many
  // draws from one FillU64 block; every GRR consumer (in-process rounds
  // and wire sessions alike) goes through this one function, so the
  // order is identical on every path.
  uint64_t words[2];
  rng->FillU64(words, 2);
  if (words[0] < keep_threshold_) return value;
  size_t r = static_cast<size_t>(
      BoundedFromU64(words[1], static_cast<uint64_t>(d_ - 1)));
  return r >= value ? r + 1 : r;
}

double Grr::TransitionProbability(size_t x, size_t y) const {
  return x == y ? p_ : q_;
}

PS_RNG_WORDS(2)
Status Grr::SubmitUser(size_t value, Rng* rng) {
  if (value >= d_) {
    return Status::OutOfRange("GRR input outside domain");
  }
  counts_[PerturbValue(value, rng)]++;
  ++n_;
  return Status::Ok();
}

std::vector<double> Grr::EstimateCounts() const {
  // Shared debias path: the wire-level aggregators use the same function,
  // so identical raw counts give byte-identical estimates.
  return DebiasGrrCounts(counts_, n_, epsilon_);
}

void Grr::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  n_ = 0;
}

}  // namespace privshape::ldp
