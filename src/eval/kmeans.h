#ifndef PRIVSHAPE_EVAL_KMEANS_H_
#define PRIVSHAPE_EVAL_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace privshape::eval {

/// Result of a KMeans fit: per-point assignments plus the centroids.
struct KMeansResult {
  std::vector<int> assignments;
  std::vector<std::vector<double>> centroids;
  double inertia = 0.0;  ///< sum of squared distances to assigned centroid
  int iterations = 0;
};

/// Lloyd's KMeans with kmeans++ seeding over equal-length numeric vectors.
/// This is the clustering model the paper pairs with PatternLDP (§V-C,
/// "PatternLDP+KMeans" with scikit-learn defaults).
struct KMeansOptions {
  int k = 2;
  int max_iterations = 300;
  int n_init = 4;        ///< restarts; the best inertia wins
  double tol = 1e-6;     ///< relative inertia improvement stop criterion
  uint64_t seed = 2023;
};

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            const KMeansOptions& options);

}  // namespace privshape::eval

#endif  // PRIVSHAPE_EVAL_KMEANS_H_
