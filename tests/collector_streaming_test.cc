/// Failure modes and exactness of the streaming ingestion pipeline and
/// the multi-collector merge: client errors mid-stream, backpressure
/// under tiny queue depths, and the determinism contract (byte-identical
/// shapes AND exact accepted/rejected/bytes tallies) across
/// {queue depth} x {collector count} vs. the barrier path and the
/// single-threaded core pipeline.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "collector/client_fleet.h"
#include "collector/multi_collector.h"
#include "collector/round_coordinator.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/privshape.h"

namespace privshape {
namespace {

using collector::AnswerFn;
using collector::ClientFleet;
using collector::CollectorMetrics;
using collector::CollectorOptions;
using collector::MultiCollector;
using collector::RoundCoordinator;
using collector::RoundOutcome;
using collector::StageSpec;
using core::MechanismConfig;

/// Same planted mixture as the core PrivShape tests: 60% "abc",
/// 30% "cba", 10% "bab".
Sequence PlantedWord(size_t user, uint64_t seed = 1) {
  Rng rng(DeriveSeed(seed, user));
  double u = rng.Uniform();
  if (u < 0.6) return {0, 1, 2};
  if (u < 0.9) return {2, 1, 0};
  return {1, 0, 1};
}

MechanismConfig TestConfig() {
  MechanismConfig config;
  config.epsilon = 6.0;
  config.t = 3;
  config.k = 2;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 6;
  config.metric = dist::Metric::kSed;
  config.seed = 7;
  return config;
}

ClientFleet PlantedFleet(size_t n, const MechanismConfig& config) {
  return ClientFleet(
      n, [](size_t user) { return PlantedWord(user); }, config.metric,
      config.seed);
}

StageSpec LengthSpec(const MechanismConfig& config) {
  StageSpec spec;
  spec.kind = proto::ReportKind::kLength;
  spec.domain = static_cast<size_t>(config.ell_high - config.ell_low + 1);
  spec.epsilon = config.epsilon;
  return spec;
}

AnswerFn LengthAnswer(const MechanismConfig& config) {
  // One shared context for the whole round, as the coordinator builds it.
  auto built = proto::RoundContext::Length(config.ell_low, config.ell_high,
                                           config.epsilon);
  EXPECT_TRUE(built.ok()) << built.status();  // fail loudly on bad configs
  auto ctx = std::make_shared<proto::RoundContext>(std::move(*built));
  return [ctx](proto::ClientSession& session, size_t,
               proto::AnswerScratch& scratch, proto::ReportBatch& out) {
    return session.AnswerTo(*ctx, &scratch, &out);
  };
}

void ExpectSameResult(const core::MechanismResult& a,
                      const core::MechanismResult& b) {
  EXPECT_EQ(a.frequent_length, b.frequent_length);
  ASSERT_EQ(a.shapes.size(), b.shapes.size());
  for (size_t i = 0; i < a.shapes.size(); ++i) {
    EXPECT_EQ(a.shapes[i].shape, b.shapes[i].shape);
    EXPECT_EQ(a.shapes[i].frequency, b.shapes[i].frequency);
  }
}

// --- Failure modes ------------------------------------------------------

TEST(StreamingFailureTest, ClientErrorsMidStreamAreCountedNotIngested) {
  MechanismConfig config = TestConfig();
  const size_t kUsers = 2000;
  ClientFleet fleet = PlantedFleet(kUsers, config);
  ThreadPool pool(4);
  CollectorOptions options;
  options.streaming = true;
  options.num_shards = 8;
  options.batch_size = 16;
  options.queue_depth = 2;
  RoundCoordinator coordinator(config, options, &pool);

  std::vector<size_t> population(kUsers);
  std::iota(population.begin(), population.end(), size_t{0});
  AnswerFn healthy = LengthAnswer(config);
  // Every 7th user dies mid-round; its report must neither be ingested
  // nor wedge the pipeline.
  AnswerFn flaky = [&healthy](proto::ClientSession& session, size_t user,
                              proto::AnswerScratch& scratch,
                              proto::ReportBatch& out) {
    if (user % 7 == 3) {
      return Status::Internal("simulated client failure");
    }
    return healthy(session, user, scratch, out);
  };
  RoundOutcome outcome =
      coordinator.RunRound(fleet, population, LengthSpec(config), flaky);

  size_t expected_errors = 0;
  for (size_t user = 0; user < kUsers; ++user) {
    if (user % 7 == 3) ++expected_errors;
  }
  EXPECT_EQ(outcome.client_errors, expected_errors);
  EXPECT_EQ(outcome.agg.accepted(), kUsers - expected_errors);
  EXPECT_EQ(outcome.agg.rejected(), 0u);
}

TEST(StreamingFailureTest, BackpressureNeverDropsOrDuplicatesReports) {
  MechanismConfig config = TestConfig();
  const size_t kUsers = 3000;
  ClientFleet fleet = PlantedFleet(kUsers, config);
  std::vector<size_t> population(kUsers);
  std::iota(population.begin(), population.end(), size_t{0});
  StageSpec spec = LengthSpec(config);
  AnswerFn answer = LengthAnswer(config);

  // Reference: barrier ingestion, no queues involved.
  CollectorOptions barrier;
  barrier.streaming = false;
  barrier.num_shards = 4;
  ThreadPool pool(4);
  RoundOutcome expected =
      RoundCoordinator(config, barrier, &pool)
          .RunRound(fleet, population, spec, answer);

  // Hostile streaming config: many producers per drainer queue,
  // depth-1 queues, batch size 1 — every Push can block.
  CollectorOptions hostile;
  hostile.streaming = true;
  hostile.num_shards = 32;
  hostile.batch_size = 1;
  hostile.queue_depth = 1;
  RoundOutcome streamed =
      RoundCoordinator(config, hostile, &pool)
          .RunRound(fleet, population, spec, answer);

  EXPECT_EQ(streamed.agg.accepted(), expected.agg.accepted());
  EXPECT_EQ(streamed.agg.rejected(), expected.agg.rejected());
  EXPECT_EQ(streamed.agg.bytes_ingested(), expected.agg.bytes_ingested());
  EXPECT_EQ(streamed.client_errors, expected.client_errors);
  // Not just totals: the merged per-value counts are identical.
  EXPECT_EQ(streamed.agg.MergedLevel(0).raw_counts(),
            expected.agg.MergedLevel(0).raw_counts());
}

// --- Determinism contract: streaming x multi-collector ------------------

TEST(StreamingDeterminismTest, QueueDepthsAndCollectorCountsAreExact) {
  MechanismConfig config = TestConfig();
  const size_t kUsers = 3000;
  ClientFleet fleet = PlantedFleet(kUsers, config);

  core::PrivShape reference(config);
  auto expected = reference.Run(fleet.MaterializeWords());
  ASSERT_TRUE(expected.ok()) << expected.status();

  ThreadPool pool(4);
  // The barrier path is the tallies baseline the streaming runs must hit.
  CollectorOptions barrier_options;
  barrier_options.streaming = false;
  barrier_options.num_shards = 8;
  CollectorMetrics barrier_metrics;
  auto barrier = RoundCoordinator(config, barrier_options, &pool)
                     .Collect(fleet, &barrier_metrics);
  ASSERT_TRUE(barrier.ok()) << barrier.status();
  ExpectSameResult(*expected, *barrier);

  // Queue depths {1, 8, 0 = unbounded} x collectors {1, 3}.
  for (size_t depth : {size_t{1}, size_t{8}, size_t{0}}) {
    for (size_t collectors : {size_t{1}, size_t{3}}) {
      CollectorOptions options;
      options.streaming = true;
      options.num_shards = 8;
      options.queue_depth = depth;
      options.batch_size = 64;
      CollectorMetrics metrics;
      MultiCollector sites(config, options, &pool, collectors);
      auto got = sites.Collect(fleet, &metrics);
      ASSERT_TRUE(got.ok())
          << got.status() << " depth=" << depth << " c=" << collectors;
      ExpectSameResult(*expected, *got);

      // Exact round-by-round tallies vs. the barrier path: same stages,
      // same accepted/rejected/bytes per stage — streaming and merging
      // change scheduling, never counts.
      ASSERT_EQ(metrics.rounds.size(), barrier_metrics.rounds.size());
      for (size_t r = 0; r < metrics.rounds.size(); ++r) {
        const auto& got_round = metrics.rounds[r];
        const auto& want_round = barrier_metrics.rounds[r];
        EXPECT_EQ(got_round.stage, want_round.stage);
        EXPECT_EQ(got_round.users, want_round.users) << got_round.stage;
        EXPECT_EQ(got_round.accepted, want_round.accepted)
            << got_round.stage;
        EXPECT_EQ(got_round.rejected, want_round.rejected)
            << got_round.stage;
        EXPECT_EQ(got_round.client_errors, want_round.client_errors)
            << got_round.stage;
        EXPECT_EQ(got_round.bytes_up, want_round.bytes_up)
            << got_round.stage;
      }
      EXPECT_EQ(metrics.num_collectors, collectors);
      EXPECT_EQ(metrics.ingest, "streaming");
    }
  }
}

TEST(StreamingDeterminismTest, InlineExecutionStillStreams) {
  // pool == nullptr: producers run on the calling thread, drainers are
  // still real threads — results stay identical.
  MechanismConfig config = TestConfig();
  ClientFleet fleet = PlantedFleet(1500, config);
  CollectorOptions options;
  options.streaming = true;
  options.num_shards = 4;
  options.queue_depth = 1;
  auto inline_run =
      RoundCoordinator(config, options, nullptr).Collect(fleet);
  ASSERT_TRUE(inline_run.ok()) << inline_run.status();
  ThreadPool pool(8);
  auto pooled = RoundCoordinator(config, options, &pool).Collect(fleet);
  ASSERT_TRUE(pooled.ok()) << pooled.status();
  ExpectSameResult(*inline_run, *pooled);
}

// --- Multi-collector merge ----------------------------------------------

TEST(MultiCollectorTest, MergedAggregatorEqualsSingleSite) {
  MechanismConfig config = TestConfig();
  const size_t kUsers = 2000;
  ClientFleet fleet = PlantedFleet(kUsers, config);
  std::vector<size_t> population(kUsers);
  std::iota(population.begin(), population.end(), size_t{0});
  StageSpec spec = LengthSpec(config);
  AnswerFn answer = LengthAnswer(config);
  ThreadPool pool(4);

  CollectorOptions options;
  options.num_shards = 4;
  RoundCoordinator site(config, options, &pool);
  RoundOutcome whole = site.RunRound(fleet, population, spec, answer);

  // Split the population across 3 sites with different shard counts,
  // then merge: identical counts.
  std::vector<size_t> slice_a(population.begin(), population.begin() + 700);
  std::vector<size_t> slice_b(population.begin() + 700,
                              population.begin() + 1500);
  std::vector<size_t> slice_c(population.begin() + 1500, population.end());
  CollectorOptions other;
  other.num_shards = 7;
  RoundOutcome a = site.RunRound(fleet, slice_a, spec, answer);
  RoundOutcome b = RoundCoordinator(config, other, &pool)
                       .RunRound(fleet, slice_b, spec, answer);
  RoundOutcome c = site.RunRound(fleet, slice_c, spec, answer);
  ASSERT_TRUE(a.agg.Merge(b.agg).ok());
  ASSERT_TRUE(a.agg.Merge(c.agg).ok());

  EXPECT_EQ(a.agg.accepted(), whole.agg.accepted());
  EXPECT_EQ(a.agg.rejected(), whole.agg.rejected());
  EXPECT_EQ(a.agg.bytes_ingested(), whole.agg.bytes_ingested());
  EXPECT_EQ(a.agg.MergedLevel(0).raw_counts(),
            whole.agg.MergedLevel(0).raw_counts());
  EXPECT_EQ(a.agg.DebiasedCounts(0), whole.agg.DebiasedCounts(0));
}

TEST(MultiCollectorTest, MergeRejectsMismatchedStages) {
  StageSpec length;
  length.kind = proto::ReportKind::kLength;
  length.domain = 5;
  length.epsilon = 2.0;
  StageSpec other = length;
  other.domain = 6;
  collector::ShardedAggregator a(length, 2);
  collector::ShardedAggregator b(other, 2);
  EXPECT_FALSE(a.Merge(b).ok());
  collector::ShardedAggregator c(length, 3);
  EXPECT_TRUE(a.Merge(c).ok());
}

TEST(MultiCollectorTest, RecoversPlantedShapeWithThreeSites) {
  MechanismConfig config = TestConfig();
  ClientFleet fleet = PlantedFleet(6000, config);
  ThreadPool pool(2);
  MultiCollector sites(config, {}, &pool, 3);
  auto result = sites.Collect(fleet);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->frequent_length, 3);
  ASSERT_GE(result->shapes.size(), 1u);
  EXPECT_EQ(SequenceToString(result->shapes[0].shape), "abc");
}

}  // namespace
}  // namespace privshape
