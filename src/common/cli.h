#ifndef PRIVSHAPE_COMMON_CLI_H_
#define PRIVSHAPE_COMMON_CLI_H_

#include <map>
#include <string>

#include "common/status.h"

namespace privshape {

/// Strict flag-value parsers: the whole (whitespace-trimmed) text must be
/// one in-range number. Trailing junk ("12abc"), empty strings, and
/// overflow all return InvalidArgument instead of a partial value or an
/// uncaught std::stoi exception — a malformed PRIVSHAPE_THREADS must never
/// abort the process. `name` labels the flag in the error message.
Result<int> ParseIntFlag(const std::string& name, const std::string& text);
Result<double> ParseDoubleFlag(const std::string& name,
                               const std::string& text);

/// Tiny flag parser for the bench/example binaries.
///
/// Accepts `--name=value` and `--name value`. Unrecognized positional
/// arguments are ignored. For every lookup, an environment variable
/// PRIVSHAPE_<NAME> (upper-cased) acts as fallback before the default,
/// so the whole harness can be scaled with e.g. PRIVSHAPE_TRIALS=50.
class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  /// Returns the flag (or env var) value as int/double/string, else `def`.
  /// Numeric lookups parse strictly (ParseIntFlag/ParseDoubleFlag) and fall
  /// back to `def` on malformed values; use the GetIntStatus/GetDoubleStatus
  /// forms where a malformed value should be reported instead of masked.
  int GetInt(const std::string& name, int def) const;
  double GetDouble(const std::string& name, double def) const;

  /// Like GetInt/GetDouble, but a present-yet-malformed value is an
  /// InvalidArgument error rather than a silent fallback. A missing flag
  /// still yields `def`.
  Result<int> GetIntStatus(const std::string& name, int def) const;
  Result<double> GetDoubleStatus(const std::string& name, double def) const;
  std::string GetString(const std::string& name,
                        const std::string& def) const;
  bool Has(const std::string& name) const;

 private:
  /// Flag value, or env fallback, or empty optional semantics via bool.
  bool Lookup(const std::string& name, std::string* out) const;

  std::map<std::string, std::string> flags_;
};

/// The shared `--threads` flag (env PRIVSHAPE_THREADS): worker count for
/// every multi-threaded binary — the collector, the benches, and the bench
/// harness scale knobs all consume this one flag. `0` (the default) means
/// "hardware concurrency", matching ThreadPool's convention; negative or
/// malformed values also fall back to `def`.
size_t ThreadsFromArgs(const CliArgs& args, size_t def = 0);

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_CLI_H_
