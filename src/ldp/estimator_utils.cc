#include "ldp/estimator_utils.h"

#include <algorithm>
#include <cmath>

namespace privshape::ldp {

double OracleVariance(double p, double q, double n, double n_v) {
  double denom = (p - q) * (p - q);
  return n * q * (1.0 - q) / denom + n_v * (1.0 - p - q) / (p - q);
}

void GrrParameters(size_t domain, double epsilon, double* p, double* q) {
  double e = std::exp(epsilon);
  *p = e / (e + static_cast<double>(domain) - 1.0);
  *q = 1.0 / (e + static_cast<double>(domain) - 1.0);
}

std::vector<double> DebiasGrrCounts(const std::vector<size_t>& counts,
                                    size_t num_reports, double epsilon) {
  std::vector<double> out(counts.size());
  if (counts.empty()) return out;
  double p = 0.0, q = 0.0;
  GrrParameters(counts.size(), epsilon, &p, &q);
  double n = static_cast<double>(num_reports);
  for (size_t v = 0; v < counts.size(); ++v) {
    out[v] = (static_cast<double>(counts[v]) - n * q) / (p - q);
  }
  return out;
}

void OueParameters(double epsilon, double* p, double* q) {
  *p = 0.5;
  *q = 1.0 / (std::exp(epsilon) + 1.0);
}

double ConfidenceHalfWidth(double p, double q, double n, double n_v,
                           double z) {
  return z * std::sqrt(std::max(0.0, OracleVariance(p, q, n, n_v)));
}

std::vector<double> NormSub(const std::vector<double>& estimates,
                            double total) {
  std::vector<double> out = estimates;
  if (out.empty()) return out;
  total = std::max(total, 0.0);
  // Iteratively clip negatives and shift the residual mass uniformly over
  // the still-positive cells; converges in at most d rounds.
  for (size_t round = 0; round < out.size() + 1; ++round) {
    double sum = 0.0;
    size_t positive = 0;
    for (double v : out) {
      if (v > 0.0) {
        sum += v;
        ++positive;
      }
    }
    if (positive == 0) {
      // All mass clipped: fall back to uniform.
      std::fill(out.begin(), out.end(),
                total / static_cast<double>(out.size()));
      return out;
    }
    double delta = (total - sum) / static_cast<double>(positive);
    bool any_negative = false;
    for (double& v : out) {
      if (v > 0.0) {
        v += delta;
        if (v < 0.0) any_negative = true;
      } else {
        v = 0.0;
      }
    }
    if (!any_negative) break;
  }
  for (double& v : out) v = std::max(v, 0.0);
  return out;
}

Result<size_t> MinimumPopulation(double p, double q, double target_count) {
  if (target_count <= 0.0) {
    return Status::InvalidArgument("target count must be positive");
  }
  if (p <= q) {
    return Status::InvalidArgument("oracle requires p > q");
  }
  // Zero-frequency variance is n * q(1-q)/(p-q)^2; solve stddev <= target.
  double per_user = q * (1.0 - q) / ((p - q) * (p - q));
  double n = target_count * target_count / per_user;
  return static_cast<size_t>(std::ceil(n));
}

}  // namespace privshape::ldp
