#ifndef PRIVSHAPE_CORE_EM_SELECTION_H_
#define PRIVSHAPE_CORE_EM_SELECTION_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "distance/distance.h"
#include "series/sequence.h"

namespace privshape::core {

/// Distances from one user's word to every candidate. With
/// `prefix_compare` and a word longer than a candidate, the candidate is
/// compared against the equally long prefix of the word (Lemma 1's
/// prefix-frequency reading for intermediate trie levels).
///
/// This is the ONE implementation of candidate matching: the in-process
/// mechanisms and the wire-level ClientSession both call it, so a user
/// produces the same distance vector (and hence the same EM draw) on
/// either path.
std::vector<double> MatchDistances(const Sequence& seq,
                                   const std::vector<Sequence>& candidates,
                                   bool prefix_compare,
                                   const dist::SequenceDistance& distance);

/// Index of the candidate closest to `seq` (exact; ties break to the
/// first index). Shared by the refinement stage and ClientSession so both
/// paths pick the same candidate before perturbation.
size_t ClosestCandidate(const Sequence& seq,
                        const std::vector<Sequence>& candidates,
                        const dist::SequenceDistance& distance);

/// Sequence matching on the user side (§III-C-2, Eq. (2)): every user in
/// `population` scores all candidates by similarity to their own sequence
/// (S = normalized 1/dist) and releases one candidate index through the
/// Exponential Mechanism at budget `epsilon`. Returns the selection count
/// per candidate — the per-level frequency estimate both mechanisms use.
///
/// `prefix_compare = true` compares each candidate against the equally
/// long *prefix* of the user's sequence (Lemma 1's prefix-frequency
/// interpretation for intermediate trie levels); at the final level the
/// candidate length equals ell_S so this coincides with full-sequence
/// matching.
Result<std::vector<double>> EmSelectionCounts(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, dist::Metric metric,
    double epsilon, bool prefix_compare, Rng* rng);

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_EM_SELECTION_H_
