#include "core/privshape.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "series/sequence.h"

namespace privshape {
namespace {

using core::MechanismConfig;
using core::PrivShape;

std::vector<Sequence> PlantedSequences(size_t n, uint64_t seed = 1) {
  std::vector<Sequence> out;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.Uniform();
    if (u < 0.6) {
      out.push_back({0, 1, 2});   // "abc"
    } else if (u < 0.9) {
      out.push_back({2, 1, 0});   // "cba"
    } else {
      out.push_back({1, 0, 1});   // "bab"
    }
  }
  return out;
}

MechanismConfig TestConfig() {
  MechanismConfig config;
  config.epsilon = 6.0;
  config.t = 3;
  config.k = 2;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 6;
  config.metric = dist::Metric::kSed;
  config.seed = 7;
  return config;
}

TEST(PrivShapeTest, RecoversPlantedShapeAtHighEps) {
  PrivShape mech(TestConfig());
  auto result = mech.Run(PlantedSequences(6000));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->frequent_length, 3);
  ASSERT_GE(result->shapes.size(), 1u);
  EXPECT_EQ(SequenceToString(result->shapes[0].shape), "abc");
}

TEST(PrivShapeTest, RefinedPoolHasAtMostCkCandidates) {
  PrivShape mech(TestConfig());
  auto result = mech.Run(PlantedSequences(6000));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->refined_pool.size(), 6u);  // c * k = 6
  EXPECT_GE(result->refined_pool.size(), result->shapes.size());
}

TEST(PrivShapeTest, PostProcessingOutputsDistinctShapes) {
  PrivShape mech(TestConfig());
  auto result = mech.Run(PlantedSequences(6000));
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->shapes.size(); ++i) {
    for (size_t j = i + 1; j < result->shapes.size(); ++j) {
      EXPECT_NE(result->shapes[i].shape, result->shapes[j].shape);
    }
  }
}

TEST(PrivShapeTest, StaysWithinUserLevelBudget) {
  PrivShape mech(TestConfig());
  auto result = mech.Run(PlantedSequences(4000));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->accountant.UserLevelEpsilon(),
            mech.config().epsilon + 1e-9);
}

TEST(PrivShapeTest, AllFourPopulationsCharged) {
  PrivShape mech(TestConfig());
  auto result = mech.Run(PlantedSequences(4000));
  ASSERT_TRUE(result.ok());
  const auto& charges = result->accountant.charges();
  EXPECT_TRUE(charges.count("Pa"));
  EXPECT_TRUE(charges.count("Pb"));
  EXPECT_TRUE(charges.count("Pd"));
  bool has_pc = false;
  for (const auto& [name, _] : charges) {
    if (name.rfind("Pc.", 0) == 0) has_pc = true;
  }
  EXPECT_TRUE(has_pc);
}

TEST(PrivShapeTest, DeterministicForFixedSeed) {
  PrivShape mech(TestConfig());
  auto sequences = PlantedSequences(3000);
  auto a = mech.Run(sequences);
  auto b = mech.Run(sequences);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->shapes.size(), b->shapes.size());
  for (size_t i = 0; i < a->shapes.size(); ++i) {
    EXPECT_EQ(a->shapes[i].shape, b->shapes[i].shape);
  }
}

TEST(PrivShapeTest, ClassificationVariantLabelsShapes) {
  MechanismConfig config = TestConfig();
  config.num_classes = 2;
  PrivShape mech(config);
  auto sequences = PlantedSequences(6000);
  // Label 0 for "abc" holders, 1 for everyone else: the extracted "abc"
  // shape should carry label 0.
  std::vector<int> labels;
  for (const auto& s : sequences) {
    labels.push_back(s == Sequence{0, 1, 2} ? 0 : 1);
  }
  auto result = mech.Run(sequences, &labels);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->shapes.size(), 1u);
  bool found_abc = false;
  for (const auto& shape : result->shapes) {
    if (SequenceToString(shape.shape) == "abc") {
      found_abc = true;
      EXPECT_EQ(shape.label, 0);
    }
  }
  EXPECT_TRUE(found_abc);
}

TEST(PrivShapeTest, ClassificationRequiresLabels) {
  MechanismConfig config = TestConfig();
  config.num_classes = 2;
  PrivShape mech(config);
  EXPECT_FALSE(mech.Run(PlantedSequences(100)).ok());
}

TEST(PrivShapeTest, ClassificationRejectsOutOfRangeLabels) {
  MechanismConfig config = TestConfig();
  config.num_classes = 2;
  PrivShape mech(config);
  auto sequences = PlantedSequences(100);
  std::vector<int> labels(100, 5);  // out of range
  EXPECT_FALSE(mech.Run(sequences, &labels).ok());
}

TEST(PrivShapeTest, ValidatesConfig) {
  MechanismConfig bad = TestConfig();
  bad.c = 1;  // c must be >= 2
  PrivShape mech(bad);
  EXPECT_FALSE(mech.Run(PlantedSequences(100)).ok());
}

TEST(PrivShapeTest, RejectsEmptyDataset) {
  PrivShape mech(TestConfig());
  EXPECT_FALSE(mech.Run({}).ok());
}

TEST(PrivShapeTest, HandlesSingleSymbolSequences) {
  std::vector<Sequence> sequences(2000, Sequence{2});
  PrivShape mech(TestConfig());
  auto result = mech.Run(sequences);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->frequent_length, 1);
  ASSERT_GE(result->shapes.size(), 1u);
  EXPECT_EQ(SequenceToString(result->shapes[0].shape), "c");
}

TEST(PrivShapeTest, LowEpsStillProducesOutput) {
  MechanismConfig config = TestConfig();
  config.epsilon = 0.1;
  PrivShape mech(config);
  auto result = mech.Run(PlantedSequences(2000));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->shapes.size(), 1u);
}

}  // namespace
}  // namespace privshape
