/// \file
/// Module `net` — the wire layer between `privshape_collectord` and its
/// clients: length-prefixed frames over TCP carrying the handshake and
/// round-lifecycle messages (hello / round-advertise / batch-upload /
/// round-done / complete). Framing reuses proto::Codec for every body, so
/// the collector's report and request encodings travel unchanged inside
/// frames. Invariant: no frame, however hostile, can make a decoder
/// allocate more than kMaxFramePayload bytes or crash — every malformed
/// input surfaces as a clean Status.
///
/// Frame layout (all little-endian):
///   [u32 payload_len][payload]
///   payload = [varint msg_type][message body]
/// payload_len counts the whole payload (type varint included) and must
/// be in (0, kMaxFramePayload]; a violating prefix is a protocol error
/// detected before any payload allocation.

#ifndef PRIVSHAPE_NET_FRAME_H_
#define PRIVSHAPE_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "protocol/messages.h"
#include "series/sequence.h"

namespace privshape::net {

/// Version of the daemon <-> client wire protocol, exchanged in the
/// handshake; a mismatch rejects the connection before any round runs.
inline constexpr uint64_t kNetVersion = 1;

/// "PSHP" — the first varint of every Hello. Random bytes or a stray
/// HTTP request hitting the port fail the handshake immediately.
inline constexpr uint64_t kHelloMagic = 0x50534850;

/// Hard cap on a frame payload. A hostile length prefix beyond this is
/// rejected without allocating (the fuzz suite's multi-GB-prefix case).
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

/// Message kinds carried in frames.
enum class MsgType : uint64_t {
  kHello = 1,        ///< client -> server: magic, version, fleet size
  kWelcome = 2,      ///< server -> client: version, conn id, config echo
  kRoundBegin = 3,   ///< server -> client: request + this conn's users
  kBatchUpload = 4,  ///< client -> server: framed ReportBatch
  kRoundDone = 5,    ///< client -> server: round barrier + error count
  kComplete = 6,     ///< server -> client: extracted shapes; close next
  kError = 7,        ///< server -> client: terminal error before drop
};

/// One decoded frame: the message type plus its body bytes (everything
/// after the type varint).
struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Appends one whole frame (length prefix, type varint, body) to `*out`.
void AppendFrame(MsgType type, std::string_view body, std::string* out);

/// Incremental frame assembly over an arbitrary byte stream: feed reads
/// of any size (frames may split at every byte boundary), pull complete
/// frames out. A bad length prefix or type varint is a permanent error —
/// the connection carrying the stream must be dropped.
class FrameReader {
 public:
  /// `max_payload` caps accepted frames (tests shrink it to probe the
  /// boundary; the daemon uses the default).
  explicit FrameReader(uint32_t max_payload = kMaxFramePayload);

  /// Appends raw bytes from the stream.
  void Append(std::string_view bytes);

  /// Extracts the next complete frame into `*out`. Returns true when a
  /// frame was produced, false when more bytes are needed. A malformed
  /// prefix (zero or oversized length, unparseable type varint) returns
  /// a non-OK status, after which the reader is poisoned: every further
  /// call fails with the same status.
  Result<bool> Next(Frame* out);

  /// Bytes currently buffered (fed but not yet consumed as frames).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  uint32_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< parsed-and-released prefix of buffer_
  Status error_;         ///< sticky protocol error
};

// --- Handshake and round-lifecycle messages ------------------------------

/// Client -> server greeting. `fleet_users` is the total simulated-device
/// count this client believes in; the daemon requires every connection to
/// agree with its own --users so a misconfigured loadgen fails loudly in
/// the handshake instead of silently skewing the population split.
struct HelloMsg {
  uint64_t version = kNetVersion;
  uint64_t fleet_users = 0;

  bool operator==(const HelloMsg& o) const {
    return version == o.version && fleet_users == o.fleet_users;
  }
};

std::string EncodeHello(const HelloMsg& msg);
Result<HelloMsg> DecodeHello(std::string_view body);

/// Server -> client handshake reply: the connection id plus an echo of
/// the mechanism parameters a client must agree on for the run to be
/// meaningful (the loadgen cross-checks them against its own flags).
struct WelcomeMsg {
  uint64_t version = kNetVersion;
  uint64_t conn_id = 0;
  uint64_t num_users = 0;
  uint64_t num_classes = 0;
  uint64_t seed = 0;
  double epsilon = 0.0;

  bool operator==(const WelcomeMsg& o) const {
    return version == o.version && conn_id == o.conn_id &&
           num_users == o.num_users && num_classes == o.num_classes &&
           seed == o.seed && epsilon == o.epsilon;
  }
};

std::string EncodeWelcome(const WelcomeMsg& msg);
Result<WelcomeMsg> DecodeWelcome(std::string_view body);

/// Server -> client round advertisement: the round id, the stage kind,
/// the stage's encoded broadcast request (LengthRequest /
/// SubShapeRequest / CandidateRequest / ClassRefineRequest bytes,
/// unchanged from the in-process protocol), and the user ids this
/// connection must answer for.
struct RoundBeginMsg {
  uint64_t round_id = 0;
  proto::ReportKind kind = proto::ReportKind::kLength;
  std::string request;
  std::vector<uint64_t> users;

  bool operator==(const RoundBeginMsg& o) const {
    return round_id == o.round_id && kind == o.kind &&
           request == o.request && users == o.users;
  }
};

std::string EncodeRoundBegin(const RoundBeginMsg& msg);
Result<RoundBeginMsg> DecodeRoundBegin(std::string_view body);

/// Client -> server report upload: one proto::ReportBatch, each report
/// length-prefixed inside the body. Encoded straight from the batch's
/// flat buffer; decoded as borrowed views so the daemon re-assembles a
/// ReportBatch without copying report bytes twice.
std::string EncodeBatchUpload(uint64_t round_id,
                              const proto::ReportBatch& batch);

/// Decoded upload: `reports` are views into the frame body the caller
/// passed — they live only as long as that buffer.
struct BatchUploadView {
  uint64_t round_id = 0;
  std::vector<std::string_view> reports;
};

Result<BatchUploadView> DecodeBatchUpload(std::string_view body);

/// Client -> server round barrier: how many assigned users were answered
/// and how many failed client-side (never produced a report).
struct RoundDoneMsg {
  uint64_t round_id = 0;
  uint64_t answered = 0;
  uint64_t client_errors = 0;

  bool operator==(const RoundDoneMsg& o) const {
    return round_id == o.round_id && answered == o.answered &&
           client_errors == o.client_errors;
  }
};

std::string EncodeRoundDone(const RoundDoneMsg& msg);
Result<RoundDoneMsg> DecodeRoundDone(std::string_view body);

/// One extracted shape on the wire (label -1 = unlabeled run).
struct WireShape {
  Sequence shape;
  int label = -1;
  double frequency = 0.0;

  bool operator==(const WireShape& o) const {
    return shape == o.shape && label == o.label && frequency == o.frequency;
  }
};

/// Server -> client protocol end: the final extracted shapes, so a
/// loadgen can verify the run (--check) without any side channel.
struct CompleteMsg {
  uint64_t frequent_length = 0;
  std::vector<WireShape> shapes;

  bool operator==(const CompleteMsg& o) const {
    return frequent_length == o.frequent_length && shapes == o.shapes;
  }
};

std::string EncodeComplete(const CompleteMsg& msg);
Result<CompleteMsg> DecodeComplete(std::string_view body);

/// Server -> client terminal error, sent best-effort before the drop.
std::string EncodeError(std::string_view message);
Result<std::string> DecodeError(std::string_view body);

}  // namespace privshape::net

#endif  // PRIVSHAPE_NET_FRAME_H_
