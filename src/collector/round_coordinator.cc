#include "collector/round_coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "common/batch_queue.h"
#include "common/shutdown.h"
#include "core/population.h"
#include "core/subshape.h"
#include "protocol/messages.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace privshape::collector {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The drainer-side depth gauge for queue `d` of this process's default
/// registry (registered once, cached by the registry thereafter).
std::atomic<int64_t>* QueueDepthGauge(size_t d) {
  return telemetry::Registry::Default()
      .GetGauge("collector_queue_depth_d" + std::to_string(d))
      ->raw();
}

/// One queued unit of the streaming pipeline: a flat batch of encoded
/// reports bound for one aggregation lane (one buffer per batch — the
/// producer side allocates per batch, never per report).
struct ShardBatch {
  size_t shard = 0;
  proto::ReportBatch reports;
};

/// Times one round, runs it (under a chrome-trace span when tracing is
/// on), folds its telemetry into the process registry, and appends its
/// RoundStats.
RoundOutcome RunTimedRound(const RoundRunner& run_round,
                           const std::vector<size_t>& population,
                           const StageSpec& spec,
                           const std::string& encoded_request,
                           const AnswerFn& answer, const std::string& stage,
                           CollectorMetrics* metrics) {
  // Resolved once per process; Record/Add through the cached pointers is
  // the lock-free path the registry's contract promises.
  static telemetry::Registry& reg = telemetry::Registry::Default();
  static telemetry::Counter* rounds_total =
      reg.GetCounter("collector_rounds_total");
  static telemetry::Counter* accepted_total =
      reg.GetCounter("collector_reports_accepted_total");
  static telemetry::Counter* rejected_total =
      reg.GetCounter("collector_reports_rejected_total");
  static telemetry::Counter* client_errors_total =
      reg.GetCounter("collector_client_errors_total");
  static telemetry::Counter* bytes_up_total =
      reg.GetCounter("collector_bytes_up_total");
  static telemetry::Counter* bytes_down_total =
      reg.GetCounter("collector_bytes_down_total");
  static telemetry::Histogram* ingest_global =
      reg.GetHistogram("collector_ingest_batch_ns");
  static telemetry::Gauge* round_users =
      reg.GetGauge("collector_round_users");

  telemetry::TraceSpan span(telemetry::GlobalTrace(), stage, "round");
  round_users->Set(static_cast<int64_t>(population.size()));
  double start = Now();
  RoundOutcome outcome = run_round(population, spec, encoded_request, answer);
  double seconds = Now() - start;
  span.Close();
  round_users->Set(0);

  rounds_total->Add(1);
  accepted_total->Add(outcome.agg.accepted());
  rejected_total->Add(outcome.agg.rejected());
  client_errors_total->Add(outcome.client_errors);
  bytes_up_total->Add(outcome.agg.bytes_ingested());
  bytes_down_total->Add(encoded_request.size() * population.size());
  ingest_global->Merge(outcome.ingest_latency);

  if (metrics != nullptr) {
    RoundStats stats;
    stats.stage = stage;
    stats.users = population.size();
    stats.accepted = outcome.agg.accepted();
    stats.rejected = outcome.agg.rejected();
    stats.client_errors = outcome.client_errors;
    stats.bytes_up = outcome.agg.bytes_ingested();
    stats.bytes_down = encoded_request.size() * population.size();
    stats.seconds = seconds;
    const telemetry::HistogramSnapshot& lat = outcome.ingest_latency;
    if (!lat.empty()) {
      stats.ingest_batches = lat.count;
      stats.ingest_p50_ns = lat.Quantile(0.50);
      stats.ingest_p95_ns = lat.Quantile(0.95);
      stats.ingest_p99_ns = lat.Quantile(0.99);
      stats.ingest_max_ns = lat.max;
      stats.ingest_mean_ns = lat.Mean();
    }
    metrics->rounds.push_back(std::move(stats));
  }
  return outcome;
}

/// A set shutdown flag turns the partial round just recorded into a
/// Cancelled protocol result — never into a server-side decision.
Status CheckShutdown() {
  if (ShutdownRequested()) {
    return Status::Cancelled("shutdown requested mid-protocol");
  }
  return Status::Ok();
}

}  // namespace

RoundCoordinator::RoundCoordinator(core::MechanismConfig config,
                                   CollectorOptions options,
                                   ThreadPool* pool)
    : config_(config), options_(options), pool_(pool) {}

size_t RoundCoordinator::EffectiveThreads() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

size_t RoundCoordinator::EffectiveShards() const {
  size_t shards =
      options_.num_shards > 0 ? options_.num_shards : EffectiveThreads();
  return shards > 0 ? shards : 1;
}

RoundOutcome RoundCoordinator::RunRound(const ClientFleet& fleet,
                                        const std::vector<size_t>& population,
                                        const StageSpec& spec,
                                        const AnswerFn& answer) const {
  size_t num_shards = EffectiveShards();
  size_t batch_size = options_.batch_size > 0 ? options_.batch_size : 1;
  RoundOutcome outcome{ShardedAggregator(spec, num_shards), 0, {}};
  std::atomic<size_t> client_errors{0};
  // One live histogram per round, shared by every ingesting thread
  // (Record is relaxed atomics — per-BATCH, never per-report, so the
  // zero-allocation report path stays untouched). Snapshotted into the
  // outcome at the end; heap-allocated because it is ~24KB of atomics.
  auto ingest_hist = std::make_unique<telemetry::Histogram>();

  // Shard s owns the contiguous stripe [n*s/S, n*(s+1)/S) of the
  // population. Integer-count merging makes the final estimates
  // independent of this partition (and of which lane ingests what), so
  // both ingestion modes below are free to route batches as they like.
  auto produce_stripe = [&](size_t shard, auto&& emit_batch) {
    size_t n = population.size();
    size_t begin = n * shard / num_shards;
    size_t end = n * (shard + 1) / num_shards;
    size_t errors = 0;
    // One scratch per stripe: the answer path reuses its DP rows and
    // score buffers across every user of the stripe, and reports encode
    // into the batch's flat buffer — no per-report allocation.
    proto::AnswerScratch scratch;
    proto::ReportBatch batch;
    batch.Reserve(batch_size);
    for (size_t i = begin; i < end; ++i) {
      // Graceful shutdown: stop producing new reports mid-stripe. The
      // already-emitted batches drain normally, so the partial round's
      // accounting stays exact; DriveProtocol turns the flag into a
      // Cancelled status before any server-side decision.
      if (ShutdownRequested()) break;
      size_t user = population[i];
      proto::ClientSession session = fleet.MakeSession(user);
      Status answered = answer(session, user, scratch, batch);
      if (!answered.ok()) {
        ++errors;
        continue;
      }
      if (batch.size() >= batch_size) {
        emit_batch(shard, std::move(batch));
        batch = proto::ReportBatch();
        batch.Reserve(batch_size);
      }
    }
    if (!batch.empty()) emit_batch(shard, std::move(batch));
    client_errors.fetch_add(errors);
  };

  auto for_each_shard = [&](const std::function<void(size_t)>& body) {
    if (pool_ != nullptr) {
      pool_->ParallelFor(num_shards, body);
    } else {
      for (size_t shard = 0; shard < num_shards; ++shard) body(shard);
    }
  };

  if (!options_.streaming) {
    // Barrier mode: the worker that answers a stripe also aggregates it,
    // so a round is answer-then-ingest per report with no overlap across
    // the two phases beyond what sharding gives.
    for_each_shard([&](size_t shard) {
      produce_stripe(shard, [&](size_t s, proto::ReportBatch batch) {
        uint64_t t0 = NowNs();
        outcome.agg.ConsumeBatch(s, batch);
        ingest_hist->Record(NowNs() - t0);
      });
    });
  } else {
    // Streaming mode: producers answer sessions and push batches into
    // bounded MPSC queues; dedicated drainer threads aggregate
    // concurrently. Drainer d is the only consumer of queue d and the
    // only writer of lanes {s : s % D == d}, preserving the one-writer-
    // per-lane rule without locks on the aggregation state itself.
    // Drainers must be dedicated threads (pool tasks could be starved by
    // producers blocked on full queues), but they count against the
    // thread budget: ceil(threads/2) of them, so a T-thread streaming
    // round schedules at most 1.5T runnable threads — decode+count is
    // far cheaper than answering, so half the workers absorb it.
    size_t num_drainers =
        std::min(num_shards, (EffectiveThreads() + 1) / 2);
    if (num_drainers == 0) num_drainers = 1;
    std::vector<std::unique_ptr<BatchQueue<ShardBatch>>> queues;
    queues.reserve(num_drainers);
    for (size_t d = 0; d < num_drainers; ++d) {
      queues.push_back(
          std::make_unique<BatchQueue<ShardBatch>>(options_.queue_depth));
      // Live backpressure visibility: queue d mirrors its depth into the
      // collector_queue_depth_d<d> gauge, so a mid-round scrape shows
      // which drainers are saturated.
      queues.back()->set_depth_gauge(QueueDepthGauge(d));
    }
    std::vector<std::exception_ptr> drain_errors(num_drainers);
    std::vector<std::thread> drainers;
    drainers.reserve(num_drainers);
    for (size_t d = 0; d < num_drainers; ++d) {
      drainers.emplace_back([&, d] {
        // An exception escaping a std::thread body would terminate the
        // process; capture it for the post-join rethrow. The dying
        // drainer closes its own queue so producers blocked on a full
        // queue unblock (their remaining pushes are discarded — fine,
        // the whole round is being abandoned).
        try {
          ShardBatch item;
          while (queues[d]->Pop(&item)) {
            uint64_t t0 = NowNs();
            outcome.agg.ConsumeBatch(item.shard, item.reports);
            ingest_hist->Record(NowNs() - t0);
          }
        } catch (...) {
          drain_errors[d] = std::current_exception();
          queues[d]->Close();
        }
      });
    }
    auto shutdown = [&] {
      for (auto& queue : queues) queue->Close();
      for (auto& drainer : drainers) drainer.join();
    };
    try {
      for_each_shard([&](size_t shard) {
        produce_stripe(shard, [&](size_t s, proto::ReportBatch batch) {
          queues[s % num_drainers]->Push(ShardBatch{s, std::move(batch)});
        });
      });
    } catch (...) {
      // Drainers must be joined before the queues (and `outcome`) unwind.
      shutdown();
      throw;
    }
    shutdown();
    for (const auto& error : drain_errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  outcome.client_errors = client_errors.load();
  outcome.ingest_latency = ingest_hist->Snapshot();
  return outcome;
}

Result<core::MechanismResult> DriveProtocol(
    const core::MechanismConfig& config, size_t num_users,
    const RoundRunner& run_round, CollectorMetrics* metrics) {
  double start = Now();
  if (num_users == 0) {
    return Status::InvalidArgument("empty fleet");
  }
  auto server = core::PrivShapeServer::Create(config);
  if (!server.ok()) return server.status();
  if (metrics != nullptr) metrics->num_users = num_users;

  // Same split, same shared-engine usage as the core pipeline: the stage
  // assignment is the server's only draw from the shared seed.
  Rng rng(config.seed);
  core::FourWaySplit split =
      core::SplitFourWay(num_users, config.frac_a, config.frac_b,
                         config.frac_c, config.frac_d, &rng);

  // Round P_a: frequent length. The coordinator pre-builds the shared
  // RoundContext once (GRR tables and all); every client answers against
  // it with per-worker scratch — the zero-allocation report path.
  {
    StageSpec spec;
    spec.kind = proto::ReportKind::kLength;
    spec.domain = static_cast<size_t>(config.ell_high - config.ell_low + 1);
    spec.epsilon = config.epsilon;
    if (split.pa.empty()) {
      return Status::InvalidArgument(
          "length estimation requires a non-empty population");
    }
    proto::LengthRequest request;
    request.ell_low = config.ell_low;
    request.ell_high = config.ell_high;
    request.epsilon = config.epsilon;
    // Encoded once per round, like every broadcast: these are the bytes a
    // wire deployment ships to each P_a user, and what bytes_down counts.
    std::string encoded_request = proto::EncodeLengthRequest(request);
    auto context = proto::RoundContext::Length(request);
    if (!context.ok()) return context.status();
    const proto::RoundContext& ctx = *context;
    RoundOutcome outcome = RunTimedRound(
        run_round, split.pa, spec, encoded_request,
        [&ctx](proto::ClientSession& session, size_t,
               proto::AnswerScratch& scratch, proto::ReportBatch& out) {
          return session.AnswerTo(ctx, &scratch, &out);
        },
        "Pa", metrics);
    PRIVSHAPE_RETURN_IF_ERROR(CheckShutdown());
    PRIVSHAPE_RETURN_IF_ERROR(
        server->FinishLength(outcome.agg.DebiasedCounts(0)));
  }
  int ell_s = server->frequent_length();

  // Round P_b: frequent sub-shape transitions.
  size_t num_levels = server->NumSubShapeLevels();
  if (num_levels == 0) {
    PRIVSHAPE_RETURN_IF_ERROR(server->FinishSubShapes({}));
  } else {
    StageSpec spec;
    spec.kind = proto::ReportKind::kSubShape;
    spec.domain = core::SubShapeDomainSize(config.t, config.allow_repeats);
    spec.epsilon = config.epsilon;
    spec.min_level = 1;
    spec.num_levels = num_levels;
    proto::SubShapeRequest request;
    request.alphabet = config.t;
    request.ell_s = ell_s;
    request.epsilon = config.epsilon;
    request.allow_repeats = config.allow_repeats;
    std::string encoded_request = proto::EncodeSubShapeRequest(request);
    auto context = proto::RoundContext::SubShape(request);
    if (!context.ok()) return context.status();
    const proto::RoundContext& ctx = *context;
    RoundOutcome outcome = RunTimedRound(
        run_round, split.pb, spec, encoded_request,
        [&ctx](proto::ClientSession& session, size_t,
               proto::AnswerScratch& scratch, proto::ReportBatch& out) {
          return session.AnswerTo(ctx, &scratch, &out);
        },
        "Pb", metrics);
    PRIVSHAPE_RETURN_IF_ERROR(CheckShutdown());
    std::vector<std::vector<double>> level_counts(num_levels);
    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
      level_counts[lvl] = outcome.agg.DebiasedCounts(lvl);
    }
    PRIVSHAPE_RETURN_IF_ERROR(server->FinishSubShapes(level_counts));
  }

  // Rounds P_c: one candidate broadcast + EM selection per trie level.
  std::vector<std::vector<size_t>> level_groups =
      core::PartitionGroups(split.pc, static_cast<size_t>(ell_s));
  for (int level = 0; level < ell_s; ++level) {
    auto candidates = server->BeginTrieLevel(level);
    if (!candidates.ok()) return candidates.status();
    proto::CandidateRequest request;
    request.level = static_cast<uint64_t>(level);
    request.epsilon = config.epsilon;
    request.candidates = *candidates;
    // Still encoded once per round: the broadcast bytes are what a wire
    // deployment ships, and the metrics account for them — but no client
    // decodes it anymore; they all share the pre-decoded context.
    std::string encoded_request = proto::EncodeCandidateRequest(request);
    auto context =
        proto::RoundContext::Selection(std::move(request), config.metric);
    if (!context.ok()) return context.status();
    const proto::RoundContext& ctx = *context;
    StageSpec spec;
    spec.kind = proto::ReportKind::kSelection;
    spec.domain = candidates->size();
    spec.epsilon = config.epsilon;
    spec.min_level = static_cast<uint64_t>(level);
    RoundOutcome outcome = RunTimedRound(
        run_round, level_groups[static_cast<size_t>(level)], spec,
        encoded_request,
        [&ctx](proto::ClientSession& session, size_t,
               proto::AnswerScratch& scratch, proto::ReportBatch& out) {
          return session.AnswerTo(ctx, &scratch, &out);
        },
        "Pc.level" + std::to_string(level), metrics);
    PRIVSHAPE_RETURN_IF_ERROR(CheckShutdown());
    PRIVSHAPE_RETURN_IF_ERROR(
        server->FinishTrieLevel(outcome.agg.DebiasedCounts(0)));
  }

  // Round P_d / P_e: refinement over the surviving candidates — GRR over
  // candidate indices for clustering (P_d), or the OUE candidate x class
  // round (P_e, §V-E) when the mechanism runs the classification task.
  auto candidates = server->BeginRefinement();
  if (!candidates.ok()) return candidates.status();
  Result<core::MechanismResult> result = Status::Internal("unreachable");
  if (config.disable_refinement) {
    result = server->FinishWithoutRefinement();
  } else if (config.num_classes > 0) {
    proto::ClassRefineRequest request;
    request.epsilon = config.epsilon;
    request.num_classes = static_cast<uint64_t>(config.num_classes);
    request.candidates = *candidates;
    std::string encoded_request = proto::EncodeClassRefineRequest(request);
    auto context = proto::RoundContext::ClassRefinement(std::move(request),
                                                        config.metric);
    if (!context.ok()) return context.status();
    const proto::RoundContext& ctx = *context;
    StageSpec spec;
    spec.kind = proto::ReportKind::kClassRefine;
    spec.domain = ctx.cells();
    spec.epsilon = config.epsilon;
    RoundOutcome outcome = RunTimedRound(
        run_round, split.pd, spec, encoded_request,
        [&ctx](proto::ClientSession& session, size_t,
               proto::AnswerScratch& scratch, proto::ReportBatch& out) {
          return session.AnswerTo(ctx, &scratch, &out);
        },
        "Pe", metrics);
    PRIVSHAPE_RETURN_IF_ERROR(CheckShutdown());
    result = server->FinishClassRefinement(outcome.agg.DebiasedCounts(0));
  } else {
    proto::CandidateRequest request;
    request.level = 0;
    request.epsilon = config.epsilon;
    request.candidates = *candidates;
    std::string encoded_request = proto::EncodeCandidateRequest(request);
    auto context =
        proto::RoundContext::Refinement(std::move(request), config.metric);
    if (!context.ok()) return context.status();
    const proto::RoundContext& ctx = *context;
    StageSpec spec;
    spec.kind = proto::ReportKind::kRefinement;
    spec.domain = std::max<size_t>(candidates->size(), 2);
    spec.epsilon = config.epsilon;
    RoundOutcome outcome = RunTimedRound(
        run_round, split.pd, spec, encoded_request,
        [&ctx](proto::ClientSession& session, size_t,
               proto::AnswerScratch& scratch, proto::ReportBatch& out) {
          return session.AnswerTo(ctx, &scratch, &out);
        },
        "Pd", metrics);
    PRIVSHAPE_RETURN_IF_ERROR(CheckShutdown());
    result = server->FinishRefinement(outcome.agg.DebiasedCounts(0));
  }

  if (metrics != nullptr) metrics->total_seconds = Now() - start;
  return result;
}

Result<core::MechanismResult> RoundCoordinator::Collect(
    const ClientFleet& fleet, CollectorMetrics* metrics) {
  if (config_.num_classes > 0 && !fleet.labeled()) {
    return Status::FailedPrecondition(
        "classification refinement requires a labeled fleet");
  }
  if (metrics != nullptr) {
    metrics->num_shards = EffectiveShards();
    metrics->num_threads = EffectiveThreads();
    metrics->num_collectors = 1;
    metrics->queue_depth = options_.queue_depth;
    metrics->ingest = options_.streaming ? "streaming" : "barrier";
  }
  return DriveProtocol(
      config_, fleet.num_users(),
      [this, &fleet](const std::vector<size_t>& population,
                     const StageSpec& spec, const std::string&,
                     const AnswerFn& answer) {
        return RunRound(fleet, population, spec, answer);
      },
      metrics);
}

}  // namespace privshape::collector
