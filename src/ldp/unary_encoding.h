#ifndef PRIVSHAPE_LDP_UNARY_ENCODING_H_
#define PRIVSHAPE_LDP_UNARY_ENCODING_H_

#include <vector>

#include "common/analysis_annotations.h"
#include "ldp/frequency_oracle.h"

namespace privshape::ldp {

/// Unary-encoding oracles (Wang et al., USENIX Security'17). A value is
/// one-hot encoded over d bits; the 1-bit is kept with probability p and
/// each 0-bit flips to 1 with probability q. eps-LDP requires
/// p(1-q) / (q(1-p)) = e^eps.
///
///  - SUE ("basic RAPPOR"): p = e^{eps/2} / (e^{eps/2}+1), q = 1 - p.
///  - OUE (optimized):      p = 1/2, q = 1 / (e^eps + 1) — minimizes
///    estimator variance and is what the paper's classification refinement
///    uses (§V-E).
class UnaryEncoding : public FrequencyOracle {
 public:
  enum class Variant { kSymmetric, kOptimized };

  static Result<UnaryEncoding> Create(size_t domain_size, double epsilon,
                                      Variant variant);

  /// Perturbs the one-hot encoding of `value`; exposed for tests.
  /// Allocates fresh buffers — the hot path uses EncodeInto below.
  PS_RNG_WORDS(d_)
  std::vector<uint8_t> PerturbValue(size_t value, Rng* rng) const;

  /// Zero-allocation batched perturbation — THE canonical unary-encoding
  /// consumption order: exactly d raw engine words, one per cell in cell
  /// order, with bit i = (word_i < threshold(i == value ? p : q)). The
  /// whole block is drawn with one FillU64 and compared with the SIMD
  /// threshold kernel; `words` and `bits` are caller-reused scratch
  /// (resized to d). PerturbValue and every wire session delegate here,
  /// so all paths spend identical randomness.
  PS_RNG_WORDS(d_)
  void EncodeInto(size_t value, Rng* rng, std::vector<uint64_t>* words,
                  std::vector<uint8_t>* bits) const;

  PS_RNG_WORDS(d_)
  Status SubmitUser(size_t value, Rng* rng) override;
  /// Accumulates an externally produced bit vector (used by the PrivShape
  /// classification refinement, which encodes candidate x label cells).
  Status SubmitBits(const std::vector<uint8_t>& bits);

  std::vector<double> EstimateCounts() const override;
  void Reset() override;

  size_t domain_size() const override { return d_; }
  double epsilon() const override { return epsilon_; }
  size_t num_reports() const override { return n_; }

  double p() const { return p_; }
  double q() const { return q_; }

 private:
  UnaryEncoding(size_t d, double epsilon, double p, double q)
      : d_(d),
        epsilon_(epsilon),
        p_(p),
        q_(q),
        p_threshold_(ThresholdForProbability(p)),
        q_threshold_(ThresholdForProbability(q)),
        bit_counts_(d, 0) {}

  size_t d_;
  double epsilon_;
  double p_;
  double q_;
  uint64_t p_threshold_;  ///< raw-u64 acceptance bound for the 1-bit
  uint64_t q_threshold_;  ///< raw-u64 acceptance bound for 0-bits
  std::vector<size_t> bit_counts_;
  size_t n_ = 0;
};

}  // namespace privshape::ldp

#endif  // PRIVSHAPE_LDP_UNARY_ENCODING_H_
