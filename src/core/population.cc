#include "core/population.h"

#include <algorithm>
#include <numeric>

namespace privshape::core {

FourWaySplit SplitFourWay(size_t n, double fa, double fb, double fc,
                          double fd, Rng* rng) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  auto take = [&](size_t count, size_t* cursor) {
    size_t begin = *cursor;
    size_t end = std::min(begin + count, n);
    *cursor = end;
    return std::vector<size_t>(order.begin() + static_cast<long>(begin),
                               order.begin() + static_cast<long>(end));
  };

  size_t na = static_cast<size_t>(fa * static_cast<double>(n));
  size_t nb = static_cast<size_t>(fb * static_cast<double>(n));
  size_t nd = static_cast<size_t>(fd * static_cast<double>(n));
  (void)fc;  // pc absorbs everything left over

  // Guarantee at least one user in mandatory stages when n allows it.
  if (na == 0 && n > 0) na = 1;

  size_t cursor = 0;
  FourWaySplit split;
  split.pa = take(na, &cursor);
  split.pb = take(nb, &cursor);
  split.pd = take(nd, &cursor);
  split.pc = take(n - cursor, &cursor);
  return split;
}

std::vector<std::vector<size_t>> PartitionGroups(
    const std::vector<size_t>& users, size_t num_groups) {
  std::vector<std::vector<size_t>> groups(std::max<size_t>(num_groups, 1));
  if (users.empty()) return groups;
  size_t base = users.size() / groups.size();
  size_t extra = users.size() % groups.size();
  size_t cursor = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    size_t count = base + (g < extra ? 1 : 0);
    for (size_t i = 0; i < count; ++i) groups[g].push_back(users[cursor++]);
  }
  return groups;
}

}  // namespace privshape::core
