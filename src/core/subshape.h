#ifndef PRIVSHAPE_CORE_SUBSHAPE_H_
#define PRIVSHAPE_CORE_SUBSHAPE_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "series/sequence.h"
#include "trie/trie.h"

namespace privshape::core {

/// Index of an adjacent-symbol pair within the GRR report domain.
///
/// Compressed sequences never repeat a symbol, so the valid domain has
/// t*(t-1) ordered pairs (`allow_repeats = false`); the "No Compression"
/// ablation uses the full t*t grid. One extra sentinel bucket (the last
/// index) absorbs padded positions — see SubShapeDomainSize().
size_t PairToIndex(Symbol a, Symbol b, int t, bool allow_repeats);
trie::Transition IndexToPair(size_t index, int t, bool allow_repeats);

/// Report domain size incl. the sentinel padding bucket.
size_t SubShapeDomainSize(int t, bool allow_repeats);

/// Per-level frequent sub-shape estimates (§IV-B).
struct SubShapeEstimates {
  /// top_transitions[j-1] = the top-m transitions at level j (the pairs
  /// (s_j, s_{j+1}) of 1-indexed positions), ordered by estimated count.
  std::vector<std::vector<trie::Transition>> top_transitions;
  /// Raw debiased counts per level and pair index (diagnostics/tests).
  std::vector<std::vector<double>> counts;
};

/// Server-side ranking step shared by the in-process estimator and the
/// collector: given per-level debiased pair counts (each vector sized
/// SubShapeDomainSize, sentinel last), keeps the top-m real pairs per
/// level by estimated count (stable order; sentinel dropped).
SubShapeEstimates RankSubShapes(
    const std::vector<std::vector<double>>& level_counts, int t, size_t top_m,
    bool allow_repeats);

/// Padding-and-sampling estimation: each user pads/truncates their
/// sequence to length ell_s, picks a level j uniformly from
/// {1, ..., ell_s - 1}, and reports (j, GRR(pair at j)). Positions that
/// fall in the padded region report the sentinel bucket, which the server
/// debiases and then discards — this keeps the estimator unbiased on real
/// pairs while every report stays eps-LDP.
Result<SubShapeEstimates> EstimateSubShapes(
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, int ell_s, int t, size_t top_m,
    double epsilon, bool allow_repeats, Rng* rng);

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_SUBSHAPE_H_
