#ifndef PRIVSHAPE_EVAL_ARI_H_
#define PRIVSHAPE_EVAL_ARI_H_

#include <vector>

#include "common/status.h"

namespace privshape::eval {

/// Adjusted Rand Index (Hubert & Arabie, 1985) between two labelings of the
/// same items; 1 = identical partitions, ~0 = random agreement. This is the
/// clustering metric in the paper's Fig. 9 / Table III.
Result<double> AdjustedRandIndex(const std::vector<int>& labels_a,
                                 const std::vector<int>& labels_b);

/// Plain classification accuracy (fraction of equal entries).
Result<double> Accuracy(const std::vector<int>& truth,
                        const std::vector<int>& predicted);

}  // namespace privshape::eval

#endif  // PRIVSHAPE_EVAL_ARI_H_
