// Shapelet discovery on top of PrivShape (the paper's §VII future work).
//
// PrivShape extracts frequent labeled shapes under user-level LDP; by the
// post-processing theorem, anything computed from those shapes keeps the
// same guarantee. Here the extracted shapes seed a shapelet search: short
// sub-words whose best-match distance splits the classes with maximal
// information gain. The resulting decision list is an interpretable,
// privacy-preserving classifier ("contains a rise through bands c-d" =>
// class 1).
//
// Run: ./build/examples/shapelet_discovery [--users=3000] [--epsilon=4]

#include <iostream>

#include "common/cli.h"
#include "core/classification.h"
#include "core/pipeline.h"
#include "core/privshape.h"
#include "eval/ari.h"
#include "eval/shapelet.h"
#include "series/generators.h"
#include "series/time_series.h"

int main(int argc, char** argv) {
  using namespace privshape;
  CliArgs args(argc, argv);
  size_t users = static_cast<size_t>(args.GetInt("users", 3000));
  double epsilon = args.GetDouble("epsilon", 4.0);

  series::GeneratorOptions gen;
  gen.num_instances = users;
  gen.seed = 31;
  series::Dataset dataset = series::MakeTraceDataset(gen);
  series::Dataset train, test;
  series::TrainTestSplit(dataset, 0.8, 31, &train, &test);

  core::TransformOptions transform;
  transform.t = 4;
  transform.w = 10;
  auto train_seqs = core::TransformDataset(train, transform);
  auto test_seqs = core::TransformDataset(test, transform);
  if (!train_seqs.ok() || !test_seqs.ok()) {
    std::cerr << "transform failed\n";
    return 1;
  }

  // Step 1: private shape extraction (labels protected by OUE).
  core::MechanismConfig config;
  config.epsilon = epsilon;
  config.t = 4;
  config.k = 3;
  config.c = 3;
  config.metric = dist::Metric::kSed;
  config.num_classes = 3;
  config.seed = 31;
  std::vector<int> train_labels;
  for (const auto& inst : train.instances) {
    train_labels.push_back(inst.label);
  }
  core::PrivShape mechanism(config);
  auto shapes =
      core::PrivShapeLabeledShapes(mechanism, *train_seqs, train_labels);
  if (!shapes.ok()) {
    std::cerr << shapes.status() << "\n";
    return 1;
  }
  std::cout << "private seed shapes (eps=" << epsilon << "):\n";
  std::vector<Sequence> seeds;
  for (const auto& shape : *shapes) {
    std::cout << "  class " << shape.label << ": \""
              << SequenceToString(shape.shape) << "\"\n";
    seeds.push_back(shape.shape);
  }

  // Step 2: shapelet search seeded by the private shapes. The search runs
  // on the extracted shapes plus the (already-perturbed-side) training
  // words held by the analyst in this demo; in a deployment the analyst
  // would score shapelets on a public reference set.
  eval::ShapeletOptions options;
  options.metric = dist::Metric::kSed;
  options.top_k = 3;
  options.min_length = 2;
  options.max_length = 4;
  auto shapelets =
      eval::DiscoverShapelets(*train_seqs, train_labels, seeds, options);
  if (!shapelets.ok()) {
    std::cerr << shapelets.status() << "\n";
    return 1;
  }
  std::cout << "\ndiscovered shapelets (pattern, threshold, gain, class):\n";
  for (const auto& s : *shapelets) {
    std::cout << "  \"" << SequenceToString(s.pattern) << "\"  thr=" << s.threshold
              << "  gain=" << s.info_gain << "  -> class "
              << s.majority_label << "\n";
  }

  // Step 3: classify the held-out set with the shapelet decision list.
  std::vector<int> truth, preds;
  for (const auto& inst : test.instances) truth.push_back(inst.label);
  for (const auto& seq : *test_seqs) {
    preds.push_back(eval::ClassifyWithShapelets(
        seq, *shapelets, dist::Metric::kSed, /*fallback_label=*/0));
  }
  auto accuracy = eval::Accuracy(truth, preds);
  std::cout << "\nshapelet decision-list accuracy on held-out data: "
            << *accuracy << "\n";
  return 0;
}
