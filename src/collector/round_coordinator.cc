#include "collector/round_coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "core/population.h"
#include "core/subshape.h"
#include "protocol/messages.h"

namespace privshape::collector {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RoundCoordinator::RoundCoordinator(core::MechanismConfig config,
                                   CollectorOptions options,
                                   ThreadPool* pool)
    : config_(config), options_(options), pool_(pool) {}

size_t RoundCoordinator::EffectiveThreads() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

size_t RoundCoordinator::EffectiveShards() const {
  size_t shards =
      options_.num_shards > 0 ? options_.num_shards : EffectiveThreads();
  return shards > 0 ? shards : 1;
}

ShardedAggregator RoundCoordinator::RunRound(
    const ClientFleet& fleet, const std::vector<size_t>& population,
    const StageSpec& spec, const AnswerFn& answer, const std::string& stage,
    size_t bytes_down, CollectorMetrics* metrics) {
  double start = Now();
  size_t num_shards = EffectiveShards();
  size_t batch_size = options_.batch_size > 0 ? options_.batch_size : 1;
  ShardedAggregator agg(spec, num_shards);
  std::atomic<size_t> client_errors{0};

  // Shard s owns the contiguous stripe [n*s/S, n*(s+1)/S) of the
  // population and is the only writer of its aggregation lane, so the
  // whole ingestion path runs without a single lock. Integer-count
  // merging makes the final estimates independent of this partition.
  auto run_shard = [&](size_t shard) {
    size_t n = population.size();
    size_t begin = n * shard / num_shards;
    size_t end = n * (shard + 1) / num_shards;
    size_t errors = 0;
    std::vector<std::string> batch;
    batch.reserve(batch_size);
    for (size_t i = begin; i < end; ++i) {
      proto::ClientSession session = fleet.MakeSession(population[i]);
      auto wire = answer(session);
      if (!wire.ok()) {
        ++errors;
        continue;
      }
      batch.push_back(std::move(*wire));
      if (batch.size() >= batch_size) {
        agg.ConsumeBatch(shard, batch);
        batch.clear();
      }
    }
    if (!batch.empty()) agg.ConsumeBatch(shard, batch);
    client_errors.fetch_add(errors, std::memory_order_relaxed);
  };

  if (pool_ != nullptr) {
    pool_->ParallelFor(num_shards, run_shard);
  } else {
    for (size_t shard = 0; shard < num_shards; ++shard) run_shard(shard);
  }

  if (metrics != nullptr) {
    RoundStats stats;
    stats.stage = stage;
    stats.users = population.size();
    stats.accepted = agg.accepted();
    stats.rejected = agg.rejected();
    stats.client_errors = client_errors.load();
    stats.bytes_up = agg.bytes_ingested();
    stats.bytes_down = bytes_down * population.size();
    stats.seconds = Now() - start;
    metrics->rounds.push_back(std::move(stats));
  }
  return agg;
}

Result<core::MechanismResult> RoundCoordinator::Collect(
    const ClientFleet& fleet, CollectorMetrics* metrics) {
  double start = Now();
  if (fleet.num_users() == 0) {
    return Status::InvalidArgument("empty fleet");
  }
  if (config_.num_classes > 0) {
    return Status::Unimplemented(
        "classification refinement is not served over the wire yet");
  }
  auto server = core::PrivShapeServer::Create(config_);
  if (!server.ok()) return server.status();
  if (metrics != nullptr) {
    metrics->num_users = fleet.num_users();
    metrics->num_shards = EffectiveShards();
    metrics->num_threads = EffectiveThreads();
  }

  // Same split, same shared-engine usage as the core pipeline: the stage
  // assignment is the server's only draw from the shared seed.
  Rng rng(config_.seed);
  core::FourWaySplit split =
      core::SplitFourWay(fleet.num_users(), config_.frac_a, config_.frac_b,
                         config_.frac_c, config_.frac_d, &rng);

  // Round P_a: frequent length.
  {
    StageSpec spec;
    spec.kind = proto::ReportKind::kLength;
    spec.domain = static_cast<size_t>(config_.ell_high - config_.ell_low + 1);
    spec.epsilon = config_.epsilon;
    if (split.pa.empty()) {
      return Status::InvalidArgument(
          "length estimation requires a non-empty population");
    }
    int ell_low = config_.ell_low;
    int ell_high = config_.ell_high;
    double epsilon = config_.epsilon;
    ShardedAggregator agg = RunRound(
        fleet, split.pa, spec,
        [ell_low, ell_high, epsilon](proto::ClientSession& session) {
          return session.AnswerLengthRequest(ell_low, ell_high, epsilon);
        },
        "Pa", /*bytes_down=*/0, metrics);
    PRIVSHAPE_RETURN_IF_ERROR(server->FinishLength(agg.DebiasedCounts(0)));
  }
  int ell_s = server->frequent_length();

  // Round P_b: frequent sub-shape transitions.
  size_t num_levels = server->NumSubShapeLevels();
  if (num_levels == 0) {
    PRIVSHAPE_RETURN_IF_ERROR(server->FinishSubShapes({}));
  } else {
    StageSpec spec;
    spec.kind = proto::ReportKind::kSubShape;
    spec.domain = core::SubShapeDomainSize(config_.t, config_.allow_repeats);
    spec.epsilon = config_.epsilon;
    spec.min_level = 1;
    spec.num_levels = num_levels;
    int t = config_.t;
    double epsilon = config_.epsilon;
    bool allow_repeats = config_.allow_repeats;
    ShardedAggregator agg = RunRound(
        fleet, split.pb, spec,
        [t, ell_s, epsilon, allow_repeats](proto::ClientSession& session) {
          return session.AnswerSubShapeRequest(t, ell_s, epsilon,
                                               allow_repeats);
        },
        "Pb", /*bytes_down=*/0, metrics);
    std::vector<std::vector<double>> level_counts(num_levels);
    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
      level_counts[lvl] = agg.DebiasedCounts(lvl);
    }
    PRIVSHAPE_RETURN_IF_ERROR(server->FinishSubShapes(level_counts));
  }

  // Rounds P_c: one candidate broadcast + EM selection per trie level.
  std::vector<std::vector<size_t>> level_groups =
      core::PartitionGroups(split.pc, static_cast<size_t>(ell_s));
  for (int level = 0; level < ell_s; ++level) {
    auto candidates = server->BeginTrieLevel(level);
    if (!candidates.ok()) return candidates.status();
    proto::CandidateRequest request;
    request.level = static_cast<uint64_t>(level);
    request.epsilon = config_.epsilon;
    request.candidates = *candidates;
    std::string encoded_request = proto::EncodeCandidateRequest(request);
    StageSpec spec;
    spec.kind = proto::ReportKind::kSelection;
    spec.domain = candidates->size();
    spec.epsilon = config_.epsilon;
    spec.min_level = static_cast<uint64_t>(level);
    ShardedAggregator agg = RunRound(
        fleet, level_groups[static_cast<size_t>(level)], spec,
        [&encoded_request](proto::ClientSession& session) {
          return session.AnswerCandidateRequest(encoded_request);
        },
        "Pc.level" + std::to_string(level), encoded_request.size(), metrics);
    PRIVSHAPE_RETURN_IF_ERROR(
        server->FinishTrieLevel(agg.DebiasedCounts(0)));
  }

  // Round P_d: refinement over the surviving candidates.
  auto candidates = server->BeginRefinement();
  if (!candidates.ok()) return candidates.status();
  Result<core::MechanismResult> result = Status::Internal("unreachable");
  if (config_.disable_refinement) {
    result = server->FinishWithoutRefinement();
  } else {
    proto::CandidateRequest request;
    request.level = 0;
    request.epsilon = config_.epsilon;
    request.candidates = *candidates;
    std::string encoded_request = proto::EncodeCandidateRequest(request);
    StageSpec spec;
    spec.kind = proto::ReportKind::kRefinement;
    spec.domain = std::max<size_t>(candidates->size(), 2);
    spec.epsilon = config_.epsilon;
    ShardedAggregator agg = RunRound(
        fleet, split.pd, spec,
        [&encoded_request](proto::ClientSession& session) {
          return session.AnswerRefinementRequest(encoded_request);
        },
        "Pd", encoded_request.size(), metrics);
    result = server->FinishRefinement(agg.DebiasedCounts(0));
  }

  if (metrics != nullptr) metrics->total_seconds = Now() - start;
  return result;
}

}  // namespace privshape::collector
