/// \file
/// Per-report answer-path microbenchmark: reports/sec for each protocol
/// stage (P_a..P_d) on a single thread, across three client paths:
///
///   legacy  — the pre-RoundContext per-call implementation, faithfully
///             reconstructed here (the library no longer contains it):
///             re-decode the broadcast request, re-create the GRR/EM
///             mechanism and the distance object, copy a prefix Sequence
///             per candidate, allocate two DP rows per distance, allocate
///             the distance/score/probability vectors per report.
///   string  — today's string-decoding ClientSession entry points (thin
///             wrappers over the shared hot path; still rebuild the
///             round context per call).
///   context — the shared-RoundContext hot path: decode + mechanism
///             construction once per round, per-worker scratch, batched
///             encoding; zero allocation per report.
///
/// All three paths draw identical randomness and must emit byte-identical
/// reports per user (checked for a sample each run). Writes
/// BENCH_hotpath.json — the client hot path's perf trajectory per PR.
/// Acceptance gate: context >= 2x legacy on the selection-heavy P_c round.
///
///   bench_client_hotpath --users 20000 --trials 3 --json BENCH_hotpath.json
///
/// The floor every path shares is per-user privacy randomness: an
/// mt19937_64 stream seeded with DeriveSeed(seed, user), pinned by the
/// byte-identical determinism contract. Before this repo's LazyMt64 the
/// eager engine cost ~2.4us/user in construction plus first twist; the
/// lazy engine (same bit stream) brings that to ~0.4us for the handful
/// of draws a client makes, and all three paths here benefit from it —
/// the remaining gap between them is pure answer-path work.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "collector/client_fleet.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/em_selection.h"
#include "core/rounds.h"
#include "core/subshape.h"
#include "distance/candidate_table.h"
#include "ldp/exponential.h"
#include "ldp/grr.h"
#include "ldp/unary_encoding.h"
#include "protocol/messages.h"
#include "protocol/round_context.h"
#include "protocol/session.h"

#ifndef PRIVSHAPE_BENCH_FLAGS
#define PRIVSHAPE_BENCH_FLAGS "(unknown)"
#endif

namespace privshape {
namespace {

using bench::ExperimentScale;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr uint64_t kSessionSeedBase = 0x40117;

// --- The PR-3 client, reconstructed -----------------------------------
//
// Byte-for-byte the draws of today's paths (same helpers, same order),
// with the historical allocation profile: this is the "before" of the
// zero-allocation refactor.

struct LegacyClient {
  Sequence word;
  dist::Metric metric;
  Rng rng;

  /// PR-3 MatchDistances: prefix *copied* into a Sequence per candidate,
  /// every distance call allocating its own DP rows (the public
  /// allocating overloads still do).
  std::vector<double> MatchDistancesLegacy(
      const std::vector<Sequence>& candidates,
      const dist::SequenceDistance& distance) {
    std::vector<double> distances(candidates.size());
    for (size_t cand = 0; cand < candidates.size(); ++cand) {
      const Sequence& shape = candidates[cand];
      if (word.size() > shape.size()) {
        Sequence prefix(word.begin(),
                        word.begin() + static_cast<long>(shape.size()));
        distances[cand] = distance.Distance(prefix, shape);
      } else {
        distances[cand] = distance.Distance(word, shape);
      }
    }
    return distances;
  }

  Result<std::string> AnswerLengthRequest(int ell_low, int ell_high,
                                          double epsilon) {
    size_t domain = static_cast<size_t>(ell_high - ell_low + 1);
    proto::Report report;
    report.kind = proto::ReportKind::kLength;
    if (domain == 1) {
      report.value = 0;
    } else {
      auto grr = ldp::Grr::Create(domain, epsilon);
      if (!grr.ok()) return grr.status();
      report.value =
          core::AnswerLengthValue(word, ell_low, ell_high, *grr, &rng);
    }
    return proto::EncodeReport(report);
  }

  Result<std::string> AnswerSubShapeRequest(int alphabet, int ell_s,
                                            double epsilon,
                                            bool allow_repeats) {
    size_t domain = core::SubShapeDomainSize(alphabet, allow_repeats);
    auto grr = ldp::Grr::Create(domain, epsilon);
    if (!grr.ok()) return grr.status();
    auto [level, value] = core::AnswerSubShapeValue(
        word, ell_s, alphabet, allow_repeats, *grr, &rng);
    proto::Report report;
    report.kind = proto::ReportKind::kSubShape;
    report.level = level;
    report.value = value;
    return proto::EncodeReport(report);
  }

  Result<std::string> AnswerCandidateRequest(const std::string& request) {
    auto decoded = proto::DecodeCandidateRequest(request);
    if (!decoded.ok()) return decoded.status();
    auto em = ldp::ExponentialMechanism::Create(decoded->epsilon);
    if (!em.ok()) return em.status();
    auto distance = dist::MakeDistance(metric);
    std::vector<double> distances =
        MatchDistancesLegacy(decoded->candidates, *distance);
    auto pick = em->Select(ldp::ScoresFromDistances(distances), &rng);
    if (!pick.ok()) return pick.status();
    proto::Report report;
    report.kind = proto::ReportKind::kSelection;
    report.level = decoded->level;
    report.value = *pick;
    return proto::EncodeReport(report);
  }

  Result<std::string> AnswerRefinementRequest(const std::string& request) {
    auto decoded = proto::DecodeCandidateRequest(request);
    if (!decoded.ok()) return decoded.status();
    auto grr = ldp::Grr::Create(
        std::max<size_t>(decoded->candidates.size(), 2), decoded->epsilon);
    if (!grr.ok()) return grr.status();
    auto distance = dist::MakeDistance(metric);
    // PR-3 ClosestCandidate: exhaustive, allocating per distance call.
    double best = std::numeric_limits<double>::infinity();
    size_t best_idx = 0;
    for (size_t i = 0; i < decoded->candidates.size(); ++i) {
      double d = distance->Distance(word, decoded->candidates[i]);
      if (d < best) {
        best = d;
        best_idx = i;
      }
    }
    proto::Report report;
    report.kind = proto::ReportKind::kRefinement;
    report.value = grr->PerturbValue(best_idx, &rng);
    return proto::EncodeReport(report);
  }
};

// --- Benchmark scaffolding ---------------------------------------------

/// One benchmarked stage: the shared context plus how each historical
/// path answers it.
struct Stage {
  std::string name;
  proto::RoundContext context;
  std::function<Result<std::string>(LegacyClient&)> legacy_path;
  std::function<Result<std::string>(proto::ClientSession&)> string_path;
};

struct PathResult {
  double seconds = 0.0;
  double rate = 0.0;
  size_t bytes = 0;
};

proto::ClientSession SessionFor(const std::vector<Sequence>& words,
                                size_t user, dist::Metric metric) {
  return proto::ClientSession(words[user % words.size()], metric,
                              DeriveSeed(kSessionSeedBase, user));
}

LegacyClient LegacyFor(const std::vector<Sequence>& words, size_t user,
                       dist::Metric metric) {
  return LegacyClient{words[user % words.size()], metric,
                      Rng(DeriveSeed(kSessionSeedBase, user))};
}

PathResult RunLegacyPath(const Stage& stage,
                         const std::vector<Sequence>& words, size_t users,
                         dist::Metric metric) {
  PathResult out;
  double start = Now();
  for (size_t u = 0; u < users; ++u) {
    LegacyClient client = LegacyFor(words, u, metric);
    auto wire = stage.legacy_path(client);
    if (wire.ok()) out.bytes += wire->size();
  }
  out.seconds = Now() - start;
  out.rate = out.seconds > 0 ? static_cast<double>(users) / out.seconds : 0;
  return out;
}

PathResult RunStringPath(const Stage& stage,
                         const std::vector<Sequence>& words, size_t users,
                         dist::Metric metric) {
  PathResult out;
  double start = Now();
  for (size_t u = 0; u < users; ++u) {
    proto::ClientSession session = SessionFor(words, u, metric);
    auto wire = stage.string_path(session);
    if (wire.ok()) out.bytes += wire->size();
  }
  out.seconds = Now() - start;
  out.rate = out.seconds > 0 ? static_cast<double>(users) / out.seconds : 0;
  return out;
}

PathResult RunContextPath(const Stage& stage,
                          const std::vector<Sequence>& words, size_t users,
                          dist::Metric metric) {
  PathResult out;
  proto::AnswerScratch scratch;
  proto::ReportBatch batch;
  batch.Reserve(256);
  double start = Now();
  for (size_t u = 0; u < users; ++u) {
    proto::ClientSession session = SessionFor(words, u, metric);
    (void)session.AnswerTo(stage.context, &scratch, &batch);
    if (batch.size() >= 256) {
      out.bytes += batch.bytes();
      batch.Clear();
    }
  }
  out.bytes += batch.bytes();
  out.seconds = Now() - start;
  out.rate = out.seconds > 0 ? static_cast<double>(users) / out.seconds : 0;
  return out;
}

// --- Per-kernel micro-records ------------------------------------------
//
// The stage benchmarks above measure whole reports; these isolate the
// four kernels the SIMD work targets — DTW/SED matching against the SoA
// candidate table, the batched OUE bit fill, and the two-word GRR draw —
// each against the scalar per-candidate / per-cell path it replaced.
// Both variants live in every build (the scalar reference is
// always-built), so one binary yields the scalar-vs-SIMD speedup.

struct KernelResult {
  double seconds = 0.0;
  double rate = 0.0;  ///< ops per second, best of trials
};

template <typename Body>
KernelResult MeasureKernel(size_t ops, int trials, Body&& body) {
  KernelResult best;
  for (int trial = 0; trial < std::max(trials, 1); ++trial) {
    double start = Now();
    for (size_t i = 0; i < ops; ++i) body(i);
    double seconds = Now() - start;
    double rate = seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
    if (rate > best.rate) best = KernelResult{seconds, rate};
  }
  return best;
}

/// Byte-identity spot check: all three paths must emit the same wire
/// bytes for the same user.
bool PathsAgree(const Stage& stage, const std::vector<Sequence>& words,
                dist::Metric metric, size_t sample) {
  proto::AnswerScratch scratch;
  for (size_t u = 0; u < sample; ++u) {
    LegacyClient legacy = LegacyFor(words, u, metric);
    proto::ClientSession a = SessionFor(words, u, metric);
    proto::ClientSession b = SessionFor(words, u, metric);
    auto old_wire = stage.legacy_path(legacy);
    auto wire = stage.string_path(a);
    proto::ReportBatch batch;
    Status answered = b.AnswerTo(stage.context, &scratch, &batch);
    if (wire.ok() != answered.ok() || old_wire.ok() != wire.ok()) {
      return false;
    }
    if (!wire.ok()) continue;
    if (*old_wire != *wire) return false;
    if (batch.size() != 1 || batch.view(0) != *wire) return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  CliArgs args(argc, argv);
  ExperimentScale scale = bench::ScaleFromArgs(args, /*default_users=*/20000,
                                               /*default_trials=*/3);
  auto json = bench::MaybeJson(args, "BENCH_hotpath.json");
  if (json != nullptr) {
    // Stamp the build so records are never compared across configs
    // (scalar vs SSE2 vs AVX2, different compilers/flags) unnoticed.
#if defined(__clang__)
    json->SetMeta("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
    json->SetMeta("compiler", std::string("gcc ") + __VERSION__);
#else
    json->SetMeta("compiler", "unknown");
#endif
    json->SetMeta("cxx_flags", PRIVSHAPE_BENCH_FLAGS);
    json->SetMeta("simd_level", simd::kLevelName);
    json->SetMeta("simd_double_lanes",
                  static_cast<uint64_t>(simd::kDoubleLanes));
  }
  const double epsilon = args.GetDouble("epsilon", 4.0);
  const dist::Metric metric = dist::Metric::kSed;  // Trace default

  // A representative word pool: 256 generated Trace-style compressed
  // words (t=4), tiled across the fleet — synthesis cost stays out of the
  // measured loop.
  auto source = collector::GeneratedWordSource("trace", scale.seed);
  if (!source.ok()) {
    bench::PrintTitle("hotpath bench setup failed: " +
                      source.status().ToString());
    return 1;
  }
  std::vector<Sequence> words;
  words.reserve(256);
  for (size_t u = 0; u < 256; ++u) words.push_back((*source)(u));

  // Candidate list for the P_c / P_d stages: paper-default c*k = 9
  // distinct words (P_c matches length-5 prefixes, P_d whole words).
  std::vector<Sequence> candidates;
  for (const Sequence& w : words) {
    Sequence cut(w.begin(),
                 w.begin() + static_cast<long>(std::min<size_t>(w.size(), 5)));
    if (std::find(candidates.begin(), candidates.end(), cut) ==
        candidates.end()) {
      candidates.push_back(cut);
    }
    if (candidates.size() == 9) break;
  }

  proto::CandidateRequest selection_request;
  selection_request.level = 4;
  selection_request.epsilon = epsilon;
  selection_request.candidates = candidates;
  std::string selection_wire =
      proto::EncodeCandidateRequest(selection_request);
  proto::CandidateRequest refine_request;
  refine_request.level = 0;
  refine_request.epsilon = epsilon;
  refine_request.candidates = candidates;
  std::string refine_wire = proto::EncodeCandidateRequest(refine_request);

  std::vector<Stage> stages;
  {
    auto ctx = proto::RoundContext::Length(1, 10, epsilon);
    stages.push_back(Stage{
        "Pa", std::move(*ctx),
        [epsilon](LegacyClient& c) {
          return c.AnswerLengthRequest(1, 10, epsilon);
        },
        [epsilon](proto::ClientSession& s) {
          return s.AnswerLengthRequest(1, 10, epsilon);
        }});
  }
  {
    auto ctx = proto::RoundContext::SubShape(4, 8, epsilon, false);
    stages.push_back(Stage{
        "Pb", std::move(*ctx),
        [epsilon](LegacyClient& c) {
          return c.AnswerSubShapeRequest(4, 8, epsilon, false);
        },
        [epsilon](proto::ClientSession& s) {
          return s.AnswerSubShapeRequest(4, 8, epsilon, false);
        }});
  }
  {
    auto ctx = proto::RoundContext::Selection(selection_request, metric);
    stages.push_back(Stage{
        "Pc", std::move(*ctx),
        [&selection_wire](LegacyClient& c) {
          return c.AnswerCandidateRequest(selection_wire);
        },
        [&selection_wire](proto::ClientSession& s) {
          return s.AnswerCandidateRequest(selection_wire);
        }});
  }
  {
    auto ctx = proto::RoundContext::Refinement(refine_request, metric);
    stages.push_back(Stage{
        "Pd", std::move(*ctx),
        [&refine_wire](LegacyClient& c) {
          return c.AnswerRefinementRequest(refine_wire);
        },
        [&refine_wire](proto::ClientSession& s) {
          return s.AnswerRefinementRequest(refine_wire);
        }});
  }

  bench::PrintTitle("Client answer hot path (" +
                    std::to_string(scale.users) +
                    " reports/stage, single thread)");
  bench::PrintHeader({"stage", "path", "reports/s", "seconds", "speedup",
                      "identical"});

  bool all_identical = true;
  double pc_speedup = 0.0;
  for (const Stage& stage : stages) {
    bool identical = PathsAgree(stage, words, metric, /*sample=*/200);
    all_identical = all_identical && identical;

    PathResult best_legacy, best_string, best_context;
    for (int trial = 0; trial < std::max(scale.trials, 1); ++trial) {
      PathResult l = RunLegacyPath(stage, words, scale.users, metric);
      PathResult s = RunStringPath(stage, words, scale.users, metric);
      PathResult c = RunContextPath(stage, words, scale.users, metric);
      if (l.rate > best_legacy.rate) best_legacy = l;
      if (s.rate > best_string.rate) best_string = s;
      if (c.rate > best_context.rate) best_context = c;
    }
    auto speedup = [&](const PathResult& p) {
      return best_legacy.rate > 0 ? p.rate / best_legacy.rate : 0.0;
    };
    if (stage.name == "Pc") pc_speedup = speedup(best_context);
    const char* same = identical ? "yes" : "NO";
    bench::PrintRow({stage.name, "legacy", FormatDouble(best_legacy.rate, 6),
                     FormatDouble(best_legacy.seconds, 4), "1.000", same});
    bench::PrintRow({stage.name, "string", FormatDouble(best_string.rate, 6),
                     FormatDouble(best_string.seconds, 4),
                     FormatDouble(speedup(best_string), 3), same});
    bench::PrintRow({stage.name, "context",
                     FormatDouble(best_context.rate, 6),
                     FormatDouble(best_context.seconds, 4),
                     FormatDouble(speedup(best_context), 3), same});
    if (json != nullptr) {
      auto record = [&](const char* path, const PathResult& p) {
        json->AddRecord("client_hotpath",
                        {{"stage", stage.name},
                         {"path", path},
                         {"users", std::to_string(scale.users)},
                         {"metric", dist::MetricName(metric)}},
                        {{"reports_per_sec", p.rate},
                         {"seconds", p.seconds},
                         {"speedup_vs_legacy", speedup(p)},
                         {"bytes_up", static_cast<double>(p.bytes)}});
      };
      record("legacy", best_legacy);
      record("string", best_string);
      record("context", best_context);
    }
  }

  // Kernel micro-records. `sink` folds every result into a value the
  // optimizer must keep, so the measured loops cannot be dead-code
  // eliminated.
  bench::PrintTitle(std::string("Per-kernel micro-records (simd level: ") +
                    simd::kLevelName + ", " +
                    std::to_string(simd::kDoubleLanes) + " double lanes)");
  bench::PrintHeader({"kernel", "path", "ops/s", "seconds", "speedup"});
  double sink = 0.0;

  dist::CandidateTable table = dist::CandidateTable::Build(candidates);
  auto dtw = dist::MakeDistance(dist::Metric::kDtw);
  auto sed = dist::MakeDistance(dist::Metric::kSed);
  dist::TableScratch table_scratch;
  dist::DtwScratch dtw_scratch;
  std::vector<double> dists;

  const size_t cells = candidates.size() * 3;  // P_e grid, 3 classes
  auto oue = ldp::UnaryEncoding::Create(
      cells, epsilon, ldp::UnaryEncoding::Variant::kOptimized);
  auto grr = ldp::Grr::Create(candidates.size(), epsilon);
  if (!oue.ok() || !grr.ok()) {
    bench::PrintTitle("kernel bench setup failed");
    return 1;
  }
  Rng kernel_rng(DeriveSeed(kSessionSeedBase, 0x5EED));
  std::vector<uint64_t> word_buf;
  std::vector<uint8_t> bit_buf;

  struct Kernel {
    std::string name;
    size_t ops;
    std::function<void(size_t)> scalar;
    std::function<void(size_t)> simd;
  };
  std::vector<Kernel> kernels;
  kernels.push_back(Kernel{
      "dtw_vs_candidates", scale.users,
      [&](size_t i) {
        core::MatchDistancesInto(words[i % words.size()], candidates,
                                 /*prefix_compare=*/false, *dtw,
                                 &dtw_scratch, &dists);
        sink += dists[0];
      },
      [&](size_t i) {
        table.MatchInto(words[i % words.size()], *dtw,
                        /*prefix_compare=*/false, &table_scratch, &dists);
        sink += dists[0];
      }});
  kernels.push_back(Kernel{
      "sed_vs_candidates", scale.users,
      [&](size_t i) {
        core::MatchDistancesInto(words[i % words.size()], candidates,
                                 /*prefix_compare=*/false, *sed,
                                 &dtw_scratch, &dists);
        sink += dists[0];
      },
      [&](size_t i) {
        table.MatchInto(words[i % words.size()], *sed,
                        /*prefix_compare=*/false, &table_scratch, &dists);
        sink += dists[0];
      }});
  kernels.push_back(Kernel{
      "oue_bit_fill", scale.users,
      // Scalar reference: the pre-batching per-cell Bernoulli loop
      // (one independent draw per cell against p or q).
      [&, cells](size_t i) {
        size_t value = i % cells;
        for (size_t cell = 0; cell < cells; ++cell) {
          sink += kernel_rng.Bernoulli(cell == value ? oue->p() : oue->q())
                      ? 1.0
                      : 0.0;
        }
      },
      [&, cells](size_t i) {
        oue->EncodeInto(i % cells, &kernel_rng, &word_buf, &bit_buf);
        sink += bit_buf[0];
      }});
  const size_t grr_domain = candidates.size();
  kernels.push_back(Kernel{
      "grr_draw", scale.users * 8,
      // Scalar reference: the pre-batching keep-or-resample draw
      // (Bernoulli(p), then a bounded index on flip).
      [&, grr_domain](size_t i) {
        size_t value = i % grr_domain;
        size_t out;
        if (kernel_rng.Bernoulli(grr->p())) {
          out = value;
        } else {
          size_t r = kernel_rng.Index(grr_domain - 1);
          out = r >= value ? r + 1 : r;
        }
        sink += static_cast<double>(out);
      },
      [&, grr_domain](size_t i) {
        sink += static_cast<double>(
            grr->PerturbValue(i % grr_domain, &kernel_rng));
      }});

  double best_kernel_speedup = 0.0;
  for (const Kernel& kernel : kernels) {
    KernelResult scalar = MeasureKernel(kernel.ops, scale.trials,
                                        kernel.scalar);
    KernelResult simd = MeasureKernel(kernel.ops, scale.trials, kernel.simd);
    double speedup = scalar.rate > 0 ? simd.rate / scalar.rate : 0.0;
    if (kernel.name == "dtw_vs_candidates" || kernel.name == "oue_bit_fill") {
      best_kernel_speedup = std::max(best_kernel_speedup, speedup);
    }
    bench::PrintRow({kernel.name, "scalar", FormatDouble(scalar.rate, 6),
                     FormatDouble(scalar.seconds, 4), "1.000"});
    bench::PrintRow({kernel.name, "simd", FormatDouble(simd.rate, 6),
                     FormatDouble(simd.seconds, 4),
                     FormatDouble(speedup, 3)});
    if (json != nullptr) {
      auto record = [&](const char* path, const KernelResult& r, double s) {
        json->AddRecord("hotpath_kernel",
                        {{"kernel", kernel.name},
                         {"path", path},
                         {"ops", std::to_string(kernel.ops)}},
                        {{"ops_per_sec", r.rate},
                         {"seconds", r.seconds},
                         {"speedup_vs_scalar", s}});
      };
      record("scalar", scalar, 1.0);
      record("simd", simd, speedup);
    }
  }
  // Keep `sink` observable without polluting the tables.
  volatile double sink_guard = sink;
  (void)sink_guard;

  if (!all_identical) {
    bench::PrintTitle(
        "FAIL: the three answer paths emitted different report bytes");
    return 1;
  }
  if (simd::kLevel > 0 && best_kernel_speedup < 2.0) {
    bench::PrintTitle("WARNING: best SIMD kernel speedup " +
                      FormatDouble(best_kernel_speedup, 3) +
                      "x (dtw/oue) is below the 2x acceptance bar");
  }
  if (pc_speedup < 2.0) {
    bench::PrintTitle("WARNING: P_c context-path speedup " +
                      FormatDouble(pc_speedup, 3) +
                      "x is below the 2x acceptance bar");
  }
  if (json != nullptr && !json->Flush()) {
    bench::PrintTitle("failed to write the --json baseline file");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace privshape

int main(int argc, char** argv) { return privshape::Main(argc, argv); }
