#ifndef PRIVSHAPE_CORE_POPULATION_H_
#define PRIVSHAPE_CORE_POPULATION_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace privshape::core {

/// Disjoint user groups for PrivShape's four stages. Parallel composition
/// across these groups is what makes the whole mechanism eps-LDP at the
/// user level: each user participates in exactly one stage, once.
struct FourWaySplit {
  std::vector<size_t> pa;  ///< length estimation
  std::vector<size_t> pb;  ///< sub-shape estimation
  std::vector<size_t> pc;  ///< trie expansion
  std::vector<size_t> pd;  ///< refinement
};

/// Randomly partitions user indices [0, n) by the given fractions; any
/// remainder (1 - fa - fb - fc - fd) joins pc, so no user is wasted.
FourWaySplit SplitFourWay(size_t n, double fa, double fb, double fc,
                          double fd, Rng* rng);

/// Evenly partitions `users` into `num_groups` contiguous groups (sizes
/// differ by at most one). Used to give each trie level its own users.
std::vector<std::vector<size_t>> PartitionGroups(
    const std::vector<size_t>& users, size_t num_groups);

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_POPULATION_H_
