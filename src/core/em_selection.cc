#include "core/em_selection.h"

#include <algorithm>
#include <limits>

#include "ldp/exponential.h"

namespace privshape::core {

std::vector<double> MatchDistances(const Sequence& seq,
                                   const std::vector<Sequence>& candidates,
                                   bool prefix_compare,
                                   const dist::SequenceDistance& distance) {
  std::vector<double> distances;
  MatchDistancesInto(seq, candidates, prefix_compare, distance,
                     /*scratch=*/nullptr, &distances);
  return distances;
}

void MatchDistancesInto(const Sequence& seq,
                        const std::vector<Sequence>& candidates,
                        bool prefix_compare,
                        const dist::SequenceDistance& distance,
                        dist::DtwScratch* scratch,
                        std::vector<double>* out) {
  out->resize(candidates.size());
  dist::SymbolView word(seq);
  for (size_t cand = 0; cand < candidates.size(); ++cand) {
    const Sequence& shape = candidates[cand];
    // Lemma 1's prefix reading: view the word's |shape|-prefix, no copy.
    dist::SymbolView lhs = prefix_compare && seq.size() > shape.size()
                               ? word.Sub(0, shape.size())
                               : word;
    (*out)[cand] = distance.Distance(lhs, dist::SymbolView(shape), scratch);
  }
}

size_t ClosestCandidate(const Sequence& seq,
                        const std::vector<Sequence>& candidates,
                        const dist::SequenceDistance& distance) {
  return ClosestCandidate(seq, candidates, distance, /*scratch=*/nullptr);
}

size_t ClosestCandidate(const Sequence& seq,
                        const std::vector<Sequence>& candidates,
                        const dist::SequenceDistance& distance,
                        dist::DtwScratch* scratch) {
  double best = std::numeric_limits<double>::infinity();
  size_t best_idx = 0;
  dist::SymbolView word(seq);
  for (size_t i = 0; i < candidates.size(); ++i) {
    // DistanceBounded is exact whenever the result is < best, so the
    // strict `d < best` update (ties to the first index) is unchanged.
    double d = distance.DistanceBounded(word, dist::SymbolView(candidates[i]),
                                        best, scratch);
    if (d < best) {
      best = d;
      best_idx = i;
    }
  }
  return best_idx;
}

PS_REPORT_PATH
Result<std::vector<double>> EmSelectionCounts(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, dist::Metric metric,
    double epsilon, bool prefix_compare, Rng* rng) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidates to select among");
  }
  auto em = ldp::ExponentialMechanism::Create(epsilon);
  if (!em.ok()) return em.status();
  auto distance = dist::MakeDistance(metric);

  std::vector<double> counts(candidates.size(), 0.0);
  SelectionScratch scratch;
  for (size_t user : population) {
    if (user >= sequences.size()) {
      return Status::OutOfRange("population index outside dataset");
    }
    MatchDistancesInto(sequences[user], candidates, prefix_compare,
                       *distance, &scratch.dtw, &scratch.distances);
    ldp::ScoresFromDistancesInto(scratch.distances, &scratch.scores);
    auto pick = em->Select(scratch.scores, rng, &scratch.probs);
    if (!pick.ok()) return pick.status();
    counts[*pick] += 1.0;
  }
  return counts;
}

}  // namespace privshape::core
