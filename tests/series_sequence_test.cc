#include "series/sequence.h"

#include <gtest/gtest.h>

#include "series/time_series.h"

namespace privshape {
namespace {

TEST(SequenceTest, ToStringRendersLetters) {
  Sequence s = {0, 2, 1, 0};
  EXPECT_EQ(SequenceToString(s), "acba");
}

TEST(SequenceTest, ToStringEmpty) {
  EXPECT_EQ(SequenceToString({}), "");
}

TEST(SequenceTest, ToStringOutOfAlphabetRendersQuestionMark) {
  Sequence s = {0, 30};
  EXPECT_EQ(SequenceToString(s), "a?");
}

TEST(SequenceTest, FromStringRoundTrip) {
  auto s = SequenceFromString("acba");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, (Sequence{0, 2, 1, 0}));
  EXPECT_EQ(SequenceToString(*s), "acba");
}

TEST(SequenceTest, FromStringRejectsInvalid) {
  EXPECT_FALSE(SequenceFromString("aBc").ok());
  EXPECT_FALSE(SequenceFromString("a c").ok());
  EXPECT_FALSE(SequenceFromString("a1").ok());
}

TEST(SequenceTest, FromStringEmptyIsOk) {
  auto s = SequenceFromString("");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
}

TEST(DatasetTest, LabelsSortedAndDeduplicated) {
  series::Dataset d;
  d.instances.push_back({{1.0}, 2});
  d.instances.push_back({{1.0}, 0});
  d.instances.push_back({{1.0}, 2});
  d.instances.push_back({{1.0}, 1});
  EXPECT_EQ(d.Labels(), (std::vector<int>{0, 1, 2}));
}

TEST(DatasetTest, FilterByLabel) {
  series::Dataset d;
  d.instances.push_back({{1.0}, 0});
  d.instances.push_back({{2.0}, 1});
  d.instances.push_back({{3.0}, 0});
  auto f = d.FilterByLabel(0);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_DOUBLE_EQ(f.instances[1].values[0], 3.0);
}

TEST(DatasetTest, ZNormalizeDataset) {
  series::Dataset d;
  d.instances.push_back({{2, 4, 6, 8}, 0});
  series::ZNormalizeDataset(&d);
  double sum = 0;
  for (double v : d.instances[0].values) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(DatasetTest, TrainTestSplitSizesAndDisjointness) {
  series::Dataset d;
  for (int i = 0; i < 100; ++i) {
    d.instances.push_back({{static_cast<double>(i)}, i % 3});
  }
  series::Dataset train, test;
  series::TrainTestSplit(d, 0.7, 42, &train, &test);
  EXPECT_EQ(train.size(), 70u);
  EXPECT_EQ(test.size(), 30u);
  // The union must contain every original value exactly once.
  std::vector<double> all;
  for (const auto& inst : train.instances) all.push_back(inst.values[0]);
  for (const auto& inst : test.instances) all.push_back(inst.values[0]);
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(all[static_cast<size_t>(i)], i);
}

TEST(DatasetTest, TrainTestSplitDeterministicBySeed) {
  series::Dataset d;
  for (int i = 0; i < 20; ++i) {
    d.instances.push_back({{static_cast<double>(i)}, 0});
  }
  series::Dataset train1, test1, train2, test2;
  series::TrainTestSplit(d, 0.5, 7, &train1, &test1);
  series::TrainTestSplit(d, 0.5, 7, &train2, &test2);
  ASSERT_EQ(train1.size(), train2.size());
  for (size_t i = 0; i < train1.size(); ++i) {
    EXPECT_DOUBLE_EQ(train1.instances[i].values[0],
                     train2.instances[i].values[0]);
  }
}

}  // namespace
}  // namespace privshape
