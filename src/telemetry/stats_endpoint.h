/// \file
/// A minimal scrape endpoint that rides an existing epoll Poller: one
/// extra non-blocking listener whose connections receive a one-shot HTTP
/// response (Prometheus-style text on `/metrics`, a JSON snapshot on any
/// other path) and are closed. Built for the collector daemon's event
/// loop — the daemon keeps polling its protocol sockets and merely
/// forwards the endpoint's events here, so a scrape lands between frame
/// reads and never pauses ingestion.
///
/// Single-threaded by design: every method must be called from the
/// thread that drives the Poller. What the responses *contain* is the
/// caller's ContentFn; telemetry::Registry snapshots are safe to take
/// from that thread while other threads keep recording.

#ifndef PRIVSHAPE_TELEMETRY_STATS_ENDPOINT_H_
#define PRIVSHAPE_TELEMETRY_STATS_ENDPOINT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/socket.h"
#include "common/status.h"

namespace privshape::telemetry {

/// Produces the response body for a request path ("/metrics",
/// "/stats.json", ...). The returned content type is text/plain for
/// "/metrics" and application/json otherwise.
using ContentFn = std::function<std::string(std::string_view path)>;

class StatsEndpoint {
 public:
  /// Registers events against `poller` using tags in
  /// [tag_base, tag_base + kMaxTags); the owner of the poller must route
  /// every event whose tag Owns() back into HandleEvent. `poller` must
  /// outlive the endpoint.
  StatsEndpoint(Poller* poller, uint64_t tag_base, ContentFn content);
  ~StatsEndpoint();

  StatsEndpoint(const StatsEndpoint&) = delete;
  StatsEndpoint& operator=(const StatsEndpoint&) = delete;

  /// Binds and listens (port 0 = ephemeral; read back with port()).
  Status Start(const std::string& host, uint16_t port);

  uint16_t port() const { return port_; }

  /// Listener tag + per-client tags: 1 + kMaxClients slots.
  static constexpr size_t kMaxClients = 32;
  static constexpr uint64_t kMaxTags = 1 + kMaxClients;

  bool Owns(uint64_t tag) const {
    // Subtract-then-compare rather than `tag < tag_base_ + kMaxTags`:
    // the latter wraps for a tag_base_ within kMaxTags of UINT64_MAX
    // and would claim almost every tag on the poller.
    return listening() && tag >= tag_base_ && tag - tag_base_ < kMaxTags;
  }

  /// Drives one poller event (accept, request read, response write).
  void HandleEvent(const PollEvent& event);

  /// Closes the listener and every in-flight scrape connection.
  void Close();

  bool listening() const { return listener_.valid(); }

 private:
  struct Client;

  void AcceptPending();
  void HandleClient(size_t slot, const PollEvent& event);
  void RespondAndFlush(size_t slot);
  void CloseClient(size_t slot);

  Poller* poller_;
  uint64_t tag_base_;
  ContentFn content_;
  UniqueFd listener_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Client>> clients_;  // slot i = tag_base+1+i
};

}  // namespace privshape::telemetry

#endif  // PRIVSHAPE_TELEMETRY_STATS_ENDPOINT_H_
