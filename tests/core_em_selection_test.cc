#include "core/em_selection.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace privshape {
namespace {

using core::EmSelectionCounts;

std::vector<size_t> AllUsers(size_t n) {
  std::vector<size_t> users(n);
  std::iota(users.begin(), users.end(), 0);
  return users;
}

TEST(EmSelectionTest, CountsSumToPopulationSize) {
  std::vector<Sequence> candidates = {{0, 1}, {1, 2}, {2, 0}};
  std::vector<Sequence> sequences(50, Sequence{0, 1, 2});
  Rng rng(111);
  auto counts = EmSelectionCounts(candidates, sequences, AllUsers(50),
                                  dist::Metric::kSed, 2.0, true, &rng);
  ASSERT_TRUE(counts.ok());
  double total = 0;
  for (double c : *counts) total += c;
  EXPECT_DOUBLE_EQ(total, 50.0);
}

TEST(EmSelectionTest, TrueCandidateDominatesAtHighEps) {
  std::vector<Sequence> candidates = {{0, 1}, {2, 3}, {3, 0}};
  std::vector<Sequence> sequences(400, Sequence{0, 1});
  Rng rng(112);
  auto counts = EmSelectionCounts(candidates, sequences, AllUsers(400),
                                  dist::Metric::kSed, 8.0, false, &rng);
  ASSERT_TRUE(counts.ok());
  EXPECT_GT((*counts)[0], (*counts)[1]);
  EXPECT_GT((*counts)[0], (*counts)[2]);
  EXPECT_GT((*counts)[0], 300.0);
}

TEST(EmSelectionTest, LowEpsApproachesUniform) {
  std::vector<Sequence> candidates = {{0, 1}, {2, 3}};
  std::vector<Sequence> sequences(10000, Sequence{0, 1});
  Rng rng(113);
  auto counts = EmSelectionCounts(candidates, sequences, AllUsers(10000),
                                  dist::Metric::kSed, 0.01, false, &rng);
  ASSERT_TRUE(counts.ok());
  // At eps ~ 0 both candidates are nearly equally likely.
  EXPECT_NEAR((*counts)[0] / 10000.0, 0.5, 0.03);
}

TEST(EmSelectionTest, PrefixCompareUsesUserPrefix) {
  // User sequence "abcd"; candidate "ab" matches its 2-prefix exactly, so
  // with prefix comparison candidate 0 dominates over "cd".
  std::vector<Sequence> candidates = {{0, 1}, {2, 3}};
  std::vector<Sequence> sequences(300, Sequence{0, 1, 2, 3});
  Rng rng(114);
  auto counts = EmSelectionCounts(candidates, sequences, AllUsers(300),
                                  dist::Metric::kSed, 6.0, true, &rng);
  ASSERT_TRUE(counts.ok());
  EXPECT_GT((*counts)[0], (*counts)[1]);
}

TEST(EmSelectionTest, EmptyPopulationGivesZeroCounts) {
  std::vector<Sequence> candidates = {{0}, {1}};
  std::vector<Sequence> sequences(5, Sequence{0});
  Rng rng(115);
  auto counts = EmSelectionCounts(candidates, sequences, {},
                                  dist::Metric::kDtw, 1.0, true, &rng);
  ASSERT_TRUE(counts.ok());
  EXPECT_DOUBLE_EQ((*counts)[0], 0.0);
  EXPECT_DOUBLE_EQ((*counts)[1], 0.0);
}

TEST(EmSelectionTest, RejectsEmptyCandidates) {
  std::vector<Sequence> sequences(5, Sequence{0});
  Rng rng(116);
  EXPECT_FALSE(EmSelectionCounts({}, sequences, AllUsers(5),
                                 dist::Metric::kSed, 1.0, true, &rng)
                   .ok());
}

TEST(EmSelectionTest, RejectsBadUserIndex) {
  std::vector<Sequence> candidates = {{0}};
  std::vector<Sequence> sequences(5, Sequence{0});
  Rng rng(117);
  EXPECT_FALSE(EmSelectionCounts(candidates, sequences, {77},
                                 dist::Metric::kSed, 1.0, true, &rng)
                   .ok());
}

TEST(EmSelectionTest, WorksWithEveryMetric) {
  std::vector<Sequence> candidates = {{0, 1}, {1, 0}};
  std::vector<Sequence> sequences(20, Sequence{0, 1});
  for (dist::Metric m :
       {dist::Metric::kDtw, dist::Metric::kSed, dist::Metric::kEuclidean,
        dist::Metric::kHausdorff}) {
    Rng rng(118);
    auto counts = EmSelectionCounts(candidates, sequences, AllUsers(20), m,
                                    2.0, true, &rng);
    ASSERT_TRUE(counts.ok()) << dist::MetricName(m);
  }
}

}  // namespace
}  // namespace privshape
