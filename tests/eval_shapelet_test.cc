#include "eval/shapelet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace privshape {
namespace {

using eval::ClassifyWithShapelets;
using eval::DiscoverShapelets;
using eval::InformationGain;
using eval::LabelEntropy;
using eval::ShapeletOptions;
using eval::SubsequenceDistance;

TEST(SubsequenceDistanceTest, ExactContainmentIsZero) {
  Sequence seq = {0, 1, 2, 3, 2, 1};
  Sequence pattern = {2, 3, 2};
  EXPECT_DOUBLE_EQ(
      SubsequenceDistance(seq, pattern, dist::Metric::kSed), 0.0);
}

TEST(SubsequenceDistanceTest, PicksBestWindow) {
  Sequence seq = {0, 0, 0, 3, 2, 0};
  Sequence pattern = {3, 3};
  // Best window "32" is one substitution away.
  EXPECT_DOUBLE_EQ(
      SubsequenceDistance(seq, pattern, dist::Metric::kSed), 1.0);
}

TEST(SubsequenceDistanceTest, ShortSequenceComparedWhole) {
  Sequence seq = {1};
  Sequence pattern = {1, 2, 3};
  EXPECT_DOUBLE_EQ(
      SubsequenceDistance(seq, pattern, dist::Metric::kSed), 2.0);
}

TEST(EntropyTest, PureSetIsZero) {
  EXPECT_DOUBLE_EQ(LabelEntropy({1, 1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(LabelEntropy({}), 0.0);
}

TEST(EntropyTest, UniformBinaryIsOneBit) {
  EXPECT_NEAR(LabelEntropy({0, 1, 0, 1}), 1.0, 1e-12);
}

TEST(EntropyTest, ThreeWayUniform) {
  EXPECT_NEAR(LabelEntropy({0, 1, 2}), std::log2(3.0), 1e-12);
}

TEST(InformationGainTest, PerfectSplitRecoversFullEntropy) {
  std::vector<int> labels = {0, 0, 1, 1};
  std::vector<bool> mask = {true, true, false, false};
  EXPECT_NEAR(InformationGain(labels, mask), 1.0, 1e-12);
}

TEST(InformationGainTest, UselessSplitGainsNothing) {
  std::vector<int> labels = {0, 1, 0, 1};
  std::vector<bool> mask = {true, true, false, false};
  EXPECT_NEAR(InformationGain(labels, mask), 0.0, 1e-12);
}

TEST(DiscoverShapeletsTest, FindsPlantedDiscriminativeSubword) {
  // Class 0 contains "cd" somewhere; class 1 never does.
  Rng rng(191);
  std::vector<Sequence> sequences;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    Sequence s = {0, 1, 2, 3, 1, 0};  // contains "cd" at (2,3)
    sequences.push_back(s);
    labels.push_back(0);
    Sequence other = {0, 1, 0, 1, 0, 1};
    sequences.push_back(other);
    labels.push_back(1);
  }
  std::vector<Sequence> seeds = {{0, 1, 2, 3, 1, 0}};
  ShapeletOptions options;
  options.top_k = 3;
  options.min_length = 2;
  options.max_length = 3;
  auto shapelets = DiscoverShapelets(sequences, labels, seeds, options);
  ASSERT_TRUE(shapelets.ok()) << shapelets.status();
  ASSERT_GE(shapelets->size(), 1u);
  // The best shapelet splits the classes perfectly: gain = 1 bit.
  EXPECT_NEAR((*shapelets)[0].info_gain, 1.0, 1e-9);
  EXPECT_EQ((*shapelets)[0].majority_label, 0);
}

TEST(DiscoverShapeletsTest, ClassifiesWithDecisionList) {
  std::vector<Sequence> sequences;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    sequences.push_back({0, 2, 3, 2, 0});
    labels.push_back(0);
    sequences.push_back({3, 1, 0, 1, 3});
    labels.push_back(1);
  }
  std::vector<Sequence> seeds = {{0, 2, 3, 2, 0}, {3, 1, 0, 1, 3}};
  ShapeletOptions options;
  options.top_k = 2;
  auto shapelets = DiscoverShapelets(sequences, labels, seeds, options);
  ASSERT_TRUE(shapelets.ok());
  int correct = 0;
  for (size_t i = 0; i < sequences.size(); ++i) {
    int pred = ClassifyWithShapelets(sequences[i], *shapelets,
                                     dist::Metric::kSed, /*fallback=*/1);
    if (pred == labels[i]) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(sequences.size() * 9 / 10));
}

TEST(DiscoverShapeletsTest, RejectsBadInput) {
  ShapeletOptions options;
  EXPECT_FALSE(DiscoverShapelets({}, {}, {{0}}, options).ok());
  EXPECT_FALSE(
      DiscoverShapelets({{0}}, {0, 1}, {{0}}, options).ok());  // mismatch
  EXPECT_FALSE(DiscoverShapelets({{0}}, {0}, {}, options).ok());
  ShapeletOptions bad;
  bad.min_length = 5;
  bad.max_length = 2;
  EXPECT_FALSE(DiscoverShapelets({{0}}, {0}, {{0, 1}}, bad).ok());
}

TEST(DiscoverShapeletsTest, TopKLimitsOutput) {
  std::vector<Sequence> sequences = {{0, 1, 2}, {2, 1, 0}};
  std::vector<int> labels = {0, 1};
  std::vector<Sequence> seeds = {{0, 1, 2, 3}};
  ShapeletOptions options;
  options.top_k = 2;
  auto shapelets = DiscoverShapelets(sequences, labels, seeds, options);
  ASSERT_TRUE(shapelets.ok());
  EXPECT_LE(shapelets->size(), 2u);
}

}  // namespace
}  // namespace privshape
