#include "protocol/round_context.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/subshape.h"
#include "ldp/unary_encoding.h"

namespace privshape::proto {

Result<RoundContext> RoundContext::Length(int ell_low, int ell_high,
                                          double epsilon) {
  if (ell_low < 1 || ell_high < ell_low) {
    return Status::InvalidArgument("invalid length range");
  }
  RoundContext ctx;
  ctx.kind_ = ReportKind::kLength;
  ctx.epsilon_ = epsilon;
  ctx.ell_low_ = ell_low;
  ctx.ell_high_ = ell_high;
  size_t domain = static_cast<size_t>(ell_high - ell_low + 1);
  if (domain > 1) {
    auto grr = ldp::Grr::Create(domain, epsilon);
    if (!grr.ok()) return grr.status();
    ctx.grr_ = std::move(*grr);
  }
  return ctx;
}

Result<RoundContext> RoundContext::Length(const LengthRequest& request) {
  return Length(request.ell_low, request.ell_high, request.epsilon);
}

Result<RoundContext> RoundContext::SubShape(int alphabet, int ell_s,
                                            double epsilon,
                                            bool allow_repeats) {
  if (ell_s < 2) {
    return Status::FailedPrecondition("no sub-shapes for ell_s < 2");
  }
  RoundContext ctx;
  ctx.kind_ = ReportKind::kSubShape;
  ctx.epsilon_ = epsilon;
  ctx.alphabet_ = alphabet;
  ctx.ell_s_ = ell_s;
  ctx.allow_repeats_ = allow_repeats;
  size_t domain = core::SubShapeDomainSize(alphabet, allow_repeats);
  auto grr = ldp::Grr::Create(domain, epsilon);
  if (!grr.ok()) return grr.status();
  ctx.grr_ = std::move(*grr);
  return ctx;
}

Result<RoundContext> RoundContext::SubShape(const SubShapeRequest& request) {
  return SubShape(request.alphabet, request.ell_s, request.epsilon,
                  request.allow_repeats);
}

Result<RoundContext> RoundContext::Selection(CandidateRequest request,
                                             dist::Metric metric) {
  if (request.candidates.empty()) {
    return Status::InvalidArgument("empty candidate list");
  }
  auto em = ldp::ExponentialMechanism::Create(request.epsilon);
  if (!em.ok()) return em.status();
  RoundContext ctx;
  ctx.kind_ = ReportKind::kSelection;
  ctx.level_ = request.level;
  ctx.epsilon_ = request.epsilon;
  ctx.em_ = std::move(*em);
  ctx.distance_ = dist::MakeDistance(metric);
  ctx.table_ = dist::CandidateTable::Build(std::move(request.candidates));
  return ctx;
}

Result<RoundContext> RoundContext::Selection(std::string_view encoded_request,
                                             dist::Metric metric) {
  auto decoded = DecodeCandidateRequest(encoded_request);
  if (!decoded.ok()) return decoded.status();
  return Selection(std::move(*decoded), metric);
}

Result<RoundContext> RoundContext::Refinement(CandidateRequest request,
                                              dist::Metric metric) {
  if (request.candidates.empty()) {
    return Status::InvalidArgument("empty candidate list");
  }
  auto grr = ldp::Grr::Create(
      std::max<size_t>(request.candidates.size(), 2), request.epsilon);
  if (!grr.ok()) return grr.status();
  RoundContext ctx;
  ctx.kind_ = ReportKind::kRefinement;
  ctx.level_ = request.level;
  ctx.epsilon_ = request.epsilon;
  ctx.grr_ = std::move(*grr);
  ctx.distance_ = dist::MakeDistance(metric);
  ctx.table_ = dist::CandidateTable::Build(std::move(request.candidates));
  return ctx;
}

Result<RoundContext> RoundContext::Refinement(std::string_view encoded_request,
                                              dist::Metric metric) {
  auto decoded = DecodeCandidateRequest(encoded_request);
  if (!decoded.ok()) return decoded.status();
  return Refinement(std::move(*decoded), metric);
}

Result<RoundContext> RoundContext::ClassRefinement(ClassRefineRequest request,
                                                   dist::Metric metric) {
  if (request.candidates.empty()) {
    return Status::InvalidArgument("empty candidate list");
  }
  if (request.num_classes < 1 ||
      request.num_classes >
          static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return Status::InvalidArgument("num_classes must be a positive int");
  }
  // Every client allocates and ships one bit per cell, so an unbounded
  // wire-decoded candidates x classes product is a DoS vector (a tiny
  // corrupt broadcast could demand multi-GB reports). Real rounds are
  // c*k candidates x tens of classes — orders of magnitude under this.
  uint64_t wide_cells = static_cast<uint64_t>(request.candidates.size()) *
                        request.num_classes;
  if (wide_cells > kMaxClassRefineCells) {
    return Status::InvalidArgument(
        "candidates x num_classes exceeds the class-refinement cell cap");
  }
  size_t cells = static_cast<size_t>(wide_cells);
  // Validation and p/q come from the one OUE implementation, so the
  // context-path Bernoulli draws use bit-identical probabilities to
  // core::LocalClassRefinementRound's ldp::UnaryEncoding oracle.
  auto oue = ldp::UnaryEncoding::Create(
      cells, request.epsilon, ldp::UnaryEncoding::Variant::kOptimized);
  if (!oue.ok()) return oue.status();
  RoundContext ctx;
  ctx.kind_ = ReportKind::kClassRefine;
  ctx.level_ = 0;
  ctx.epsilon_ = request.epsilon;
  ctx.num_classes_ = static_cast<int>(request.num_classes);
  ctx.oue_p_ = oue->p();
  ctx.oue_q_ = oue->q();
  ctx.oue_ = std::move(*oue);
  ctx.distance_ = dist::MakeDistance(metric);
  ctx.table_ = dist::CandidateTable::Build(std::move(request.candidates));
  return ctx;
}

Result<RoundContext> RoundContext::ClassRefinement(
    std::string_view encoded_request, dist::Metric metric) {
  auto decoded = DecodeClassRefineRequest(encoded_request);
  if (!decoded.ok()) return decoded.status();
  return ClassRefinement(std::move(*decoded), metric);
}

}  // namespace privshape::proto
