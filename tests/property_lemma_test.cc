// Property tests for Lemma 1 / Theorem 2 (§IV-B): prefixes and length-2
// sub-shapes of a frequent shape remain frequent, under metrics that
// satisfy the (relaxed) decomposition
//   dist(S, S') <= dist(PRE_S, PRE_S') + dist(SUF_S, SUF_S').

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distance/distance.h"
#include "series/sequence.h"

namespace privshape {
namespace {

Sequence RandomCompressedWord(size_t len, int t, Rng* rng) {
  Sequence s;
  while (s.size() < len) {
    Symbol sym = static_cast<Symbol>(rng->Index(static_cast<size_t>(t)));
    if (s.empty() || s.back() != sym) s.push_back(sym);
  }
  return s;
}

// The decomposition property itself, for equal-length splits: SED and
// symbolic Euclidean satisfy it on aligned prefix/suffix pairs.
class DecompositionTest : public ::testing::TestWithParam<dist::Metric> {};

TEST_P(DecompositionTest, PrefixSuffixUpperBoundsWhole) {
  auto metric = GetParam();
  auto distance = dist::MakeDistance(metric);
  Rng rng(181);
  for (int trial = 0; trial < 300; ++trial) {
    size_t len = 4 + rng.Index(5);
    Sequence a = RandomCompressedWord(len, 4, &rng);
    Sequence b = RandomCompressedWord(len, 4, &rng);
    size_t cut = 1 + rng.Index(len - 1);
    Sequence pre_a(a.begin(), a.begin() + static_cast<long>(cut));
    Sequence pre_b(b.begin(), b.begin() + static_cast<long>(cut));
    Sequence suf_a(a.begin() + static_cast<long>(cut), a.end());
    Sequence suf_b(b.begin() + static_cast<long>(cut), b.end());
    double whole = distance->Distance(a, b);
    double parts =
        distance->Distance(pre_a, pre_b) + distance->Distance(suf_a, suf_b);
    EXPECT_LE(whole, parts + 1e-9)
        << dist::MetricName(metric) << ": " << SequenceToString(a) << " vs "
        << SequenceToString(b) << " cut " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(RelaxedMetrics, DecompositionTest,
                         ::testing::Values(dist::Metric::kSed,
                                           dist::Metric::kDtw));

// Lemma 1 realized on data: if shape F matches >= N sequences within
// theta, then PRE_F matches (the same-length prefixes) at least as often.
class Lemma1Test : public ::testing::TestWithParam<dist::Metric> {};

TEST_P(Lemma1Test, PrefixOfFrequentShapeIsFrequent) {
  auto metric = GetParam();
  auto distance = dist::MakeDistance(metric);
  Rng rng(182);
  const double theta = 2.0;
  for (int trial = 0; trial < 50; ++trial) {
    // A population around a planted shape plus noise words.
    Sequence planted = RandomCompressedWord(6, 4, &rng);
    std::vector<Sequence> population;
    for (int i = 0; i < 60; ++i) {
      population.push_back(planted);
    }
    for (int i = 0; i < 40; ++i) {
      population.push_back(RandomCompressedWord(6, 4, &rng));
    }
    for (size_t cut = 2; cut < planted.size(); ++cut) {
      Sequence prefix(planted.begin(),
                      planted.begin() + static_cast<long>(cut));
      size_t full_matches = 0, prefix_matches = 0;
      for (const auto& s : population) {
        if (distance->Distance(planted, s) <= theta) ++full_matches;
        Sequence s_prefix(
            s.begin(),
            s.begin() + static_cast<long>(std::min(cut, s.size())));
        if (distance->Distance(prefix, s_prefix) <= theta) ++prefix_matches;
      }
      EXPECT_GE(prefix_matches, full_matches)
          << dist::MetricName(metric) << " planted "
          << SequenceToString(planted) << " cut " << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, Lemma1Test,
                         ::testing::Values(dist::Metric::kSed,
                                           dist::Metric::kDtw,
                                           dist::Metric::kEuclidean));

// Theorem 2 on exact matching: every adjacent sub-shape of a frequent
// shape appears in at least as many population members (exact containment
// view, the Frequent-Pattern-Growth intuition the paper borrows).
TEST(Theorem2Test, SubShapesOfPlantedShapeAreFrequent) {
  Rng rng(183);
  Sequence planted = {0, 2, 1, 3, 0};
  std::vector<Sequence> population(80, planted);
  for (int i = 0; i < 20; ++i) {
    population.push_back(RandomCompressedWord(5, 4, &rng));
  }
  auto contains_pair = [](const Sequence& s, Symbol a, Symbol b) {
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      if (s[i] == a && s[i + 1] == b) return true;
    }
    return false;
  };
  for (size_t j = 0; j + 1 < planted.size(); ++j) {
    size_t count = 0;
    for (const auto& s : population) {
      if (contains_pair(s, planted[j], planted[j + 1])) ++count;
    }
    EXPECT_GE(count, 80u) << "sub-shape at " << j;
  }
}

}  // namespace
}  // namespace privshape
