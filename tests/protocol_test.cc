#include <gtest/gtest.h>

#include "protocol/codec.h"
#include "protocol/messages.h"
#include "protocol/session.h"

namespace privshape {
namespace {

using proto::CandidateRequest;
using proto::ClientSession;
using proto::Decoder;
using proto::DecodeCandidateRequest;
using proto::DecodeReport;
using proto::EncodeCandidateRequest;
using proto::EncodeReport;
using proto::Encoder;
using proto::Report;
using proto::ReportAggregator;
using proto::ReportKind;

TEST(CodecTest, VarintRoundTrip) {
  Encoder enc;
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1ULL << 20,
                                  0xFFFFFFFFFFFFFFFFULL};
  for (uint64_t v : values) enc.PutVarint(v);
  Decoder dec(enc.Release());
  for (uint64_t v : values) {
    auto got = dec.GetVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, DoubleRoundTrip) {
  Encoder enc;
  enc.PutDouble(3.14159);
  enc.PutDouble(-0.0);
  enc.PutDouble(1e300);
  Decoder dec(enc.Release());
  EXPECT_DOUBLE_EQ(*dec.GetDouble(), 3.14159);
  EXPECT_DOUBLE_EQ(*dec.GetDouble(), -0.0);
  EXPECT_DOUBLE_EQ(*dec.GetDouble(), 1e300);
}

TEST(CodecTest, BytesRoundTrip) {
  Encoder enc;
  enc.PutBytes({1, 2, 250, 0});
  enc.PutBytes({});
  Decoder dec(enc.Release());
  EXPECT_EQ(*dec.GetBytes(), (std::vector<uint8_t>{1, 2, 250, 0}));
  EXPECT_TRUE(dec.GetBytes()->empty());
}

TEST(CodecTest, TruncatedInputsFail) {
  Decoder empty(std::string_view{});
  EXPECT_FALSE(empty.GetVarint().ok());
  Decoder partial(std::string(1, '\x80'));  // continuation bit, no next byte
  EXPECT_FALSE(partial.GetVarint().ok());
  Decoder short_double(std::string(4, 'x'));
  EXPECT_FALSE(short_double.GetDouble().ok());
  Encoder enc;
  enc.PutVarint(100);  // claims 100 bytes follow
  Decoder bad_bytes(enc.Release());
  EXPECT_FALSE(bad_bytes.GetBytes().ok());
}

TEST(CodecTest, HugeByteLengthFailsInsteadOfWrapping) {
  // A corrupt length varint near 2^64 must surface as a Status: the
  // overflow-prone check `pos_ + len > size` would wrap and let the
  // reserve abort the process (fatal on a collector drainer thread).
  Encoder enc;
  enc.PutVarint(~uint64_t{0});  // bits-length claims 2^64 - 1 bytes
  Decoder dec(enc.Release());
  EXPECT_FALSE(dec.GetBytes().ok());

  Encoder report;
  report.PutVarint(proto::kWireVersion);
  report.PutVarint(1);  // kLength
  report.PutVarint(0);
  report.PutVarint(0);
  report.PutVarint(~uint64_t{0});  // bits length, no bits follow
  auto decoded = DecodeReport(report.buffer());
  EXPECT_FALSE(decoded.ok());
}

TEST(CodecTest, StringRoundTripAndTruncation) {
  // PutString/GetStringView carry opaque byte strings (the net layer's
  // nested-message fields) without copying on decode.
  Encoder enc;
  enc.PutString("hello");
  enc.PutString("");
  enc.PutString(std::string_view("\x00\xff\x80", 3));
  std::string wire = enc.Release();
  Decoder dec{std::string_view(wire)};
  auto a = dec.GetStringView();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "hello");
  auto b = dec.GetStringView();
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->empty());
  auto c = dec.GetStringView();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, std::string_view("\x00\xff\x80", 3));
  EXPECT_TRUE(dec.AtEnd());
  // The view aliases the wire buffer — no copy was made.
  EXPECT_GE(a->data(), wire.data());
  EXPECT_LT(a->data(), wire.data() + wire.size());

  // Every truncation of the encoding must fail cleanly, and a length
  // claiming more bytes than remain must not read past the end.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Decoder trunc(std::string_view(wire).substr(0, cut));
    bool failed = false;
    for (int i = 0; i < 3; ++i) {
      auto got = trunc.GetStringView();
      if (!got.ok()) {
        failed = true;
        break;
      }
    }
    EXPECT_TRUE(failed) << "cut=" << cut;
  }
  Encoder liar;
  liar.PutVarint(~uint64_t{0});  // string length claims 2^64 - 1 bytes
  Decoder dishonest(liar.Release());
  EXPECT_FALSE(dishonest.GetStringView().ok());
}

TEST(MessagesTest, AppendEncodedMatchesAppend) {
  // The daemon re-assembles uploaded batches from wire views with
  // AppendEncoded; the result must be indistinguishable from a batch
  // built by encoding the same reports directly.
  Report report;
  report.kind = ReportKind::kLength;
  report.value = 7;
  proto::ReportBatch direct;
  direct.Append(report);
  report.value = 9;
  direct.Append(report);

  proto::ReportBatch relayed;
  for (size_t i = 0; i < direct.size(); ++i) {
    relayed.AppendEncoded(direct.view(i));
  }
  ASSERT_EQ(relayed.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(relayed.view(i), direct.view(i));
    auto decoded = DecodeReport(relayed.view(i));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->value, i == 0 ? 7 : 9);
  }
}

TEST(MessagesTest, ReportRoundTrip) {
  Report report;
  report.kind = ReportKind::kSubShape;
  report.level = 3;
  report.value = 17;
  report.bits = {1, 0, 1};
  auto decoded = DecodeReport(EncodeReport(report));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, report);
}

TEST(MessagesTest, ReportRejectsCorruption) {
  Report report;
  report.kind = ReportKind::kLength;
  report.value = 5;
  std::string wire = EncodeReport(report);
  EXPECT_FALSE(DecodeReport(wire.substr(0, wire.size() - 1)).ok());
  EXPECT_FALSE(DecodeReport(wire + "x").ok());
  EXPECT_FALSE(DecodeReport("").ok());
}

TEST(MessagesTest, ReportRejectsUnknownKind) {
  Encoder enc;
  enc.PutVarint(proto::kWireVersion);
  enc.PutVarint(9);  // no such kind
  enc.PutVarint(0);
  enc.PutVarint(0);
  enc.PutBytes({});
  EXPECT_FALSE(DecodeReport(enc.Release()).ok());
}

TEST(MessagesTest, CandidateRequestRoundTrip) {
  CandidateRequest request;
  request.level = 2;
  request.epsilon = 4.0;
  request.candidates = {{0, 1, 2}, {2, 1}};
  auto decoded = DecodeCandidateRequest(EncodeCandidateRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, request);
}

TEST(SessionTest, LengthAnswerIsValidReport) {
  ClientSession client({0, 1, 2}, dist::Metric::kSed, 7);
  auto wire = client.AnswerLengthRequest(1, 10, 4.0);
  ASSERT_TRUE(wire.ok());
  auto report = DecodeReport(*wire);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kind, ReportKind::kLength);
  EXPECT_LT(report->value, 10u);
}

TEST(SessionTest, SubShapeAnswerCarriesLevel) {
  ClientSession client({0, 1, 2, 0}, dist::Metric::kSed, 8);
  auto wire = client.AnswerSubShapeRequest(3, 4, 4.0, false);
  ASSERT_TRUE(wire.ok());
  auto report = DecodeReport(*wire);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kind, ReportKind::kSubShape);
  EXPECT_GE(report->level, 1u);
  EXPECT_LE(report->level, 3u);
}

TEST(SessionTest, SubShapeRequiresTwoLevels) {
  ClientSession client({0}, dist::Metric::kSed, 9);
  EXPECT_FALSE(client.AnswerSubShapeRequest(3, 1, 4.0, false).ok());
}

TEST(SessionTest, CandidateAnswerSelectsWithinRange) {
  ClientSession client({0, 1}, dist::Metric::kSed, 10);
  CandidateRequest request;
  request.level = 1;
  request.epsilon = 6.0;
  request.candidates = {{0, 1}, {2, 0}, {1, 2}};
  auto wire = client.AnswerCandidateRequest(EncodeCandidateRequest(request));
  ASSERT_TRUE(wire.ok());
  auto report = DecodeReport(*wire);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kind, ReportKind::kSelection);
  EXPECT_LT(report->value, 3u);
}

TEST(SessionTest, RefinementAnswerUsesGrr) {
  ClientSession client({0, 1, 2}, dist::Metric::kSed, 11);
  CandidateRequest request;
  request.epsilon = 8.0;
  request.candidates = {{0, 1, 2}, {2, 1, 0}};
  auto wire = client.AnswerRefinementRequest(EncodeCandidateRequest(request));
  ASSERT_TRUE(wire.ok());
  auto report = DecodeReport(*wire);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kind, ReportKind::kRefinement);
  EXPECT_LT(report->value, 2u);
}

TEST(SessionTest, MalformedRequestsRejected) {
  ClientSession client({0, 1}, dist::Metric::kSed, 12);
  EXPECT_FALSE(client.AnswerCandidateRequest("garbage").ok());
  CandidateRequest empty;
  empty.epsilon = 1.0;
  EXPECT_FALSE(
      client.AnswerCandidateRequest(EncodeCandidateRequest(empty)).ok());
}

TEST(AggregatorTest, EndToEndLengthEstimationOverWire) {
  // 400 clients, 70% of which hold length-3 words: the aggregate over the
  // wire recovers 3 as the frequent length.
  const int kLow = 1, kHigh = 6;
  const double kEps = 4.0;
  ReportAggregator agg(ReportKind::kLength,
                       static_cast<size_t>(kHigh - kLow + 1), kEps);
  for (int i = 0; i < 400; ++i) {
    Sequence word;
    size_t len = (i % 10) < 7 ? 3 : 5;
    for (size_t j = 0; j < len; ++j) {
      word.push_back(static_cast<Symbol>(j % 3));
    }
    ClientSession client(std::move(word), dist::Metric::kSed,
                         100 + static_cast<uint64_t>(i));
    auto wire = client.AnswerLengthRequest(kLow, kHigh, kEps);
    ASSERT_TRUE(wire.ok());
    agg.Consume(*wire);
  }
  EXPECT_EQ(agg.accepted(), 400u);
  EXPECT_EQ(agg.rejected(), 0u);
  auto counts = agg.EstimatedCounts();
  size_t best = 0;
  for (size_t v = 1; v < counts.size(); ++v) {
    if (counts[v] > counts[best]) best = v;
  }
  EXPECT_EQ(kLow + static_cast<int>(best), 3);
}

TEST(AggregatorTest, RejectsWrongKindAndGarbage) {
  ReportAggregator agg(ReportKind::kLength, 5, 1.0);
  Report wrong;
  wrong.kind = ReportKind::kSelection;
  wrong.value = 1;
  agg.Consume(EncodeReport(wrong));
  agg.Consume("not-a-report");
  Report out_of_domain;
  out_of_domain.kind = ReportKind::kLength;
  out_of_domain.value = 17;
  agg.Consume(EncodeReport(out_of_domain));
  EXPECT_EQ(agg.accepted(), 0u);
  EXPECT_EQ(agg.rejected(), 3u);
}

TEST(AggregatorTest, SelectionCountsAreRaw) {
  ReportAggregator agg(ReportKind::kSelection, 3, 1.0);
  for (int i = 0; i < 5; ++i) {
    Report report;
    report.kind = ReportKind::kSelection;
    report.value = 2;
    agg.Consume(EncodeReport(report));
  }
  auto counts = agg.EstimatedCounts();
  EXPECT_DOUBLE_EQ(counts[2], 5.0);
  EXPECT_DOUBLE_EQ(counts[0], 0.0);
}

}  // namespace
}  // namespace privshape
