# Empty dependencies file for privshape_net.
# This may be replaced when dependencies are built.
