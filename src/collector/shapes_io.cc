#include "collector/shapes_io.h"

#include <cstdio>

#include "series/sequence.h"

namespace privshape::collector {

void PrintShapes(const core::MechanismResult& result, bool labeled) {
  std::printf("frequent length ell_S = %d\n", result.frequent_length);
  if (labeled) {
    std::printf("%-4s %-20s %-6s %s\n", "#", "shape", "class",
                "est. frequency");
    for (size_t i = 0; i < result.shapes.size(); ++i) {
      std::printf("%-4zu %-20s %-6d %.1f\n", i,
                  SequenceToString(result.shapes[i].shape).c_str(),
                  result.shapes[i].label, result.shapes[i].frequency);
    }
    return;
  }
  std::printf("%-4s %-20s %s\n", "#", "shape", "est. frequency");
  for (size_t i = 0; i < result.shapes.size(); ++i) {
    std::printf("%-4zu %-20s %.1f\n", i,
                SequenceToString(result.shapes[i].shape).c_str(),
                result.shapes[i].frequency);
  }
}

bool SameShapes(const core::MechanismResult& a,
                const core::MechanismResult& b) {
  if (a.frequent_length != b.frequent_length) return false;
  if (a.shapes.size() != b.shapes.size()) return false;
  for (size_t i = 0; i < a.shapes.size(); ++i) {
    if (a.shapes[i].shape != b.shapes[i].shape) return false;
    if (a.shapes[i].label != b.shapes[i].label) return false;
    // Bit-exact: both paths share the debias formulas and per-user seeds.
    if (a.shapes[i].frequency != b.shapes[i].frequency) return false;
  }
  return true;
}

JsonValue ShapesJson(const core::MechanismResult& result, bool labeled) {
  JsonValue shapes = JsonValue::Array();
  for (const auto& shape : result.shapes) {
    JsonValue entry = JsonValue::Object();
    entry.Set("shape", JsonValue::Str(SequenceToString(shape.shape)));
    if (labeled) entry.Set("label", JsonValue::Int(shape.label));
    entry.Set("frequency", JsonValue::Num(shape.frequency));
    shapes.Push(std::move(entry));
  }
  return shapes;
}

}  // namespace privshape::collector
