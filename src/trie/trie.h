/// \file
/// Module `trie` — the candidate-shape trie grown level by level during
/// extraction (§III-C baseline expansion, §IV-B transition-gated PrivShape
/// expansion). Invariants: the frontier is always the set of unpruned nodes
/// at the deepest level, and under the Compressive-SAX invariant a node
/// never expands with its own symbol unless allow_repeats is set (the "No
/// Compression" ablation).

#ifndef PRIVSHAPE_TRIE_TRIE_H_
#define PRIVSHAPE_TRIE_TRIE_H_

#include <cstddef>
#include <set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "series/sequence.h"

namespace privshape::trie {

/// A (first, second) adjacent-symbol transition used to gate expansion.
using Transition = std::pair<Symbol, Symbol>;

/// The candidate-shape trie (§III-C, §IV-B).
///
/// The trie grows level by level; the *frontier* is the set of unpruned
/// nodes at the current depth. Because Compressive SAX never emits two
/// equal adjacent symbols, a node never expands with its own symbol.
///
/// The baseline mechanism expands every frontier node with all t-1 other
/// symbols and prunes by a frequency threshold; PrivShape expands only
/// along frequent sub-shape transitions and prunes to the top c*k frontier
/// nodes (Fig. 6).
class CandidateTrie {
 public:
  /// `alphabet_size` = SAX symbol count t (>= 2).
  static Result<CandidateTrie> Create(int alphabet_size);

  /// Allows a node to expand with its own symbol. Off by default (the
  /// Compressive-SAX invariant); the "No Compression" ablation turns it on.
  void set_allow_repeats(bool allow) { allow_repeats_ = allow; }
  bool allow_repeats() const { return allow_repeats_; }

  /// Expands the root to Level 1 with all t symbols. Must be the first
  /// expansion. Returns the number of nodes created.
  size_t ExpandRoot();

  /// Expands every frontier node with all symbols except its own
  /// (baseline behaviour). Returns the number of nodes created.
  size_t ExpandAll();

  /// Expands frontier node with last symbol s only along transitions
  /// (s, b) present in `allowed` (PrivShape behaviour). Nodes with no
  /// allowed continuation are dropped from the frontier.
  size_t ExpandWithTransitions(const std::set<Transition>& allowed);

  /// Current depth (root = 0; after ExpandRoot = 1).
  int depth() const { return depth_; }

  /// Node ids at the current frontier.
  const std::vector<int>& Frontier() const { return frontier_; }

  /// The root-to-node symbol path (a candidate shape).
  Sequence PathTo(int node) const;

  /// All frontier candidate shapes, aligned with Frontier() order.
  std::vector<Sequence> FrontierCandidates() const;

  /// Sets / reads a node's estimated frequency.
  Status SetFrequency(int node, double frequency);
  double Frequency(int node) const;

  /// Removes frontier nodes with frequency < threshold. Returns the number
  /// of nodes pruned.
  size_t PruneBelowThreshold(double threshold);

  /// Keeps only the `k` highest-frequency frontier nodes. Returns the
  /// number pruned.
  size_t PruneToTopK(size_t k);

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Symbol symbol = 0;
    int parent = -1;
    int depth = 0;
    double frequency = 0.0;
  };

  explicit CandidateTrie(int alphabet_size) : t_(alphabet_size) {
    nodes_.push_back(Node{});  // root
    frontier_.push_back(0);
  }

  int AddChild(int parent, Symbol symbol);

  int t_;
  bool allow_repeats_ = false;
  int depth_ = 0;
  std::vector<Node> nodes_;
  std::vector<int> frontier_;
};

}  // namespace privshape::trie

#endif  // PRIVSHAPE_TRIE_TRIE_H_
