// Gesture clustering (the paper's Example I / Symbols workload).
//
// Users draw gestures captured as x-axis motion time series; the same
// gesture at different speeds produces stretched copies of one silhouette.
// PrivShape extracts the frequent silhouettes under user-level LDP and the
// extracted shapes act as cluster centroids; we score them with the
// Adjusted Rand Index against the true gesture classes and compare with
// the PatternLDP + KMeans pipeline.
//
// Run: ./build/examples/gesture_clustering [--users=3000] [--epsilon=4]

#include <iostream>

#include "common/cli.h"
#include "core/pipeline.h"
#include "core/privshape.h"
#include "eval/ari.h"
#include "eval/kmeans.h"
#include "eval/shape_matching.h"
#include "patternldp/pattern_ldp.h"
#include "series/generators.h"

int main(int argc, char** argv) {
  using namespace privshape;
  CliArgs args(argc, argv);
  size_t users = static_cast<size_t>(args.GetInt("users", 3000));
  double epsilon = args.GetDouble("epsilon", 4.0);

  series::GeneratorOptions gen;
  gen.num_instances = users;
  gen.seed = 2023;
  series::Dataset dataset = series::MakeSymbolsDataset(gen);
  std::vector<int> truth;
  for (const auto& inst : dataset.instances) truth.push_back(inst.label);
  std::cout << users << " users, 6 gesture classes, series length 398\n";

  // --- PrivShape route: symbolic shapes as centroids. -------------------
  core::TransformOptions transform;
  transform.t = 6;
  transform.w = 25;
  auto sequences = core::TransformDataset(dataset, transform);
  if (!sequences.ok()) {
    std::cerr << sequences.status() << "\n";
    return 1;
  }

  core::MechanismConfig config;
  config.epsilon = epsilon;
  config.t = 6;
  config.k = 6;
  config.c = 3;
  config.ell_high = 15;
  config.metric = dist::Metric::kDtw;
  config.seed = 2023;
  core::PrivShape mechanism(config);
  auto result = mechanism.Run(*sequences);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "\nPrivShape extracted silhouettes (eps=" << epsilon << "):\n";
  std::vector<Sequence> shapes;
  for (const auto& shape : result->shapes) {
    std::cout << "  \"" << SequenceToString(shape.shape) << "\"\n";
    shapes.push_back(shape.shape);
  }
  auto assignments =
      eval::AssignToNearestShape(*sequences, shapes, dist::Metric::kDtw);
  auto privshape_ari = eval::AdjustedRandIndex(truth, *assignments);
  std::cout << "PrivShape clustering ARI: " << *privshape_ari << "\n";

  // --- PatternLDP route: perturb values, KMeans on noisy series. --------
  pldp::PatternLdpConfig pl_config;
  pl_config.epsilon = epsilon;
  auto pattern = pldp::PatternLdp::Create(pl_config);
  Rng rng(2023);
  auto perturbed = pattern->PerturbDataset(dataset, &rng);
  std::vector<std::vector<double>> points;
  for (const auto& inst : perturbed->instances) points.push_back(inst.values);
  eval::KMeansOptions km;
  km.k = 6;
  km.n_init = 2;
  km.max_iterations = 60;
  auto kmeans = eval::KMeans(points, km);
  auto pattern_ari = eval::AdjustedRandIndex(truth, kmeans->assignments);
  std::cout << "PatternLDP+KMeans clustering ARI: " << *pattern_ari << "\n";

  std::cout << "\nAt practical budgets PrivShape preserves the gesture "
               "silhouettes that value perturbation destroys.\n";
  return 0;
}
