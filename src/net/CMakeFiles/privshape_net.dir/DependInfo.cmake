
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/frame.cc" "src/net/CMakeFiles/privshape_net.dir/frame.cc.o" "gcc" "src/net/CMakeFiles/privshape_net.dir/frame.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/privshape_common.dir/DependInfo.cmake"
  "/root/repo/src/protocol/CMakeFiles/privshape_protocol.dir/DependInfo.cmake"
  "/root/repo/src/series/CMakeFiles/privshape_series.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/privshape_core.dir/DependInfo.cmake"
  "/root/repo/src/eval/CMakeFiles/privshape_eval.dir/DependInfo.cmake"
  "/root/repo/src/sax/CMakeFiles/privshape_sax.dir/DependInfo.cmake"
  "/root/repo/src/trie/CMakeFiles/privshape_trie.dir/DependInfo.cmake"
  "/root/repo/src/distance/CMakeFiles/privshape_distance.dir/DependInfo.cmake"
  "/root/repo/src/ldp/CMakeFiles/privshape_ldp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
