#ifndef PRIVSHAPE_PROTOCOL_MESSAGES_H_
#define PRIVSHAPE_PROTOCOL_MESSAGES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "series/sequence.h"

namespace privshape::proto {

/// Wire version stamped on every report so a deployed fleet can roll
/// forward without ambiguity.
inline constexpr uint64_t kWireVersion = 1;

/// Which stage produced a report.
enum class ReportKind : uint64_t {
  kLength = 1,       ///< P_a: GRR-perturbed clipped sequence length
  kSubShape = 2,     ///< P_b: (level, GRR-perturbed pair index)
  kSelection = 3,    ///< P_c: (level, EM-selected candidate index)
  kRefinement = 4,   ///< P_d (clustering): GRR candidate index
  kClassRefine = 5,  ///< P_e (classification): OUE candidate x class bits
};

/// One user's report. Exactly one payload group is meaningful per kind:
///  kLength      -> value
///  kSubShape    -> level + value
///  kSelection   -> level + value
///  kRefinement  -> value (GRR)
///  kClassRefine -> bits (OUE over candidate x class cells)
struct Report {
  ReportKind kind = ReportKind::kLength;
  uint64_t level = 0;
  uint64_t value = 0;
  std::vector<uint8_t> bits;

  bool operator==(const Report& other) const {
    return kind == other.kind && level == other.level &&
           value == other.value && bits == other.bits;
  }
};

/// Serializes a report (version, kind, level, value, bits).
std::string EncodeReport(const Report& report);

/// Appends the serialized report to `*out` — the batched form: many
/// reports share one caller-owned buffer, so encoding a streaming batch
/// costs one allocation per batch, not one per report. Byte-identical
/// framing to EncodeReport.
void EncodeReportTo(const Report& report, std::string* out);

/// Parses a report; rejects unknown versions, unknown kinds, and
/// trailing garbage. Borrows `buffer` for the duration of the call only.
Result<Report> DecodeReport(std::string_view buffer);

/// A flat batch of encoded reports: one contiguous byte buffer plus end
/// offsets, so producing a batch allocates O(1) times and ingesting it
/// decodes in-place views. This is the unit the streaming queues carry.
class ReportBatch {
 public:
  /// Encodes `report` onto the end of the buffer.
  void Append(const Report& report);

  /// Appends an already-encoded report verbatim (the daemon re-assembles
  /// uploaded batches from wire views without decoding them first).
  void AppendEncoded(std::string_view encoded) {
    buffer_.append(encoded.data(), encoded.size());
    ends_.push_back(buffer_.size());
  }

  size_t size() const { return ends_.size(); }
  bool empty() const { return ends_.empty(); }

  /// View of the i-th encoded report; valid until the next mutation.
  std::string_view view(size_t i) const {
    size_t begin = i == 0 ? 0 : ends_[i - 1];
    return std::string_view(buffer_).substr(begin, ends_[i] - begin);
  }

  /// Total encoded bytes across the batch.
  size_t bytes() const { return buffer_.size(); }

  /// Forgets the reports but keeps both buffers' capacity — a producer
  /// reuses one ReportBatch for its whole stripe.
  void Clear() {
    buffer_.clear();
    ends_.clear();
  }

  /// Pre-sizes for `reports` reports of ~`bytes_per_report` bytes.
  void Reserve(size_t reports, size_t bytes_per_report = 8) {
    ends_.reserve(reports);
    buffer_.reserve(reports * bytes_per_report);
  }

 private:
  std::string buffer_;
  std::vector<size_t> ends_;
};

/// Server -> client task descriptions. Candidates are symbol words; the
/// client matches locally and answers with a Report.
struct CandidateRequest {
  uint64_t level = 0;
  double epsilon = 0.0;
  std::vector<Sequence> candidates;

  bool operator==(const CandidateRequest& other) const {
    return level == other.level && epsilon == other.epsilon &&
           candidates == other.candidates;
  }
};

std::string EncodeCandidateRequest(const CandidateRequest& request);
Result<CandidateRequest> DecodeCandidateRequest(std::string_view buffer);

/// P_a broadcast: announce the clipped length range and the stage budget.
/// Encoded once per round — these are the bytes a wire deployment ships to
/// every P_a user, and what the collector's bytes_down metric accounts.
struct LengthRequest {
  int ell_low = 1;
  int ell_high = 1;
  double epsilon = 0.0;

  bool operator==(const LengthRequest& other) const {
    return ell_low == other.ell_low && ell_high == other.ell_high &&
           epsilon == other.epsilon;
  }
};

std::string EncodeLengthRequest(const LengthRequest& request);
Result<LengthRequest> DecodeLengthRequest(std::string_view buffer);

/// P_b broadcast: the announced trie height ell_s, the SAX alphabet, and
/// whether repeated adjacent symbols are legal (the "No Compression"
/// ablation).
struct SubShapeRequest {
  int alphabet = 0;
  int ell_s = 0;
  double epsilon = 0.0;
  bool allow_repeats = false;

  bool operator==(const SubShapeRequest& other) const {
    return alphabet == other.alphabet && ell_s == other.ell_s &&
           epsilon == other.epsilon && allow_repeats == other.allow_repeats;
  }
};

std::string EncodeSubShapeRequest(const SubShapeRequest& request);
Result<SubShapeRequest> DecodeSubShapeRequest(std::string_view buffer);

/// P_e broadcast (classification refinement, §V-E): the surviving
/// candidate shapes plus the class count. The client answers with an OUE
/// bit vector over the candidates.size() x num_classes cell grid.
struct ClassRefineRequest {
  double epsilon = 0.0;
  uint64_t num_classes = 0;
  std::vector<Sequence> candidates;

  bool operator==(const ClassRefineRequest& other) const {
    return epsilon == other.epsilon && num_classes == other.num_classes &&
           candidates == other.candidates;
  }
};

std::string EncodeClassRefineRequest(const ClassRefineRequest& request);
Result<ClassRefineRequest> DecodeClassRefineRequest(std::string_view buffer);

}  // namespace privshape::proto

#endif  // PRIVSHAPE_PROTOCOL_MESSAGES_H_
