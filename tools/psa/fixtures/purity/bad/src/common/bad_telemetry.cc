// Fixture: src/common reaching into telemetry — an upward layering
// leak the purity check must catch even when lint_layering is skipped.
#include "telemetry/telemetry.h"

namespace privshape::common {

void CountSomething() {
  static telemetry::Counter counter("common.bad");
  counter.Increment();
}

}  // namespace privshape::common
