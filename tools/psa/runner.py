"""Analyzer driver: engine -> annotation registry -> checks -> report."""

import os

from . import __version__
from . import annotations
from . import checks
from . import engine as engine_mod
from . import ir
from . import sarif
from . import suppressions

DEFAULT_SUPPRESSIONS = os.path.join("tools", "psa", "suppressions.txt")


def analyze_tree(root, prefer_engine="auto", compile_db=None,
                 suppression_path=None, require_used=True, log=print):
    """Runs every check over the tree at `root`.

    Returns (exit_code, active, suppressed) where exit_code follows the
    uniform tooling convention: 0 clean, 1 findings, 2 internal error.
    """
    try:
        eng, notice = engine_mod.select_engine(root, prefer_engine)
    except RuntimeError as e:
        log(f"psa: {e}")
        return 2, [], []
    log(f"psa: {notice}")

    files = []
    try:
        rel_paths = engine_mod.discover_files(root, compile_db)
    except OSError as e:
        log(f"psa: cannot walk {root}: {e}")
        return 2, [], []
    if not rel_paths:
        log(f"psa: no sources under {os.path.join(root, 'src')}")
        return 2, [], []
    for rel in rel_paths:
        try:
            files.append(eng.parse(rel))
        except OSError as e:
            log(f"psa: unreadable {rel}: {e}")
            return 2, [], []

    registry = annotations.Registry()
    for src in files:
        annotations.collect(src, registry)

    findings = []
    for check in checks.ALL_CHECKS:
        findings.extend(check.run(files, registry))

    # Suppressions.
    if suppression_path is None:
        suppression_path = os.path.join(root, DEFAULT_SUPPRESSIONS)
    if os.path.isfile(suppression_path):
        with open(suppression_path, encoding="utf-8") as f:
            text = f.read()
        rel_supp = os.path.relpath(suppression_path, root).replace(
            os.sep, "/")
        supp = suppressions.parse(rel_supp, text, set(checks.check_ids()))
    else:
        supp = suppressions.SuppressionFile(path="<none>")
    active, suppressed, problems = suppressions.apply(
        findings, supp, require_used=require_used)
    active.extend(problems)
    active.sort(key=lambda f: (f.path, f.line, f.check))
    return (1 if active else 0), active, suppressed


def report(active, suppressed, files_analyzed, log=print):
    for f in active:
        log(f.render())
    if suppressed:
        log(f"psa: {len(suppressed)} finding(s) suppressed "
            "(tools/psa/suppressions.txt):")
        for f in suppressed:
            log(f"  [suppressed by {f.suppressed_by}] {f.render()}")
    if active:
        log(f"psa: {len(active)} violation(s) over {files_analyzed} "
            "file(s)")
    else:
        log(f"psa: OK — {files_analyzed} file(s), "
            f"{len(checks.ALL_CHECKS)} checks, "
            f"{len(suppressed)} justified suppression(s)")


def write_sarif(path, active, suppressed):
    sarif.write(path, active + suppressed, checks.ALL_CHECKS, __version__)
