#ifndef PRIVSHAPE_EVAL_KMEDOIDS_H_
#define PRIVSHAPE_EVAL_KMEDOIDS_H_

#include <vector>

#include "common/status.h"

namespace privshape::eval {

/// PAM-style k-medoids over a precomputed distance matrix. Provided as an
/// alternative grouping strategy for PrivShape's post-processing and used
/// by the ablation benches; unlike KMeans it works with any metric (DTW,
/// SED) because it only touches the matrix.
struct KMedoidsResult {
  std::vector<int> assignments;
  std::vector<size_t> medoids;
  double total_cost = 0.0;
};

Result<KMedoidsResult> KMedoids(
    const std::vector<std::vector<double>>& distance_matrix, int k,
    uint64_t seed = 2023, int max_iterations = 50);

}  // namespace privshape::eval

#endif  // PRIVSHAPE_EVAL_KMEDOIDS_H_
