#ifndef PRIVSHAPE_EVAL_RANDOM_FOREST_H_
#define PRIVSHAPE_EVAL_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace privshape::eval {

/// CART decision tree (Gini impurity, axis-aligned splits) — the building
/// block of the random forest below.
class DecisionTree {
 public:
  struct Options {
    int max_depth = 16;
    size_t min_samples_split = 2;
    /// Features tried per split; 0 = sqrt(num_features).
    size_t max_features = 0;
  };

  /// Trains on row-major features X (n x d) and labels y.
  static Result<DecisionTree> Fit(const std::vector<std::vector<double>>& x,
                                  const std::vector<int>& y,
                                  const Options& options, Rng* rng);

  int Predict(const std::vector<double>& features) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;       ///< -1 marks a leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int label = 0;          ///< majority label (valid at leaves)
  };

  DecisionTree() = default;

  int Build(const std::vector<std::vector<double>>& x,
            const std::vector<int>& y, std::vector<size_t>& indices,
            int depth, const Options& options, Rng* rng);

  std::vector<Node> nodes_;
};

/// Random forest classifier (bootstrap + feature subsampling + majority
/// vote) — the model the paper pairs with PatternLDP for classification
/// (§V-E, scikit-learn defaults: 100 trees).
class RandomForest {
 public:
  struct Options {
    int num_trees = 100;
    DecisionTree::Options tree;
    uint64_t seed = 2023;
  };

  static Result<RandomForest> Fit(const std::vector<std::vector<double>>& x,
                                  const std::vector<int>& y,
                                  const Options& options);

  /// Fit with default options (100 trees, sqrt-feature splits).
  static Result<RandomForest> Fit(const std::vector<std::vector<double>>& x,
                                  const std::vector<int>& y);

  int Predict(const std::vector<double>& features) const;
  std::vector<int> PredictBatch(
      const std::vector<std::vector<double>>& x) const;

  size_t num_trees() const { return trees_.size(); }

 private:
  RandomForest() = default;

  std::vector<DecisionTree> trees_;
};

}  // namespace privshape::eval

#endif  // PRIVSHAPE_EVAL_RANDOM_FOREST_H_
