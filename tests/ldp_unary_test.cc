#include "ldp/unary_encoding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace privshape {
namespace {

using ldp::UnaryEncoding;
using Variant = ldp::UnaryEncoding::Variant;

TEST(UnaryTest, RejectsInvalidParameters) {
  EXPECT_FALSE(UnaryEncoding::Create(0, 1.0, Variant::kOptimized).ok());
  EXPECT_FALSE(UnaryEncoding::Create(4, 0.0, Variant::kOptimized).ok());
  EXPECT_TRUE(UnaryEncoding::Create(1, 1.0, Variant::kSymmetric).ok());
}

TEST(UnaryTest, OueParameters) {
  auto oue = UnaryEncoding::Create(8, 1.5, Variant::kOptimized);
  ASSERT_TRUE(oue.ok());
  EXPECT_DOUBLE_EQ(oue->p(), 0.5);
  EXPECT_NEAR(oue->q(), 1.0 / (std::exp(1.5) + 1.0), 1e-12);
}

TEST(UnaryTest, SueParameters) {
  auto sue = UnaryEncoding::Create(8, 1.5, Variant::kSymmetric);
  ASSERT_TRUE(sue.ok());
  double e2 = std::exp(0.75);
  EXPECT_NEAR(sue->p(), e2 / (e2 + 1.0), 1e-12);
  EXPECT_NEAR(sue->q(), 1.0 - sue->p(), 1e-12);
}

TEST(UnaryTest, LdpRatioHolds) {
  // eps-LDP for unary encodings: p(1-q) / (q(1-p)) = e^eps.
  for (double eps : {0.5, 1.0, 3.0}) {
    for (Variant variant : {Variant::kOptimized, Variant::kSymmetric}) {
      auto ue = UnaryEncoding::Create(4, eps, variant);
      ASSERT_TRUE(ue.ok());
      double ratio =
          (ue->p() * (1.0 - ue->q())) / (ue->q() * (1.0 - ue->p()));
      EXPECT_NEAR(ratio, std::exp(eps), 1e-9);
    }
  }
}

TEST(UnaryTest, PerturbedBitsHaveRightLength) {
  auto oue = UnaryEncoding::Create(10, 1.0, Variant::kOptimized);
  ASSERT_TRUE(oue.ok());
  Rng rng(41);
  auto bits = oue->PerturbValue(3, &rng);
  EXPECT_EQ(bits.size(), 10u);
}

TEST(UnaryTest, EstimatesAreUnbiasedOue) {
  auto oue = UnaryEncoding::Create(6, 1.0, Variant::kOptimized);
  ASSERT_TRUE(oue.ok());
  Rng rng(42);
  const int n = 100000;
  std::vector<double> truth = {0.4, 0.3, 0.1, 0.1, 0.05, 0.05};
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(oue->SubmitUser(rng.Discrete(truth), &rng).ok());
  }
  auto counts = oue->EstimateCounts();
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_NEAR(counts[v] / n, truth[v], 0.02) << "value " << v;
  }
}

TEST(UnaryTest, EstimatesAreUnbiasedSue) {
  auto sue = UnaryEncoding::Create(4, 2.0, Variant::kSymmetric);
  ASSERT_TRUE(sue.ok());
  Rng rng(43);
  const int n = 100000;
  std::vector<double> truth = {0.7, 0.1, 0.1, 0.1};
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(sue->SubmitUser(rng.Discrete(truth), &rng).ok());
  }
  auto counts = sue->EstimateCounts();
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_NEAR(counts[v] / n, truth[v], 0.02) << "value " << v;
  }
}

TEST(UnaryTest, SubmitBitsAcceptsExternalEncoding) {
  // The PrivShape classification refinement builds cells externally.
  auto oue = UnaryEncoding::Create(4, 1.0, Variant::kOptimized);
  ASSERT_TRUE(oue.ok());
  EXPECT_TRUE(oue->SubmitBits({1, 0, 0, 1}).ok());
  EXPECT_FALSE(oue->SubmitBits({1, 0}).ok());  // wrong length
  EXPECT_EQ(oue->num_reports(), 1u);
}

TEST(UnaryTest, SubmitRejectsOutOfDomain) {
  auto oue = UnaryEncoding::Create(3, 1.0, Variant::kOptimized);
  ASSERT_TRUE(oue.ok());
  Rng rng(44);
  EXPECT_FALSE(oue->SubmitUser(3, &rng).ok());
}

TEST(UnaryTest, ResetClearsState) {
  auto oue = UnaryEncoding::Create(3, 1.0, Variant::kOptimized);
  ASSERT_TRUE(oue.ok());
  Rng rng(45);
  ASSERT_TRUE(oue->SubmitUser(1, &rng).ok());
  oue->Reset();
  EXPECT_EQ(oue->num_reports(), 0u);
}

TEST(UnaryTest, OueVarianceBeatsSueAtSameEps) {
  // OUE's q is smaller, so zero-bit noise is lower: check estimator spread
  // empirically on a point-mass distribution.
  const double eps = 1.0;
  const int n = 40000;
  auto run = [&](Variant variant, uint64_t seed) {
    auto ue = UnaryEncoding::Create(16, eps, variant);
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(ue->SubmitUser(0, &rng).ok());
    }
    auto counts = ue->EstimateCounts();
    // Empirical MSE of the 15 zero-frequency cells.
    double mse = 0.0;
    for (size_t v = 1; v < 16; ++v) mse += counts[v] * counts[v];
    return mse / 15.0;
  };
  double oue_mse = 0.0, sue_mse = 0.0;
  for (uint64_t s = 0; s < 5; ++s) {
    oue_mse += run(Variant::kOptimized, 100 + s);
    sue_mse += run(Variant::kSymmetric, 200 + s);
  }
  EXPECT_LT(oue_mse, sue_mse);
}

}  // namespace
}  // namespace privshape
