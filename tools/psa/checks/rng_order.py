"""Check: the canonical RNG consumption order (PR 9's contract).

Engine words may only be consumed through the blessed batched helpers
(LazyMt64::FillU64 / Rng::FillU64) or through functions that are
themselves annotated as canonical (PS_RNG_CANONICAL / PS_RNG_WORDS).

Rules enforced:

  R1  Inside a PS_REPORT_PATH or PS_RNG_WORDS function, raw draws are
      errors: std::*_distribution / mt19937 / rand, the Rng convenience
      methods (Uniform, Index, Discrete, ...), and direct engine()
      access. PS_RNG_CANONICAL bodies are exempt from the Rng-method
      ban — they are where a canonical order is *defined* — but never
      from the std::* ban (all draws go through common/rng.h).

  R2  A function declaring PS_RNG_WORDS(<integer n>) must consume
      exactly n words on its straight-line path: FillU64 literal counts
      plus the declared counts of annotated callees must sum to n, with
      no site inside a branch or loop and no unresolvable site.

  R3  Declaration and definition of the same function must carry the
      same PS_RNG_WORDS expression.

  R4  Closure: in the configured report-path surface (all of src/ldp
      and src/protocol, plus the Algorithm-2 files in src/core), any
      function that consumes randomness must carry one of the markers —
      new draw sites cannot appear unaudited.
"""

from .. import annotations
from .. import ir

CHECK_ID = "psa-rng-order"
DESCRIPTION = ("engine words are consumed only through blessed batched "
               "helpers, with PS_RNG_WORDS counts proven against the "
               "call graph")

# The closure surface for R4: every randomness-consuming function here
# must be annotated. Whole modules, plus the core files that implement
# the per-user report logic (population/pem/baseline are server-side
# orchestration and stay outside).
CLOSURE_MODULES = {"ldp", "protocol"}
CLOSURE_FILES = {
    "src/core/rounds.cc",
    "src/core/em_selection.cc",
    "src/core/subshape.cc",
    "src/core/length_estimation.cc",
}

# common/rng.h IS the randomness layer; the canonical-order rules are
# about its consumers.
EXEMPT_FILES = {"src/common/rng.h", "src/common/rng.cc"}


def _in_closure(path):
    parts = path.split("/")
    module = parts[1] if len(parts) >= 3 and parts[0] == "src" else None
    return module in CLOSURE_MODULES or path in CLOSURE_FILES


def run(files, registry):
    findings = list(registry.problems)
    annotated = {}  # qualified -> [Function, ...] (decl + def)
    for fn in registry.functions:
        annotated.setdefault(fn.qualified, []).append(fn)

    # R3: decl/def word-count agreement.
    for qualified, fns in sorted(annotated.items()):
        exprs = {(f.declared_words or "").replace(" ", "")
                 for f in fns if f.declared_words is not None}
        if len(exprs) > 1:
            fn = fns[-1]
            findings.append(ir.Finding(
                CHECK_ID, fn.path, fn.line,
                f"{qualified}: PS_RNG_WORDS disagrees between declaration "
                f"and definition ({', '.join(sorted(exprs))})"))

    # R1 + R2 over annotated definitions.
    for fn in registry.functions:
        if fn.body is None:
            continue
        sites = annotations.scan_sites(fn, registry)
        canonical = fn.is_canonical()
        for site in sites:
            if site.kind == "std-random":
                findings.append(ir.Finding(
                    CHECK_ID, fn.path, site.line,
                    f"{fn.qualified}: raw std randomness "
                    f"('{site.detail}') — all draws go through "
                    "common/rng.h helpers"))
            elif site.kind == "raw" and not canonical:
                findings.append(ir.Finding(
                    CHECK_ID, fn.path, site.line,
                    f"{fn.qualified}: raw Rng draw {site.detail} on the "
                    "report path — consume words via FillU64 or an "
                    "annotated canonical helper"))
            elif site.kind == "engine" and not canonical:
                findings.append(ir.Finding(
                    CHECK_ID, fn.path, site.line,
                    f"{fn.qualified}: direct engine() access on the "
                    "report path"))
            elif site.kind == "call" and site.callee is None:
                findings.append(ir.Finding(
                    CHECK_ID, fn.path, site.line,
                    f"{fn.qualified}: cannot resolve which annotated "
                    f"'{site.detail}' overload is called — qualify the "
                    "call or name the receiver after its class"))

        n = fn.numeric_words
        if n is not None:
            findings.extend(_check_fixed_count(fn, sites, n))
    findings.extend(_closure(files, registry))
    return findings


def _check_fixed_count(fn, sites, declared):
    """R2: straight-line word total must equal the declared count."""
    findings = []
    total = 0
    ok = True
    for site in sites:
        if site.kind in ("raw", "engine", "std-random"):
            ok = False  # already reported by R1; count is unprovable
            continue
        if site.in_branch:
            findings.append(ir.Finding(
                CHECK_ID, fn.path, site.line,
                f"{fn.qualified}: PS_RNG_WORDS({declared}) but a "
                f"consumption site ({site.detail}) sits inside a "
                "branch/loop — a fixed word count needs straight-line "
                "consumption"))
            ok = False
            continue
        if site.kind == "fill":
            if site.words is None:
                findings.append(ir.Finding(
                    CHECK_ID, fn.path, site.line,
                    f"{fn.qualified}: PS_RNG_WORDS({declared}) but the "
                    "FillU64 count is not an integer literal"))
                ok = False
            else:
                total += site.words
        elif site.kind == "call":
            if site.callee is None:
                ok = False  # unresolved-callee finding already emitted
            elif site.callee.numeric_words is None:
                findings.append(ir.Finding(
                    CHECK_ID, fn.path, site.line,
                    f"{fn.qualified}: PS_RNG_WORDS({declared}) but callee "
                    f"{site.callee.qualified} declares a symbolic word "
                    "count — the fixed contract cannot be proven"))
                ok = False
            else:
                total += site.callee.numeric_words
    if ok and total != declared:
        findings.append(ir.Finding(
            CHECK_ID, fn.path, fn.line,
            f"{fn.qualified}: declares PS_RNG_WORDS({declared}) but the "
            f"call graph consumes {total} word(s)"))
    return findings


def _closure(files, registry):
    """R4: unannotated randomness consumers on the closure surface."""
    findings = []
    annotated_spans = {}  # path -> [(start, end)]
    for fn in registry.functions:
        if fn.body is not None:
            annotated_spans.setdefault(fn.path, []).append(fn.body)
    for src in files:
        if not _in_closure(src.path) or src.path in EXEMPT_FILES:
            continue
        spans = annotated_spans.get(src.path, [])
        probe = annotations.Function(
            name="<file>", qualified="<file>", cls="", path=src.path,
            line=1, annotations=[], params="",
            body=(0, len(src.tokens)), src=src)
        for site in annotations.scan_sites(probe, registry):
            if site.kind == "call":
                continue  # calling an annotated helper is always fine
            covered = any(start <= site.idx < end for start, end in spans)
            if not covered:
                findings.append(ir.Finding(
                    CHECK_ID, src.path, site.line,
                    f"randomness consumed ({site.detail}) outside any "
                    "PS_REPORT_PATH / PS_RNG_CANONICAL / PS_RNG_WORDS "
                    "function — annotate the enclosing function so the "
                    "draw order is audited"))
        findings.extend(_marker_include_check(src))
    return findings


def _marker_include_check(src):
    """Files using markers must include the annotations header."""
    uses = any(t.kind == ir.IDENT and t.text in annotations.MARKERS
               for t in src.tokens)
    if not uses or src.path == "src/common/analysis_annotations.h":
        return []
    has_include = any(inc == "common/analysis_annotations.h"
                      for _, inc in src.includes)
    # Headers of the same file pair count: foo.cc including foo.h that
    # includes the marker header is the normal layout; only require the
    # direct include in headers.
    if has_include or src.path.endswith(".cc"):
        return []
    return [ir.Finding(
        CHECK_ID, src.path, 1,
        "uses PS_* contract markers without including "
        '"common/analysis_annotations.h"')]
