#include "telemetry/trace.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>

#include "common/json.h"
#include "common/logging.h"

namespace privshape::telemetry {

namespace {

std::atomic<TraceRecorder*> g_trace{nullptr};

/// Small dense per-thread ids (1, 2, 3, ...) — easier to read in the
/// trace viewer than raw pthread handles, and stable within a run.
uint64_t ThisThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

double TraceNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TraceRecorder::RecordSpan(std::string_view name,
                               std::string_view category, double start_us,
                               double end_us) {
  TraceEvent event;
  event.name.assign(name);
  event.category.assign(category);
  event.start_us = start_us;
  event.duration_us = end_us > start_us ? end_us - start_us : 0.0;
  event.tid = ThisThreadId();
  MutexLock lock(&mu_);
  events_.push_back(std::move(event));
}

void TraceRecorder::RecordInstant(std::string_view name,
                                  std::string_view category) {
  Instant instant;
  instant.name.assign(name);
  instant.category.assign(category);
  instant.at_us = TraceNowUs();
  instant.tid = ThisThreadId();
  MutexLock lock(&mu_);
  instants_.push_back(std::move(instant));
}

size_t TraceRecorder::size() const {
  MutexLock lock(&mu_);
  return events_.size() + instants_.size();
}

std::string TraceRecorder::ToJson() const {
  uint64_t pid = static_cast<uint64_t>(::getpid());
  JsonValue array = JsonValue::Array();
  {
    MutexLock lock(&mu_);
    for (const TraceEvent& event : events_) {
      JsonValue e = JsonValue::Object();
      e.Set("name", JsonValue::Str(event.name));
      e.Set("cat", JsonValue::Str(event.category));
      e.Set("ph", JsonValue::Str("X"));
      e.Set("ts", JsonValue::Num(event.start_us));
      e.Set("dur", JsonValue::Num(event.duration_us));
      e.Set("pid", JsonValue::Uint(pid));
      e.Set("tid", JsonValue::Uint(event.tid));
      array.Push(std::move(e));
    }
    for (const Instant& instant : instants_) {
      JsonValue e = JsonValue::Object();
      e.Set("name", JsonValue::Str(instant.name));
      e.Set("cat", JsonValue::Str(instant.category));
      e.Set("ph", JsonValue::Str("i"));
      e.Set("ts", JsonValue::Num(instant.at_us));
      e.Set("s", JsonValue::Str("t"));  // instant scope: thread
      e.Set("pid", JsonValue::Uint(pid));
      e.Set("tid", JsonValue::Uint(instant.tid));
      array.Push(std::move(e));
    }
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(array));
  doc.Set("displayTimeUnit", JsonValue::Str("ms"));
  return doc.Dump(0);
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  out << ToJson();
  return out.good() ? Status::Ok()
                    : Status::Internal("failed writing trace: " + path);
}

void SetGlobalTrace(TraceRecorder* recorder) {
  g_trace.store(recorder, std::memory_order_release);
}

TraceRecorder* GlobalTrace() {
  return g_trace.load(std::memory_order_acquire);
}

ScopedTraceFile::ScopedTraceFile(std::string path) : path_(std::move(path)) {
  if (!path_.empty()) SetGlobalTrace(&recorder_);
}

ScopedTraceFile::~ScopedTraceFile() {
  if (path_.empty()) return;
  SetGlobalTrace(nullptr);
  Status written = recorder_.WriteJson(path_);
  if (written.ok()) {
    PS_LOG(kInfo, "trace") << "trace written" << Kv("path", path_)
                           << Kv("events", recorder_.size());
  } else {
    PS_LOG(kError, "trace") << "trace write failed: " << written.ToString();
  }
}

}  // namespace privshape::telemetry
