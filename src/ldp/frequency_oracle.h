/// \file
/// Module `ldp` — general-purpose local-DP primitives (§II-B): GRR, OUE/SUE
/// unary encoding, OLH, the exponential mechanism, numeric mechanisms, and
/// the budget accountant. Invariant: a user's true value is only ever read
/// inside their own Submit/Perturb call, and every estimator returned is
/// unbiased for the true counts.

#ifndef PRIVSHAPE_LDP_FREQUENCY_ORACLE_H_
#define PRIVSHAPE_LDP_FREQUENCY_ORACLE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace privshape::ldp {

/// Accumulating interface for LDP categorical frequency estimation.
///
/// Each simulated user calls SubmitUser(value) exactly once; the oracle
/// perturbs locally (the only place the true value is seen) and accumulates
/// the noisy report. EstimateCounts() returns unbiased estimates of the
/// per-value counts. Concrete oracles (GRR, OUE, SUE, OLH) expose their raw
/// perturbation primitives too, which the privacy property tests exercise
/// directly.
class FrequencyOracle {
 public:
  virtual ~FrequencyOracle() = default;

  /// Perturbs `value` (in [0, domain_size)) and accumulates the report.
  virtual Status SubmitUser(size_t value, Rng* rng) = 0;

  /// Unbiased estimated count per domain value, given reports so far.
  virtual std::vector<double> EstimateCounts() const = 0;

  /// Drops all accumulated reports.
  virtual void Reset() = 0;

  virtual size_t domain_size() const = 0;
  virtual double epsilon() const = 0;
  virtual size_t num_reports() const = 0;
};

}  // namespace privshape::ldp

#endif  // PRIVSHAPE_LDP_FREQUENCY_ORACLE_H_
