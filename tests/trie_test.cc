#include "trie/trie.h"

#include <gtest/gtest.h>

#include "series/sequence.h"

namespace privshape {
namespace {

using trie::CandidateTrie;
using trie::Transition;

TEST(TrieTest, CreateValidatesAlphabet) {
  EXPECT_FALSE(CandidateTrie::Create(1).ok());
  EXPECT_FALSE(CandidateTrie::Create(27).ok());
  EXPECT_TRUE(CandidateTrie::Create(4).ok());
}

TEST(TrieTest, ExpandRootCreatesAllSymbols) {
  auto trie = CandidateTrie::Create(4);
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->ExpandRoot(), 4u);
  EXPECT_EQ(trie->depth(), 1);
  auto candidates = trie->FrontierCandidates();
  ASSERT_EQ(candidates.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(candidates[i], (Sequence{static_cast<Symbol>(i)}));
  }
}

TEST(TrieTest, ExpandAllRespectsCompressionInvariant) {
  // Fig. 5: t = 4 at Level 1 expands to 12 nodes at Level 2 (each node
  // fans out to the 3 other symbols).
  auto trie = CandidateTrie::Create(4);
  ASSERT_TRUE(trie.ok());
  trie->ExpandRoot();
  EXPECT_EQ(trie->ExpandAll(), 12u);
  EXPECT_EQ(trie->depth(), 2);
  for (const auto& cand : trie->FrontierCandidates()) {
    ASSERT_EQ(cand.size(), 2u);
    EXPECT_NE(cand[0], cand[1]);  // no repeated adjacent symbols
  }
}

TEST(TrieTest, AllowRepeatsEnablesSelfExpansion) {
  auto trie = CandidateTrie::Create(3);
  ASSERT_TRUE(trie.ok());
  trie->set_allow_repeats(true);
  trie->ExpandRoot();
  EXPECT_EQ(trie->ExpandAll(), 9u);  // full t*t fan-out
}

TEST(TrieTest, PathToReconstructsSequences) {
  auto trie = CandidateTrie::Create(3);
  ASSERT_TRUE(trie.ok());
  trie->ExpandRoot();
  trie->ExpandAll();
  auto frontier = trie->Frontier();
  auto candidates = trie->FrontierCandidates();
  for (size_t i = 0; i < frontier.size(); ++i) {
    EXPECT_EQ(trie->PathTo(frontier[i]), candidates[i]);
  }
}

TEST(TrieTest, ExpandWithTransitionsGatesFanOut) {
  // Fig. 6: only the top-c*k sub-shapes expand.
  auto trie = CandidateTrie::Create(4);
  ASSERT_TRUE(trie.ok());
  trie->ExpandRoot();
  std::set<Transition> allowed = {{0, 1}, {0, 2}, {1, 2}};
  size_t created = trie->ExpandWithTransitions(allowed);
  EXPECT_EQ(created, 3u);
  auto candidates = trie->FrontierCandidates();
  std::set<std::string> rendered;
  for (const auto& c : candidates) rendered.insert(SequenceToString(c));
  EXPECT_EQ(rendered, (std::set<std::string>{"ab", "ac", "bc"}));
}

TEST(TrieTest, ExpandWithTransitionsDropsDeadEnds) {
  auto trie = CandidateTrie::Create(3);
  ASSERT_TRUE(trie.ok());
  trie->ExpandRoot();
  // Only symbol 'a' has a continuation; 'b' and 'c' dead-end.
  std::set<Transition> allowed = {{0, 1}};
  EXPECT_EQ(trie->ExpandWithTransitions(allowed), 1u);
  EXPECT_EQ(trie->FrontierCandidates().size(), 1u);
}

TEST(TrieTest, FrequencyRoundTrip) {
  auto trie = CandidateTrie::Create(3);
  ASSERT_TRUE(trie.ok());
  trie->ExpandRoot();
  int node = trie->Frontier()[1];
  ASSERT_TRUE(trie->SetFrequency(node, 42.5).ok());
  EXPECT_DOUBLE_EQ(trie->Frequency(node), 42.5);
  EXPECT_FALSE(trie->SetFrequency(9999, 1.0).ok());
  EXPECT_DOUBLE_EQ(trie->Frequency(-1), 0.0);
}

TEST(TrieTest, PruneBelowThreshold) {
  auto trie = CandidateTrie::Create(4);
  ASSERT_TRUE(trie.ok());
  trie->ExpandRoot();
  auto frontier = trie->Frontier();
  for (size_t i = 0; i < frontier.size(); ++i) {
    ASSERT_TRUE(trie->SetFrequency(frontier[i], static_cast<double>(i)).ok());
  }
  EXPECT_EQ(trie->PruneBelowThreshold(2.0), 2u);  // drops freq 0 and 1
  EXPECT_EQ(trie->Frontier().size(), 2u);
}

TEST(TrieTest, PruneToTopKKeepsHighestFrequencies) {
  auto trie = CandidateTrie::Create(4);
  ASSERT_TRUE(trie.ok());
  trie->ExpandRoot();
  auto frontier = trie->Frontier();
  std::vector<double> freqs = {5.0, 1.0, 9.0, 3.0};
  for (size_t i = 0; i < frontier.size(); ++i) {
    ASSERT_TRUE(trie->SetFrequency(frontier[i], freqs[i]).ok());
  }
  EXPECT_EQ(trie->PruneToTopK(2), 2u);
  auto kept = trie->FrontierCandidates();
  std::set<std::string> rendered;
  for (const auto& c : kept) rendered.insert(SequenceToString(c));
  EXPECT_EQ(rendered, (std::set<std::string>{"a", "c"}));  // freq 5 and 9
}

TEST(TrieTest, PruneToTopKNoopWhenSmall) {
  auto trie = CandidateTrie::Create(3);
  ASSERT_TRUE(trie.ok());
  trie->ExpandRoot();
  EXPECT_EQ(trie->PruneToTopK(10), 0u);
  EXPECT_EQ(trie->Frontier().size(), 3u);
}

TEST(TrieTest, WorstCaseGrowthMatchesTheory) {
  // Without pruning the frontier at level L has t * (t-1)^(L-1) nodes —
  // the expansion-domain term in the paper's Theorem 4.
  auto trie = CandidateTrie::Create(4);
  ASSERT_TRUE(trie.ok());
  trie->ExpandRoot();
  size_t expected = 4;
  for (int level = 2; level <= 5; ++level) {
    trie->ExpandAll();
    expected *= 3;  // (t - 1)
    EXPECT_EQ(trie->Frontier().size(), expected) << "level " << level;
  }
}

TEST(TrieTest, NumNodesAccumulates) {
  auto trie = CandidateTrie::Create(3);
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->num_nodes(), 1u);  // root
  trie->ExpandRoot();
  EXPECT_EQ(trie->num_nodes(), 4u);
  trie->ExpandAll();
  EXPECT_EQ(trie->num_nodes(), 10u);  // 1 + 3 + 6
}

}  // namespace
}  // namespace privshape
