#include "eval/random_forest.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/ari.h"

namespace privshape {
namespace {

using eval::DecisionTree;
using eval::RandomForest;

void MakeBlobs(size_t per_class, uint64_t seed,
               std::vector<std::vector<double>>* x, std::vector<int>* y) {
  Rng rng(seed);
  for (size_t i = 0; i < per_class; ++i) {
    x->push_back({rng.Gaussian(0.0, 0.5), rng.Gaussian(0.0, 0.5)});
    y->push_back(0);
    x->push_back({rng.Gaussian(4.0, 0.5), rng.Gaussian(0.0, 0.5)});
    y->push_back(1);
    x->push_back({rng.Gaussian(2.0, 0.5), rng.Gaussian(4.0, 0.5)});
    y->push_back(2);
  }
}

TEST(DecisionTreeTest, FitsSeparableData) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeBlobs(50, 161, &x, &y);
  Rng rng(162);
  DecisionTree::Options options;
  options.max_features = 2;  // use both features
  auto tree = DecisionTree::Fit(x, y, options, &rng);
  ASSERT_TRUE(tree.ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (tree->Predict(x[i]) == y[i]) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(x.size() * 95 / 100));
}

TEST(DecisionTreeTest, PureNodeShortCircuits) {
  std::vector<std::vector<double>> x = {{1.0}, {2.0}, {3.0}};
  std::vector<int> y = {7, 7, 7};
  Rng rng(163);
  auto tree = DecisionTree::Fit(x, y, DecisionTree::Options{}, &rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
  EXPECT_EQ(tree->Predict({9.0}), 7);
}

TEST(DecisionTreeTest, MaxDepthLimitsGrowth) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeBlobs(60, 164, &x, &y);
  Rng rng(165);
  DecisionTree::Options shallow;
  shallow.max_depth = 1;
  auto tree = DecisionTree::Fit(x, y, shallow, &rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->num_nodes(), 3u);  // root + two leaves
}

TEST(DecisionTreeTest, RejectsBadInput) {
  Rng rng(166);
  EXPECT_FALSE(DecisionTree::Fit({}, {}, DecisionTree::Options{}, &rng).ok());
  EXPECT_FALSE(
      DecisionTree::Fit({{1.0}}, {0, 1}, DecisionTree::Options{}, &rng).ok());
}

TEST(RandomForestTest, ClassifiesHeldOutBlobs) {
  std::vector<std::vector<double>> train_x, test_x;
  std::vector<int> train_y, test_y;
  MakeBlobs(60, 167, &train_x, &train_y);
  MakeBlobs(20, 168, &test_x, &test_y);
  RandomForest::Options options;
  options.num_trees = 30;
  auto forest = RandomForest::Fit(train_x, train_y, options);
  ASSERT_TRUE(forest.ok());
  auto preds = forest->PredictBatch(test_x);
  auto acc = eval::Accuracy(test_y, preds);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.9);
}

TEST(RandomForestTest, DefaultOptionsWork) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeBlobs(20, 169, &x, &y);
  auto forest = RandomForest::Fit(x, y);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->num_trees(), 100u);
}

TEST(RandomForestTest, DeterministicForSeed) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeBlobs(30, 170, &x, &y);
  RandomForest::Options options;
  options.num_trees = 10;
  options.seed = 11;
  auto a = RandomForest::Fit(x, y, options);
  auto b = RandomForest::Fit(x, y, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(a->Predict(x[i]), b->Predict(x[i]));
  }
}

TEST(RandomForestTest, RejectsBadOptions) {
  std::vector<std::vector<double>> x = {{1.0}, {2.0}};
  std::vector<int> y = {0, 1};
  RandomForest::Options options;
  options.num_trees = 0;
  EXPECT_FALSE(RandomForest::Fit(x, y, options).ok());
}

TEST(RandomForestTest, HandlesShortFeatureVectorAtPredict) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeBlobs(20, 171, &x, &y);
  RandomForest::Options options;
  options.num_trees = 5;
  auto forest = RandomForest::Fit(x, y, options);
  ASSERT_TRUE(forest.ok());
  // Missing features read as 0; prediction must not crash.
  int label = forest->Predict({1.0});
  EXPECT_GE(label, 0);
  EXPECT_LE(label, 2);
}

}  // namespace
}  // namespace privshape
