/// \file
/// The shared per-round client context. The paper's P_a..P_d rounds
/// broadcast ONE identical request to the whole population (PrivShape
/// §IV, Algorithm 2), so everything derivable from the request alone —
/// the decoded candidate list, the GRR/EM perturbation parameters, the
/// distance kernel — is round-constant. RoundContext materializes that
/// work exactly once; every client answer then runs against a
/// `const RoundContext&` plus a per-worker `AnswerScratch`, and the
/// per-report hot path performs no heap allocation at all.
///
/// Determinism: a context-path answer draws the same randomness in the
/// same order as the string-decoding entry points (which are now thin
/// wrappers over this), so reports are byte-identical on either path.

#ifndef PRIVSHAPE_PROTOCOL_ROUND_CONTEXT_H_
#define PRIVSHAPE_PROTOCOL_ROUND_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "distance/candidate_table.h"
#include "distance/distance.h"
#include "ldp/exponential.h"
#include "ldp/grr.h"
#include "ldp/unary_encoding.h"
#include "protocol/messages.h"
#include "series/sequence.h"

namespace privshape::proto {

/// Upper bound on the candidates x num_classes cell grid a
/// class-refinement round may announce: each client ships one OUE bit
/// per cell, so an unbounded wire-decoded product would let one corrupt
/// broadcast demand multi-gigabyte reports. Real rounds use c*k
/// candidates x tens of classes — orders of magnitude below this.
inline constexpr uint64_t kMaxClassRefineCells = 1u << 20;

/// Reusable per-worker buffers for the zero-allocation answer path: DP
/// rows for the distance kernel, the distance/score/probability vectors
/// of the EM selection chain, and the Report the answer is written into.
/// One instance per worker thread (or per population stripe); never
/// shared across threads.
struct AnswerScratch {
  dist::TableScratch table;
  std::vector<double> distances;
  std::vector<double> scores;
  std::vector<double> probs;
  std::vector<uint64_t> words;  ///< raw engine block for batched OUE bits
  Report report;
};

/// Immutable, shareable state of one collection round, built once by the
/// coordinator (or by a legacy string entry point) and read concurrently
/// by every client answer. Construction does all the validation the
/// string entry points used to do per call, with identical Status
/// results; answering against a context of the wrong kind fails.
class RoundContext {
 public:
  /// P_a: GRR over the clipped length range [ell_low, ell_high]. A
  /// one-value range is served deterministically (no mechanism).
  static Result<RoundContext> Length(int ell_low, int ell_high,
                                     double epsilon);
  static Result<RoundContext> Length(const LengthRequest& request);

  /// P_b: padding-and-sampling sub-shape report. `alphabet` is the SAX
  /// alphabet size; `ell_s` the announced trie height (>= 2).
  static Result<RoundContext> SubShape(int alphabet, int ell_s,
                                       double epsilon, bool allow_repeats);
  static Result<RoundContext> SubShape(const SubShapeRequest& request);

  /// P_c: EM selection over the broadcast candidate list.
  static Result<RoundContext> Selection(CandidateRequest request,
                                        dist::Metric metric);
  static Result<RoundContext> Selection(std::string_view encoded_request,
                                        dist::Metric metric);

  /// P_d (clustering): GRR over the index of the closest candidate.
  static Result<RoundContext> Refinement(CandidateRequest request,
                                         dist::Metric metric);
  static Result<RoundContext> Refinement(std::string_view encoded_request,
                                         dist::Metric metric);

  /// P_e (classification, §V-E): OUE over the candidate x class cell
  /// grid. The perturbation parameters p/q are fixed at construction so
  /// every per-report draw is a plain Bernoulli against shared constants.
  static Result<RoundContext> ClassRefinement(ClassRefineRequest request,
                                              dist::Metric metric);
  static Result<RoundContext> ClassRefinement(
      std::string_view encoded_request, dist::Metric metric);

  ReportKind kind() const { return kind_; }
  uint64_t level() const { return level_; }
  double epsilon() const { return epsilon_; }
  const std::vector<Sequence>& candidates() const {
    return table_.candidates();
  }

  /// The SoA candidate table (built once at construction) the
  /// vectorized answer paths match against; empty for P_a/P_b rounds.
  const dist::CandidateTable& table() const { return table_; }

  // Stage parameters (meaningful for the kinds that set them).
  int ell_low() const { return ell_low_; }
  int ell_high() const { return ell_high_; }
  int alphabet() const { return alphabet_; }
  int ell_s() const { return ell_s_; }
  bool allow_repeats() const { return allow_repeats_; }

  // Classification-refinement parameters (kClassRefine only).
  int num_classes() const { return num_classes_; }
  /// candidates().size() * num_classes() — the OUE bit-vector length.
  size_t cells() const {
    return candidates().size() * static_cast<size_t>(num_classes_);
  }
  double oue_p() const { return oue_p_; }
  double oue_q() const { return oue_q_; }

  /// The pre-built mechanisms. grr() is absent only for the one-value
  /// P_a domain; em() is present only for kSelection; oue() only for
  /// kClassRefine (it carries the batched bit-fill path).
  const ldp::Grr* grr() const { return grr_ ? &*grr_ : nullptr; }
  const ldp::ExponentialMechanism* em() const { return em_ ? &*em_ : nullptr; }
  const ldp::UnaryEncoding* oue() const { return oue_ ? &*oue_ : nullptr; }

  /// The pre-built distance kernel (kSelection/kRefinement only).
  const dist::SequenceDistance* distance() const { return distance_.get(); }

 private:
  RoundContext() = default;

  ReportKind kind_ = ReportKind::kLength;
  uint64_t level_ = 0;
  double epsilon_ = 0.0;
  int ell_low_ = 0;
  int ell_high_ = 0;
  int alphabet_ = 0;
  int ell_s_ = 0;
  bool allow_repeats_ = false;
  int num_classes_ = 0;
  double oue_p_ = 0.0;
  double oue_q_ = 0.0;
  std::optional<ldp::Grr> grr_;
  std::optional<ldp::ExponentialMechanism> em_;
  std::optional<ldp::UnaryEncoding> oue_;
  std::unique_ptr<const dist::SequenceDistance> distance_;
  dist::CandidateTable table_;
};

}  // namespace privshape::proto

#endif  // PRIVSHAPE_PROTOCOL_ROUND_CONTEXT_H_
