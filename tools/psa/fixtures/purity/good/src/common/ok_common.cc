// Fixture: clean common-module code — sequentially consistent atomics
// are fine anywhere, and no telemetry types appear.
#include <atomic>
#include <cstdint>

namespace privshape::common {

void BumpSeqCst(std::atomic<uint64_t>* counter) { counter->fetch_add(1); }

uint64_t ReadAcquire(const std::atomic<uint64_t>& counter) {
  return counter.load(std::memory_order_acquire);
}

}  // namespace privshape::common
