/// StatsEndpoint over real loopback sockets: an epoll Poller driven by
/// the test (standing in for the daemon's event loop) serves Prometheus
/// text on /metrics and JSON elsewhere, one-shot per connection, while
/// the scraping client runs on its own thread.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "telemetry/stats_endpoint.h"
#include "telemetry/telemetry.h"

namespace privshape::telemetry {
namespace {

constexpr uint64_t kTagBase = uint64_t{1} << 62;

/// Blocking HTTP/1.0 GET against the endpoint; returns the full response
/// (headers + body) once the server closes the connection.
std::string Scrape(uint16_t port, const std::string& path) {
  auto fd = TcpConnect("127.0.0.1", port);
  if (!fd.ok()) return "";
  SetRecvTimeout(fd->get(), 10.0);
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!WriteAll(fd->get(), request).ok()) return "";
  std::string response;
  char buf[4096];
  while (true) {
    auto n = ReadSome(fd->get(), buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    response.append(buf, *n);
  }
  return response;
}

TEST(StatsEndpoint, ServesTextAndJsonOverLoopback) {
  Registry registry;
  registry.GetCounter("scrape_test_total")->Add(7);
  registry.GetHistogram("scrape_test_ns")->Record(128);

  Poller poller;
  ASSERT_TRUE(poller.valid());
  StatsEndpoint endpoint(&poller, kTagBase,
                         [&registry](std::string_view path) {
                           if (path == "/metrics") {
                             return registry.TextExposition();
                           }
                           return registry.JsonSnapshot().Dump(2);
                         });
  ASSERT_TRUE(endpoint.Start("127.0.0.1", 0).ok());
  ASSERT_TRUE(endpoint.listening());
  uint16_t port = endpoint.port();
  ASSERT_GT(port, 0);

  // The endpoint claims only its tag window — the daemon routes every
  // other tag (connections, its own listener) elsewhere.
  EXPECT_TRUE(endpoint.Owns(kTagBase));
  EXPECT_TRUE(endpoint.Owns(kTagBase + StatsEndpoint::kMaxTags - 1));
  EXPECT_FALSE(endpoint.Owns(kTagBase + StatsEndpoint::kMaxTags));
  EXPECT_FALSE(endpoint.Owns(0));

  // Scrapes run on a client thread; the test thread drives the poller
  // the way the daemon's event loop would.
  std::string metrics;
  std::string json;
  std::string json_again;
  std::atomic<bool> done{false};
  std::thread client([&] {
    metrics = Scrape(port, "/metrics");
    json = Scrape(port, "/stats.json");
    json_again = Scrape(port, "/");  // any non-/metrics path is JSON
    done.store(true, std::memory_order_release);
  });
  std::vector<PollEvent> events;
  while (!done.load(std::memory_order_acquire)) {
    ASSERT_TRUE(poller.Wait(&events, 50).ok());
    for (const PollEvent& event : events) {
      ASSERT_TRUE(endpoint.Owns(event.tag));
      endpoint.HandleEvent(event);
    }
  }
  client.join();

  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics.find("scrape_test_total 7"), std::string::npos);
  EXPECT_NE(metrics.find("scrape_test_ns_count 1"), std::string::npos);

  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"scrape_test_total\": 7"), std::string::npos);
  EXPECT_NE(json_again.find("application/json"), std::string::npos);

  endpoint.Close();
  EXPECT_FALSE(endpoint.listening());
  EXPECT_FALSE(endpoint.Owns(kTagBase));
}

}  // namespace
}  // namespace privshape::telemetry
