#include "ldp/grr.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace privshape {
namespace {

using ldp::Grr;

TEST(GrrTest, RejectsInvalidParameters) {
  EXPECT_FALSE(Grr::Create(1, 1.0).ok());
  EXPECT_FALSE(Grr::Create(4, 0.0).ok());
  EXPECT_FALSE(Grr::Create(4, -1.0).ok());
  EXPECT_TRUE(Grr::Create(2, 0.1).ok());
}

TEST(GrrTest, ProbabilitiesSatisfyLdpRatio) {
  for (double eps : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    for (size_t d : {2u, 5u, 13u}) {
      auto grr = Grr::Create(d, eps);
      ASSERT_TRUE(grr.ok());
      // p / q must equal e^eps exactly: the eps-LDP worst case.
      EXPECT_NEAR(grr->p() / grr->q(), std::exp(eps), 1e-9);
      // And the transition kernel must be a proper distribution.
      double total = grr->p() + static_cast<double>(d - 1) * grr->q();
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST(GrrTest, TransitionProbabilityMatchesPQ) {
  auto grr = Grr::Create(5, 1.0);
  ASSERT_TRUE(grr.ok());
  EXPECT_DOUBLE_EQ(grr->TransitionProbability(2, 2), grr->p());
  EXPECT_DOUBLE_EQ(grr->TransitionProbability(2, 3), grr->q());
}

TEST(GrrTest, PerturbKeepsValueWithHighProbabilityAtLargeEps) {
  auto grr = Grr::Create(4, 8.0);
  ASSERT_TRUE(grr.ok());
  Rng rng(31);
  int kept = 0;
  for (int i = 0; i < 1000; ++i) {
    if (grr->PerturbValue(2, &rng) == 2) ++kept;
  }
  EXPECT_GT(kept, 950);  // p ~ 0.999 at eps=8, d=4
}

TEST(GrrTest, PerturbOutputsStayInDomain) {
  auto grr = Grr::Create(6, 0.5);
  ASSERT_TRUE(grr.ok());
  Rng rng(32);
  for (int i = 0; i < 2000; ++i) {
    size_t out = grr->PerturbValue(static_cast<size_t>(i % 6), &rng);
    EXPECT_LT(out, 6u);
  }
}

TEST(GrrTest, EmpiricalKeepRateMatchesP) {
  auto grr = Grr::Create(4, 1.0);
  ASSERT_TRUE(grr.ok());
  Rng rng(33);
  int kept = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (grr->PerturbValue(1, &rng) == 1) ++kept;
  }
  EXPECT_NEAR(static_cast<double>(kept) / n, grr->p(), 0.01);
}

TEST(GrrTest, EstimatesAreUnbiased) {
  // True distribution over d = 5: {0.5, 0.2, 0.1, 0.1, 0.1} * n.
  auto grr = Grr::Create(5, 1.0);
  ASSERT_TRUE(grr.ok());
  Rng rng(34);
  const int n = 200000;
  std::vector<double> truth = {0.5, 0.2, 0.1, 0.1, 0.1};
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(grr->SubmitUser(rng.Discrete(truth), &rng).ok());
  }
  auto counts = grr->EstimateCounts();
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_NEAR(counts[v] / n, truth[v], 0.02) << "value " << v;
  }
}

TEST(GrrTest, SubmitRejectsOutOfDomain) {
  auto grr = Grr::Create(3, 1.0);
  ASSERT_TRUE(grr.ok());
  Rng rng(35);
  EXPECT_FALSE(grr->SubmitUser(3, &rng).ok());
  EXPECT_TRUE(grr->SubmitUser(2, &rng).ok());
  EXPECT_EQ(grr->num_reports(), 1u);
}

TEST(GrrTest, ResetClearsState) {
  auto grr = Grr::Create(3, 1.0);
  ASSERT_TRUE(grr.ok());
  Rng rng(36);
  ASSERT_TRUE(grr->SubmitUser(0, &rng).ok());
  grr->Reset();
  EXPECT_EQ(grr->num_reports(), 0u);
  auto counts = grr->EstimateCounts();
  for (double c : counts) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(GrrTest, EstimateSumsToN) {
  // Debiased counts always sum to n (the estimator preserves total mass).
  auto grr = Grr::Create(4, 0.8);
  ASSERT_TRUE(grr.ok());
  Rng rng(37);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(grr->SubmitUser(static_cast<size_t>(i % 4), &rng).ok());
  }
  auto counts = grr->EstimateCounts();
  double total = 0.0;
  for (double c : counts) total += c;
  EXPECT_NEAR(total, n, 1e-6);
}

}  // namespace
}  // namespace privshape
