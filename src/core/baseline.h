#ifndef PRIVSHAPE_CORE_BASELINE_H_
#define PRIVSHAPE_CORE_BASELINE_H_

#include <vector>

#include "core/config.h"

namespace privshape::core {

/// The baseline mechanism (Algorithm 1): frequent-length estimation from
/// P_a, then level-by-level trie expansion where every node fans out to all
/// t-1 other symbols, per-level EM selection from disjoint user groups, and
/// threshold pruning. Satisfies eps-LDP at the user level by parallel
/// composition (Theorem 1).
///
/// For the classification task, run one instance per class over that
/// class's sub-population (the paper uses "the most frequent shapes
/// estimated within each class"); see ExtractShapesPerClass() in
/// core/classification.h.
class BaselineMechanism {
 public:
  explicit BaselineMechanism(MechanismConfig config) : config_(config) {}

  /// `sequences[i]` is user i's Compressive-SAX word.
  Result<MechanismResult> Run(const std::vector<Sequence>& sequences) const;

  const MechanismConfig& config() const { return config_; }

 private:
  MechanismConfig config_;
};

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_BASELINE_H_
