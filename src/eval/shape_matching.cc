#include "eval/shape_matching.h"

#include <limits>

namespace privshape::eval {

Result<std::vector<int>> AssignToNearestShape(
    const std::vector<Sequence>& sequences,
    const std::vector<Sequence>& shapes, dist::Metric metric) {
  if (shapes.empty()) {
    return Status::InvalidArgument("need at least one shape to match");
  }
  auto distance = dist::MakeDistance(metric);
  std::vector<int> out;
  out.reserve(sequences.size());
  for (const auto& seq : sequences) {
    double best = std::numeric_limits<double>::infinity();
    int best_idx = 0;
    for (size_t s = 0; s < shapes.size(); ++s) {
      double d = distance->Distance(seq, shapes[s]);
      if (d < best) {
        best = d;
        best_idx = static_cast<int>(s);
      }
    }
    out.push_back(best_idx);
  }
  return out;
}

Result<NearestShapeClassifier> NearestShapeClassifier::Create(
    std::vector<LabeledShape> shapes, dist::Metric metric) {
  if (shapes.empty()) {
    return Status::InvalidArgument("need at least one labeled shape");
  }
  auto distance = dist::MakeDistance(metric);
  if (distance == nullptr) {
    return Status::InvalidArgument("unknown metric");
  }
  return NearestShapeClassifier(std::move(shapes), std::move(distance));
}

int NearestShapeClassifier::Classify(const Sequence& sequence) const {
  double best = std::numeric_limits<double>::infinity();
  int label = shapes_.front().label;
  for (const auto& shape : shapes_) {
    double d = distance_->Distance(sequence, shape.shape);
    if (d < best) {
      best = d;
      label = shape.label;
    }
  }
  return label;
}

std::vector<int> NearestShapeClassifier::ClassifyBatch(
    const std::vector<Sequence>& sequences) const {
  std::vector<int> out;
  out.reserve(sequences.size());
  for (const auto& seq : sequences) out.push_back(Classify(seq));
  return out;
}

}  // namespace privshape::eval
