#include "protocol/session.h"

#include <algorithm>

#include "core/em_selection.h"
#include "core/rounds.h"
#include "core/subshape.h"
#include "ldp/estimator_utils.h"
#include "ldp/exponential.h"
#include "ldp/grr.h"
#include "ldp/unary_encoding.h"

namespace privshape::proto {

// --- Shared-context hot path ---------------------------------------------
//
// These four are the one implementation of the user-side answer logic;
// the string entry points below are thin wrappers that build a throwaway
// RoundContext, so both paths draw identical randomness in identical
// order and produce byte-identical reports.

PS_REPORT_PATH
Status ClientSession::AnswerLength(const RoundContext& ctx,
                                   AnswerScratch* /*scratch*/, Report* out) {
  if (ctx.kind() != ReportKind::kLength) {
    return Status::InvalidArgument("context is not a length round");
  }
  out->kind = ReportKind::kLength;
  out->level = 0;
  out->bits.clear();
  if (ctx.grr() == nullptr) {
    // One-value domain: deterministic report, no randomness to spend.
    out->value = 0;
    return Status::Ok();
  }
  // Shared user-side logic: same draws as core::LocalLengthRound.
  out->value = core::AnswerLengthValue(word_, ctx.ell_low(), ctx.ell_high(),
                                       *ctx.grr(), &rng_);
  return Status::Ok();
}

PS_REPORT_PATH
Status ClientSession::AnswerSubShape(const RoundContext& ctx,
                                     AnswerScratch* /*scratch*/,
                                     Report* out) {
  if (ctx.kind() != ReportKind::kSubShape) {
    return Status::InvalidArgument("context is not a sub-shape round");
  }
  // Shared user-side logic: same draws as core::LocalSubShapeRound.
  auto [level, value] =
      core::AnswerSubShapeValue(word_, ctx.ell_s(), ctx.alphabet(),
                                ctx.allow_repeats(), *ctx.grr(), &rng_);
  out->kind = ReportKind::kSubShape;
  out->level = level;
  out->value = value;
  out->bits.clear();
  return Status::Ok();
}

PS_REPORT_PATH
Status ClientSession::AnswerSelection(const RoundContext& ctx,
                                      AnswerScratch* scratch, Report* out) {
  if (ctx.kind() != ReportKind::kSelection) {
    return Status::InvalidArgument("context is not a selection round");
  }
  AnswerScratch local;
  AnswerScratch* s = scratch != nullptr ? scratch : &local;
  // Shared matching path: the SoA table kernels produce bit-identical
  // distance vectors (and hence identical EM draws) to the in-process
  // core::LocalSelectionRound, which matches through the same table.
  ctx.table().MatchInto(word_, *ctx.distance(), /*prefix_compare=*/true,
                        &s->table, &s->distances);
  ldp::ScoresFromDistancesInto(s->distances, &s->scores);
  auto pick = ctx.em()->Select(s->scores, &rng_, &s->probs);
  if (!pick.ok()) return pick.status();
  out->kind = ReportKind::kSelection;
  out->level = ctx.level();
  out->value = *pick;
  out->bits.clear();
  return Status::Ok();
}

PS_REPORT_PATH
Status ClientSession::AnswerRefinement(const RoundContext& ctx,
                                       AnswerScratch* scratch, Report* out) {
  if (ctx.kind() != ReportKind::kRefinement) {
    return Status::InvalidArgument("context is not a refinement round");
  }
  size_t best_idx = ctx.table().Closest(
      word_, *ctx.distance(), scratch != nullptr ? &scratch->table : nullptr);
  out->kind = ReportKind::kRefinement;
  out->level = 0;
  out->value = ctx.grr()->PerturbValue(best_idx, &rng_);
  out->bits.clear();
  return Status::Ok();
}

PS_REPORT_PATH
Status ClientSession::AnswerClassRefinement(const RoundContext& ctx,
                                            AnswerScratch* scratch,
                                            Report* out) {
  if (ctx.kind() != ReportKind::kClassRefine) {
    return Status::InvalidArgument(
        "context is not a class-refinement round");
  }
  if (label_ < 0 || label_ >= ctx.num_classes()) {
    // No report leaves an unlabeled (or mislabeled) device: the OUE cell
    // index would be undefined, and a fabricated one would bias the
    // per-class estimates instead of showing up as a client error.
    return Status::FailedPrecondition(
        "session label outside [0, num_classes)");
  }
  AnswerScratch local;
  AnswerScratch* s = scratch != nullptr ? scratch : &local;
  size_t best_idx =
      ctx.table().Closest(word_, *ctx.distance(), &s->table);
  size_t cell = best_idx * static_cast<size_t>(ctx.num_classes()) +
                static_cast<size_t>(label_);
  out->kind = ReportKind::kClassRefine;
  out->level = 0;
  out->value = 0;
  // The one canonical OUE bit fill — same draws in the same order as
  // ldp::UnaryEncoding::PerturbValue (one raw engine word per cell,
  // threshold-compared in bulk), written into the reusable bits buffer.
  ctx.oue()->EncodeInto(cell, &rng_, &s->words, &out->bits);
  return Status::Ok();
}

PS_REPORT_PATH
Status ClientSession::Answer(const RoundContext& ctx, AnswerScratch* scratch,
                             Report* out) {
  switch (ctx.kind()) {
    case ReportKind::kLength:
      return AnswerLength(ctx, scratch, out);
    case ReportKind::kSubShape:
      return AnswerSubShape(ctx, scratch, out);
    case ReportKind::kSelection:
      return AnswerSelection(ctx, scratch, out);
    case ReportKind::kRefinement:
      return AnswerRefinement(ctx, scratch, out);
    case ReportKind::kClassRefine:
      return AnswerClassRefinement(ctx, scratch, out);
  }
  return Status::InvalidArgument("unknown round kind");
}

PS_REPORT_PATH
Status ClientSession::AnswerTo(const RoundContext& ctx,
                               AnswerScratch* scratch, ReportBatch* out) {
  Report local;
  Report* report = scratch != nullptr ? &scratch->report : &local;
  PRIVSHAPE_RETURN_IF_ERROR(Answer(ctx, scratch, report));
  out->Append(*report);
  return Status::Ok();
}

// --- String-decoding wire API (thin wrappers) ----------------------------

Result<std::string> ClientSession::AnswerLengthRequest(int ell_low,
                                                       int ell_high,
                                                       double epsilon) {
  auto ctx = RoundContext::Length(ell_low, ell_high, epsilon);
  if (!ctx.ok()) return ctx.status();
  Report report;
  PRIVSHAPE_RETURN_IF_ERROR(AnswerLength(*ctx, nullptr, &report));
  return EncodeReport(report);
}

Result<std::string> ClientSession::AnswerSubShapeRequest(int alphabet,
                                                         int ell_s,
                                                         double epsilon,
                                                         bool allow_repeats) {
  auto ctx = RoundContext::SubShape(alphabet, ell_s, epsilon, allow_repeats);
  if (!ctx.ok()) return ctx.status();
  Report report;
  PRIVSHAPE_RETURN_IF_ERROR(AnswerSubShape(*ctx, nullptr, &report));
  return EncodeReport(report);
}

Result<std::string> ClientSession::AnswerCandidateRequest(
    const std::string& request) {
  auto ctx = RoundContext::Selection(request, metric_);
  if (!ctx.ok()) return ctx.status();
  Report report;
  PRIVSHAPE_RETURN_IF_ERROR(AnswerSelection(*ctx, nullptr, &report));
  return EncodeReport(report);
}

Result<std::string> ClientSession::AnswerRefinementRequest(
    const std::string& request) {
  auto ctx = RoundContext::Refinement(request, metric_);
  if (!ctx.ok()) return ctx.status();
  Report report;
  PRIVSHAPE_RETURN_IF_ERROR(AnswerRefinement(*ctx, nullptr, &report));
  return EncodeReport(report);
}

Result<std::string> ClientSession::AnswerClassRefineRequest(
    const std::string& request) {
  auto ctx = RoundContext::ClassRefinement(request, metric_);
  if (!ctx.ok()) return ctx.status();
  Report report;
  PRIVSHAPE_RETURN_IF_ERROR(AnswerClassRefinement(*ctx, nullptr, &report));
  return EncodeReport(report);
}

ReportAggregator::ReportAggregator(ReportKind kind, size_t domain,
                                   double epsilon)
    : kind_(kind), domain_(domain), epsilon_(epsilon), counts_(domain, 0) {
  if (kind_ == ReportKind::kClassRefine) {
    // p/q from the one OUE implementation so the debiased estimates are
    // byte-identical to ldp::UnaryEncoding::EstimateCounts over the same
    // bit tallies. A non-positive epsilon (impossible for any validated
    // round) leaves p == q == 0.
    auto oue = ldp::UnaryEncoding::Create(
        std::max<size_t>(domain, 1), epsilon,
        ldp::UnaryEncoding::Variant::kOptimized);
    if (oue.ok()) {
      oue_p_ = oue->p();
      oue_q_ = oue->q();
    }
  }
}

void ReportAggregator::Consume(std::string_view encoded) {
  auto report = DecodeReport(encoded);
  if (!report.ok()) {
    ++rejected_;
    return;
  }
  ConsumeReport(*report);
}

void ReportAggregator::ConsumeReport(const Report& report) {
  if (report.kind != kind_) {
    ++rejected_;
    return;
  }
  if (kind_ == ReportKind::kClassRefine) {
    // A class-refinement report is a whole OUE bit vector; anything but
    // exactly domain_ bits (or a stray value/level field) is malformed.
    if (report.value != 0 || report.level != 0 ||
        report.bits.size() != domain_) {
      ++rejected_;
      return;
    }
    for (size_t i = 0; i < domain_; ++i) {
      if (report.bits[i]) ++counts_[i];
    }
    ++accepted_;
    return;
  }
  if (report.value >= domain_) {
    ++rejected_;
    return;
  }
  counts_[report.value]++;
  ++accepted_;
}

Status ReportAggregator::Merge(const ReportAggregator& other) {
  if (other.kind_ != kind_ || other.domain_ != domain_ ||
      other.epsilon_ != epsilon_) {
    return Status::InvalidArgument("cannot merge mismatched aggregators");
  }
  for (size_t v = 0; v < domain_; ++v) counts_[v] += other.counts_[v];
  accepted_ += other.accepted_;
  rejected_ += other.rejected_;
  return Status::Ok();
}

std::vector<double> ReportAggregator::EstimatedCounts() const {
  if (kind_ == ReportKind::kSelection) {
    std::vector<double> out(domain_);
    for (size_t v = 0; v < domain_; ++v) {
      out[v] = static_cast<double>(counts_[v]);
    }
    return out;
  }
  if (kind_ == ReportKind::kClassRefine) {
    // Same expression, same evaluation order as
    // ldp::UnaryEncoding::EstimateCounts — identical integer tallies give
    // byte-identical per-cell estimates.
    std::vector<double> out(domain_);
    double n = static_cast<double>(accepted_);
    for (size_t v = 0; v < domain_; ++v) {
      out[v] =
          (static_cast<double>(counts_[v]) - n * oue_q_) / (oue_p_ - oue_q_);
    }
    return out;
  }
  // Shared debias path: identical raw counts give byte-identical
  // estimates to the in-process ldp::Grr oracle.
  return ldp::DebiasGrrCounts(counts_, accepted_, epsilon_);
}

}  // namespace privshape::proto
