// Bit-exactness suite for the SoA candidate-table kernels: at every
// PS_SIMD level (the CI matrix covers AVX2/SSE2 and the
// PRIVSHAPE_SIMD=OFF scalar build), MatchInto/Closest must be
// bit-identical — including tie-breaking — to the always-built scalar
// reference path (core::MatchDistances / core::ClosestCandidate over
// dist::SequenceDistance). The shapes below are chosen adversarially:
// odd lengths, length-1 candidates, empty words, all-equal distances,
// candidate counts that are not a multiple of the lane width, and
// mixed-length lists that exercise the grouping and padding arithmetic.

#include "distance/candidate_table.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "core/em_selection.h"
#include "distance/distance.h"

namespace privshape {
namespace {

using dist::CandidateTable;
using dist::Metric;
using dist::TableScratch;

std::vector<Metric> VectorizedMetrics() {
  return {Metric::kDtw, Metric::kSed};
}

// Reference: the scalar per-candidate path the table must reproduce.
std::vector<double> Reference(const Sequence& word,
                              const std::vector<Sequence>& candidates,
                              Metric metric, bool prefix) {
  auto distance = dist::MakeDistance(metric);
  return core::MatchDistances(word, candidates, prefix, *distance);
}

void ExpectBitIdentical(const Sequence& word,
                        const std::vector<Sequence>& candidates,
                        Metric metric, bool prefix) {
  auto distance = dist::MakeDistance(metric);
  CandidateTable table = CandidateTable::Build(candidates);
  TableScratch scratch;
  std::vector<double> got;
  table.MatchInto(word, *distance, prefix, &scratch, &got);
  std::vector<double> want = Reference(word, candidates, metric, prefix);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    // EXPECT_EQ, not NEAR: the contract is bit-identical doubles.
    EXPECT_EQ(got[i], want[i])
        << dist::MetricName(metric) << " candidate " << i << " prefix "
        << prefix;
  }
  // The argmin (full-word) must match the early-abandoning reference,
  // including first-index tie-breaking.
  EXPECT_EQ(table.Closest(word, *distance, &scratch),
            core::ClosestCandidate(word, candidates, *distance));
}

TEST(CandidateTableTest, MatchesReferenceOnMixedAdversarialLengths) {
  // Lengths 1, 2, 3, 5, 7 mixed; several groups, none lane-aligned.
  std::vector<Sequence> candidates = {
      {3},        {0, 1},          {1, 2, 3}, {2, 2, 2, 2, 2},
      {4, 0, 4},  {0, 1, 2, 3, 4}, {1},       {3, 3},
      {0, 2, 4, 1, 3, 0, 2},
  };
  Sequence word = {1, 2, 0, 4, 3};
  for (Metric metric : VectorizedMetrics()) {
    ExpectBitIdentical(word, candidates, metric, /*prefix=*/false);
    ExpectBitIdentical(word, candidates, metric, /*prefix=*/true);
  }
}

TEST(CandidateTableTest, NonLaneMultipleCandidateCounts) {
  // Sweep group sizes 1..2*lanes+1 around the lane width so the padded
  // tail lanes (and the lane < count guard) are exercised directly.
  for (size_t count = 1; count <= 2 * simd::kDoubleLanes + 1; ++count) {
    std::vector<Sequence> candidates;
    for (size_t c = 0; c < count; ++c) {
      candidates.push_back(
          {static_cast<Symbol>(c % 5), static_cast<Symbol>((c + 2) % 5),
           static_cast<Symbol>((3 * c) % 5)});
    }
    Sequence word = {2, 4, 1};
    for (Metric metric : VectorizedMetrics()) {
      ExpectBitIdentical(word, candidates, metric, /*prefix=*/false);
    }
  }
}

TEST(CandidateTableTest, LengthOneCandidatesAndWords) {
  std::vector<Sequence> candidates = {{0}, {4}, {2}, {2}, {1}};
  ExpectBitIdentical({3}, candidates, Metric::kDtw, false);
  ExpectBitIdentical({3}, candidates, Metric::kSed, false);
  ExpectBitIdentical({3, 1, 4}, candidates, Metric::kDtw, true);
  ExpectBitIdentical({3, 1, 4}, candidates, Metric::kSed, true);
}

TEST(CandidateTableTest, EmptyWordTakesTheEmptyBranches) {
  // DTW's empty-word rule (sum of levels) and SED's degenerate DP
  // (distance = candidate length) both must match the reference.
  std::vector<Sequence> candidates = {{1, 2}, {0}, {3, 3, 3}};
  ExpectBitIdentical(Sequence{}, candidates, Metric::kDtw, false);
  ExpectBitIdentical(Sequence{}, candidates, Metric::kSed, false);
}

TEST(CandidateTableTest, AllEqualDistancesTieBreakToFirstIndex) {
  // Identical candidates: every distance ties, argmin must be index 0;
  // and a later exact duplicate of the winner must not steal the pick.
  std::vector<Sequence> same(7, Sequence{1, 3, 1});
  auto dtw = dist::MakeDistance(Metric::kDtw);
  CandidateTable table = CandidateTable::Build(same);
  TableScratch scratch;
  EXPECT_EQ(table.Closest(Sequence{2, 2}, *dtw, &scratch), 0u);

  std::vector<Sequence> dup = {{0, 4}, {1, 3, 1}, {2, 2}, {1, 3, 1}};
  CandidateTable dup_table = CandidateTable::Build(dup);
  EXPECT_EQ(dup_table.Closest(Sequence{2, 2}, *dtw, &scratch),
            core::ClosestCandidate(Sequence{2, 2}, dup, *dtw));
}

TEST(CandidateTableTest, CutoffBoundaryShapesAgreeWithEarlyAbandon) {
  // Candidates sorted so the running best tightens monotonically — the
  // regime where the scalar path abandons most rows — plus a final
  // exact tie with the incumbent best (the abandon boundary d == best).
  std::vector<Sequence> candidates = {
      {4, 4, 4, 4}, {0, 4, 0, 4}, {1, 2, 3, 4}, {1, 2, 0, 4}, {1, 2, 0, 3},
      {1, 2, 0, 3},
  };
  Sequence word = {1, 2, 0, 3};
  for (Metric metric : VectorizedMetrics()) {
    ExpectBitIdentical(word, candidates, metric, false);
  }
}

TEST(CandidateTableTest, RandomizedSweepStaysBitIdentical) {
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 60; ++trial) {
    size_t n_cand = 1 + rng.Index(12);
    std::vector<Sequence> candidates(n_cand);
    for (auto& c : candidates) {
      size_t len = 1 + rng.Index(9);
      for (size_t j = 0; j < len; ++j) {
        c.push_back(static_cast<Symbol>(rng.Index(5)));
      }
    }
    Sequence word;
    size_t word_len = rng.Index(10);
    for (size_t j = 0; j < word_len; ++j) {
      word.push_back(static_cast<Symbol>(rng.Index(5)));
    }
    for (Metric metric : VectorizedMetrics()) {
      ExpectBitIdentical(word, candidates, metric, trial % 2 == 0);
    }
  }
}

TEST(CandidateTableTest, FallbackMetricsMatchReferenceToo) {
  // Euclidean/Hausdorff have no vectorized kernel; the table must route
  // them through the identical per-candidate loop.
  std::vector<Sequence> candidates = {{0, 1, 2}, {2, 1}, {4, 4, 4, 4}};
  Sequence word = {1, 1, 3};
  for (Metric metric : {Metric::kEuclidean, Metric::kHausdorff}) {
    auto distance = dist::MakeDistance(metric);
    CandidateTable table = CandidateTable::Build(candidates);
    std::vector<double> got;
    table.MatchInto(word, *distance, /*prefix_compare=*/false,
                    /*scratch=*/nullptr, &got);
    std::vector<double> want = Reference(word, candidates, metric, false);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
    EXPECT_EQ(table.Closest(word, *distance, nullptr),
              core::ClosestCandidate(word, candidates, *distance));
  }
}

TEST(CandidateTableTest, EmptyTableAndNullScratch) {
  CandidateTable empty;
  auto dtw = dist::MakeDistance(Metric::kDtw);
  std::vector<double> out = {1.0, 2.0};
  empty.MatchInto(Sequence{1, 2}, *dtw, false, nullptr, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(empty.Closest(Sequence{1, 2}, *dtw, nullptr), 0u);
}

TEST(CandidateTableTest, ScratchReuseAcrossShapesIsClean) {
  // A scratch grown by a long group must not leak state into a later,
  // shorter group or a different metric.
  TableScratch scratch;
  auto dtw = dist::MakeDistance(Metric::kDtw);
  auto sed = dist::MakeDistance(Metric::kSed);
  std::vector<Sequence> longer = {{0, 1, 2, 3, 4, 0, 1, 2, 3, 4}};
  std::vector<Sequence> shorter = {{2, 2}, {0, 4}};
  CandidateTable long_table = CandidateTable::Build(longer);
  CandidateTable short_table = CandidateTable::Build(shorter);
  Sequence word = {1, 3, 0};
  std::vector<double> got;
  long_table.MatchInto(word, *dtw, false, &scratch, &got);
  short_table.MatchInto(word, *sed, false, &scratch, &got);
  std::vector<double> want = Reference(word, shorter, Metric::kSed, false);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

}  // namespace
}  // namespace privshape
