#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace privshape {
namespace {

using eval::ComputeClassificationReport;
using eval::ConfusionMatrix;

TEST(ConfusionMatrixTest, CountsCells) {
  std::vector<int> truth = {0, 0, 1, 1, 2};
  std::vector<int> pred = {0, 1, 1, 1, 0};
  auto m = ConfusionMatrix(truth, pred, 3);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)[0][0], 1u);
  EXPECT_EQ((*m)[0][1], 1u);
  EXPECT_EQ((*m)[1][1], 2u);
  EXPECT_EQ((*m)[2][0], 1u);
  EXPECT_EQ((*m)[2][2], 0u);
}

TEST(ConfusionMatrixTest, RejectsBadInput) {
  EXPECT_FALSE(ConfusionMatrix({0}, {0, 1}, 2).ok());
  EXPECT_FALSE(ConfusionMatrix({}, {}, 2).ok());
  EXPECT_FALSE(ConfusionMatrix({0}, {5}, 2).ok());
  EXPECT_FALSE(ConfusionMatrix({0}, {0}, 0).ok());
}

TEST(ReportTest, PerfectPrediction) {
  std::vector<int> truth = {0, 1, 2, 0, 1, 2};
  auto report = ComputeClassificationReport(truth, truth, 3);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->accuracy, 1.0);
  EXPECT_DOUBLE_EQ(report->macro_f1, 1.0);
  for (double f1 : report->f1) EXPECT_DOUBLE_EQ(f1, 1.0);
}

TEST(ReportTest, KnownSklearnExample) {
  // sklearn: y_true=[0,1,2,0,1,2], y_pred=[0,2,1,0,0,1]
  //   per-class precision = [0.6667, 0, 0], recall = [1, 0, 0].
  std::vector<int> truth = {0, 1, 2, 0, 1, 2};
  std::vector<int> pred = {0, 2, 1, 0, 0, 1};
  auto report = ComputeClassificationReport(truth, pred, 3);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->precision[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(report->recall[0], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(report->precision[1], 0.0);
  EXPECT_DOUBLE_EQ(report->recall[2], 0.0);
  EXPECT_NEAR(report->accuracy, 2.0 / 6.0, 1e-9);
  EXPECT_NEAR(report->macro_precision, (2.0 / 3.0) / 3.0, 1e-9);
}

TEST(ReportTest, MissingClassYieldsZeroNotNan) {
  // Class 2 never occurs in truth or predictions.
  std::vector<int> truth = {0, 1, 0, 1};
  std::vector<int> pred = {0, 1, 1, 1};
  auto report = ComputeClassificationReport(truth, pred, 3);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->precision[2], 0.0);
  EXPECT_DOUBLE_EQ(report->recall[2], 0.0);
  EXPECT_DOUBLE_EQ(report->f1[2], 0.0);
}

TEST(ReportTest, AccuracyMatchesDiagonal) {
  std::vector<int> truth = {0, 0, 1, 1, 1, 2};
  std::vector<int> pred = {0, 1, 1, 1, 2, 2};
  auto report = ComputeClassificationReport(truth, pred, 3);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->accuracy, 4.0 / 6.0, 1e-9);
}

}  // namespace
}  // namespace privshape
