#ifndef PRIVSHAPE_COMMON_SPAN_H_
#define PRIVSHAPE_COMMON_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace privshape {

/// Minimal non-owning view over a contiguous array (C++17 stand-in for
/// std::span). Used for batched report ingestion so callers can hand the
/// aggregator a window into a larger buffer without copying.
template <typename T>
class Span {
 public:
  Span() : data_(nullptr), size_(0) {}
  Span(const T* data, size_t size) : data_(data), size_(size) {}
  /// Implicit view over a vector (also binds Span<const T> to vector<T>).
  Span(const std::vector<std::remove_const_t<T>>& v)  // NOLINT
      : data_(v.data()), size_(v.size()) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  /// View of at most `count` elements starting at `offset` (clamped).
  Span<T> Sub(size_t offset, size_t count) const {
    if (offset >= size_) return Span<T>();
    size_t n = size_ - offset;
    return Span<T>(data_ + offset, count < n ? count : n);
  }

 private:
  const T* data_;
  size_t size_;
};

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_SPAN_H_
