/// \file
/// `privshape_loadgen` core: drives a CollectorDaemon over real TCP from
/// the client side, simulating the whole device fleet multiplexed over N
/// connections. Each connection thread handshakes, then answers every
/// round it is assigned with the same per-user-seeded ClientSession path
/// the in-process collector uses — so the daemon cannot tell a loadgen
/// from a million real devices, and the extracted shapes stay
/// byte-identical to core::PrivShape for the same fleet seed.

#ifndef PRIVSHAPE_COLLECTOR_LOADGEN_H_
#define PRIVSHAPE_COLLECTOR_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "collector/client_fleet.h"
#include "common/status.h"
#include "core/config.h"

namespace privshape::collector {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Parallel TCP connections the fleet is multiplexed over.
  size_t connections = 1;
  /// Reports per BatchUpload frame.
  size_t batch_size = 256;
  /// SO_RCVTIMEO per read: bounds how long a connection waits for the
  /// next round (covers the daemon's aggregation time between rounds).
  double timeout_seconds = 120.0;
};

/// Client-observed round handling latency for one protocol stage:
/// RoundBegin decoded -> RoundDone written, one sample per connection
/// that served the stage. Percentiles come from the telemetry
/// log-linear histogram (<= 6.25% relative bucketing error).
struct StageLatency {
  std::string stage;     ///< "Pa", "Pb", "Pc.level0", ..., "Pd"/"Pe"
  uint64_t samples = 0;  ///< connections that served this stage
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  uint64_t max_ns = 0;
  double mean_ns = 0.0;
};

/// What a loadgen run produced, aggregated over every connection.
struct LoadgenOutcome {
  /// The daemon's extracted shapes, decoded from its Complete broadcast
  /// (identical on every connection — verified).
  core::MechanismResult result;
  size_t rounds = 0;        ///< rounds served by the busiest connection
  size_t reports_sent = 0;  ///< encoded reports uploaded, all connections
  size_t client_errors = 0; ///< sessions that failed to answer
  size_t bytes_up = 0;      ///< frame bytes written (all connections)
  size_t bytes_down = 0;    ///< frame bytes read (all connections)
  /// Per-stage latency distributions, in protocol order.
  std::vector<StageLatency> stage_latency;
};

/// Runs the fleet against a daemon at options.host:options.port and
/// blocks until the protocol completes (every connection received the
/// Complete broadcast) or any connection fails. The fleet's num_users
/// must match the daemon's --users, and its seed/labeling must match the
/// daemon's mechanism config — both are cross-checked in the handshake
/// so a mismatched pair fails loudly before any round runs.
Result<LoadgenOutcome> RunLoadgen(const ClientFleet& fleet,
                                  const LoadgenOptions& options);

}  // namespace privshape::collector

#endif  // PRIVSHAPE_COLLECTOR_LOADGEN_H_
