#include "core/rounds.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "core/em_selection.h"
#include "eval/agglomerative.h"
#include "ldp/estimator_utils.h"
#include "ldp/exponential.h"
#include "ldp/grr.h"
#include "ldp/unary_encoding.h"

namespace privshape::core {

Result<PrivShapeServer> PrivShapeServer::Create(MechanismConfig config) {
  PRIVSHAPE_RETURN_IF_ERROR(config.Validate());
  auto trie = trie::CandidateTrie::Create(config.t);
  if (!trie.ok()) return trie.status();
  if (config.allow_repeats) trie->set_allow_repeats(true);
  return PrivShapeServer(config, std::move(*trie));
}

size_t PrivShapeServer::ck() const {
  return static_cast<size_t>(config_.c) * static_cast<size_t>(config_.k);
}

Status PrivShapeServer::FinishLength(
    const std::vector<double>& debiased_counts) {
  size_t domain =
      static_cast<size_t>(config_.ell_high - config_.ell_low + 1);
  if (debiased_counts.size() != domain) {
    return Status::InvalidArgument("length counts do not match the domain");
  }
  size_t best = 0;
  for (size_t v = 1; v < debiased_counts.size(); ++v) {
    if (debiased_counts[v] > debiased_counts[best]) best = v;
  }
  ell_s_ = config_.ell_low + static_cast<int>(best);
  result_.frequent_length = ell_s_;
  return result_.accountant.Charge("Pa", config_.epsilon);
}

size_t PrivShapeServer::NumSubShapeLevels() const {
  return ell_s_ >= 2 ? static_cast<size_t>(ell_s_ - 1) : 0;
}

Status PrivShapeServer::FinishSubShapes(
    const std::vector<std::vector<double>>& level_counts) {
  if (ell_s_ < 1) {
    return Status::FailedPrecondition("FinishLength must run first");
  }
  if (level_counts.size() != NumSubShapeLevels()) {
    return Status::InvalidArgument("sub-shape counts level mismatch");
  }
  subshapes_ = RankSubShapes(level_counts, config_.t, ck(),
                             config_.allow_repeats);
  return result_.accountant.Charge("Pb", config_.epsilon);
}

Result<std::vector<Sequence>> PrivShapeServer::BeginTrieLevel(int level) {
  if (level != current_level_ + 1 || level >= ell_s_) {
    return Status::FailedPrecondition("trie levels must run in order");
  }
  if (level == 0) {
    trie_.ExpandRoot();
  } else {
    trie_.PruneToTopK(ck());
    // Gate the fan-out with the frequent transitions at this level.
    const auto& transitions =
        subshapes_.top_transitions[static_cast<size_t>(level) - 1];
    std::set<trie::Transition> allowed(transitions.begin(),
                                       transitions.end());
    // Count the continuations the gate would allow; if none, fall back
    // to the full fan-out so the trie never dead-ends.
    size_t possible = 0;
    for (const Sequence& path : trie_.FrontierCandidates()) {
      Symbol last = path.back();
      for (const auto& tr : allowed) {
        if (tr.first == last) ++possible;
      }
    }
    if (possible == 0) {
      PS_LOG(kWarning) << "privshape: no frequent transition continues "
                          "level "
                       << level << "; falling back to full expansion";
      trie_.ExpandAll();
    } else {
      trie_.ExpandWithTransitions(allowed);
    }
  }
  current_level_ = level;
  return trie_.FrontierCandidates();
}

Status PrivShapeServer::FinishTrieLevel(
    const std::vector<double>& selection_counts) {
  const std::vector<int>& frontier = trie_.Frontier();
  if (selection_counts.size() != frontier.size()) {
    return Status::InvalidArgument("selection counts frontier mismatch");
  }
  for (size_t i = 0; i < frontier.size(); ++i) {
    PRIVSHAPE_RETURN_IF_ERROR(
        trie_.SetFrequency(frontier[i], selection_counts[i]));
  }
  return result_.accountant.Charge(
      "Pc.level" + std::to_string(current_level_), config_.epsilon);
}

Result<std::vector<Sequence>> PrivShapeServer::BeginRefinement() {
  if (current_level_ + 1 != ell_s_) {
    return Status::FailedPrecondition("all trie levels must finish first");
  }
  trie_.PruneToTopK(ck());
  candidates_ = trie_.FrontierCandidates();
  if (candidates_.empty()) {
    return Status::Internal("trie expansion produced no candidates");
  }
  return candidates_;
}

Result<MechanismResult> PrivShapeServer::FinishRefinement(
    const std::vector<double>& debiased_counts) {
  if (debiased_counts.size() < candidates_.size()) {
    return Status::InvalidArgument("refinement counts candidate mismatch");
  }
  std::vector<double> refined(candidates_.size(), 0.0);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    refined[i] = debiased_counts[i];
  }
  PRIVSHAPE_RETURN_IF_ERROR(
      result_.accountant.Charge("Pd", config_.epsilon));
  return Finalize(refined, std::vector<int>(candidates_.size(), -1));
}

Result<MechanismResult> PrivShapeServer::FinishClassRefinement(
    const std::vector<double>& cell_counts) {
  if (config_.num_classes <= 0) {
    return Status::FailedPrecondition(
        "class refinement requires num_classes > 0");
  }
  size_t cells =
      candidates_.size() * static_cast<size_t>(config_.num_classes);
  if (cell_counts.size() != cells) {
    return Status::InvalidArgument("class refinement cell count mismatch");
  }
  std::vector<double> refined(candidates_.size(), 0.0);
  std::vector<int> refined_labels(candidates_.size(), -1);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    double total = 0.0;
    double best = -std::numeric_limits<double>::infinity();
    int best_label = 0;
    for (int cls = 0; cls < config_.num_classes; ++cls) {
      double v = cell_counts[i * static_cast<size_t>(config_.num_classes) +
                             static_cast<size_t>(cls)];
      total += v;
      if (v > best) {
        best = v;
        best_label = cls;
      }
    }
    refined[i] = total;
    refined_labels[i] = best_label;
  }
  PRIVSHAPE_RETURN_IF_ERROR(
      result_.accountant.Charge("Pd", config_.epsilon));
  BuildRefinedPool(refined, refined_labels);

  // Classification (§V-E): the criteria are "the most frequent shapes
  // estimated within each class" — pick the top-frequency candidate per
  // class so every represented class contributes one shape.
  for (int cls = 0; cls < config_.num_classes; ++cls) {
    double best = -std::numeric_limits<double>::infinity();
    int best_idx = -1;
    for (size_t i = 0; i < candidates_.size(); ++i) {
      if (refined_labels[i] != cls) continue;
      if (refined[i] > best) {
        best = refined[i];
        best_idx = static_cast<int>(i);
      }
    }
    if (best_idx >= 0) {
      result_.shapes.push_back(
          result_.refined_pool[static_cast<size_t>(best_idx)]);
    }
  }
  return EmitSorted();
}

Result<MechanismResult> PrivShapeServer::FinishWithoutRefinement() {
  if (config_.num_classes > 0) {
    return Status::Unimplemented(
        "classification requires the refinement stage (it carries the "
        "label information)");
  }
  // Ablation: trust the last trie level's EM counts; P_d stays unused
  // (so the user-level guarantee is unchanged).
  const std::vector<int>& frontier = trie_.Frontier();
  std::vector<double> refined(candidates_.size(), 0.0);
  for (size_t i = 0; i < frontier.size(); ++i) {
    refined[i] = trie_.Frequency(frontier[i]);
  }
  return Finalize(refined, std::vector<int>(candidates_.size(), -1));
}

void PrivShapeServer::BuildRefinedPool(
    const std::vector<double>& refined,
    const std::vector<int>& refined_labels) {
  result_.refined_pool.reserve(candidates_.size());
  for (size_t i = 0; i < candidates_.size(); ++i) {
    ShapeCandidate cand;
    cand.shape = candidates_[i];
    cand.frequency = refined[i];
    cand.label = refined_labels[i];
    result_.refined_pool.push_back(std::move(cand));
  }
}

Result<MechanismResult> PrivShapeServer::EmitSorted() {
  std::stable_sort(result_.shapes.begin(), result_.shapes.end(),
                   [](const ShapeCandidate& a, const ShapeCandidate& b) {
                     return a.frequency > b.frequency;
                   });
  PRIVSHAPE_RETURN_IF_ERROR(
      result_.accountant.CheckWithinBudget(config_.epsilon));
  return std::move(result_);
}

Result<MechanismResult> PrivShapeServer::Finalize(
    const std::vector<double>& refined,
    const std::vector<int>& refined_labels) {
  BuildRefinedPool(refined, refined_labels);

  if (config_.disable_postprocessing) {
    // Ablation: raw top-k by refined frequency, duplicates and all.
    std::vector<size_t> order(candidates_.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return refined[a] > refined[b];
    });
    size_t emit = std::min(static_cast<size_t>(config_.k), order.size());
    for (size_t i = 0; i < emit; ++i) {
      result_.shapes.push_back(result_.refined_pool[order[i]]);
    }
    return EmitSorted();  // pushes are already frequency-ordered
  }

  // Clustering: group similar candidates, keep the most frequent member
  // per group (§IV-C) so near-duplicates do not crowd out distinct shapes.
  auto distance = dist::MakeDistance(config_.metric);
  size_t n_cand = candidates_.size();
  size_t groups = std::min(static_cast<size_t>(config_.k), n_cand);
  std::vector<std::vector<double>> dmatrix(n_cand,
                                           std::vector<double>(n_cand, 0.0));
  dist::DtwScratch scratch;
  for (size_t i = 0; i < n_cand; ++i) {
    for (size_t j = i + 1; j < n_cand; ++j) {
      double d = distance->Distance(dist::SymbolView(candidates_[i]),
                                    dist::SymbolView(candidates_[j]),
                                    &scratch);
      dmatrix[i][j] = dmatrix[j][i] = d;
    }
  }
  // Average linkage balances dedup strength against the risk of chaining
  // two genuinely distinct shapes into one group (which would silently
  // drop a class); see bench_ablation_design for the measured trade-off.
  auto clusters = eval::AgglomerativeCluster(dmatrix,
                                             static_cast<int>(groups),
                                             eval::Linkage::kAverage);
  if (!clusters.ok()) return clusters.status();

  for (size_t g = 0; g < groups; ++g) {
    double best = -std::numeric_limits<double>::infinity();
    int best_idx = -1;
    for (size_t i = 0; i < n_cand; ++i) {
      if (static_cast<size_t>((*clusters)[i]) != g) continue;
      if (refined[i] > best) {
        best = refined[i];
        best_idx = static_cast<int>(i);
      }
    }
    if (best_idx >= 0) {
      result_.shapes.push_back(
          result_.refined_pool[static_cast<size_t>(best_idx)]);
    }
  }
  return EmitSorted();
}

PS_RNG_WORDS(2)
size_t AnswerLengthValue(const Sequence& word, int ell_low, int ell_high,
                         const ldp::Grr& grr, Rng* rng) {
  int len = static_cast<int>(word.size());
  len = std::clamp(len, ell_low, ell_high);
  return grr.PerturbValue(static_cast<size_t>(len - ell_low), rng);
}

PS_REPORT_PATH
std::pair<uint64_t, size_t> AnswerSubShapeValue(const Sequence& word,
                                                int ell_s, int t,
                                                bool allow_repeats,
                                                const ldp::Grr& grr,
                                                Rng* rng) {
  size_t num_levels = static_cast<size_t>(ell_s - 1);
  size_t sentinel = SubShapeDomainSize(t, allow_repeats) - 1;
  // Level j in {1, ..., ell_s - 1}; uniform, data-independent.
  size_t j = 1 + rng->Index(num_levels);
  size_t value;
  if (j + 1 <= word.size()) {
    Symbol a = word[j - 1];
    Symbol b = word[j];
    if (!allow_repeats && a == b) {
      // Cannot occur for compressed input; map defensively to sentinel.
      value = sentinel;
    } else {
      value = PairToIndex(a, b, t, allow_repeats);
    }
  } else {
    value = sentinel;  // the sampled pair lies in the padded region
  }
  return {static_cast<uint64_t>(j), grr.PerturbValue(value, rng)};
}

PS_REPORT_PATH
Result<std::vector<double>> LocalLengthRound(
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, int ell_low, int ell_high,
    double epsilon, uint64_t seed) {
  if (population.empty()) {
    return Status::InvalidArgument(
        "length estimation requires a non-empty population");
  }
  if (ell_low < 1 || ell_high < ell_low) {
    return Status::InvalidArgument("need 1 <= ell_low <= ell_high");
  }
  size_t domain = static_cast<size_t>(ell_high - ell_low + 1);
  std::vector<size_t> counts(domain, 0);
  if (domain == 1) {
    // Clients report the single bucket deterministically (no perturbation
    // possible over a one-value domain) — mirror ClientSession.
    for (size_t user : population) {
      if (user >= sequences.size()) {
        return Status::OutOfRange("population index outside dataset");
      }
      counts[0]++;
    }
    return ldp::DebiasGrrCounts(counts, population.size(), epsilon);
  }
  auto grr = ldp::Grr::Create(domain, epsilon);
  if (!grr.ok()) return grr.status();
  for (size_t user : population) {
    if (user >= sequences.size()) {
      return Status::OutOfRange("population index outside dataset");
    }
    Rng user_rng(DeriveSeed(seed, user));
    counts[AnswerLengthValue(sequences[user], ell_low, ell_high, *grr,
                             &user_rng)]++;
  }
  return ldp::DebiasGrrCounts(counts, population.size(), epsilon);
}

PS_REPORT_PATH
Result<std::vector<std::vector<double>>> LocalSubShapeRound(
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, int ell_s, int t, double epsilon,
    bool allow_repeats, uint64_t seed) {
  if (ell_s < 1) return Status::InvalidArgument("ell_s must be >= 1");
  std::vector<std::vector<double>> level_counts;
  if (ell_s == 1) return level_counts;  // no adjacent pairs exist

  size_t num_levels = static_cast<size_t>(ell_s - 1);
  size_t domain = SubShapeDomainSize(t, allow_repeats);
  auto grr = ldp::Grr::Create(domain, epsilon);
  if (!grr.ok()) return grr.status();

  std::vector<std::vector<size_t>> counts(num_levels,
                                          std::vector<size_t>(domain, 0));
  std::vector<size_t> reports(num_levels, 0);
  for (size_t user : population) {
    if (user >= sequences.size()) {
      return Status::OutOfRange("population index outside dataset");
    }
    Rng user_rng(DeriveSeed(seed, user));
    auto [level, value] = AnswerSubShapeValue(
        sequences[user], ell_s, t, allow_repeats, *grr, &user_rng);
    counts[level - 1][value]++;
    reports[level - 1]++;
  }

  level_counts.resize(num_levels);
  for (size_t lvl = 0; lvl < num_levels; ++lvl) {
    level_counts[lvl] =
        ldp::DebiasGrrCounts(counts[lvl], reports[lvl], epsilon);
  }
  return level_counts;
}

PS_REPORT_PATH
Result<std::vector<double>> LocalSelectionRound(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, dist::Metric metric,
    double epsilon, uint64_t seed) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidates to select among");
  }
  auto em = ldp::ExponentialMechanism::Create(epsilon);
  if (!em.ok()) return em.status();
  auto distance = dist::MakeDistance(metric);

  // One SoA table per round: the whole population matches against the
  // same broadcast list, through the same vectorized kernels (and hence
  // the same bits) as a wire-level ClientSession.
  dist::CandidateTable table = dist::CandidateTable::Build(candidates);
  std::vector<double> counts(candidates.size(), 0.0);
  SelectionScratch scratch;
  for (size_t user : population) {
    if (user >= sequences.size()) {
      return Status::OutOfRange("population index outside dataset");
    }
    table.MatchInto(sequences[user], *distance, /*prefix_compare=*/true,
                    &scratch.table, &scratch.distances);
    ldp::ScoresFromDistancesInto(scratch.distances, &scratch.scores);
    Rng user_rng(DeriveSeed(seed, user));
    auto pick = em->Select(scratch.scores, &user_rng, &scratch.probs);
    if (!pick.ok()) return pick.status();
    counts[*pick] += 1.0;
  }
  return counts;
}

PS_REPORT_PATH
Result<std::vector<double>> LocalRefinementRound(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, dist::Metric metric,
    double epsilon, uint64_t seed) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidates to refine");
  }
  size_t domain = std::max<size_t>(candidates.size(), 2);
  auto grr = ldp::Grr::Create(domain, epsilon);
  if (!grr.ok()) return grr.status();
  auto distance = dist::MakeDistance(metric);

  dist::CandidateTable table = dist::CandidateTable::Build(candidates);
  std::vector<size_t> counts(domain, 0);
  dist::TableScratch scratch;
  for (size_t user : population) {
    if (user >= sequences.size()) {
      return Status::OutOfRange("population index outside dataset");
    }
    size_t pick = table.Closest(sequences[user], *distance, &scratch);
    Rng user_rng(DeriveSeed(seed, user));
    counts[grr->PerturbValue(pick, &user_rng)]++;
  }
  return ldp::DebiasGrrCounts(counts, population.size(), epsilon);
}

PS_REPORT_PATH
Result<std::vector<double>> LocalClassRefinementRound(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences, const std::vector<int>& labels,
    const std::vector<size_t>& population, dist::Metric metric,
    int num_classes, double epsilon, uint64_t seed) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidates to refine");
  }
  if (num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  // Classification: OUE over candidate x class cells (§V-E).
  size_t cells = candidates.size() * static_cast<size_t>(num_classes);
  auto oue = ldp::UnaryEncoding::Create(
      cells, epsilon, ldp::UnaryEncoding::Variant::kOptimized);
  if (!oue.ok()) return oue.status();
  auto distance = dist::MakeDistance(metric);
  dist::CandidateTable table = dist::CandidateTable::Build(candidates);
  dist::TableScratch scratch;
  for (size_t user : population) {
    if (user >= sequences.size() || user >= labels.size()) {
      return Status::OutOfRange("population index outside dataset");
    }
    size_t pick = table.Closest(sequences[user], *distance, &scratch);
    size_t cell = pick * static_cast<size_t>(num_classes) +
                  static_cast<size_t>(labels[user]);
    Rng user_rng(DeriveSeed(seed, user));
    PRIVSHAPE_RETURN_IF_ERROR(oue->SubmitUser(cell, &user_rng));
  }
  return oue->EstimateCounts();
}

}  // namespace privshape::core
