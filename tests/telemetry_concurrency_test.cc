/// Telemetry under contention (runs in the ThreadSanitizer CI job via
/// the "concurrency" ctest label): writer threads hammer one registry's
/// counters, gauges, and histograms while a scraper thread loops text
/// and JSON snapshots the whole time. The record path's contract is
/// relaxed atomics only, so TSan must stay silent and the final totals
/// must be exact once the writers join.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"

namespace privshape::telemetry {
namespace {

TEST(TelemetryConcurrency, ScrapeRacesBenignlyWithRecording) {
  Registry registry;
  constexpr int kWriters = 8;
  constexpr uint64_t kOpsPerWriter = 20000;

  // Writers resolve their instruments up front (the documented usage:
  // lookup once under the mutex, record through cached pointers).
  Counter* accepted = registry.GetCounter("accepted_total");
  Gauge* depth = registry.GetGauge("queue_depth");
  Histogram* latency = registry.GetHistogram("ingest_ns");

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    size_t scrapes = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::string text = registry.TextExposition();
      EXPECT_FALSE(text.empty());
      std::string json = registry.JsonSnapshot().Dump(0);
      EXPECT_FALSE(json.empty());
      // Mid-run registration must also be safe under the scrape loop.
      registry.GetCounter("scrapes_total")->Add();
      ++scrapes;
    }
    EXPECT_GT(scrapes, 0u);
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kOpsPerWriter; ++i) {
        accepted->Add();
        depth->Add(1);
        depth->Sub(1);
        // Spread samples across decades so bucket updates contend on
        // different cache lines, not just one hot bucket.
        latency->Record((i % 7 + 1) * (uint64_t{1} << (w % 20)));
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  // After the join every write is visible: totals are exact, not
  // approximate.
  EXPECT_EQ(accepted->Value(), kWriters * kOpsPerWriter);
  EXPECT_EQ(depth->Value(), 0);
  HistogramSnapshot snap = latency->Snapshot();
  EXPECT_EQ(snap.count, kWriters * kOpsPerWriter);
  EXPECT_GT(snap.sum, 0u);
  EXPECT_GT(snap.max, 0u);
}

}  // namespace
}  // namespace privshape::telemetry
