/// Fuzz-style hardening of the socket wire layer: frames split at every
/// byte boundary must reassemble exactly, truncations must never yield a
/// frame, hostile length prefixes must be rejected before any allocation,
/// and no byte stream — however garbled — may crash a FrameReader or a
/// message decoder (the ASan/UBSan CI jobs run this suite).

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "net/frame.h"
#include "protocol/codec.h"
#include "protocol/messages.h"

namespace privshape {
namespace {

using net::AppendFrame;
using net::Frame;
using net::FrameReader;
using net::MsgType;

/// A representative multi-frame stream: handshake, a round, an upload,
/// the barrier — every message family the daemon speaks.
std::string SampleStream(std::vector<Frame>* expected) {
  std::string stream;
  auto add = [&](MsgType type, std::string body) {
    AppendFrame(type, body, &stream);
    expected->push_back(Frame{type, std::move(body)});
  };
  net::HelloMsg hello;
  hello.fleet_users = 1000;
  add(MsgType::kHello, net::EncodeHello(hello));
  net::WelcomeMsg welcome;
  welcome.conn_id = 3;
  welcome.num_users = 1000;
  welcome.seed = 2023;
  welcome.epsilon = 4.0;
  add(MsgType::kWelcome, net::EncodeWelcome(welcome));
  net::RoundBeginMsg round;
  round.round_id = 1;
  round.kind = proto::ReportKind::kLength;
  round.request = std::string("\x01\x02\x03", 3);
  round.users = {0, 5, 17, 999};
  add(MsgType::kRoundBegin, net::EncodeRoundBegin(round));
  proto::ReportBatch batch;
  batch.AppendEncoded("report-a");
  batch.AppendEncoded("report-b");
  add(MsgType::kBatchUpload, net::EncodeBatchUpload(1, batch));
  net::RoundDoneMsg done;
  done.round_id = 1;
  done.answered = 2;
  add(MsgType::kRoundDone, net::EncodeRoundDone(done));
  return stream;
}

std::vector<Frame> PumpAll(FrameReader* reader) {
  std::vector<Frame> frames;
  Frame frame;
  while (true) {
    auto next = reader->Next(&frame);
    if (!next.ok() || !*next) break;
    frames.push_back(frame);
  }
  return frames;
}

TEST(NetFrameFuzzTest, StreamSplitAtEveryByteBoundaryReassembles) {
  std::vector<Frame> expected;
  std::string stream = SampleStream(&expected);
  // Every chunk size from byte-at-a-time up: a TCP stream may fragment
  // anywhere, so reassembly must be split-invariant.
  for (size_t chunk = 1; chunk <= 7; ++chunk) {
    FrameReader reader;
    std::vector<Frame> got;
    for (size_t off = 0; off < stream.size(); off += chunk) {
      reader.Append(std::string_view(stream).substr(off, chunk));
      for (auto& frame : PumpAll(&reader)) got.push_back(std::move(frame));
    }
    ASSERT_EQ(got.size(), expected.size()) << "chunk=" << chunk;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].type, expected[i].type) << "chunk=" << chunk;
      EXPECT_EQ(got[i].payload, expected[i].payload) << "chunk=" << chunk;
    }
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(NetFrameFuzzTest, EveryTruncationYieldsOnlyWholeFrames) {
  std::vector<Frame> expected;
  std::string stream = SampleStream(&expected);
  for (size_t len = 0; len < stream.size(); ++len) {
    FrameReader reader;
    reader.Append(std::string_view(stream).substr(0, len));
    Frame frame;
    size_t produced = 0;
    while (true) {
      auto next = reader.Next(&frame);
      // A prefix of a valid stream is never a protocol error — just
      // incomplete.
      ASSERT_TRUE(next.ok()) << "prefix " << len << ": " << next.status();
      if (!*next) break;
      ASSERT_LT(produced, expected.size());
      EXPECT_EQ(frame.payload, expected[produced].payload);
      ++produced;
    }
    EXPECT_LT(produced, expected.size()) << "strict prefix produced all";
  }
}

TEST(NetFrameFuzzTest, OversizedLengthPrefixIsRejectedBeforePayload) {
  // A hostile 4 GiB length prefix: the error must fire the moment the
  // four length bytes arrive — no buffering until the payload "arrives",
  // no multi-GB allocation.
  FrameReader reader;
  reader.Append(std::string_view("\xff\xff\xff\xff", 4));
  Frame frame;
  auto next = reader.Next(&frame);
  ASSERT_FALSE(next.ok());
  EXPECT_LE(reader.buffered(), 4u);
  // The error is sticky: the stream is unrecoverable after a bad prefix.
  reader.Append("more bytes");
  auto again = reader.Next(&frame);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), next.status().code());
}

TEST(NetFrameFuzzTest, ZeroLengthFrameIsRejected) {
  FrameReader reader;
  reader.Append(std::string_view("\x00\x00\x00\x00", 4));
  Frame frame;
  EXPECT_FALSE(reader.Next(&frame).ok());
}

TEST(NetFrameFuzzTest, CustomPayloadCapIsEnforcedAtTheBoundary) {
  // AppendFrame's payload = type varint (1 byte for kHello) + body.
  for (size_t body_len : {size_t{63}, size_t{64}}) {
    FrameReader reader(/*max_payload=*/64);
    std::string stream;
    AppendFrame(MsgType::kHello, std::string(body_len, 'x'), &stream);
    reader.Append(stream);
    Frame frame;
    auto next = reader.Next(&frame);
    if (body_len + 1 <= 64) {
      ASSERT_TRUE(next.ok()) << next.status();
      EXPECT_TRUE(*next);
      EXPECT_EQ(frame.payload.size(), body_len);
    } else {
      EXPECT_FALSE(next.ok());
    }
  }
}

TEST(NetFrameFuzzTest, GarbageStreamsNeverCrashReaderOrDecoders) {
  // Deterministic pseudo-random garbage (an HTTP request included — the
  // classic stray client): the reader either produces frames or errors,
  // and every produced payload survives every decoder. Nothing crashes;
  // the sanitizer jobs make that a hard guarantee.
  std::vector<std::string> streams;
  streams.push_back("GET / HTTP/1.1\r\nHost: localhost\r\n\r\n");
  Rng rng(0xfeed);
  for (int i = 0; i < 64; ++i) {
    std::string garbage;
    size_t len = 1 + rng.Index(512);
    garbage.reserve(len);
    for (size_t b = 0; b < len; ++b) {
      garbage.push_back(static_cast<char>(rng.Index(256)));
    }
    streams.push_back(std::move(garbage));
  }
  for (const auto& stream : streams) {
    FrameReader reader;
    reader.Append(stream);
    Frame frame;
    while (true) {
      auto next = reader.Next(&frame);
      if (!next.ok() || !*next) break;
      // Whatever frame fell out, every decoder must fail cleanly or
      // produce a well-formed message — never crash.
      net::DecodeHello(frame.payload);
      net::DecodeWelcome(frame.payload);
      net::DecodeRoundBegin(frame.payload);
      net::DecodeBatchUpload(frame.payload);
      net::DecodeRoundDone(frame.payload);
      net::DecodeComplete(frame.payload);
      net::DecodeError(frame.payload);
    }
  }
}

TEST(NetFrameFuzzTest, EveryMessageRejectsTruncationAndTrailingGarbage) {
  net::HelloMsg hello;
  hello.fleet_users = 300;  // multi-byte varint
  net::WelcomeMsg welcome;
  welcome.conn_id = 1;
  welcome.num_users = 300;
  welcome.num_classes = 3;
  welcome.seed = 99;
  welcome.epsilon = 2.5;
  net::RoundBeginMsg round;
  round.round_id = 2;
  round.kind = proto::ReportKind::kSelection;
  round.request = "req-bytes";
  round.users = {1, 2, 300};
  proto::ReportBatch batch;
  batch.AppendEncoded("abc");
  net::RoundDoneMsg done;
  done.round_id = 2;
  done.answered = 1;
  done.client_errors = 300;
  net::CompleteMsg complete;
  complete.frequent_length = 4;
  complete.shapes.push_back(net::WireShape{{0, 1, 2, 1}, -1, 41.5});
  complete.shapes.push_back(net::WireShape{{2, 1, 0}, 2, 7.25});

  struct Case {
    std::string name;
    std::string wire;
    std::function<bool(std::string_view)> decodes;
  };
  std::vector<Case> cases = {
      {"hello", net::EncodeHello(hello),
       [](std::string_view b) { return net::DecodeHello(b).ok(); }},
      {"welcome", net::EncodeWelcome(welcome),
       [](std::string_view b) { return net::DecodeWelcome(b).ok(); }},
      {"round_begin", net::EncodeRoundBegin(round),
       [](std::string_view b) { return net::DecodeRoundBegin(b).ok(); }},
      {"batch_upload", net::EncodeBatchUpload(2, batch),
       [](std::string_view b) { return net::DecodeBatchUpload(b).ok(); }},
      {"round_done", net::EncodeRoundDone(done),
       [](std::string_view b) { return net::DecodeRoundDone(b).ok(); }},
      {"complete", net::EncodeComplete(complete),
       [](std::string_view b) { return net::DecodeComplete(b).ok(); }},
  };
  for (const auto& c : cases) {
    EXPECT_TRUE(c.decodes(c.wire)) << c.name;
    for (size_t len = 0; len < c.wire.size(); ++len) {
      EXPECT_FALSE(c.decodes(std::string_view(c.wire).substr(0, len)))
          << c.name << " truncated to " << len << " decoded";
    }
    EXPECT_FALSE(c.decodes(c.wire + "x")) << c.name << " trailing garbage";
  }
}

TEST(NetFrameFuzzTest, MessageRoundTripsAreExact) {
  net::HelloMsg hello;
  hello.fleet_users = 123456;
  auto hello2 = net::DecodeHello(net::EncodeHello(hello));
  ASSERT_TRUE(hello2.ok());
  EXPECT_TRUE(*hello2 == hello);

  net::RoundBeginMsg round;
  round.round_id = 7;
  round.kind = proto::ReportKind::kClassRefine;
  round.request = std::string("\x00\xff\x7f", 3);
  round.users = {0, 1, 1u << 20};
  auto round2 = net::DecodeRoundBegin(net::EncodeRoundBegin(round));
  ASSERT_TRUE(round2.ok());
  EXPECT_TRUE(*round2 == round);

  proto::ReportBatch batch;
  batch.AppendEncoded("one");
  batch.AppendEncoded(std::string("\x00\x01", 2));
  batch.AppendEncoded("");
  std::string wire = net::EncodeBatchUpload(9, batch);
  auto upload = net::DecodeBatchUpload(wire);
  ASSERT_TRUE(upload.ok());
  EXPECT_EQ(upload->round_id, 9u);
  ASSERT_EQ(upload->reports.size(), 3u);
  EXPECT_EQ(upload->reports[0], "one");
  EXPECT_EQ(upload->reports[1], std::string_view("\x00\x01", 2));
  EXPECT_EQ(upload->reports[2], "");

  net::CompleteMsg complete;
  complete.frequent_length = 8;
  complete.shapes.push_back(net::WireShape{{0, 1, 2}, -1, 200.25});
  complete.shapes.push_back(net::WireShape{{3, 2, 1}, 0, 0.0});
  auto complete2 = net::DecodeComplete(net::EncodeComplete(complete));
  ASSERT_TRUE(complete2.ok());
  EXPECT_TRUE(*complete2 == complete);

  auto error = net::DecodeError(net::EncodeError("something broke"));
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(*error, "something broke");
}

TEST(NetFrameFuzzTest, RoundBeginRejectsInvalidKindAndHostileUserCount) {
  net::RoundBeginMsg round;
  round.round_id = 1;
  round.kind = proto::ReportKind::kLength;
  round.users = {1, 2, 3};
  std::string wire = net::EncodeRoundBegin(round);
  // Corrupt the kind varint (it is the second field after round_id, both
  // single-byte here) to an unknown value.
  ASSERT_GE(wire.size(), 2u);
  std::string bad_kind = wire;
  bad_kind[1] = 0x7f;
  EXPECT_FALSE(net::DecodeRoundBegin(bad_kind).ok());

  // A declared user count far beyond the message size must be rejected
  // before any reserve-sized allocation (same guard as BatchUpload).
  proto::Encoder enc;
  enc.PutVarint(1);
  enc.PutVarint(static_cast<uint64_t>(proto::ReportKind::kLength));
  enc.PutString("");
  enc.PutVarint(uint64_t{1} << 40);  // users "count"
  EXPECT_FALSE(net::DecodeRoundBegin(enc.Release()).ok());
}

}  // namespace
}  // namespace privshape
