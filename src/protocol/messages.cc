#include "protocol/messages.h"

#include <limits>

#include "protocol/codec.h"

namespace privshape::proto {

namespace {

/// Decodes a varint that must fit a non-negative int (the length/alphabet
/// parameters): anything larger is corrupt, not a 2^63-length range.
Result<int> GetSmallInt(Decoder& dec, const char* what) {
  auto value = dec.GetVarint();
  if (!value.ok()) return value.status();
  if (*value > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return Status::InvalidArgument(std::string(what) + " out of range");
  }
  return static_cast<int>(*value);
}

}  // namespace

std::string EncodeReport(const Report& report) {
  std::string out;
  EncodeReportTo(report, &out);
  return out;
}

void EncodeReportTo(const Report& report, std::string* out) {
  Encoder enc(out);
  enc.PutVarint(kWireVersion);
  enc.PutVarint(static_cast<uint64_t>(report.kind));
  enc.PutVarint(report.level);
  enc.PutVarint(report.value);
  enc.PutBytes(report.bits);
}

void ReportBatch::Append(const Report& report) {
  EncodeReportTo(report, &buffer_);
  ends_.push_back(buffer_.size());
}

Result<Report> DecodeReport(std::string_view buffer) {
  Decoder dec(buffer);
  auto version = dec.GetVarint();
  if (!version.ok()) return version.status();
  if (*version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  auto kind = dec.GetVarint();
  if (!kind.ok()) return kind.status();
  if (*kind < 1 || *kind > 5) {
    return Status::InvalidArgument("unknown report kind");
  }
  Report report;
  report.kind = static_cast<ReportKind>(*kind);
  auto level = dec.GetVarint();
  if (!level.ok()) return level.status();
  report.level = *level;
  auto value = dec.GetVarint();
  if (!value.ok()) return value.status();
  report.value = *value;
  auto bits = dec.GetBytes();
  if (!bits.ok()) return bits.status();
  report.bits = std::move(*bits);
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after report");
  }
  return report;
}

std::string EncodeCandidateRequest(const CandidateRequest& request) {
  Encoder enc;
  enc.PutVarint(kWireVersion);
  enc.PutVarint(request.level);
  enc.PutDouble(request.epsilon);
  enc.PutVarint(request.candidates.size());
  for (const auto& candidate : request.candidates) {
    enc.PutBytes(candidate);
  }
  return enc.Release();
}

Result<CandidateRequest> DecodeCandidateRequest(std::string_view buffer) {
  Decoder dec(buffer);
  auto version = dec.GetVarint();
  if (!version.ok()) return version.status();
  if (*version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  CandidateRequest request;
  auto level = dec.GetVarint();
  if (!level.ok()) return level.status();
  request.level = *level;
  auto epsilon = dec.GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  request.epsilon = *epsilon;
  auto count = dec.GetVarint();
  if (!count.ok()) return count.status();
  for (uint64_t i = 0; i < *count; ++i) {
    auto candidate = dec.GetBytes();
    if (!candidate.ok()) return candidate.status();
    request.candidates.push_back(std::move(*candidate));
  }
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request");
  }
  return request;
}

std::string EncodeLengthRequest(const LengthRequest& request) {
  Encoder enc;
  enc.PutVarint(kWireVersion);
  enc.PutVarint(static_cast<uint64_t>(request.ell_low));
  enc.PutVarint(static_cast<uint64_t>(request.ell_high));
  enc.PutDouble(request.epsilon);
  return enc.Release();
}

Result<LengthRequest> DecodeLengthRequest(std::string_view buffer) {
  Decoder dec(buffer);
  auto version = dec.GetVarint();
  if (!version.ok()) return version.status();
  if (*version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  LengthRequest request;
  auto ell_low = GetSmallInt(dec, "ell_low");
  if (!ell_low.ok()) return ell_low.status();
  request.ell_low = *ell_low;
  auto ell_high = GetSmallInt(dec, "ell_high");
  if (!ell_high.ok()) return ell_high.status();
  request.ell_high = *ell_high;
  auto epsilon = dec.GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  request.epsilon = *epsilon;
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request");
  }
  return request;
}

std::string EncodeSubShapeRequest(const SubShapeRequest& request) {
  Encoder enc;
  enc.PutVarint(kWireVersion);
  enc.PutVarint(static_cast<uint64_t>(request.alphabet));
  enc.PutVarint(static_cast<uint64_t>(request.ell_s));
  enc.PutDouble(request.epsilon);
  enc.PutVarint(request.allow_repeats ? 1 : 0);
  return enc.Release();
}

Result<SubShapeRequest> DecodeSubShapeRequest(std::string_view buffer) {
  Decoder dec(buffer);
  auto version = dec.GetVarint();
  if (!version.ok()) return version.status();
  if (*version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  SubShapeRequest request;
  auto alphabet = GetSmallInt(dec, "alphabet");
  if (!alphabet.ok()) return alphabet.status();
  request.alphabet = *alphabet;
  auto ell_s = GetSmallInt(dec, "ell_s");
  if (!ell_s.ok()) return ell_s.status();
  request.ell_s = *ell_s;
  auto epsilon = dec.GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  request.epsilon = *epsilon;
  auto repeats = dec.GetVarint();
  if (!repeats.ok()) return repeats.status();
  if (*repeats > 1) {
    return Status::InvalidArgument("allow_repeats must be 0 or 1");
  }
  request.allow_repeats = *repeats == 1;
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request");
  }
  return request;
}

std::string EncodeClassRefineRequest(const ClassRefineRequest& request) {
  Encoder enc;
  enc.PutVarint(kWireVersion);
  enc.PutDouble(request.epsilon);
  enc.PutVarint(request.num_classes);
  enc.PutVarint(request.candidates.size());
  for (const auto& candidate : request.candidates) {
    enc.PutBytes(candidate);
  }
  return enc.Release();
}

Result<ClassRefineRequest> DecodeClassRefineRequest(std::string_view buffer) {
  Decoder dec(buffer);
  auto version = dec.GetVarint();
  if (!version.ok()) return version.status();
  if (*version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  ClassRefineRequest request;
  auto epsilon = dec.GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  request.epsilon = *epsilon;
  auto num_classes = dec.GetVarint();
  if (!num_classes.ok()) return num_classes.status();
  request.num_classes = *num_classes;
  auto count = dec.GetVarint();
  if (!count.ok()) return count.status();
  for (uint64_t i = 0; i < *count; ++i) {
    auto candidate = dec.GetBytes();
    if (!candidate.ok()) return candidate.status();
    request.candidates.push_back(std::move(*candidate));
  }
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request");
  }
  return request;
}

}  // namespace privshape::proto
