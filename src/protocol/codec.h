#ifndef PRIVSHAPE_PROTOCOL_CODEC_H_
#define PRIVSHAPE_PROTOCOL_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace privshape::proto {

/// Minimal binary codec for report messages: LEB128 varints for integers,
/// fixed 8-byte little-endian IEEE754 for doubles, length-prefixed byte
/// strings.
///
/// An Encoder either owns its buffer (default constructor — Release()
/// hands it back) or appends into a caller-owned string (the batched
/// hot path: many reports, one buffer, zero per-report allocation).
class Encoder {
 public:
  Encoder() : out_(&owned_) {}
  /// Appends into `*out` (which must outlive the encoder). Release() is
  /// meaningless in this mode; the caller already holds the bytes.
  explicit Encoder(std::string* out) : out_(out) {}

  void PutVarint(uint64_t value);
  void PutDouble(double value);
  void PutBytes(const std::vector<uint8_t>& bytes);
  /// Length-prefixed raw byte string — same framing as PutBytes, but
  /// sourced from any contiguous bytes (the network layer nests encoded
  /// messages this way without copying them into a vector first).
  void PutString(std::string_view bytes);

  const std::string& buffer() const { return *out_; }
  std::string Release() { return std::move(owned_); }

 private:
  std::string owned_;
  std::string* out_;
};

/// Streaming decoder over an encoded buffer. Every getter returns a
/// Status-bearing Result so truncated or corrupt reports surface as
/// errors, never as silent garbage.
///
/// Construction from an rvalue std::string takes ownership; construction
/// from a string_view only borrows (the hot ingest path decodes slices of
/// a flat batch buffer without copying them) — the viewed bytes must then
/// outlive the decoder.
class Decoder {
 public:
  explicit Decoder(std::string buffer)
      : owned_(std::move(buffer)), view_(owned_) {}
  // No const char* overload: encoded reports routinely contain NUL
  // bytes, which a C-string constructor would silently truncate at.
  explicit Decoder(std::string_view buffer) : view_(buffer) {}

  // view_ points into owned_ when owning; a move would dangle it.
  Decoder(const Decoder&) = delete;
  Decoder& operator=(const Decoder&) = delete;

  Result<uint64_t> GetVarint();
  Result<double> GetDouble();
  Result<std::vector<uint8_t>> GetBytes();
  /// Length-prefixed byte string as a borrowed view into the decoder's
  /// buffer (valid only while the decoder — or, for a borrowing decoder,
  /// the viewed bytes — lives). Same wire form as GetBytes, no copy.
  Result<std::string_view> GetStringView();

  /// True once the whole buffer is consumed.
  bool AtEnd() const { return pos_ == view_.size(); }
  size_t remaining() const { return view_.size() - pos_; }

 private:
  std::string owned_;
  std::string_view view_;
  size_t pos_ = 0;
};

}  // namespace privshape::proto

#endif  // PRIVSHAPE_PROTOCOL_CODEC_H_
