#include "collector/client_fleet.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "common/cli.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "series/generators.h"

namespace privshape::collector {

ClientFleet::WordFn ClientFleet::TiledWords(std::vector<Sequence> words) {
  auto shared =
      std::make_shared<const std::vector<Sequence>>(std::move(words));
  return [shared](size_t user) -> Sequence {
    if (shared->empty()) return Sequence{};
    return (*shared)[user % shared->size()];
  };
}

ClientFleet::LabelFn ClientFleet::TiledLabels(std::vector<int> labels) {
  if (labels.empty()) return nullptr;
  auto shared = std::make_shared<const std::vector<int>>(std::move(labels));
  return [shared](size_t user) -> int {
    return (*shared)[user % shared->size()];
  };
}

ClientFleet ClientFleet::FromWords(std::vector<Sequence> words,
                                   size_t num_users, dist::Metric metric,
                                   uint64_t seed, std::vector<int> labels) {
  // Labels tile with the same modulo as the words, so user u's label
  // always belongs to user u's word. A length mismatch would silently
  // pair words with foreign labels; abort loudly instead.
  if (!labels.empty() && labels.size() != words.size()) {
    PS_LOG(kError) << "FromWords: " << labels.size() << " labels for "
                   << words.size() << " words";
    std::abort();
  }
  return ClientFleet(num_users, TiledWords(std::move(words)), metric, seed,
                     TiledLabels(std::move(labels)));
}

proto::ClientSession ClientFleet::MakeSession(size_t user) const {
  return proto::ClientSession(word_fn_(user), metric_,
                              DeriveSeed(seed_, user), LabelFor(user));
}

std::vector<Sequence> ClientFleet::MaterializeWords() const {
  std::vector<Sequence> words;
  words.reserve(num_users_);
  for (size_t user = 0; user < num_users_; ++user) {
    words.push_back(word_fn_(user));
  }
  return words;
}

std::vector<int> ClientFleet::MaterializeLabels() const {
  std::vector<int> labels;
  if (!labeled()) return labels;
  labels.reserve(num_users_);
  for (size_t user = 0; user < num_users_; ++user) {
    labels.push_back(label_fn_(user));
  }
  return labels;
}

Result<ClientFleet::WordFn> GeneratedWordSource(const std::string& dataset,
                                                uint64_t seed) {
  if (dataset != "trace" && dataset != "symbols") {
    return Status::InvalidArgument(
        "unknown generated dataset (want trace|symbols): " + dataset);
  }
  bool symbols = dataset == "symbols";
  // Separate derivation base so data synthesis never shares a stream with
  // the per-user privacy randomness (which uses DeriveSeed(seed, u)).
  uint64_t data_seed = DeriveSeed(seed, 0x5eedda7aULL);
  core::TransformOptions transform;
  transform.t = symbols ? 6 : 4;
  transform.w = symbols ? 25 : 10;
  size_t classes = static_cast<size_t>(
      symbols ? series::kSymbolsClasses : series::kTraceClasses);
  return ClientFleet::WordFn(
      [symbols, data_seed, transform, classes](size_t user) -> Sequence {
        series::GeneratorOptions gopts;
        Rng rng(DeriveSeed(data_seed, user));
        int label = static_cast<int>(user % classes);
        series::TimeSeries inst =
            symbols ? series::MakeSymbolsInstance(label, gopts, &rng)
                    : series::MakeTraceInstance(label, gopts, &rng);
        auto word = core::TransformSeries(inst.values, transform);
        if (!word.ok()) {
          // Unreachable with the shipped generators (instances are far
          // longer than the SAX window); abort loudly rather than serve
          // placeholder words that would "succeed" end to end.
          PS_LOG(kError) << "generated instance for user " << user
                         << " untransformable: "
                         << word.status().ToString();
          std::abort();
        }
        return std::move(*word);
      });
}

Result<core::MechanismConfig> GeneratedDatasetConfig(
    const std::string& dataset) {
  if (dataset != "trace" && dataset != "symbols") {
    return Status::InvalidArgument(
        "unknown generated dataset (want trace|symbols): " + dataset);
  }
  bool symbols = dataset == "symbols";
  core::MechanismConfig config;
  config.t = symbols ? 6 : 4;
  config.k = symbols ? 6 : 3;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = symbols ? 15 : 10;
  config.metric = symbols ? dist::Metric::kDtw : dist::Metric::kSed;
  return config;
}

Result<int> GeneratedNumClasses(const std::string& dataset) {
  if (dataset == "trace") return static_cast<int>(series::kTraceClasses);
  if (dataset == "symbols") return static_cast<int>(series::kSymbolsClasses);
  return Status::InvalidArgument(
      "unknown generated dataset (want trace|symbols): " + dataset);
}

Result<ClientFleet::LabelFn> GeneratedLabelSource(const std::string& dataset) {
  auto classes = GeneratedNumClasses(dataset);
  if (!classes.ok()) return classes.status();
  size_t num_classes = static_cast<size_t>(*classes);
  return ClientFleet::LabelFn([num_classes](size_t user) -> int {
    // Mirrors GeneratedWordSource's instance synthesis: user u's series
    // is generated from class u % classes.
    return static_cast<int>(user % num_classes);
  });
}

Result<std::vector<int>> ParseLabelsCsv(const std::string& text,
                                        int num_classes) {
  if (num_classes < 1) {
    return Status::InvalidArgument("num_classes must be >= 1");
  }
  auto rows = ParseCsvString(text);
  if (!rows.ok()) return rows.status();
  std::vector<int> labels;
  labels.reserve(rows->size());
  for (size_t i = 0; i < rows->size(); ++i) {
    const auto& row = (*rows)[i];
    if (row.size() != 1) {
      return Status::InvalidArgument(
          "labels row " + std::to_string(i) + " has " +
          std::to_string(row.size()) + " cells (want exactly 1)");
    }
    auto label = ParseIntFlag("label", row[0]);
    if (!label.ok()) {
      return Status::InvalidArgument("labels row " + std::to_string(i) +
                                     ": " + label.status().message());
    }
    if (*label < 0 || *label >= num_classes) {
      return Status::OutOfRange(
          "labels row " + std::to_string(i) + ": label " +
          std::to_string(*label) + " outside [0, " +
          std::to_string(num_classes) + ")");
    }
    labels.push_back(*label);
  }
  if (labels.empty()) {
    return Status::InvalidArgument("labels file is empty");
  }
  return labels;
}

}  // namespace privshape::collector
