#ifndef PRIVSHAPE_EVAL_METRICS_H_
#define PRIVSHAPE_EVAL_METRICS_H_

#include <vector>

#include "common/status.h"

namespace privshape::eval {

/// Row-major confusion matrix over labels [0, num_classes):
/// matrix[truth][predicted] = count. Labels outside the range fail.
Result<std::vector<std::vector<size_t>>> ConfusionMatrix(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes);

/// Per-class precision / recall / F1 plus macro averages, derived from a
/// confusion matrix. Undefined ratios (empty class or empty prediction)
/// are reported as 0, sklearn's zero_division=0 convention.
struct ClassificationReport {
  std::vector<double> precision;
  std::vector<double> recall;
  std::vector<double> f1;
  double macro_precision = 0.0;
  double macro_recall = 0.0;
  double macro_f1 = 0.0;
  double accuracy = 0.0;
};

Result<ClassificationReport> ComputeClassificationReport(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes);

}  // namespace privshape::eval

#endif  // PRIVSHAPE_EVAL_METRICS_H_
