#ifndef PRIVSHAPE_EVAL_SHAPELET_H_
#define PRIVSHAPE_EVAL_SHAPELET_H_

#include <vector>

#include "common/status.h"
#include "distance/distance.h"
#include "series/sequence.h"

namespace privshape::eval {

/// Shapelet discovery over symbolic sequences — the extension the paper
/// names as future work (§VII). A shapelet is a short sub-word whose
/// best-match distance to a sequence splits the labeled dataset with high
/// information gain; PrivShape's extracted shapes (or their sub-words) are
/// natural private candidates.
struct Shapelet {
  Sequence pattern;
  double threshold = 0.0;   ///< split: dist <= threshold vs > threshold
  double info_gain = 0.0;
  int majority_label = -1;  ///< majority class on the <= threshold side
};

/// Sliding best-match distance: min over all windows of `sequence` (of the
/// candidate's length, clamped to the sequence) of the metric distance to
/// `candidate`. Returns the whole-sequence distance when the sequence is
/// shorter than the candidate.
double SubsequenceDistance(const Sequence& sequence,
                           const Sequence& candidate, dist::Metric metric);

/// Shannon entropy of a label multiset, in bits.
double LabelEntropy(const std::vector<int>& labels);

/// Information gain of splitting `labels` by `mask` (true = left branch).
double InformationGain(const std::vector<int>& labels,
                       const std::vector<bool>& mask);

struct ShapeletOptions {
  dist::Metric metric = dist::Metric::kSed;
  size_t top_k = 3;
  /// Candidate sub-word lengths to enumerate from the seeds.
  size_t min_length = 2;
  size_t max_length = 6;
};

/// Evaluates every sub-word of every seed shape as a shapelet candidate
/// over the labeled sequences and returns the top-k by information gain
/// (distinct patterns only). Seeds typically come from PrivShape's output,
/// so the discovery inherits its user-level LDP guarantee by
/// post-processing.
Result<std::vector<Shapelet>> DiscoverShapelets(
    const std::vector<Sequence>& sequences, const std::vector<int>& labels,
    const std::vector<Sequence>& seed_shapes, const ShapeletOptions& options);

/// Classifies a sequence with a decision list of shapelets: the first
/// shapelet whose threshold test fires assigns its majority label;
/// `fallback_label` applies when none fires.
int ClassifyWithShapelets(const Sequence& sequence,
                          const std::vector<Shapelet>& shapelets,
                          dist::Metric metric, int fallback_label);

}  // namespace privshape::eval

#endif  // PRIVSHAPE_EVAL_SHAPELET_H_
