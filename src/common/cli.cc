#include "common/cli.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>

namespace privshape {

namespace {

/// The whitespace-trimmed view of `text` ("" when all-whitespace).
std::string Trimmed(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Status MalformedFlag(const std::string& name, const std::string& text,
                     const char* expected) {
  return Status::InvalidArgument("--" + name + ": expected " + expected +
                                 ", got \"" + text + "\"");
}

}  // namespace

Result<int> ParseIntFlag(const std::string& name, const std::string& text) {
  std::string value = Trimmed(text);
  if (value.empty()) return MalformedFlag(name, text, "an integer");
  errno = 0;
  char* end = nullptr;
  long parsed = std::strtol(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size()) {
    return MalformedFlag(name, text, "an integer");
  }
  if (errno == ERANGE || parsed < INT_MIN || parsed > INT_MAX) {
    return MalformedFlag(name, text, "an in-range integer");
  }
  return static_cast<int>(parsed);
}

Result<double> ParseDoubleFlag(const std::string& name,
                               const std::string& text) {
  std::string value = Trimmed(text);
  if (value.empty()) return MalformedFlag(name, text, "a number");
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size()) {
    return MalformedFlag(name, text, "a number");
  }
  if (errno == ERANGE) {
    return MalformedFlag(name, text, "an in-range number");
  }
  return parsed;
}

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "1";  // bare flag acts as boolean
    }
  }
}

bool CliArgs::Lookup(const std::string& name, std::string* out) const {
  auto it = flags_.find(name);
  if (it != flags_.end()) {
    *out = it->second;
    return true;
  }
  std::string env_name = "PRIVSHAPE_" + name;
  std::transform(env_name.begin(), env_name.end(), env_name.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (const char* env = std::getenv(env_name.c_str())) {
    *out = env;
    return true;
  }
  return false;
}

int CliArgs::GetInt(const std::string& name, int def) const {
  auto parsed = GetIntStatus(name, def);
  return parsed.ok() ? *parsed : def;
}

double CliArgs::GetDouble(const std::string& name, double def) const {
  auto parsed = GetDoubleStatus(name, def);
  return parsed.ok() ? *parsed : def;
}

Result<int> CliArgs::GetIntStatus(const std::string& name, int def) const {
  std::string v;
  if (!Lookup(name, &v)) return def;
  return ParseIntFlag(name, v);
}

Result<double> CliArgs::GetDoubleStatus(const std::string& name,
                                        double def) const {
  std::string v;
  if (!Lookup(name, &v)) return def;
  return ParseDoubleFlag(name, v);
}

std::string CliArgs::GetString(const std::string& name,
                               const std::string& def) const {
  std::string v;
  return Lookup(name, &v) ? v : def;
}

bool CliArgs::Has(const std::string& name) const {
  std::string v;
  return Lookup(name, &v);
}

size_t ThreadsFromArgs(const CliArgs& args, size_t def) {
  int threads = args.GetInt("threads", static_cast<int>(def));
  if (threads < 0) return def;
  return static_cast<size_t>(threads);
}

}  // namespace privshape
