/// \file
/// Module `sax` — discretization front end of the pipeline (§III-B, §IV-A):
/// z-normalize -> PAA(w) -> equiprobable Gaussian breakpoints -> SAX word,
/// plus the Compressive SAX variant that collapses equal adjacent symbols.
/// Invariant: Compressive SAX output never contains two equal neighbours,
/// which is what lets the trie skip self-transitions.

#ifndef PRIVSHAPE_SAX_SAX_H_
#define PRIVSHAPE_SAX_SAX_H_

#include <vector>

#include "common/status.h"
#include "series/sequence.h"
#include "series/time_series.h"

namespace privshape::sax {

/// Symbolic Aggregate approXimation (Lin et al., DMKD'07) with the paper's
/// parameterization: segment length `w` and alphabet size `t`.
///
/// Transform() = optional z-normalize -> PAA(w) -> symbol lookup against
/// the Gaussian equiprobable breakpoints. The example in the paper's Fig. 3
/// (m=128, w=8, t=3 -> "aaaccccccbbbbaaa") is covered by a unit test.
class SaxTransformer {
 public:
  /// Builds a transformer; fails for invalid t or w.
  static Result<SaxTransformer> Create(int t, int w, bool z_normalize = true);

  /// Transforms one raw series into a SAX word.
  Result<Sequence> Transform(const std::vector<double>& values) const;

  /// Transforms a dataset; order of instances is preserved.
  Result<std::vector<Sequence>> TransformDataset(
      const series::Dataset& dataset) const;

  /// Maps one already-aggregated numeric value to its symbol.
  Symbol Discretize(double value) const;

  /// Reconstructs a numeric silhouette from a SAX word: each symbol becomes
  /// its band's conditional-mean level, repeated `w` times.
  std::vector<double> Reconstruct(const Sequence& word) const;

  int alphabet_size() const { return t_; }
  int segment_length() const { return w_; }

 private:
  SaxTransformer(int t, int w, bool z_normalize,
                 std::vector<double> breakpoints,
                 std::vector<double> levels)
      : t_(t),
        w_(w),
        z_normalize_(z_normalize),
        breakpoints_(std::move(breakpoints)),
        levels_(std::move(levels)) {}

  int t_;
  int w_;
  bool z_normalize_;
  std::vector<double> breakpoints_;
  std::vector<double> levels_;
};

}  // namespace privshape::sax

#endif  // PRIVSHAPE_SAX_SAX_H_
