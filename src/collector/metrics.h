#ifndef PRIVSHAPE_COLLECTOR_METRICS_H_
#define PRIVSHAPE_COLLECTOR_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace privshape::collector {

/// Throughput/latency counters of one collection round.
struct RoundStats {
  std::string stage;         ///< "Pa", "Pb", "Pc.level0", ..., "Pd"/"Pe"
  size_t users = 0;          ///< requests issued (population size)
  size_t accepted = 0;       ///< reports that passed validation
  size_t rejected = 0;       ///< malformed / wrong-kind / out-of-window
  size_t client_errors = 0;  ///< sessions that failed to answer at all
  size_t bytes_up = 0;       ///< report bytes ingested (client -> server)
  size_t bytes_down = 0;     ///< request bytes broadcast (server -> client)
  double seconds = 0.0;      ///< wall-clock of the whole round

  /// Per-batch ingest latency distribution (one ConsumeBatch call = one
  /// sample), derived from the round's log-linear histogram — so the
  /// percentiles carry its <=6.25% relative bucketing error. All zero
  /// when the runner did not time its batches.
  uint64_t ingest_batches = 0;  ///< timed ConsumeBatch calls
  double ingest_p50_ns = 0.0;
  double ingest_p95_ns = 0.0;
  double ingest_p99_ns = 0.0;
  uint64_t ingest_max_ns = 0;
  double ingest_mean_ns = 0.0;

  /// Ingestion rate: every report that reached the aggregation side
  /// (accepted + rejected) over wall-clock. Rejects cost ingest work too,
  /// so this is the serving-capacity number — but it is NOT a useful-work
  /// rate; a flood of garbage inflates it.
  double IngestedPerSec() const;

  /// Useful-work rate: only reports that passed validation.
  double AcceptedPerSec() const;
};

/// Whole-run metrics, exported as JSON so the perf trajectory of the
/// collector is machine-readable from the first PR that ships it.
struct CollectorMetrics {
  size_t num_users = 0;
  size_t num_shards = 0;      ///< aggregation lanes per collector
  size_t num_threads = 0;
  size_t num_collectors = 1;  ///< independent merged collection sites
  size_t queue_depth = 0;     ///< streaming queue capacity (0 = unbounded)
  std::string ingest = "streaming";  ///< "streaming", "barrier", "socket"
  double total_seconds = 0.0;
  std::vector<RoundStats> rounds;

  /// Socket-daemon counters (all zero for in-process runs).
  size_t connections = 0;      ///< handshaked connections that served rounds
  size_t disconnects = 0;      ///< connections lost before Complete
  size_t protocol_errors = 0;  ///< connections dropped for wire violations
  size_t stale_batches = 0;    ///< uploads for a past round, discarded
  size_t deadline_drops = 0;   ///< connections dropped at a round deadline

  size_t TotalReports() const;  ///< ingested: accepted + rejected
  size_t TotalAccepted() const;
  size_t TotalRejected() const;
  size_t TotalBytesUp() const;
  double TotalIngestedPerSec() const;
  double TotalAcceptedPerSec() const;

  JsonValue ToJson() const;

  /// Writes ToJson() pretty-printed to `path`.
  Status WriteJsonFile(const std::string& path) const;
};

/// Writes any JSON document pretty-printed to `path` (the CLI uses this
/// for ToJson() augmented with the extracted shapes).
Status WriteJsonFile(const JsonValue& doc, const std::string& path);

}  // namespace privshape::collector

#endif  // PRIVSHAPE_COLLECTOR_METRICS_H_
