#include "series/sequence.h"

namespace privshape {

std::string SequenceToString(const Sequence& seq) {
  std::string out;
  out.reserve(seq.size());
  for (Symbol s : seq) {
    out.push_back(s < 26 ? static_cast<char>('a' + s) : '?');
  }
  return out;
}

Result<Sequence> SequenceFromString(const std::string& s) {
  Sequence out;
  out.reserve(s.size());
  for (char c : s) {
    if (c < 'a' || c > 'z') {
      return Status::InvalidArgument(
          std::string("invalid symbol character: ") + c);
    }
    out.push_back(static_cast<Symbol>(c - 'a'));
  }
  return out;
}

}  // namespace privshape
