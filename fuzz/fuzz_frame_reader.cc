/// \file
/// Fuzz target: the incremental net::FrameReader plus every net-layer
/// message decoder behind it — exactly the daemon's exposure to a
/// hostile TCP peer. The input bytes are treated as a raw socket
/// stream; the first input byte picks a chunking pattern so frames
/// split at stressed boundaries (the hand-rolled net_frame_fuzz_test
/// showed byte-split bugs are the realistic failure mode).
///
/// Invariant under test: no input may crash, hang, or make the reader
/// allocate beyond its frame cap — hostility must surface as a clean
/// sticky Status. Decoded frames are forwarded into the matching
/// message decoder, so the whole wire surface is one harness.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "net/frame.h"

using privshape::net::DecodeBatchUpload;
using privshape::net::DecodeComplete;
using privshape::net::DecodeError;
using privshape::net::DecodeHello;
using privshape::net::DecodeRoundBegin;
using privshape::net::DecodeRoundDone;
using privshape::net::DecodeWelcome;
using privshape::net::Frame;
using privshape::net::FrameReader;
using privshape::net::MsgType;

namespace {

void DispatchFrame(const Frame& frame) {
  std::string_view body = frame.payload;
  switch (frame.type) {
    case MsgType::kHello:
      (void)DecodeHello(body);
      break;
    case MsgType::kWelcome:
      (void)DecodeWelcome(body);
      break;
    case MsgType::kRoundBegin:
      (void)DecodeRoundBegin(body);
      break;
    case MsgType::kBatchUpload:
      (void)DecodeBatchUpload(body);
      break;
    case MsgType::kRoundDone:
      (void)DecodeRoundDone(body);
      break;
    case MsgType::kComplete:
      (void)DecodeComplete(body);
      break;
    case MsgType::kError:
      (void)DecodeError(body);
      break;
    default:
      break;  // unknown type: FrameReader already surfaced the frame
  }
}

void Drain(FrameReader& reader) {
  Frame frame;
  while (true) {
    auto next = reader.Next(&frame);
    if (!next.ok() || !next.value()) break;
    DispatchFrame(frame);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const char* bytes = reinterpret_cast<const char*>(data + 1);
  size_t n = size - 1;
  std::string_view stream(bytes, n);

  FrameReader reader;
  switch (data[0] % 4) {
    case 0:  // whole stream in one Append
      reader.Append(stream);
      Drain(reader);
      break;
    case 1:  // byte-at-a-time: every split boundary
      for (size_t i = 0; i < n; ++i) {
        reader.Append(stream.substr(i, 1));
        Drain(reader);
      }
      break;
    case 2: {  // data-derived chunk sizes
      size_t pos = 0;
      size_t step = 1 + data[0] / 4;
      while (pos < n) {
        size_t len = std::min(step, n - pos);
        reader.Append(stream.substr(pos, len));
        Drain(reader);
        pos += len;
        step = step * 2 + 1;
      }
      break;
    }
    default: {  // two halves, drain between
      reader.Append(stream.substr(0, n / 2));
      Drain(reader);
      reader.Append(stream.substr(n / 2));
      Drain(reader);
      break;
    }
  }
  // Poisoned readers must stay poisoned without crashing.
  reader.Append("\x01\x02\x03");
  Drain(reader);
  return 0;
}
