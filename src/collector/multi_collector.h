#ifndef PRIVSHAPE_COLLECTOR_MULTI_COLLECTOR_H_
#define PRIVSHAPE_COLLECTOR_MULTI_COLLECTOR_H_

#include <cstddef>
#include <vector>

#include "collector/round_coordinator.h"

namespace privshape::collector {

/// N independent collection sites with exact merge.
///
/// Each round's population is split into N contiguous slices; collector c
/// (its own RoundCoordinator, its own aggregation lanes and streaming
/// queues) serves slice c concurrently with the others, and the per-level
/// ShardedAggregator states are folded together with the exact integer
/// ShardedAggregator::Merge before any server-side decision. Because
/// per-user randomness is seed-derived and aggregation state is integer
/// counts, the merged protocol is byte-identical to a single collector —
/// and to core::PrivShape::Run — for any collector count. Only the one
/// shared PrivShapeServer ever sees merged counts; the sites themselves
/// never coordinate beyond the merge, which is what a distributed
/// deployment (one site per region, merge at the root) needs.
class MultiCollector {
 public:
  /// `num_collectors` >= 1 sites, all sharing `pool` (nullptr runs each
  /// site inline). `options` applies to every site. A single site runs
  /// on the calling thread with no site threads — byte-for-byte the
  /// plain RoundCoordinator::Collect path — so callers can dispatch
  /// through MultiCollector unconditionally.
  MultiCollector(core::MechanismConfig config, CollectorOptions options,
                 ThreadPool* pool, size_t num_collectors);

  /// Runs the whole protocol over the fleet, merging across sites each
  /// round. Same contract as RoundCoordinator::Collect.
  Result<core::MechanismResult> Collect(const ClientFleet& fleet,
                                        CollectorMetrics* metrics = nullptr);

  size_t num_collectors() const { return coordinators_.size(); }
  const core::MechanismConfig& config() const { return config_; }

 private:
  // Thread-safety contract: site threads each own exactly one
  // coordinator for the duration of a round (disjoint slices, no shared
  // mutable state), and the merge in Collect runs strictly after every
  // site thread has been joined — a barrier, not a lock. No mutex is
  // needed as long as that join-before-merge ordering holds.
  core::MechanismConfig config_;
  std::vector<RoundCoordinator> coordinators_;
};

}  // namespace privshape::collector

#endif  // PRIVSHAPE_COLLECTOR_MULTI_COLLECTOR_H_
