#include "core/config.h"

namespace privshape::core {

Status MechanismConfig::Validate() const {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (t < 2 || t > 26) {
    return Status::InvalidArgument("alphabet size t must be in [2, 26]");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (c < 2) {
    return Status::InvalidArgument(
        "candidate multiplier c must be >= 2 (see §IV-B)");
  }
  if (ell_low < 1 || ell_high < ell_low) {
    return Status::InvalidArgument("need 1 <= ell_low <= ell_high");
  }
  if (frac_a <= 0.0 || frac_b < 0.0 || frac_c <= 0.0 || frac_d < 0.0) {
    return Status::InvalidArgument("population fractions must be positive");
  }
  if (frac_a + frac_b + frac_c + frac_d > 1.0 + 1e-9) {
    return Status::InvalidArgument("population fractions must sum to <= 1");
  }
  if (num_classes < 0) {
    return Status::InvalidArgument("num_classes must be >= 0");
  }
  if (baseline_threshold < 0.0) {
    return Status::InvalidArgument("baseline threshold must be >= 0");
  }
  return Status::Ok();
}

}  // namespace privshape::core
