#include "distance/distance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "series/sequence.h"

namespace privshape {
namespace {

using dist::DtwNumeric;
using dist::DtwSymbolic;
using dist::EditDistance;
using dist::EuclideanNumeric;
using dist::EuclideanSymbolic;
using dist::HausdorffSymbolic;
using dist::MakeDistance;
using dist::Metric;
using dist::MetricFromString;

Sequence Seq(const std::string& s) { return *SequenceFromString(s); }

TEST(MetricTest, FromStringParsesAllNames) {
  EXPECT_EQ(*MetricFromString("dtw"), Metric::kDtw);
  EXPECT_EQ(*MetricFromString("sed"), Metric::kSed);
  EXPECT_EQ(*MetricFromString("edit"), Metric::kSed);
  EXPECT_EQ(*MetricFromString("euclidean"), Metric::kEuclidean);
  EXPECT_EQ(*MetricFromString("l2"), Metric::kEuclidean);
  EXPECT_EQ(*MetricFromString("hausdorff"), Metric::kHausdorff);
  EXPECT_FALSE(MetricFromString("cosine").ok());
}

TEST(MetricTest, NameRoundTrip) {
  for (Metric m : {Metric::kDtw, Metric::kSed, Metric::kEuclidean,
                   Metric::kHausdorff}) {
    EXPECT_EQ(*MetricFromString(dist::MetricName(m)), m);
  }
}

TEST(MetricTest, FactoryProducesMatchingMetric) {
  for (Metric m : {Metric::kDtw, Metric::kSed, Metric::kEuclidean,
                   Metric::kHausdorff}) {
    auto d = MakeDistance(m);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->metric(), m);
  }
}

TEST(DtwTest, IdenticalSequencesAreZero) {
  EXPECT_DOUBLE_EQ(DtwSymbolic(Seq("abca"), Seq("abca")), 0.0);
}

TEST(DtwTest, WarpingAbsorbsRepeats) {
  // DTW warps the time axis, so "abc" matches "aabbcc" exactly.
  EXPECT_DOUBLE_EQ(DtwSymbolic(Seq("abc"), Seq("aabbcc")), 0.0);
}

TEST(DtwTest, KnownSmallExample) {
  // a=0 vs b=1 at every aligned step: single substitution costs 1.
  EXPECT_DOUBLE_EQ(DtwSymbolic(Seq("a"), Seq("b")), 1.0);
  EXPECT_DOUBLE_EQ(DtwSymbolic(Seq("a"), Seq("c")), 2.0);
}

TEST(DtwTest, SymmetricOnRandomInputs) {
  Rng rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    Sequence a, b;
    for (size_t i = 0; i < 1 + rng.Index(8); ++i) {
      a.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    for (size_t i = 0; i < 1 + rng.Index(8); ++i) {
      b.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    EXPECT_DOUBLE_EQ(DtwSymbolic(a, b), DtwSymbolic(b, a));
  }
}

TEST(DtwTest, BandConstraintNeverBelowUnconstrained) {
  Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    Sequence a, b;
    for (size_t i = 0; i < 5; ++i) {
      a.push_back(static_cast<Symbol>(rng.Index(4)));
      b.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    EXPECT_GE(DtwSymbolic(a, b, /*band=*/1) + 1e-12, DtwSymbolic(a, b));
  }
}

TEST(DtwTest, EmptyVsEmptyIsZero) {
  EXPECT_DOUBLE_EQ(DtwSymbolic({}, {}), 0.0);
}

TEST(SedTest, ClassicLevenshteinCases) {
  EXPECT_DOUBLE_EQ(EditDistance(Seq("abc"), Seq("abc")), 0.0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq("abc"), Seq("abd")), 1.0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq("abc"), Seq("ab")), 1.0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq("abc"), Seq("bc")), 1.0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq(""), Seq("abc")), 3.0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq("abcd"), Seq("badc")), 3.0);
}

TEST(SedTest, TriangleInequalityOnRandomInputs) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    Sequence a, b, c;
    for (size_t i = 0; i < rng.Index(7); ++i) {
      a.push_back(static_cast<Symbol>(rng.Index(3)));
    }
    for (size_t i = 0; i < rng.Index(7); ++i) {
      b.push_back(static_cast<Symbol>(rng.Index(3)));
    }
    for (size_t i = 0; i < rng.Index(7); ++i) {
      c.push_back(static_cast<Symbol>(rng.Index(3)));
    }
    EXPECT_LE(EditDistance(a, c),
              EditDistance(a, b) + EditDistance(b, c) + 1e-12);
  }
}

TEST(EuclideanSymbolicTest, EqualLength) {
  // (0-1)^2 + (2-1)^2 = 2.
  EXPECT_DOUBLE_EQ(EuclideanSymbolic(Seq("ac"), Seq("bb")),
                   std::sqrt(2.0));
}

TEST(EuclideanSymbolicTest, PadsShorterWithLastSymbol) {
  // "ab" padded to "abb" against "abb" -> 0.
  EXPECT_DOUBLE_EQ(EuclideanSymbolic(Seq("ab"), Seq("abb")), 0.0);
}

TEST(EuclideanSymbolicTest, EmptyCases) {
  EXPECT_DOUBLE_EQ(EuclideanSymbolic({}, {}), 0.0);
  EXPECT_GT(EuclideanSymbolic({}, Seq("cc")), 0.0);
}

TEST(HausdorffTest, IdenticalIsZero) {
  EXPECT_DOUBLE_EQ(HausdorffSymbolic(Seq("abc"), Seq("abc")), 0.0);
}

TEST(HausdorffTest, SymmetricAndNonNegative) {
  Rng rng(24);
  for (int trial = 0; trial < 50; ++trial) {
    Sequence a, b;
    for (size_t i = 0; i < 1 + rng.Index(6); ++i) {
      a.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    for (size_t i = 0; i < 1 + rng.Index(6); ++i) {
      b.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    double d = HausdorffSymbolic(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_DOUBLE_EQ(d, HausdorffSymbolic(b, a));
  }
}

TEST(DtwNumericTest, KnownValue) {
  std::vector<double> a = {0, 0, 1, 2};
  std::vector<double> b = {0, 1, 2};
  EXPECT_DOUBLE_EQ(DtwNumeric(a, b), 0.0);  // warping absorbs the repeat
  EXPECT_DOUBLE_EQ(DtwNumeric({1.0}, {4.0}), 3.0);
}

TEST(EuclideanNumericTest, RequiresEqualLength) {
  EXPECT_FALSE(EuclideanNumeric({1.0}, {1.0, 2.0}).ok());
  auto d = EuclideanNumeric({0.0, 3.0}, {4.0, 3.0});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 4.0);
}

// Identity-of-indiscernibles + symmetry + non-negativity across all
// metrics, as a parameterized property sweep.
class MetricAxiomsTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricAxiomsTest, BasicAxiomsOnRandomWords) {
  auto distance = MakeDistance(GetParam());
  Rng rng(25);
  for (int trial = 0; trial < 100; ++trial) {
    Sequence a, b;
    for (size_t i = 0; i < 1 + rng.Index(6); ++i) {
      a.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    for (size_t i = 0; i < 1 + rng.Index(6); ++i) {
      b.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    EXPECT_DOUBLE_EQ(distance->Distance(a, a), 0.0);
    EXPECT_GE(distance->Distance(a, b), 0.0);
    EXPECT_DOUBLE_EQ(distance->Distance(a, b), distance->Distance(b, a));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricAxiomsTest,
                         ::testing::Values(Metric::kDtw, Metric::kSed,
                                           Metric::kEuclidean,
                                           Metric::kHausdorff));

}  // namespace
}  // namespace privshape
