#include "eval/kmedoids.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/rng.h"

namespace privshape::eval {

Result<KMedoidsResult> KMedoids(
    const std::vector<std::vector<double>>& distance_matrix, int k,
    uint64_t seed, int max_iterations) {
  size_t n = distance_matrix.size();
  if (n == 0) return Status::InvalidArgument("empty distance matrix");
  for (const auto& row : distance_matrix) {
    if (row.size() != n) {
      return Status::InvalidArgument("distance matrix must be square");
    }
  }
  if (k < 1 || static_cast<size_t>(k) > n) {
    return Status::InvalidArgument("k must be in [1, n]");
  }

  Rng rng(seed);
  std::set<size_t> medoid_set;
  while (medoid_set.size() < static_cast<size_t>(k)) {
    medoid_set.insert(rng.Index(n));
  }
  std::vector<size_t> medoids(medoid_set.begin(), medoid_set.end());

  auto assign = [&](const std::vector<size_t>& meds,
                    std::vector<int>* labels) {
    double cost = 0.0;
    labels->assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_m = 0;
      for (size_t m = 0; m < meds.size(); ++m) {
        double d = distance_matrix[i][meds[m]];
        if (d < best) {
          best = d;
          best_m = static_cast<int>(m);
        }
      }
      (*labels)[i] = best_m;
      cost += best;
    }
    return cost;
  };

  KMedoidsResult result;
  result.total_cost = assign(medoids, &result.assignments);
  result.medoids = medoids;

  for (int iter = 0; iter < max_iterations; ++iter) {
    bool improved = false;
    // Swap-improvement: try replacing each medoid with each non-medoid.
    for (size_t m = 0; m < medoids.size() && !improved; ++m) {
      for (size_t cand = 0; cand < n; ++cand) {
        if (std::find(medoids.begin(), medoids.end(), cand) !=
            medoids.end()) {
          continue;
        }
        std::vector<size_t> trial = medoids;
        trial[m] = cand;
        std::vector<int> labels;
        double cost = assign(trial, &labels);
        if (cost + 1e-12 < result.total_cost) {
          result.total_cost = cost;
          result.assignments = std::move(labels);
          result.medoids = trial;
          medoids = std::move(trial);
          improved = true;
          break;
        }
      }
    }
    if (!improved) break;
  }
  return result;
}

}  // namespace privshape::eval
