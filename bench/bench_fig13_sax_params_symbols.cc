// Fig. 13: PrivShape clustering ARI on Symbols at eps = 4 when varying the
// SAX parameters: (a) symbol size t in {4,5,6,7} at w = 25, and (b)
// segment length w in {15,20,25,30} at t = 6.

#include <iostream>

#include "bench/harness.h"
#include "series/generators.h"

namespace pb = privshape::bench;

namespace {

double AriFor(int t, int w, const pb::ExperimentScale& scale) {
  double total = 0;
  for (int trial = 0; trial < scale.trials; ++trial) {
    uint64_t seed = scale.seed + static_cast<uint64_t>(trial);
    privshape::series::GeneratorOptions gen;
    gen.num_instances = scale.users;
    gen.seed = seed;
    auto dataset = privshape::series::MakeSymbolsDataset(gen);
    privshape::core::TransformOptions transform;
    transform.t = t;
    transform.w = w;
    auto config = pb::SymbolsConfig(4.0, seed);
    config.t = t;
    total += pb::RunPrivShapeClustering(dataset, transform, config).ari;
  }
  return total / scale.trials;
}

}  // namespace

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 2000, 2);
  auto csv = pb::MaybeCsv("fig13_sax_params_symbols");
  if (csv) csv->WriteHeader({"sweep", "value", "ari"});

  pb::PrintTitle("Fig. 13(a): ARI varying symbol size t (w=25, Symbols)");
  pb::PrintHeader({"t", "ARI"});
  for (int t : {4, 5, 6, 7}) {
    double ari = AriFor(t, 25, scale);
    pb::PrintRow({std::to_string(t), privshape::FormatDouble(ari, 4)});
    if (csv) csv->WriteRow({"t", std::to_string(t),
                            privshape::FormatDouble(ari, 4)});
  }

  pb::PrintTitle("Fig. 13(b): ARI varying segment length w (t=6, Symbols)");
  pb::PrintHeader({"w", "ARI"});
  for (int w : {15, 20, 25, 30}) {
    double ari = AriFor(6, w, scale);
    pb::PrintRow({std::to_string(w), privshape::FormatDouble(ari, 4)});
    if (csv) csv->WriteRow({"w", std::to_string(w),
                            privshape::FormatDouble(ari, 4)});
  }

  std::cout << "\nExpected shape (paper Fig. 13): ARI rises then falls in t "
               "(too many symbols add fine-grained noise) and is "
               "single-peaked in w.\n";
  return 0;
}
