#include "eval/kshape.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_utils.h"
#include "common/rng.h"

namespace privshape::eval {

namespace {

/// Cross-correlation of z-normalized a against b at integer shift s
/// (positive s delays b), normalized by length.
double NccAtShift(const std::vector<double>& a, const std::vector<double>& b,
                  int shift) {
  int n = static_cast<int>(a.size());
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    int j = i - shift;
    if (j < 0 || j >= n) continue;
    acc += a[static_cast<size_t>(i)] * b[static_cast<size_t>(j)];
  }
  return acc / static_cast<double>(n);
}

/// Max NCC over all shifts plus the aligned copy of b.
double BestAlignment(const std::vector<double>& a,
                     const std::vector<double>& b,
                     std::vector<double>* aligned_b) {
  int n = static_cast<int>(a.size());
  double best = -std::numeric_limits<double>::infinity();
  int best_shift = 0;
  for (int s = -(n - 1); s <= n - 1; ++s) {
    double ncc = NccAtShift(a, b, s);
    if (ncc > best) {
      best = ncc;
      best_shift = s;
    }
  }
  if (aligned_b != nullptr) {
    aligned_b->assign(static_cast<size_t>(n), 0.0);
    for (int i = 0; i < n; ++i) {
      int j = i - best_shift;
      if (j >= 0 && j < n) {
        (*aligned_b)[static_cast<size_t>(i)] = b[static_cast<size_t>(j)];
      }
    }
  }
  return best;
}

/// Shape extraction: dominant eigenvector of Q^T (X^T X) Q where rows of X
/// are members aligned to the current centroid and Q is the centering
/// matrix. Power iteration suffices for the dominant direction.
std::vector<double> ExtractShape(
    const std::vector<const std::vector<double>*>& members,
    const std::vector<double>& reference, int power_iterations, Rng* rng) {
  size_t dim = reference.size();
  if (members.empty()) return reference;

  std::vector<std::vector<double>> aligned;
  aligned.reserve(members.size());
  for (const auto* m : members) {
    std::vector<double> a;
    BestAlignment(reference, *m, &a);
    aligned.push_back(std::move(a));
  }

  // Power iteration on S v where S = sum_i (centered x_i)(centered x_i)^T;
  // we never materialize S: S v = sum_i x~_i (x~_i . v).
  auto centered_dot = [&](const std::vector<double>& x,
                          const std::vector<double>& v) {
    double mean = Mean(x);
    double dot = 0.0;
    for (size_t d = 0; d < dim; ++d) dot += (x[d] - mean) * v[d];
    return dot;
  };

  std::vector<double> v(dim);
  for (size_t d = 0; d < dim; ++d) v[d] = rng->Gaussian();
  for (int it = 0; it < power_iterations; ++it) {
    std::vector<double> next(dim, 0.0);
    for (const auto& x : aligned) {
      double mean = Mean(x);
      double dot = centered_dot(x, v);
      for (size_t d = 0; d < dim; ++d) next[d] += (x[d] - mean) * dot;
    }
    double norm = 0.0;
    for (double val : next) norm += val * val;
    norm = std::sqrt(norm);
    if (norm < 1e-12) break;
    for (double& val : next) val /= norm;
    v = std::move(next);
  }

  // Fix the sign so the centroid correlates positively with the members.
  double corr = 0.0;
  for (const auto& x : aligned) corr += centered_dot(x, v);
  if (corr < 0) {
    for (double& val : v) val = -val;
  }
  ZNormalize(&v);
  return v;
}

}  // namespace

double ShapeBasedDistance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  std::vector<double> za = ZNormalized(a);
  std::vector<double> zb = ZNormalized(b);
  double ncc = BestAlignment(za, zb, nullptr);
  return 1.0 - ncc;
}

Result<KShapeResult> KShape(const std::vector<std::vector<double>>& series,
                            const KShapeOptions& options) {
  if (series.empty()) {
    return Status::InvalidArgument("KShape requires a non-empty input");
  }
  if (options.k < 1 || static_cast<size_t>(options.k) > series.size()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  size_t dim = series[0].size();
  for (const auto& s : series) {
    if (s.size() != dim) {
      return Status::InvalidArgument("KShape inputs must share one length");
    }
  }

  std::vector<std::vector<double>> normalized;
  normalized.reserve(series.size());
  for (const auto& s : series) normalized.push_back(ZNormalized(s));

  Rng rng(options.seed);
  KShapeResult result;
  result.assignments.assign(series.size(), 0);
  for (auto& a : result.assignments) {
    a = static_cast<int>(rng.Index(static_cast<size_t>(options.k)));
  }
  result.centroids.assign(static_cast<size_t>(options.k),
                          std::vector<double>(dim, 0.0));

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Refine centroids.
    for (int c = 0; c < options.k; ++c) {
      std::vector<const std::vector<double>*> members;
      for (size_t i = 0; i < normalized.size(); ++i) {
        if (result.assignments[i] == c) members.push_back(&normalized[i]);
      }
      if (members.empty()) {
        result.centroids[static_cast<size_t>(c)] =
            normalized[rng.Index(normalized.size())];
        continue;
      }
      const std::vector<double>& ref =
          Mean(result.centroids[static_cast<size_t>(c)]) == 0.0 &&
                  Stddev(result.centroids[static_cast<size_t>(c)]) < 1e-12
              ? *members[0]
              : result.centroids[static_cast<size_t>(c)];
      result.centroids[static_cast<size_t>(c)] = ExtractShape(
          members, ref, options.power_iterations, &rng);
    }

    // Reassign.
    bool changed = false;
    for (size_t i = 0; i < normalized.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = result.assignments[i];
      for (int c = 0; c < options.k; ++c) {
        double d = 1.0 - BestAlignment(result.centroids[static_cast<size_t>(c)],
                                       normalized[i], nullptr);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (best_c != result.assignments[i]) {
        result.assignments[i] = best_c;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed) break;
  }
  return result;
}

}  // namespace privshape::eval
