#ifndef PRIVSHAPE_COMMON_CSV_H_
#define PRIVSHAPE_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace privshape {

/// Minimal CSV writer used by the bench harness to dump table/figure data
/// (one file per experiment when PRIVSHAPE_CSV_DIR is set). Cells are
/// RFC-4180 quoted on the way out, so commas, quotes, and newlines inside
/// a cell survive a round trip through ParseCsvString.
class CsvWriter {
 public:
  /// Opens `path` for writing; check `ok()` before use.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.is_open(); }

  /// Writes a header row.
  void WriteHeader(const std::vector<std::string>& columns);

  /// Writes one row of mixed values already rendered as strings.
  void WriteRow(const std::vector<std::string>& cells);

  /// Convenience: renders doubles with 6 significant digits.
  void WriteRow(const std::vector<double>& cells);

 private:
  std::ofstream out_;
};

/// RFC-4180 quoting: returns `cell` unchanged unless it contains a comma,
/// double quote, CR, or LF — or starts with a UTF-8 BOM, which must be
/// quoted so ParseCsvString's file-level BOM strip cannot eat it — in
/// which case it is wrapped in quotes with embedded quotes doubled.
std::string EscapeCsvCell(const std::string& cell);

/// Parses CSV `text` into rows of cells, RFC-4180 style: a leading UTF-8
/// BOM is stripped, records end at LF or CRLF, quoted cells may contain
/// commas, doubled quotes, and newlines. Blank records are skipped (a
/// trailing newline does not produce a phantom row). Stray quotes inside
/// an unquoted cell, text after a closing quote, and an unterminated
/// quote are InvalidArgument.
Result<std::vector<std::vector<std::string>>> ParseCsvString(
    const std::string& text);

/// Parses a CSV file of doubles through ParseCsvString. Every cell must
/// be exactly one number (trailing junk is rejected, not truncated) and
/// every row must have the same number of cells as the first — ragged
/// files are an InvalidArgument, not a silently misshapen matrix.
Result<std::vector<std::vector<double>>> ReadCsvDoubles(
    const std::string& path);

/// Renders a double compactly for CSV/console output.
std::string FormatDouble(double v, int precision = 6);

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_CSV_H_
