#include "protocol/messages.h"

#include "protocol/codec.h"

namespace privshape::proto {

std::string EncodeReport(const Report& report) {
  std::string out;
  EncodeReportTo(report, &out);
  return out;
}

void EncodeReportTo(const Report& report, std::string* out) {
  Encoder enc(out);
  enc.PutVarint(kWireVersion);
  enc.PutVarint(static_cast<uint64_t>(report.kind));
  enc.PutVarint(report.level);
  enc.PutVarint(report.value);
  enc.PutBytes(report.bits);
}

void ReportBatch::Append(const Report& report) {
  EncodeReportTo(report, &buffer_);
  ends_.push_back(buffer_.size());
}

Result<Report> DecodeReport(std::string_view buffer) {
  Decoder dec(buffer);
  auto version = dec.GetVarint();
  if (!version.ok()) return version.status();
  if (*version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  auto kind = dec.GetVarint();
  if (!kind.ok()) return kind.status();
  if (*kind < 1 || *kind > 4) {
    return Status::InvalidArgument("unknown report kind");
  }
  Report report;
  report.kind = static_cast<ReportKind>(*kind);
  auto level = dec.GetVarint();
  if (!level.ok()) return level.status();
  report.level = *level;
  auto value = dec.GetVarint();
  if (!value.ok()) return value.status();
  report.value = *value;
  auto bits = dec.GetBytes();
  if (!bits.ok()) return bits.status();
  report.bits = std::move(*bits);
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after report");
  }
  return report;
}

std::string EncodeCandidateRequest(const CandidateRequest& request) {
  Encoder enc;
  enc.PutVarint(kWireVersion);
  enc.PutVarint(request.level);
  enc.PutDouble(request.epsilon);
  enc.PutVarint(request.candidates.size());
  for (const auto& candidate : request.candidates) {
    enc.PutBytes(candidate);
  }
  return enc.Release();
}

Result<CandidateRequest> DecodeCandidateRequest(std::string_view buffer) {
  Decoder dec(buffer);
  auto version = dec.GetVarint();
  if (!version.ok()) return version.status();
  if (*version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  CandidateRequest request;
  auto level = dec.GetVarint();
  if (!level.ok()) return level.status();
  request.level = *level;
  auto epsilon = dec.GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  request.epsilon = *epsilon;
  auto count = dec.GetVarint();
  if (!count.ok()) return count.status();
  for (uint64_t i = 0; i < *count; ++i) {
    auto candidate = dec.GetBytes();
    if (!candidate.ok()) return candidate.status();
    request.candidates.push_back(std::move(*candidate));
  }
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request");
  }
  return request;
}

}  // namespace privshape::proto
