#include "trie/trie.h"

#include <algorithm>

namespace privshape::trie {

Result<CandidateTrie> CandidateTrie::Create(int alphabet_size) {
  if (alphabet_size < 2 || alphabet_size > 26) {
    return Status::InvalidArgument("alphabet size must be in [2, 26]");
  }
  return CandidateTrie(alphabet_size);
}

int CandidateTrie::AddChild(int parent, Symbol symbol) {
  Node node;
  node.symbol = symbol;
  node.parent = parent;
  node.depth = nodes_[static_cast<size_t>(parent)].depth + 1;
  nodes_.push_back(node);
  return static_cast<int>(nodes_.size()) - 1;
}

size_t CandidateTrie::ExpandRoot() {
  std::vector<int> next;
  next.reserve(static_cast<size_t>(t_));
  for (int s = 0; s < t_; ++s) {
    next.push_back(AddChild(0, static_cast<Symbol>(s)));
  }
  frontier_ = std::move(next);
  depth_ = 1;
  return frontier_.size();
}

size_t CandidateTrie::ExpandAll() {
  std::vector<int> next;
  for (int id : frontier_) {
    Symbol last = nodes_[static_cast<size_t>(id)].symbol;
    for (int s = 0; s < t_; ++s) {
      if (!allow_repeats_ && depth_ > 0 && static_cast<Symbol>(s) == last) {
        continue;
      }
      next.push_back(AddChild(id, static_cast<Symbol>(s)));
    }
  }
  size_t created = next.size();
  frontier_ = std::move(next);
  ++depth_;
  return created;
}

size_t CandidateTrie::ExpandWithTransitions(
    const std::set<Transition>& allowed) {
  std::vector<int> next;
  for (int id : frontier_) {
    Symbol last = nodes_[static_cast<size_t>(id)].symbol;
    for (int s = 0; s < t_; ++s) {
      Symbol b = static_cast<Symbol>(s);
      if (!allow_repeats_ && b == last) continue;
      if (!allowed.count({last, b})) continue;
      next.push_back(AddChild(id, b));
    }
  }
  size_t created = next.size();
  frontier_ = std::move(next);
  ++depth_;
  return created;
}

Sequence CandidateTrie::PathTo(int node) const {
  Sequence out;
  int cur = node;
  while (cur > 0) {
    const Node& n = nodes_[static_cast<size_t>(cur)];
    out.push_back(n.symbol);
    cur = n.parent;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<Sequence> CandidateTrie::FrontierCandidates() const {
  std::vector<Sequence> out;
  out.reserve(frontier_.size());
  for (int id : frontier_) out.push_back(PathTo(id));
  return out;
}

Status CandidateTrie::SetFrequency(int node, double frequency) {
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size()) {
    return Status::OutOfRange("node id out of range");
  }
  nodes_[static_cast<size_t>(node)].frequency = frequency;
  return Status::Ok();
}

double CandidateTrie::Frequency(int node) const {
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size()) return 0.0;
  return nodes_[static_cast<size_t>(node)].frequency;
}

size_t CandidateTrie::PruneBelowThreshold(double threshold) {
  size_t before = frontier_.size();
  frontier_.erase(
      std::remove_if(frontier_.begin(), frontier_.end(),
                     [&](int id) {
                       return nodes_[static_cast<size_t>(id)].frequency <
                              threshold;
                     }),
      frontier_.end());
  return before - frontier_.size();
}

size_t CandidateTrie::PruneToTopK(size_t k) {
  if (frontier_.size() <= k) return 0;
  std::vector<int> sorted = frontier_;
  std::stable_sort(sorted.begin(), sorted.end(), [&](int a, int b) {
    return nodes_[static_cast<size_t>(a)].frequency >
           nodes_[static_cast<size_t>(b)].frequency;
  });
  sorted.resize(k);
  // Preserve original frontier order for determinism of candidate lists.
  std::set<int> keep(sorted.begin(), sorted.end());
  size_t before = frontier_.size();
  frontier_.erase(std::remove_if(frontier_.begin(), frontier_.end(),
                                 [&](int id) { return !keep.count(id); }),
                  frontier_.end());
  return before - frontier_.size();
}

}  // namespace privshape::trie
