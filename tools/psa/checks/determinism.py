"""Check: report-path determinism.

Collector output must be byte-identical to core::PrivShape for any
shard/thread/SIMD configuration (Algorithm 2 parity), so nothing on the
path from a client word to an aggregated count may depend on wall-clock
time, process-global RNG state, pointer-keyed iteration order, or
locale/float-text round-trips.

Scope:
  * module-wide in src/core, src/ldp, src/distance, src/protocol —
    these layers are deterministic by contract, top to bottom;
  * in src/collector, inside PS_REPORT_PATH functions only (the daemon
    legitimately reads clocks for deadlines and metrics).

Banned constructs:
  * wall-clock reads: system_clock / steady_clock /
    high_resolution_clock / gettimeofday / clock_gettime / strftime ...
  * process-global randomness: std::rand, srand, random_device,
    random_shuffle, and any local mt19937 construction outside
    common/rng.h (the one blessed engine wrapper);
  * std::unordered_map / unordered_set in result-feeding code: their
    iteration order is hash/pointer dependent and has fed shape output
    bugs in other LDP reproductions — ordered containers only;
  * float/text round-trips outside the codec: stod/stof/strtod/atof and
    printf-style float formatting re-parse decimal text, whose
    round-trip behavior is locale- and libc-dependent. Binary
    serialization lives in src/protocol/codec.cc, which is exempt.
"""

import re

from .. import ir

CHECK_ID = "psa-determinism"
DESCRIPTION = ("report paths are wall-clock-free, hash-order-free and "
               "float-text-free so shapes stay byte-identical across "
               "shard/thread/SIMD configurations")

STRICT_MODULES = {"core", "ldp", "distance", "protocol"}
REPORT_PATH_MODULES = {"collector"}
# The binary codec is the one place bytes <-> values conversion lives.
EXEMPT_FILES = {"src/protocol/codec.cc", "src/protocol/codec.h"}

CLOCKS = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "localtime", "gmtime", "strftime",
    "timespec_get",
}
GLOBAL_RANDOM = {"rand", "srand", "random_device", "random_shuffle",
                 "default_random_engine"}
LOCAL_ENGINES = {"mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
                 "ranlux24", "ranlux48", "knuth_b"}
UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
             "unordered_multiset"}
FLOAT_TEXT = {"stod", "stof", "stold", "strtod", "strtof", "strtold",
              "atof", "sprintf", "snprintf", "sscanf"}

_FLOAT_FMT_RE = re.compile(r"%[-+ #0-9.*hlLqjzt]*[fFeEgGaA]")


def run(files, registry):
    findings = []
    report_spans = {}
    for fn in registry.functions:
        if fn.is_report_path() and fn.body is not None:
            report_spans.setdefault(fn.path, []).append(
                (fn.src, fn.body))
    for src in files:
        module = src.module
        if src.path in EXEMPT_FILES:
            continue
        if module in STRICT_MODULES:
            findings.extend(_scan(src, range(len(src.tokens))))
        elif module in REPORT_PATH_MODULES:
            for _, (start, end) in report_spans.get(src.path, []):
                findings.extend(_scan(src, range(start, end)))
    return findings


def _scan(src, indices):
    findings = []
    tokens = src.tokens
    for i in indices:
        t = tokens[i]
        if t.kind == ir.IDENT:
            if t.text in CLOCKS:
                findings.append(_f(src, t, f"wall-clock read '{t.text}'"))
            elif t.text in GLOBAL_RANDOM:
                findings.append(_f(
                    src, t, f"process-global randomness '{t.text}' — use "
                    "a seeded privshape::Rng"))
            elif t.text in LOCAL_ENGINES:
                findings.append(_f(
                    src, t, f"local '{t.text}' engine construction — the "
                    "one engine wrapper lives in common/rng.h"))
            elif t.text in UNORDERED:
                findings.append(_f(
                    src, t, f"'{t.text}' in deterministic code — hash "
                    "iteration order may feed shapes/aggregation; use an "
                    "ordered container"))
            elif t.text in FLOAT_TEXT:
                findings.append(_f(
                    src, t, f"float/text round-trip '{t.text}' outside "
                    "the codec — decimal re-parsing is locale/libc "
                    "dependent"))
        elif t.kind == ir.STRING and _FLOAT_FMT_RE.search(t.text):
            # A %f/%g/%e conversion in a format literal is formatting a
            # float as text; only flag when a printf-family identifier
            # is nearby to avoid punishing log message text.
            window = tokens[max(0, i - 4):i]
            if any(w.kind == ir.IDENT and "printf" in w.text
                   for w in window):
                findings.append(_f(
                    src, t, "printf-style float formatting outside the "
                    "codec"))
    return findings


def _f(src, tok, message):
    return ir.Finding(CHECK_ID, src.path, tok.line, message)
