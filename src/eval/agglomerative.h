#ifndef PRIVSHAPE_EVAL_AGGLOMERATIVE_H_
#define PRIVSHAPE_EVAL_AGGLOMERATIVE_H_

#include <vector>

#include "common/status.h"

namespace privshape::eval {

enum class Linkage { kSingle, kComplete, kAverage };

/// Agglomerative hierarchical clustering over a precomputed (symmetric)
/// distance matrix, cut at `k` clusters. PrivShape's post-processing step
/// uses this to group similar candidate shapes so near-duplicates do not
/// crowd out distinct frequent shapes (§IV-C).
Result<std::vector<int>> AgglomerativeCluster(
    const std::vector<std::vector<double>>& distance_matrix, int k,
    Linkage linkage = Linkage::kAverage);

}  // namespace privshape::eval

#endif  // PRIVSHAPE_EVAL_AGGLOMERATIVE_H_
