#include "ldp/olh.h"

#include <cmath>
#include <limits>

namespace privshape::ldp {

namespace {
/// splitmix64: cheap, well-mixed 64-bit hash.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Result<Olh> Olh::Create(size_t domain_size, double epsilon) {
  if (domain_size < 2) {
    return Status::InvalidArgument("OLH domain must have >= 2 values");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  size_t g = static_cast<size_t>(std::floor(std::exp(epsilon))) + 1;
  g = std::max<size_t>(g, 2);
  double e = std::exp(epsilon);
  double p = e / (e + static_cast<double>(g) - 1.0);
  return Olh(domain_size, epsilon, g, p);
}

size_t Olh::HashToBucket(size_t value, uint64_t seed) const {
  return static_cast<size_t>(SplitMix64(seed ^ SplitMix64(value)) % g_);
}

PS_RNG_CANONICAL
std::pair<uint64_t, size_t> Olh::PerturbValue(size_t value, Rng* rng) const {
  uint64_t seed = static_cast<uint64_t>(rng->UniformInt(
      0, std::numeric_limits<int64_t>::max()));
  size_t bucket = HashToBucket(value, seed);
  size_t report;
  if (rng->Bernoulli(p_)) {
    report = bucket;
  } else {
    size_t r = rng->Index(g_ - 1);
    report = r >= bucket ? r + 1 : r;
  }
  return {seed, report};
}

PS_RNG_CANONICAL
Status Olh::SubmitUser(size_t value, Rng* rng) {
  if (value >= d_) return Status::OutOfRange("OLH input outside domain");
  reports_.push_back(PerturbValue(value, rng));
  return Status::Ok();
}

std::vector<double> Olh::EstimateCounts() const {
  // Support counting: value v is "supported" by report (seed, y) when
  // H(v, seed) == y. E[support_v] = n_v * p + (n - n_v) / g.
  std::vector<double> support(d_, 0.0);
  for (const auto& [seed, y] : reports_) {
    for (size_t v = 0; v < d_; ++v) {
      if (HashToBucket(v, seed) == y) support[v] += 1.0;
    }
  }
  double n = static_cast<double>(reports_.size());
  double one_over_g = 1.0 / static_cast<double>(g_);
  std::vector<double> out(d_);
  for (size_t v = 0; v < d_; ++v) {
    out[v] = (support[v] - n * one_over_g) / (p_ - one_over_g);
  }
  return out;
}

void Olh::Reset() { reports_.clear(); }

}  // namespace privshape::ldp
