/// \file
/// Per-round / per-stage / per-connection trace spans, emitted as Chrome
/// trace-event JSON (the `chrome://tracing` / Perfetto "traceEvents"
/// array of "X" complete events). A TraceRecorder buffers spans in
/// memory — recording is one mutex-guarded vector append, cheap at span
/// granularity (spans are rounds and connections, never per-report) —
/// and writes the file once at the end of the run.
///
/// Tracing is opt-in per process: when no recorder is installed
/// (`SetGlobalTrace(nullptr)`, the default), every TraceSpan constructed
/// against GlobalTrace() is a null span and the cost is one relaxed
/// atomic load.

#ifndef PRIVSHAPE_TELEMETRY_TRACE_H_
#define PRIVSHAPE_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace privshape::telemetry {

/// One completed span ("ph":"X"): [start, start+duration) on a thread.
struct TraceEvent {
  std::string name;      ///< e.g. "Pa", "conn.3", "broadcast"
  std::string category;  ///< e.g. "round", "connection", "client"
  double start_us = 0.0;
  double duration_us = 0.0;
  uint64_t tid = 0;
};

/// Monotonic timestamp in microseconds (steady clock) — the time base of
/// every span in a trace file.
double TraceNowUs();

/// Collects spans and serializes them as chrome://tracing JSON.
/// Thread-safe: any thread may record; WriteJson may run concurrently
/// with recording (it snapshots under the same mutex).
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Records one completed span; `start_us` from TraceNowUs() at the
  /// span's start. The calling thread's id is attached automatically.
  void RecordSpan(std::string_view name, std::string_view category,
                  double start_us, double end_us) PS_EXCLUDES(mu_);

  /// Records an instant event ("ph":"i", e.g. a connection drop).
  void RecordInstant(std::string_view name, std::string_view category)
      PS_EXCLUDES(mu_);

  size_t size() const PS_EXCLUDES(mu_);

  /// Serializes {"traceEvents": [...]} — loadable by chrome://tracing and
  /// Perfetto. `pid` defaults to the real process id so traces from a
  /// daemon and its loadgen can be concatenated and stay distinguishable.
  std::string ToJson() const PS_EXCLUDES(mu_);
  Status WriteJson(const std::string& path) const PS_EXCLUDES(mu_);

 private:
  struct Instant {
    std::string name;
    std::string category;
    double at_us = 0.0;
    uint64_t tid = 0;
  };

  mutable Mutex mu_;
  std::vector<TraceEvent> events_ PS_GUARDED_BY(mu_);
  std::vector<Instant> instants_ PS_GUARDED_BY(mu_);
};

/// Installs (or clears, with nullptr) the process-global recorder that
/// GlobalTrace() returns. The caller keeps ownership and must clear it
/// before destroying the recorder.
void SetGlobalTrace(TraceRecorder* recorder);
TraceRecorder* GlobalTrace();

/// RAII span: records [construction, destruction) into `recorder` when it
/// is non-null, and is a no-op otherwise. Close() ends the span early.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string_view name,
            std::string_view category)
      : recorder_(recorder), start_us_(recorder ? TraceNowUs() : 0.0) {
    if (recorder_ != nullptr) {
      name_.assign(name);
      category_.assign(category);
    }
  }
  ~TraceSpan() { Close(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Close() {
    if (recorder_ == nullptr) return;
    recorder_->RecordSpan(name_, category_, start_us_, TraceNowUs());
    recorder_ = nullptr;
  }

 private:
  TraceRecorder* recorder_;
  double start_us_;
  std::string name_;
  std::string category_;
};

/// CLI plumbing for `--trace FILE`: installs a global recorder for this
/// object's lifetime and writes the chrome://tracing JSON on destruction.
/// An empty path disables everything (no recorder installed, no file).
class ScopedTraceFile {
 public:
  explicit ScopedTraceFile(std::string path);
  ~ScopedTraceFile();

  ScopedTraceFile(const ScopedTraceFile&) = delete;
  ScopedTraceFile& operator=(const ScopedTraceFile&) = delete;

  bool enabled() const { return !path_.empty(); }

 private:
  TraceRecorder recorder_;
  std::string path_;
};

}  // namespace privshape::telemetry

#endif  // PRIVSHAPE_TELEMETRY_TRACE_H_
