#ifndef PRIVSHAPE_LDP_EXPONENTIAL_H_
#define PRIVSHAPE_LDP_EXPONENTIAL_H_

#include <vector>

#include "common/analysis_annotations.h"
#include "common/rng.h"
#include "common/status.h"

namespace privshape::ldp {

/// Exponential Mechanism (McSherry & Talwar, FOCS'07) specialized for
/// user-side candidate selection (the paper's Eq. (2)):
///
///   Pr[output = j] = exp(eps * S_j / (2 * delta)) / sum_z exp(...)
///
/// Scores are expected to lie in [0, 1] (delta = 1); selecting over the
/// local user's own data makes the selection eps-LDP because any two users'
/// score vectors shift each candidate's utility by at most delta.
class ExponentialMechanism {
 public:
  static Result<ExponentialMechanism> Create(double epsilon,
                                             double sensitivity = 1.0);

  /// Samples a candidate index under the EM distribution.
  PS_RNG_CANONICAL
  Result<size_t> Select(const std::vector<double>& scores, Rng* rng) const;

  /// Allocation-free variant for hot loops: the probability vector is
  /// built in `*probs_scratch` (resized, contents overwritten). Consumes
  /// the same Rng draws as Select(), so both paths pick identically.
  PS_RNG_CANONICAL
  Result<size_t> Select(const std::vector<double>& scores, Rng* rng,
                        std::vector<double>* probs_scratch) const;

  /// The exact selection distribution; exercised by the privacy tests
  /// (verifying Pr ratios across neighboring score vectors <= e^eps).
  Result<std::vector<double>> SelectionProbabilities(
      const std::vector<double>& scores) const;

  /// In-place SelectionProbabilities: fills `*probs` (resized), reusing
  /// its capacity. Bit-identical values to the allocating overload.
  Status SelectionProbabilitiesInto(const std::vector<double>& scores,
                                    std::vector<double>* probs) const;

  double epsilon() const { return epsilon_; }

 private:
  ExponentialMechanism(double epsilon, double sensitivity)
      : epsilon_(epsilon), sensitivity_(sensitivity) {}

  double epsilon_;
  double sensitivity_;
};

/// Converts candidate distances into EM scores in [0, 1]:
/// S_j = (d_max - d_j) / (d_max - d_min); all-equal distances score 1.
/// This realizes the paper's "S proportional to 1/dist, normalized" intent
/// while staying bounded for zero distances.
std::vector<double> ScoresFromDistances(const std::vector<double>& distances);

/// In-place ScoresFromDistances: fills `*scores` (resized), reusing its
/// capacity — the per-user selection path calls this once per report, so
/// the allocating form would dominate the hot loop. Bit-identical values.
void ScoresFromDistancesInto(const std::vector<double>& distances,
                             std::vector<double>* scores);

}  // namespace privshape::ldp

#endif  // PRIVSHAPE_LDP_EXPONENTIAL_H_
