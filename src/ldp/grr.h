#ifndef PRIVSHAPE_LDP_GRR_H_
#define PRIVSHAPE_LDP_GRR_H_

#include <vector>

#include "common/analysis_annotations.h"
#include "ldp/frequency_oracle.h"

namespace privshape::ldp {

/// Generalized Randomized Response (Wang et al., USENIX Security'17).
///
/// Reports the true value with p = e^eps / (e^eps + d - 1) and any specific
/// other value with q = 1 / (e^eps + d - 1); p/q = e^eps gives eps-LDP.
/// Count estimates are debiased as (n_v - n*q) / (p - q).
class Grr : public FrequencyOracle {
 public:
  /// Fails unless d >= 2 and eps > 0.
  static Result<Grr> Create(size_t domain_size, double epsilon);

  /// One local perturbation; exposed for direct testing of the mechanism's
  /// transition probabilities. Consumes exactly two raw engine words
  /// (keep test, then the flip target) — the canonical GRR consumption
  /// order shared by every path that produces a GRR report.
  PS_RNG_WORDS(2)
  size_t PerturbValue(size_t value, Rng* rng) const;

  /// P[output = y | input = x]; used by the eps-LDP property tests.
  double TransitionProbability(size_t x, size_t y) const;

  PS_RNG_WORDS(2)
  Status SubmitUser(size_t value, Rng* rng) override;
  std::vector<double> EstimateCounts() const override;
  void Reset() override;

  size_t domain_size() const override { return d_; }
  double epsilon() const override { return epsilon_; }
  size_t num_reports() const override { return n_; }

  double p() const { return p_; }
  double q() const { return q_; }

 private:
  Grr(size_t d, double epsilon, double p, double q)
      : d_(d),
        epsilon_(epsilon),
        p_(p),
        q_(q),
        keep_threshold_(ThresholdForProbability(p)),
        counts_(d, 0) {}

  size_t d_;
  double epsilon_;
  double p_;
  double q_;
  uint64_t keep_threshold_;  ///< raw-u64 acceptance bound for p_
  std::vector<size_t> counts_;
  size_t n_ = 0;
};

}  // namespace privshape::ldp

#endif  // PRIVSHAPE_LDP_GRR_H_
