#include "core/pem.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "core/population.h"
#include "ldp/grr.h"

namespace privshape::core {

namespace {

/// All `gamma`-symbol extensions of `prefix` (respecting the compression
/// invariant unless repeats are allowed).
void ExtendPrefix(const Sequence& prefix, int remaining, int t,
                  bool allow_repeats, Sequence* scratch,
                  std::vector<Sequence>* out) {
  if (remaining == 0) {
    Sequence candidate = prefix;
    candidate.insert(candidate.end(), scratch->begin(), scratch->end());
    out->push_back(std::move(candidate));
    return;
  }
  Symbol last = scratch->empty()
                    ? (prefix.empty() ? 255 : prefix.back())
                    : scratch->back();
  for (int s = 0; s < t; ++s) {
    Symbol sym = static_cast<Symbol>(s);
    if (!allow_repeats && sym == last) continue;
    scratch->push_back(sym);
    ExtendPrefix(prefix, remaining - 1, t, allow_repeats, scratch, out);
    scratch->pop_back();
  }
}

}  // namespace

Status PemConfig::Validate() const {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (t < 2 || t > 26) {
    return Status::InvalidArgument("alphabet size must be in [2, 26]");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (keep < static_cast<size_t>(k)) {
    return Status::InvalidArgument("keep must be >= k");
  }
  if (gamma < 1) return Status::InvalidArgument("gamma must be >= 1");
  if (ell < 1) return Status::InvalidArgument("ell must be >= 1");
  return Status::Ok();
}

Result<MechanismResult> PemMiner::Run(
    const std::vector<Sequence>& sequences) const {
  PRIVSHAPE_RETURN_IF_ERROR(config_.Validate());
  if (sequences.empty()) return Status::InvalidArgument("empty dataset");

  Rng rng(config_.seed);
  MechanismResult result;
  result.frequent_length = config_.ell;

  int rounds = (config_.ell + config_.gamma - 1) / config_.gamma;
  std::vector<size_t> users(sequences.size());
  std::iota(users.begin(), users.end(), 0);
  rng.Shuffle(&users);
  std::vector<std::vector<size_t>> groups =
      PartitionGroups(users, static_cast<size_t>(rounds));

  std::vector<std::pair<Sequence, double>> survivors = {{Sequence{}, 0.0}};
  int current_len = 0;

  for (int round = 0; round < rounds; ++round) {
    int step = std::min(config_.gamma, config_.ell - current_len);
    // Candidate set: every surviving prefix extended by `step` symbols.
    std::vector<Sequence> candidates;
    for (const auto& [prefix, _] : survivors) {
      Sequence scratch;
      ExtendPrefix(prefix, step, config_.t, config_.allow_repeats, &scratch,
                   &candidates);
    }
    if (candidates.empty()) {
      return Status::Internal("PEM produced no candidates");
    }
    current_len += step;

    // Index for exact prefix lookup; "other" = last bucket.
    std::map<Sequence, size_t> index;
    for (size_t i = 0; i < candidates.size(); ++i) index[candidates[i]] = i;
    size_t domain = candidates.size() + 1;
    auto grr = ldp::Grr::Create(std::max<size_t>(domain, 2), config_.epsilon);
    if (!grr.ok()) return grr.status();

    for (size_t user : groups[static_cast<size_t>(round)]) {
      const Sequence& word = sequences[user];
      size_t value = candidates.size();  // "other"
      if (word.size() >= static_cast<size_t>(current_len)) {
        Sequence prefix(word.begin(), word.begin() + current_len);
        auto it = index.find(prefix);
        if (it != index.end()) value = it->second;
      }
      PRIVSHAPE_RETURN_IF_ERROR(grr->SubmitUser(value, &rng));
    }
    PRIVSHAPE_RETURN_IF_ERROR(result.accountant.Charge(
        "PEM.round" + std::to_string(round), config_.epsilon));

    std::vector<double> counts = grr->EstimateCounts();
    std::vector<size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return counts[a] > counts[b];
    });
    size_t keep = std::min(config_.keep, order.size());
    survivors.clear();
    for (size_t i = 0; i < keep; ++i) {
      survivors.push_back({candidates[order[i]], counts[order[i]]});
    }
  }

  size_t emit = std::min(static_cast<size_t>(config_.k), survivors.size());
  for (size_t i = 0; i < emit; ++i) {
    ShapeCandidate cand;
    cand.shape = survivors[i].first;
    cand.frequency = survivors[i].second;
    result.shapes.push_back(std::move(cand));
  }
  PRIVSHAPE_RETURN_IF_ERROR(
      result.accountant.CheckWithinBudget(config_.epsilon));
  return result;
}

}  // namespace privshape::core
