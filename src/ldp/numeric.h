#ifndef PRIVSHAPE_LDP_NUMERIC_H_
#define PRIVSHAPE_LDP_NUMERIC_H_

#include "common/analysis_annotations.h"
#include "common/rng.h"
#include "common/status.h"

namespace privshape::ldp {

/// Unbiased eps-LDP perturbation of a single numeric value in [-1, 1].
/// PatternLDP's value perturbation is built on these primitives.
class NumericMechanism {
 public:
  virtual ~NumericMechanism() = default;

  /// Perturbs v (clamped to [-1,1]); E[Perturb(v)] = v for PM/Duchi/Laplace.
  PS_RNG_CANONICAL
  virtual double Perturb(double value, Rng* rng) const = 0;

  virtual double epsilon() const = 0;
};

/// Piecewise Mechanism (Wang et al., ICDE'19). Output domain is
/// [-C, C] with C = (e^{eps/2} + 1) / (e^{eps/2} - 1); a high-probability
/// band of width C-1 is centered near the true value.
class PiecewiseMechanism : public NumericMechanism {
 public:
  static Result<PiecewiseMechanism> Create(double epsilon);

  PS_RNG_CANONICAL
  double Perturb(double value, Rng* rng) const override;
  double epsilon() const override { return epsilon_; }

  /// Output-range half-width C; exposed for tests.
  double output_bound() const { return c_; }

  /// Worst-case density ratio between any two inputs at any output;
  /// equals e^eps — used by the privacy property test.
  double DensityAt(double input, double output) const;

 private:
  explicit PiecewiseMechanism(double epsilon);

  double epsilon_;
  double e_half_;  // e^{eps/2}
  double c_;       // output bound
};

/// Duchi et al.'s binary mechanism: outputs +/- C' with
/// C' = (e^eps + 1)/(e^eps - 1), unbiased for v in [-1, 1].
class DuchiMechanism : public NumericMechanism {
 public:
  static Result<DuchiMechanism> Create(double epsilon);

  PS_RNG_CANONICAL
  double Perturb(double value, Rng* rng) const override;
  double epsilon() const override { return epsilon_; }
  double output_magnitude() const { return c_; }

 private:
  explicit DuchiMechanism(double epsilon);

  double epsilon_;
  double c_;
};

/// Laplace mechanism on [-1, 1] (sensitivity 2): v + Lap(2/eps).
class LaplaceMechanism : public NumericMechanism {
 public:
  static Result<LaplaceMechanism> Create(double epsilon);

  PS_RNG_CANONICAL
  double Perturb(double value, Rng* rng) const override;
  double epsilon() const override { return epsilon_; }

 private:
  explicit LaplaceMechanism(double epsilon) : epsilon_(epsilon) {}

  double epsilon_;
};

}  // namespace privshape::ldp

#endif  // PRIVSHAPE_LDP_NUMERIC_H_
