// End-to-end tests: raw synthetic datasets -> Compressive SAX -> mechanisms
// -> downstream clustering/classification, mirroring the paper's §V
// pipelines at laptop scale.

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/classification.h"
#include "core/pipeline.h"
#include "core/privshape.h"
#include "eval/ari.h"
#include "eval/shape_matching.h"
#include "patternldp/pattern_ldp.h"
#include "series/generators.h"

namespace privshape {
namespace {

core::MechanismConfig TraceConfig() {
  core::MechanismConfig config;
  config.epsilon = 4.0;
  config.t = 4;
  config.k = 3;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 10;
  config.metric = dist::Metric::kSed;
  config.seed = 2023;
  return config;
}

core::TransformOptions TraceTransform() {
  core::TransformOptions options;
  options.t = 4;
  options.w = 10;
  return options;
}

TEST(IntegrationTest, PrivShapeClusteringRecoversTraceClasses) {
  series::GeneratorOptions gen;
  gen.num_instances = 3000;
  gen.seed = 11;
  auto dataset = series::MakeTraceDataset(gen);
  auto sequences = core::TransformDataset(dataset, TraceTransform());
  ASSERT_TRUE(sequences.ok());

  core::PrivShape mech(TraceConfig());
  auto result = mech.Run(*sequences);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->shapes.size(), 2u);

  // Use extracted shapes as cluster centroids (paper's §V-C protocol).
  std::vector<Sequence> shapes;
  for (const auto& s : result->shapes) shapes.push_back(s.shape);
  auto assignments =
      eval::AssignToNearestShape(*sequences, shapes, dist::Metric::kSed);
  ASSERT_TRUE(assignments.ok());
  std::vector<int> truth;
  for (const auto& inst : dataset.instances) truth.push_back(inst.label);
  auto ari = eval::AdjustedRandIndex(truth, *assignments);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.3) << "PrivShape clustering should beat chance clearly";
}

TEST(IntegrationTest, PrivShapeClassificationBeatsChanceOnTrace) {
  series::GeneratorOptions gen;
  gen.num_instances = 3000;
  gen.seed = 12;
  auto dataset = series::MakeTraceDataset(gen);
  series::Dataset train, test;
  series::TrainTestSplit(dataset, 0.8, 5, &train, &test);

  auto train_seqs = core::TransformDataset(train, TraceTransform());
  auto test_seqs = core::TransformDataset(test, TraceTransform());
  ASSERT_TRUE(train_seqs.ok());
  ASSERT_TRUE(test_seqs.ok());

  core::MechanismConfig config = TraceConfig();
  config.num_classes = 3;
  core::PrivShape mech(config);
  std::vector<int> train_labels;
  for (const auto& inst : train.instances) {
    train_labels.push_back(inst.label);
  }
  auto shapes =
      core::PrivShapeLabeledShapes(mech, *train_seqs, train_labels);
  ASSERT_TRUE(shapes.ok()) << shapes.status();

  auto clf = eval::NearestShapeClassifier::Create(*shapes,
                                                  dist::Metric::kSed);
  ASSERT_TRUE(clf.ok());
  std::vector<int> truth, preds;
  for (const auto& inst : test.instances) truth.push_back(inst.label);
  preds = clf->ClassifyBatch(*test_seqs);
  auto acc = eval::Accuracy(truth, preds);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.5) << "3-class task; chance is 0.33";
}

TEST(IntegrationTest, BaselinePerClassShapesClassify) {
  series::GeneratorOptions gen;
  gen.num_instances = 2400;
  gen.seed = 13;
  auto dataset = series::MakeTraceDataset(gen);
  auto sequences = core::TransformDataset(dataset, TraceTransform());
  ASSERT_TRUE(sequences.ok());
  std::vector<int> labels;
  for (const auto& inst : dataset.instances) labels.push_back(inst.label);

  core::MechanismConfig config = TraceConfig();
  config.baseline_threshold = 5.0;
  core::BaselineMechanism mech(config);
  auto shapes = core::ExtractShapesPerClass(mech, *sequences, labels, 3,
                                            /*shapes_per_class=*/1);
  ASSERT_TRUE(shapes.ok()) << shapes.status();
  EXPECT_GE(shapes->size(), 2u);

  auto clf =
      eval::NearestShapeClassifier::Create(*shapes, dist::Metric::kSed);
  ASSERT_TRUE(clf.ok());
  auto preds = clf->ClassifyBatch(*sequences);
  auto acc = eval::Accuracy(labels, preds);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.5);
}

TEST(IntegrationTest, PrivShapeBeatsPatternLdpOnClusteringShape) {
  // The paper's headline comparison, miniaturized: at eps = 4, PrivShape's
  // cluster structure (via extracted shapes) must beat PatternLDP+KMeans.
  series::GeneratorOptions gen;
  gen.num_instances = 1500;
  gen.seed = 14;
  auto dataset = series::MakeTraceDataset(gen);
  std::vector<int> truth;
  for (const auto& inst : dataset.instances) truth.push_back(inst.label);

  // PrivShape side.
  auto sequences = core::TransformDataset(dataset, TraceTransform());
  ASSERT_TRUE(sequences.ok());
  core::PrivShape mech(TraceConfig());
  auto result = mech.Run(*sequences);
  ASSERT_TRUE(result.ok());
  std::vector<Sequence> shapes;
  for (const auto& s : result->shapes) shapes.push_back(s.shape);
  auto ps_assign =
      eval::AssignToNearestShape(*sequences, shapes, dist::Metric::kSed);
  ASSERT_TRUE(ps_assign.ok());
  auto ps_ari = eval::AdjustedRandIndex(truth, *ps_assign);
  ASSERT_TRUE(ps_ari.ok());

  // PatternLDP side: perturb series, then SAX them and cluster by shape
  // assignment against the same extracted shapes domain (KMeans on raw
  // perturbed data is exercised in the bench harness; here we compare the
  // symbolic route to keep the test fast).
  pldp::PatternLdpConfig pl_config;
  pl_config.epsilon = 4.0;
  auto pl = pldp::PatternLdp::Create(pl_config);
  ASSERT_TRUE(pl.ok());
  Rng rng(15);
  auto perturbed = pl->PerturbDataset(dataset, &rng);
  ASSERT_TRUE(perturbed.ok());
  auto pl_seqs = core::TransformDataset(*perturbed, TraceTransform());
  ASSERT_TRUE(pl_seqs.ok());
  auto pl_assign =
      eval::AssignToNearestShape(*pl_seqs, shapes, dist::Metric::kSed);
  ASSERT_TRUE(pl_assign.ok());
  auto pl_ari = eval::AdjustedRandIndex(truth, *pl_assign);
  ASSERT_TRUE(pl_ari.ok());

  EXPECT_GT(*ps_ari, *pl_ari);
}

TEST(IntegrationTest, AblationNoCompressionStillRuns) {
  series::GeneratorOptions gen;
  gen.num_instances = 1200;
  gen.seed = 16;
  auto dataset = series::MakeTraceDataset(gen);
  core::TransformOptions transform = TraceTransform();
  transform.compress = false;
  auto sequences = core::TransformDataset(dataset, transform);
  ASSERT_TRUE(sequences.ok());

  core::MechanismConfig config = TraceConfig();
  config.allow_repeats = true;
  config.ell_high = 8;  // uncompressed words are longer; cap the trie
  core::PrivShape mech(config);
  auto result = mech.Run(*sequences);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->shapes.size(), 1u);
}

TEST(IntegrationTest, AblationWithoutSaxStillRuns) {
  series::GeneratorOptions gen;
  gen.num_instances = 1200;
  gen.seed = 17;
  auto dataset = series::MakeTraceDataset(gen);
  core::TransformOptions transform;
  transform.use_sax = false;
  auto sequences = core::TransformDataset(dataset, transform);
  ASSERT_TRUE(sequences.ok());

  core::MechanismConfig config = TraceConfig();
  config.t = transform.EffectiveAlphabet();  // 8 grid bands
  core::PrivShape mech(config);
  auto result = mech.Run(*sequences);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->shapes.size(), 1u);
}

TEST(IntegrationTest, SymbolsClusteringPipeline) {
  series::GeneratorOptions gen;
  gen.num_instances = 3000;
  gen.seed = 18;
  auto dataset = series::MakeSymbolsDataset(gen);
  core::TransformOptions transform;
  transform.t = 6;
  transform.w = 25;
  auto sequences = core::TransformDataset(dataset, transform);
  ASSERT_TRUE(sequences.ok());

  core::MechanismConfig config;
  config.epsilon = 4.0;
  config.t = 6;
  config.k = 6;
  config.c = 3;
  config.ell_high = 15;
  config.metric = dist::Metric::kDtw;
  config.seed = 2023;
  core::PrivShape mech(config);
  auto result = mech.Run(*sequences);
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<Sequence> shapes;
  for (const auto& s : result->shapes) shapes.push_back(s.shape);
  auto assignments =
      eval::AssignToNearestShape(*sequences, shapes, dist::Metric::kDtw);
  ASSERT_TRUE(assignments.ok());
  std::vector<int> truth;
  for (const auto& inst : dataset.instances) truth.push_back(inst.label);
  auto ari = eval::AdjustedRandIndex(truth, *assignments);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.2);
}

}  // namespace
}  // namespace privshape
