#include "ldp/grr.h"

#include <cmath>

#include "ldp/estimator_utils.h"

namespace privshape::ldp {

Result<Grr> Grr::Create(size_t domain_size, double epsilon) {
  if (domain_size < 2) {
    return Status::InvalidArgument("GRR domain must have >= 2 values");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  double p = 0.0, q = 0.0;
  GrrParameters(domain_size, epsilon, &p, &q);
  return Grr(domain_size, epsilon, p, q);
}

size_t Grr::PerturbValue(size_t value, Rng* rng) const {
  if (rng->Bernoulli(p_)) return value;
  // Uniform over the other d-1 values.
  size_t r = rng->Index(d_ - 1);
  return r >= value ? r + 1 : r;
}

double Grr::TransitionProbability(size_t x, size_t y) const {
  return x == y ? p_ : q_;
}

Status Grr::SubmitUser(size_t value, Rng* rng) {
  if (value >= d_) {
    return Status::OutOfRange("GRR input outside domain");
  }
  counts_[PerturbValue(value, rng)]++;
  ++n_;
  return Status::Ok();
}

std::vector<double> Grr::EstimateCounts() const {
  // Shared debias path: the wire-level aggregators use the same function,
  // so identical raw counts give byte-identical estimates.
  return DebiasGrrCounts(counts_, n_, epsilon_);
}

void Grr::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  n_ = 0;
}

}  // namespace privshape::ldp
