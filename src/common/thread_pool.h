#ifndef PRIVSHAPE_COMMON_THREAD_POOL_H_
#define PRIVSHAPE_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace privshape {

/// Fixed-size worker pool. The paper evaluates all users "concurrently";
/// benches use this pool to run per-user perturbation in parallel while the
/// mechanisms themselves stay single-threaded and deterministic.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (hardware concurrency if 0).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn`; the returned future resolves when it has run.
  std::future<void> Submit(std::function<void()> fn) PS_EXCLUDES(mu_);

  /// Runs fn(i) for i in [0, n), blocking until all iterations finish.
  /// Iterations are chunked so small bodies do not drown in queue overhead.
  ///
  /// Exception safety: if any iteration throws, ParallelFor still waits for
  /// every chunk to finish (never leaving queued tasks referencing a dead
  /// `fn`) and then rethrows the first exception in chunk order. Iterations
  /// in other chunks all run; the remaining iterations of the throwing
  /// chunk are skipped.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() PS_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<std::packaged_task<void()>> tasks_ PS_GUARDED_BY(mu_);
  bool stop_ PS_GUARDED_BY(mu_) = false;
};

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_THREAD_POOL_H_
