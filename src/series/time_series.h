/// \file
/// Module `series` — raw per-user time series, SAX symbol sequences, and the
/// synthetic dataset generators used by tests and benches (§II problem
/// setting: each user holds exactly one series). Invariant: labels carried
/// here are ground truth for evaluation only; mechanisms must not read them
/// outside the user's own local encoding.

#ifndef PRIVSHAPE_SERIES_TIME_SERIES_H_
#define PRIVSHAPE_SERIES_TIME_SERIES_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace privshape::series {

/// A single user's raw time series plus its (ground-truth) class label.
/// Labels exist only for evaluation; the LDP mechanisms never read them
/// except where the paper's classification variant reports them under OUE.
struct TimeSeries {
  std::vector<double> values;
  int label = -1;
};

/// A collection of time series (one per user).
struct Dataset {
  std::vector<TimeSeries> instances;

  size_t size() const { return instances.size(); }
  bool empty() const { return instances.empty(); }

  /// Distinct labels present, sorted ascending.
  std::vector<int> Labels() const;

  /// All instances carrying `label`.
  Dataset FilterByLabel(int label) const;
};

/// Z-normalizes every instance in place (UCR convention).
void ZNormalizeDataset(Dataset* dataset);

/// Splits `dataset` into train/test with the given train fraction.
/// Instances are shuffled with `seed` first so class order does not leak.
void TrainTestSplit(const Dataset& dataset, double train_fraction,
                    uint64_t seed, Dataset* train, Dataset* test);

}  // namespace privshape::series

#endif  // PRIVSHAPE_SERIES_TIME_SERIES_H_
