#include "protocol/session.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/subshape.h"
#include "ldp/exponential.h"
#include "ldp/grr.h"

namespace privshape::proto {

Result<std::string> ClientSession::AnswerLengthRequest(int ell_low,
                                                       int ell_high,
                                                       double epsilon) {
  if (ell_low < 1 || ell_high < ell_low) {
    return Status::InvalidArgument("invalid length range");
  }
  size_t domain = static_cast<size_t>(ell_high - ell_low + 1);
  Report report;
  report.kind = ReportKind::kLength;
  if (domain == 1) {
    report.value = 0;
  } else {
    auto grr = ldp::Grr::Create(domain, epsilon);
    if (!grr.ok()) return grr.status();
    int len = std::clamp(static_cast<int>(word_.size()), ell_low, ell_high);
    report.value =
        grr->PerturbValue(static_cast<size_t>(len - ell_low), &rng_);
  }
  return EncodeReport(report);
}

Result<std::string> ClientSession::AnswerSubShapeRequest(int alphabet,
                                                         int ell_s,
                                                         double epsilon,
                                                         bool allow_repeats) {
  if (ell_s < 2) {
    return Status::FailedPrecondition("no sub-shapes for ell_s < 2");
  }
  size_t domain = core::SubShapeDomainSize(alphabet, allow_repeats);
  auto grr = ldp::Grr::Create(domain, epsilon);
  if (!grr.ok()) return grr.status();
  size_t num_levels = static_cast<size_t>(ell_s - 1);
  size_t j = 1 + rng_.Index(num_levels);
  size_t sentinel = domain - 1;
  size_t value = sentinel;
  if (j + 1 <= word_.size()) {
    Symbol a = word_[j - 1];
    Symbol b = word_[j];
    if (allow_repeats || a != b) {
      value = core::PairToIndex(a, b, alphabet, allow_repeats);
    }
  }
  Report report;
  report.kind = ReportKind::kSubShape;
  report.level = j;
  report.value = grr->PerturbValue(value, &rng_);
  return EncodeReport(report);
}

Result<std::string> ClientSession::AnswerCandidateRequest(
    const std::string& request) {
  auto decoded = DecodeCandidateRequest(request);
  if (!decoded.ok()) return decoded.status();
  if (decoded->candidates.empty()) {
    return Status::InvalidArgument("empty candidate list");
  }
  auto em = ldp::ExponentialMechanism::Create(decoded->epsilon);
  if (!em.ok()) return em.status();
  auto distance = dist::MakeDistance(metric_);
  std::vector<double> distances;
  distances.reserve(decoded->candidates.size());
  for (const auto& candidate : decoded->candidates) {
    if (word_.size() > candidate.size()) {
      Sequence prefix(word_.begin(),
                      word_.begin() + static_cast<long>(candidate.size()));
      distances.push_back(distance->Distance(prefix, candidate));
    } else {
      distances.push_back(distance->Distance(word_, candidate));
    }
  }
  auto pick = em->Select(ldp::ScoresFromDistances(distances), &rng_);
  if (!pick.ok()) return pick.status();
  Report report;
  report.kind = ReportKind::kSelection;
  report.level = decoded->level;
  report.value = *pick;
  return EncodeReport(report);
}

Result<std::string> ClientSession::AnswerRefinementRequest(
    const std::string& request) {
  auto decoded = DecodeCandidateRequest(request);
  if (!decoded.ok()) return decoded.status();
  if (decoded->candidates.empty()) {
    return Status::InvalidArgument("empty candidate list");
  }
  auto grr = ldp::Grr::Create(
      std::max<size_t>(decoded->candidates.size(), 2), decoded->epsilon);
  if (!grr.ok()) return grr.status();
  auto distance = dist::MakeDistance(metric_);
  double best = std::numeric_limits<double>::infinity();
  size_t best_idx = 0;
  for (size_t i = 0; i < decoded->candidates.size(); ++i) {
    double d = distance->Distance(word_, decoded->candidates[i]);
    if (d < best) {
      best = d;
      best_idx = i;
    }
  }
  Report report;
  report.kind = ReportKind::kRefinement;
  report.value = grr->PerturbValue(best_idx, &rng_);
  return EncodeReport(report);
}

ReportAggregator::ReportAggregator(ReportKind kind, size_t domain,
                                   double epsilon)
    : kind_(kind), domain_(domain), epsilon_(epsilon), counts_(domain, 0) {}

void ReportAggregator::Consume(const std::string& encoded) {
  auto report = DecodeReport(encoded);
  if (!report.ok() || report->kind != kind_ || report->value >= domain_) {
    ++rejected_;
    return;
  }
  counts_[report->value]++;
  ++accepted_;
}

std::vector<double> ReportAggregator::EstimatedCounts() const {
  std::vector<double> out(domain_);
  if (kind_ == ReportKind::kSelection) {
    for (size_t v = 0; v < domain_; ++v) {
      out[v] = static_cast<double>(counts_[v]);
    }
    return out;
  }
  double e = std::exp(epsilon_);
  double p = e / (e + static_cast<double>(domain_) - 1.0);
  double q = 1.0 / (e + static_cast<double>(domain_) - 1.0);
  double n = static_cast<double>(accepted_);
  for (size_t v = 0; v < domain_; ++v) {
    out[v] = (static_cast<double>(counts_[v]) - n * q) / (p - q);
  }
  return out;
}

}  // namespace privshape::proto
