// Fig. 8: the extracted shapes on the Symbols dataset at eps = 4 (t = 6,
// w = 25, seed 2023), next to the ground-truth class shapes. The paper
// plots numeric silhouettes; here every shape is printed both as its SAX
// word and as its reconstructed numeric level sequence.

#include <iostream>

#include "bench/harness.h"
#include "core/pipeline.h"
#include "series/generators.h"

namespace pb = privshape::bench;

namespace {

void PrintShape(const std::string& who, const privshape::Sequence& word,
                const privshape::core::TransformOptions& transform) {
  std::cout << "  " << who << ": \"" << privshape::SequenceToString(word)
            << "\"  levels: [";
  auto rec = privshape::core::ReconstructShape(word, transform);
  if (rec.ok()) {
    // One level per symbol keeps the printout compact.
    for (size_t i = 0; i < word.size(); ++i) {
      if (i) std::cout << ", ";
      std::cout << privshape::FormatDouble(
          (*rec)[i * static_cast<size_t>(transform.w)], 3);
    }
  }
  std::cout << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 3000, 1);
  double epsilon = args.GetDouble("epsilon", 4.0);

  privshape::series::GeneratorOptions gen;
  gen.num_instances = scale.users;
  gen.seed = scale.seed;
  auto dataset = privshape::series::MakeSymbolsDataset(gen);
  auto transform = pb::SymbolsTransform();

  pb::PrintTitle("Fig. 8: extracted shapes (Symbols), eps=" +
                 privshape::FormatDouble(epsilon));

  std::cout << "Ground Truth (per-class mean through Compressive SAX):\n";
  auto gt = pb::GroundTruthShapes(dataset, transform);
  for (const auto& shape : gt) {
    PrintShape("class " + std::to_string(shape.label), shape.shape,
               transform);
  }

  pb::PatternLdpBenchOptions pl;
  pl.epsilon = epsilon;
  pl.seed = scale.seed;
  auto pattern = pb::RunPatternLdpKMeansClustering(dataset, transform, pl, 6);
  std::cout << "\nPatternLDP (KMeans centers of perturbed data, then "
               "Compressive SAX):\n";
  for (size_t i = 0; i < pattern.shapes.size(); ++i) {
    PrintShape("center " + std::to_string(i), pattern.shapes[i], transform);
  }

  auto config = pb::SymbolsConfig(epsilon, scale.seed);
  privshape::core::MechanismConfig baseline_config = config;
  baseline_config.baseline_threshold =
      100.0 * static_cast<double>(scale.users) / 40000.0;
  auto baseline =
      pb::RunBaselineClustering(dataset, transform, baseline_config);
  std::cout << "\nBaseline mechanism:\n";
  for (size_t i = 0; i < baseline.shapes.size(); ++i) {
    PrintShape("shape " + std::to_string(i), baseline.shapes[i], transform);
  }

  auto priv = pb::RunPrivShapeClustering(dataset, transform, config);
  std::cout << "\nPrivShape:\n";
  for (size_t i = 0; i < priv.shapes.size(); ++i) {
    PrintShape("shape " + std::to_string(i), priv.shapes[i], transform);
  }

  std::cout << "\nExpected shape (paper Fig. 8): PatternLDP centers look "
               "random; PrivShape shapes track the ground-truth classes.\n"
            << "Measured ARI: PatternLDP="
            << privshape::FormatDouble(pattern.ari, 3)
            << " Baseline=" << privshape::FormatDouble(baseline.ari, 3)
            << " PrivShape=" << privshape::FormatDouble(priv.ari, 3) << "\n";
  return 0;
}
