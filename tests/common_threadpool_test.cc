#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace privshape {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto fut = pool.Submit([&] { value = 42; });
  fut.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&] { counter++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&](size_t) { counter++; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForSingleIteration) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    counter++;
  });
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEachIndexExactlyOnceWhenFewerThanChunks) {
  ThreadPool pool(4);
  // n smaller than workers * 4 exercises the chunks == n path: every
  // index must still be visited exactly once.
  for (size_t n : {size_t{2}, size_t{3}, size_t{5}, size_t{15}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRunsOtherChunksDespiteException) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  try {
    pool.ParallelFor(256, [&](size_t i) {
      if (i == 0) throw std::runtime_error("first chunk dies");
      visited++;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  // Only the throwing chunk's remaining iterations may be skipped; every
  // other chunk completes in full (256 / chunks at most are lost).
  EXPECT_GE(visited.load(), 256 - 256 / 4);
  // The pool stays usable afterwards.
  std::atomic<int> after{0};
  pool.ParallelFor(50, [&](size_t) { after++; });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(fut.get(), std::logic_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter++; });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace privshape
