#ifndef PRIVSHAPE_LDP_UNARY_ENCODING_H_
#define PRIVSHAPE_LDP_UNARY_ENCODING_H_

#include <vector>

#include "ldp/frequency_oracle.h"

namespace privshape::ldp {

/// Unary-encoding oracles (Wang et al., USENIX Security'17). A value is
/// one-hot encoded over d bits; the 1-bit is kept with probability p and
/// each 0-bit flips to 1 with probability q. eps-LDP requires
/// p(1-q) / (q(1-p)) = e^eps.
///
///  - SUE ("basic RAPPOR"): p = e^{eps/2} / (e^{eps/2}+1), q = 1 - p.
///  - OUE (optimized):      p = 1/2, q = 1 / (e^eps + 1) — minimizes
///    estimator variance and is what the paper's classification refinement
///    uses (§V-E).
class UnaryEncoding : public FrequencyOracle {
 public:
  enum class Variant { kSymmetric, kOptimized };

  static Result<UnaryEncoding> Create(size_t domain_size, double epsilon,
                                      Variant variant);

  /// Perturbs the one-hot encoding of `value`; exposed for tests.
  std::vector<uint8_t> PerturbValue(size_t value, Rng* rng) const;

  Status SubmitUser(size_t value, Rng* rng) override;
  /// Accumulates an externally produced bit vector (used by the PrivShape
  /// classification refinement, which encodes candidate x label cells).
  Status SubmitBits(const std::vector<uint8_t>& bits);

  std::vector<double> EstimateCounts() const override;
  void Reset() override;

  size_t domain_size() const override { return d_; }
  double epsilon() const override { return epsilon_; }
  size_t num_reports() const override { return n_; }

  double p() const { return p_; }
  double q() const { return q_; }

 private:
  UnaryEncoding(size_t d, double epsilon, double p, double q)
      : d_(d), epsilon_(epsilon), p_(p), q_(q), bit_counts_(d, 0) {}

  size_t d_;
  double epsilon_;
  double p_;
  double q_;
  std::vector<size_t> bit_counts_;
  size_t n_ = 0;
};

}  // namespace privshape::ldp

#endif  // PRIVSHAPE_LDP_UNARY_ENCODING_H_
