/// \file
/// Module `telemetry` — live instrumentation for the collector stack:
/// sharded relaxed-atomic counters, gauges, and fixed-bucket log-linear
/// latency histograms behind a named Registry, plus text (Prometheus
/// exposition style) and JSON snapshots a scraper can pull mid-round
/// without pausing ingestion.
///
/// Record-path cost contract: Counter::Add, Gauge::Set/Add, and
/// Histogram::Record are a handful of arithmetic instructions plus
/// relaxed-ordering atomic increments — no locks, no allocation, no
/// branches that depend on whether anyone is scraping. Lookup
/// (Registry::GetCounter and friends) takes a mutex and may allocate, so
/// call sites resolve their instruments once and cache the pointer; the
/// returned pointers stay valid for the registry's lifetime. Snapshots
/// read the same relaxed atomics, so a scrape races benignly with
/// recording: it observes some recent value, never tears or blocks the
/// hot path.

#ifndef PRIVSHAPE_TELEMETRY_TELEMETRY_H_
#define PRIVSHAPE_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace privshape::telemetry {

/// Monotonically increasing event count, sharded across cache lines so N
/// threads incrementing the same counter never bounce one line between
/// cores. Add is a relaxed fetch_add on the calling thread's shard;
/// Value() sums the shards (racy-but-consistent snapshot: it can miss
/// increments that happen during the sum, never invent them).
class Counter {
 public:
  static constexpr size_t kShards = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    cells_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };

  /// Each thread picks one shard for its whole lifetime (round-robin over
  /// thread creation order), so a stable worker set spreads evenly.
  static size_t ThisThreadShard();

  Cell cells_[kShards];
};

/// A last-write-wins instantaneous value (queue depth, live connections).
/// Unsharded: gauges are typically written by one owner (or through
/// Add/Sub deltas, which commute), and reads want the single current
/// value, not a per-thread sum.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  /// The underlying atomic, for layers (common/batch_queue.h) that must
  /// maintain a depth without depending on this module.
  std::atomic<int64_t>* raw() { return &value_; }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-linear histogram bucketing for non-negative integer samples
/// (nanoseconds by convention; the `_ns` name suffix says so). Values
/// below 16 get exact unit-width buckets; above that, every power of two
/// is split into 16 linear sub-buckets, so any recorded value lands in a
/// bucket whose width is at most 1/16 (6.25%) of its lower bound — tight
/// enough that p50/p95/p99 derived from bucket counts stay within that
/// relative error of the exact order statistics.
inline constexpr size_t kHistogramSubBuckets = 16;
/// 16 unit buckets + 60 split powers of two covers the full uint64 range.
inline constexpr size_t kHistogramBuckets = 61 * kHistogramSubBuckets;

/// Bucket index for a sample (total order, surjective onto
/// [0, kHistogramBuckets)).
size_t HistogramBucketIndex(uint64_t value);

/// Smallest sample mapping to bucket `index` (inverse of the above on
/// bucket lower bounds).
uint64_t HistogramBucketLowerBound(size_t index);

/// Exclusive upper bound of bucket `index`: the lower bound of index+1,
/// or uint64 max for the last bucket.
uint64_t HistogramBucketUpperBound(size_t index);

/// A point-in-time copy of a histogram's state: plain data, movable,
/// mergeable — the form histograms travel in (per-round snapshots into
/// RoundStats, scrape output, cross-thread handoff).
struct HistogramSnapshot {
  std::vector<uint64_t> buckets;  ///< kHistogramBuckets counts (or empty)
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  bool empty() const { return count == 0; }
  double Mean() const { return count > 0 ? static_cast<double>(sum) /
                                               static_cast<double>(count)
                                         : 0.0; }

  /// Value at quantile `q` in [0, 1], linearly interpolated inside the
  /// bucket holding the target rank (and clamped to the recorded max, so
  /// p100 of {5} is 5, not the bucket's upper bound). 0 when empty.
  double Quantile(double q) const;

  /// Adds `other`'s counts into this snapshot.
  void Merge(const HistogramSnapshot& other);
};

/// Fixed-bucket concurrent histogram. Record is bucket-index arithmetic
/// plus relaxed atomic adds (bucket, count, sum) and a load-mostly max
/// update — safe and lock-free from any number of threads.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    buckets_[HistogramBucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Racy-but-consistent copy (bucket counts may trail `count` by
  /// in-flight records; never negative, never torn).
  HistogramSnapshot Snapshot() const;

  /// Folds a snapshot (e.g. one round's local histogram) into this one.
  void Merge(const HistogramSnapshot& snapshot);

 private:
  std::atomic<uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Named instrument directory. Get* registers on first use and returns
/// the same pointer thereafter (mutex-guarded — resolve once, cache the
/// pointer, record through it). Snapshots walk every instrument with
/// relaxed reads; they never block recorders.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrument records into.
  static Registry& Default();

  Counter* GetCounter(const std::string& name) PS_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) PS_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) PS_EXCLUDES(mu_);

  /// Prometheus-style text exposition: `# TYPE` lines, counter/gauge
  /// samples, histograms as cumulative `_bucket{le="..."}` series (empty
  /// buckets elided) plus `_sum`/`_count`.
  std::string TextExposition() const PS_EXCLUDES(mu_);

  /// The same state as one JSON object: counters/gauges as numbers,
  /// histograms as {count, sum, max, mean, p50, p95, p99}.
  JsonValue JsonSnapshot() const PS_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  // std::map: stable pointers, deterministic exposition order. The maps
  // are mutex-guarded; the instruments they point at are lock-free and
  // deliberately NOT guarded (record/read through the returned pointers
  // is the whole point of the relaxed-atomic design).
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ PS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PS_GUARDED_BY(mu_);
};

}  // namespace privshape::telemetry

#endif  // PRIVSHAPE_TELEMETRY_TELEMETRY_H_
