// Fig. 15: impact of the distance measure inside PrivShape (DTW vs SED vs
// Euclidean) against PatternLDP, for eps in {1,2,3,4}: (a) clustering ARI
// on Symbols, (b) classification accuracy on Trace.

#include <iostream>

#include "bench/harness.h"
#include "series/generators.h"
#include "series/time_series.h"

namespace pb = privshape::bench;

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 2000, 2);
  std::vector<double> budgets = {1, 2, 3, 4};
  std::vector<privshape::dist::Metric> metrics = {
      privshape::dist::Metric::kDtw, privshape::dist::Metric::kSed,
      privshape::dist::Metric::kEuclidean};
  auto csv = pb::MaybeCsv("fig15_distance_metrics");
  if (csv) csv->WriteHeader({"task", "eps", "dtw", "sed", "euclidean",
                             "patternldp"});

  pb::PrintTitle("Fig. 15(a): clustering ARI by distance metric (Symbols)");
  pb::PrintHeader({"eps", "PrivShape-DTW", "PrivShape-SED",
                   "PrivShape-Euclid", "PatternLDP"});
  for (double eps : budgets) {
    std::vector<double> ari(metrics.size(), 0.0);
    double pl_ari = 0;
    for (int trial = 0; trial < scale.trials; ++trial) {
      uint64_t seed = scale.seed + static_cast<uint64_t>(trial);
      privshape::series::GeneratorOptions gen;
      gen.num_instances = scale.users;
      gen.seed = seed;
      auto dataset = privshape::series::MakeSymbolsDataset(gen);
      auto transform = pb::SymbolsTransform();
      for (size_t m = 0; m < metrics.size(); ++m) {
        auto config = pb::SymbolsConfig(eps, seed);
        config.metric = metrics[m];
        ari[m] += pb::RunPrivShapeClustering(dataset, transform, config).ari;
      }
      pb::PatternLdpBenchOptions pl;
      pl.epsilon = eps;
      pl.seed = seed;
      pl_ari +=
          pb::RunPatternLdpKMeansClustering(dataset, transform, pl, 6).ari;
    }
    double n = scale.trials;
    std::vector<std::string> row = {privshape::FormatDouble(eps, 3),
                                    privshape::FormatDouble(ari[0] / n, 4),
                                    privshape::FormatDouble(ari[1] / n, 4),
                                    privshape::FormatDouble(ari[2] / n, 4),
                                    privshape::FormatDouble(pl_ari / n, 4)};
    pb::PrintRow(row);
    if (csv) {
      csv->WriteRow({"clustering", privshape::FormatDouble(eps, 3),
                     privshape::FormatDouble(ari[0] / n, 4),
                     privshape::FormatDouble(ari[1] / n, 4),
                     privshape::FormatDouble(ari[2] / n, 4),
                     privshape::FormatDouble(pl_ari / n, 4)});
    }
  }

  pb::PrintTitle(
      "Fig. 15(b): classification accuracy by distance metric (Trace)");
  pb::PrintHeader({"eps", "PrivShape-DTW", "PrivShape-SED",
                   "PrivShape-Euclid", "PatternLDP"});
  for (double eps : budgets) {
    std::vector<double> acc(metrics.size(), 0.0);
    double pl_acc = 0;
    for (int trial = 0; trial < scale.trials; ++trial) {
      uint64_t seed = scale.seed + static_cast<uint64_t>(trial);
      privshape::series::GeneratorOptions gen;
      gen.num_instances = scale.users;
      gen.seed = seed;
      auto dataset = privshape::series::MakeTraceDataset(gen);
      privshape::series::Dataset train, test;
      privshape::series::TrainTestSplit(dataset, 0.8, seed, &train, &test);
      auto transform = pb::TraceTransform();
      for (size_t m = 0; m < metrics.size(); ++m) {
        auto config = pb::TraceConfig(eps, seed);
        config.metric = metrics[m];
        config.num_classes = 3;
        acc[m] += pb::RunPrivShapeClassification(train, test, transform,
                                                 config)
                      .accuracy;
      }
      pb::PatternLdpBenchOptions pl;
      pl.epsilon = eps;
      pl.seed = seed;
      pl_acc +=
          pb::RunPatternLdpRfClassification(train, test, pl, 3).accuracy;
    }
    double n = scale.trials;
    std::vector<std::string> row = {privshape::FormatDouble(eps, 3),
                                    privshape::FormatDouble(acc[0] / n, 4),
                                    privshape::FormatDouble(acc[1] / n, 4),
                                    privshape::FormatDouble(acc[2] / n, 4),
                                    privshape::FormatDouble(pl_acc / n, 4)};
    pb::PrintRow(row);
    if (csv) {
      csv->WriteRow({"classification", privshape::FormatDouble(eps, 3),
                     privshape::FormatDouble(acc[0] / n, 4),
                     privshape::FormatDouble(acc[1] / n, 4),
                     privshape::FormatDouble(acc[2] / n, 4),
                     privshape::FormatDouble(pl_acc / n, 4)});
    }
  }

  std::cout << "\nExpected shape (paper Fig. 15): metrics differ but every "
               "PrivShape variant beats PatternLDP for eps <= 4.\n";
  return 0;
}
