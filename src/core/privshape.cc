#include "core/privshape.h"

#include <vector>

#include "core/population.h"
#include "core/rounds.h"

namespace privshape::core {

// Run() is a thin driver around the round decomposition in core/rounds.h:
// the PrivShapeServer makes every server-side decision, and the
// Local*Round functions answer each round in process with per-user
// randomness derived from DeriveSeed(config.seed, user). The wire-level
// collector::RoundCoordinator drives the same server with the same
// per-user seeds over encoded reports, so for a fixed seed both paths
// produce byte-identical shapes for any shard/thread count.
Result<MechanismResult> PrivShape::Run(const std::vector<Sequence>& sequences,
                                       const std::vector<int>* labels) const {
  PRIVSHAPE_RETURN_IF_ERROR(config_.Validate());
  if (sequences.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  if (config_.num_classes > 0) {
    if (labels == nullptr || labels->size() != sequences.size()) {
      return Status::InvalidArgument(
          "classification refinement requires one label per sequence");
    }
    for (int label : *labels) {
      if (label < 0 || label >= config_.num_classes) {
        return Status::OutOfRange("label outside [0, num_classes)");
      }
    }
  }

  auto server = PrivShapeServer::Create(config_);
  if (!server.ok()) return server.status();

  // The split is the server's only use of the shared engine; every
  // user-side draw comes from the user's own derived stream.
  Rng rng(config_.seed);
  FourWaySplit split =
      SplitFourWay(sequences.size(), config_.frac_a, config_.frac_b,
                   config_.frac_c, config_.frac_d, &rng);

  // Stage 1: frequent length from P_a.
  auto length_counts =
      LocalLengthRound(sequences, split.pa, config_.ell_low,
                       config_.ell_high, config_.epsilon, config_.seed);
  if (!length_counts.ok()) return length_counts.status();
  PRIVSHAPE_RETURN_IF_ERROR(server->FinishLength(*length_counts));
  int ell_s = server->frequent_length();

  // Stage 2: frequent sub-shapes from P_b.
  auto subshape_counts = LocalSubShapeRound(
      sequences, split.pb, ell_s, config_.t, config_.epsilon,
      config_.allow_repeats, config_.seed);
  if (!subshape_counts.ok()) return subshape_counts.status();
  PRIVSHAPE_RETURN_IF_ERROR(server->FinishSubShapes(*subshape_counts));

  // Stage 3: trie expansion from P_c.
  std::vector<std::vector<size_t>> level_groups =
      PartitionGroups(split.pc, static_cast<size_t>(ell_s));
  for (int level = 0; level < ell_s; ++level) {
    auto candidates = server->BeginTrieLevel(level);
    if (!candidates.ok()) return candidates.status();
    auto counts = LocalSelectionRound(
        *candidates, sequences, level_groups[static_cast<size_t>(level)],
        config_.metric, config_.epsilon, config_.seed);
    if (!counts.ok()) return counts.status();
    PRIVSHAPE_RETURN_IF_ERROR(server->FinishTrieLevel(*counts));
  }

  // Stage 4+5: two-level refinement from P_d, then post-processing.
  auto candidates = server->BeginRefinement();
  if (!candidates.ok()) return candidates.status();
  if (config_.disable_refinement) {
    return server->FinishWithoutRefinement();
  }
  if (config_.num_classes == 0) {
    auto counts =
        LocalRefinementRound(*candidates, sequences, split.pd,
                             config_.metric, config_.epsilon, config_.seed);
    if (!counts.ok()) return counts.status();
    return server->FinishRefinement(*counts);
  }
  auto counts = LocalClassRefinementRound(
      *candidates, sequences, *labels, split.pd, config_.metric,
      config_.num_classes, config_.epsilon, config_.seed);
  if (!counts.ok()) return counts.status();
  return server->FinishClassRefinement(*counts);
}

}  // namespace privshape::core
