#include "eval/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "eval/ari.h"

namespace privshape {
namespace {

using eval::KMeans;
using eval::KMeansOptions;

std::vector<std::vector<double>> TwoBlobs(size_t per_cluster, uint64_t seed,
                                          std::vector<int>* truth) {
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  for (size_t i = 0; i < per_cluster; ++i) {
    points.push_back({rng.Gaussian(0.0, 0.3), rng.Gaussian(0.0, 0.3)});
    truth->push_back(0);
  }
  for (size_t i = 0; i < per_cluster; ++i) {
    points.push_back({rng.Gaussian(5.0, 0.3), rng.Gaussian(5.0, 0.3)});
    truth->push_back(1);
  }
  return points;
}

TEST(KMeansTest, SeparatesTwoBlobsPerfectly) {
  std::vector<int> truth;
  auto points = TwoBlobs(100, 141, &truth);
  KMeansOptions options;
  options.k = 2;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  auto ari = eval::AdjustedRandIndex(truth, result->assignments);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(KMeansTest, CentroidsLandOnBlobMeans) {
  std::vector<int> truth;
  auto points = TwoBlobs(200, 142, &truth);
  KMeansOptions options;
  options.k = 2;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  // One centroid near (0,0), the other near (5,5), in some order.
  double d00 = std::min(std::abs(result->centroids[0][0]),
                        std::abs(result->centroids[1][0]));
  double d55 = std::min(std::abs(result->centroids[0][0] - 5.0),
                        std::abs(result->centroids[1][0] - 5.0));
  EXPECT_LT(d00, 0.2);
  EXPECT_LT(d55, 0.2);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  std::vector<int> truth;
  auto points = TwoBlobs(100, 143, &truth);
  KMeansOptions k1;
  k1.k = 1;
  KMeansOptions k4;
  k4.k = 4;
  auto r1 = KMeans(points, k1);
  auto r4 = KMeans(points, k4);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_LT(r4->inertia, r1->inertia);
}

TEST(KMeansTest, DeterministicForSeed) {
  std::vector<int> truth;
  auto points = TwoBlobs(50, 144, &truth);
  KMeansOptions options;
  options.k = 2;
  options.seed = 9;
  auto a = KMeans(points, options);
  auto b = KMeans(points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
}

TEST(KMeansTest, KEqualsNPutsOnePointPerCluster) {
  std::vector<std::vector<double>> points = {{0.0}, {10.0}, {20.0}};
  KMeansOptions options;
  options.k = 3;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  std::set<int> distinct(result->assignments.begin(),
                         result->assignments.end());
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, RejectsInvalidInputs) {
  KMeansOptions options;
  options.k = 2;
  EXPECT_FALSE(KMeans({}, options).ok());
  EXPECT_FALSE(KMeans({{1.0}}, options).ok());  // k > n
  options.k = 1;
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, options).ok());  // ragged
}

TEST(KMeansTest, AssignmentsInRange) {
  std::vector<int> truth;
  auto points = TwoBlobs(30, 145, &truth);
  KMeansOptions options;
  options.k = 3;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  for (int a : result->assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
}

}  // namespace
}  // namespace privshape
