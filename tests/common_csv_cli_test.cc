#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/cli.h"
#include "common/csv.h"

namespace privshape {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/privshape_csv_test.csv";
};

TEST_F(CsvTest, WriteAndReadBack) {
  {
    CsvWriter writer(path_);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow(std::vector<double>{1.5, 2.25, -3.0});
    writer.WriteRow(std::vector<double>{4.0, 5.0, 6.0});
  }
  auto rows = ReadCsvDoubles(path_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_DOUBLE_EQ((*rows)[0][0], 1.5);
  EXPECT_DOUBLE_EQ((*rows)[0][2], -3.0);
  EXPECT_DOUBLE_EQ((*rows)[1][1], 5.0);
}

TEST_F(CsvTest, HeaderThenRows) {
  {
    CsvWriter writer(path_);
    writer.WriteHeader({"epsilon", "ari"});
    writer.WriteRow(std::vector<std::string>{"4", "0.68"});
  }
  std::ifstream in(path_);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "epsilon,ari");
  std::getline(in, line);
  EXPECT_EQ(line, "4,0.68");
}

TEST_F(CsvTest, ReadMissingFileFails) {
  auto rows = ReadCsvDoubles("/nonexistent/path.csv");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
}

TEST_F(CsvTest, ReadNonNumericFails) {
  {
    std::ofstream out(path_);
    out << "1,abc,3\n";
  }
  auto rows = ReadCsvDoubles(path_);
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(FormatDoubleTest, Renders) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(std::nan("")), "nan");
}

TEST(CliTest, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--users=500", "--epsilon=2.5",
                        "--name=trace"};
  CliArgs args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("users", 0), 500);
  EXPECT_DOUBLE_EQ(args.GetDouble("epsilon", 0.0), 2.5);
  EXPECT_EQ(args.GetString("name", ""), "trace");
}

TEST(CliTest, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--users", "123"};
  CliArgs args(3, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("users", 0), 123);
}

TEST(CliTest, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("users", 77), 77);
  EXPECT_FALSE(args.Has("users"));
}

TEST(CliTest, BareFlagActsAsBoolean) {
  const char* argv[] = {"prog", "--verbose"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_TRUE(args.Has("verbose"));
  EXPECT_EQ(args.GetInt("verbose", 0), 1);
}

TEST(CliTest, EnvFallback) {
  setenv("PRIVSHAPE_FALLBACK_TEST_KEY", "99", 1);
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("fallback_test_key", 0), 99);
  unsetenv("PRIVSHAPE_FALLBACK_TEST_KEY");
}

TEST(CliTest, FlagBeatsEnv) {
  setenv("PRIVSHAPE_PRIORITY_KEY", "1", 1);
  const char* argv[] = {"prog", "--priority_key=2"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("priority_key", 0), 2);
  unsetenv("PRIVSHAPE_PRIORITY_KEY");
}

TEST(CliTest, MalformedNumberFallsBack) {
  const char* argv[] = {"prog", "--users=abc"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("users", 42), 42);
}

TEST(CliTest, ThreadsFlagParsed) {
  const char* argv[] = {"prog", "--threads=6"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(ThreadsFromArgs(args), 6u);
}

TEST(CliTest, ThreadsDefaultsToHardware) {
  // Shield against a PRIVSHAPE_THREADS inherited from the invoking shell.
  unsetenv("PRIVSHAPE_THREADS");
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  // 0 = "hardware concurrency" by ThreadPool convention.
  EXPECT_EQ(ThreadsFromArgs(args), 0u);
  EXPECT_EQ(ThreadsFromArgs(args, 4), 4u);
}

TEST(CliTest, ThreadsEnvFallback) {
  setenv("PRIVSHAPE_THREADS", "3", 1);
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(ThreadsFromArgs(args), 3u);
  unsetenv("PRIVSHAPE_THREADS");
}

TEST(CliTest, NegativeThreadsFallsBack) {
  const char* argv[] = {"prog", "--threads=-2"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(ThreadsFromArgs(args, 1), 1u);
}

}  // namespace
}  // namespace privshape
