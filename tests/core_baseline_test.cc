#include "core/baseline.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "series/sequence.h"

namespace privshape {
namespace {

using core::BaselineMechanism;
using core::MechanismConfig;

/// Planted-shape population: 60% "abc", 30% "cba", 10% "bab".
std::vector<Sequence> PlantedSequences(size_t n, uint64_t seed = 1) {
  std::vector<Sequence> out;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.Uniform();
    if (u < 0.6) {
      out.push_back({0, 1, 2});
    } else if (u < 0.9) {
      out.push_back({2, 1, 0});
    } else {
      out.push_back({1, 0, 1});
    }
  }
  return out;
}

MechanismConfig TestConfig() {
  MechanismConfig config;
  config.epsilon = 6.0;
  config.t = 3;
  config.k = 2;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 6;
  config.metric = dist::Metric::kSed;
  config.baseline_threshold = 10.0;
  config.seed = 7;
  return config;
}

TEST(BaselineTest, ValidatesConfig) {
  MechanismConfig bad = TestConfig();
  bad.epsilon = -1.0;
  BaselineMechanism mech(bad);
  EXPECT_FALSE(mech.Run(PlantedSequences(100)).ok());
}

TEST(BaselineTest, RejectsEmptyDataset) {
  BaselineMechanism mech(TestConfig());
  EXPECT_FALSE(mech.Run({}).ok());
}

TEST(BaselineTest, RecoversPlantedShapeAtHighEps) {
  BaselineMechanism mech(TestConfig());
  auto result = mech.Run(PlantedSequences(4000));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->frequent_length, 3);
  ASSERT_GE(result->shapes.size(), 1u);
  EXPECT_EQ(SequenceToString(result->shapes[0].shape), "abc");
}

TEST(BaselineTest, ShapesSortedByFrequency) {
  BaselineMechanism mech(TestConfig());
  auto result = mech.Run(PlantedSequences(4000));
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->shapes.size(); ++i) {
    EXPECT_GE(result->shapes[i - 1].frequency, result->shapes[i].frequency);
  }
}

TEST(BaselineTest, StaysWithinUserLevelBudget) {
  BaselineMechanism mech(TestConfig());
  auto result = mech.Run(PlantedSequences(2000));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->accountant.UserLevelEpsilon(),
            mech.config().epsilon + 1e-9);
  // Each population was charged at most once per user.
  for (const auto& [name, eps] : result->accountant.charges()) {
    EXPECT_LE(eps, mech.config().epsilon + 1e-9) << name;
  }
}

TEST(BaselineTest, DeterministicForFixedSeed) {
  BaselineMechanism mech(TestConfig());
  auto sequences = PlantedSequences(2000);
  auto a = mech.Run(sequences);
  auto b = mech.Run(sequences);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->shapes.size(), b->shapes.size());
  for (size_t i = 0; i < a->shapes.size(); ++i) {
    EXPECT_EQ(a->shapes[i].shape, b->shapes[i].shape);
    EXPECT_DOUBLE_EQ(a->shapes[i].frequency, b->shapes[i].frequency);
  }
}

TEST(BaselineTest, ReturnsAtMostKShapes) {
  MechanismConfig config = TestConfig();
  config.k = 2;
  BaselineMechanism mech(config);
  auto result = mech.Run(PlantedSequences(3000));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->shapes.size(), 2u);
}

TEST(BaselineTest, AggressiveThresholdStopsGracefully) {
  MechanismConfig config = TestConfig();
  config.baseline_threshold = 1e9;  // prunes everything after level 1
  BaselineMechanism mech(config);
  auto result = mech.Run(PlantedSequences(1000));
  // Must not crash; shapes may be shorter than ell_S but still exist.
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->shapes.size(), 1u);
}

TEST(BaselineTest, SingleLengthSequencesWork) {
  MechanismConfig config = TestConfig();
  std::vector<Sequence> sequences(1000, Sequence{1});
  BaselineMechanism mech(config);
  auto result = mech.Run(sequences);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->frequent_length, 1);
  ASSERT_GE(result->shapes.size(), 1u);
  EXPECT_EQ(SequenceToString(result->shapes[0].shape), "b");
}

}  // namespace
}  // namespace privshape
