#include "common/rng.h"

#include <numeric>

namespace privshape {

size_t Rng::Discrete(const std::vector<double>& weights) {
  if (weights.empty()) return 0;
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0.0);
  if (total <= 0.0) return Index(weights.size());
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0.0);
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace privshape
