// Fixture: clocks in collector code are fine OUTSIDE report-path
// functions (deadlines and metrics need them) — the scope rule, proven.
#include <chrono>

#include "common/analysis_annotations.h"

namespace privshape::collector {

double DeadlineSeconds() {
  return static_cast<double>(std::chrono::steady_clock::now()
                                 .time_since_epoch()
                                 .count());
}

PS_REPORT_PATH
uint64_t CleanReportPath(uint64_t value) { return value * 2; }

}  // namespace privshape::collector
